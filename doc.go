// Package cellgan is a from-scratch Go reproduction of "Parallel/
// distributed implementation of cellular training for generative
// adversarial neural networks" (Pérez, Nesmachnow, Toutouh, Hemberg,
// O'Reilly — IPDPS/PDCO 2020, arXiv:2004.04633).
//
// The repository implements the whole stack the paper builds on:
//
//   - internal/tensor, internal/nn — the neural-network substrate (dense
//     linear algebra, backprop MLPs, BCE losses, Adam) replacing PyTorch;
//   - internal/dataset — a deterministic procedural substitute for MNIST;
//   - internal/mpi — MPI-style communicators over in-process and TCP
//     transports (point-to-point, collectives, Cartesian topology);
//   - internal/grid — the toroidal cellular topology with dynamic
//     neighbourhood patterns;
//   - internal/core — the cellular competitive coevolutionary GAN
//     training algorithm (Mustangs/Lipizzaner) with sequential and
//     parallel execution modes;
//   - internal/cluster — the master/slave runtime with heartbeats,
//     simulated Cluster-UY resource allocation and result reduction;
//   - internal/metrics — inception-score/Fréchet/mode-coverage quality
//     measures backed by a classifier trained on the synthetic digits;
//   - internal/perfmodel — the calibrated cost model reproducing the
//     paper's Tables III and IV;
//   - internal/experiments, internal/report — regeneration of every table
//     and figure of the evaluation section.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-reproduction
// numbers. The benchmarks in bench_test.go regenerate each table/figure
// under `go test -bench=.`.
package cellgan
