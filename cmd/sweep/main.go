// Command sweep runs a parameter sweep over grid sizes and execution
// architectures, repeating each cell of the sweep and reporting
// avg±std wall-clock times and achieved fitness — the workload harness
// behind the scaling analysis. Results print as an aligned table and,
// optionally, machine-readable CSV.
//
// Example:
//
//	sweep -grids 2,3 -modes seq,par,async -repeats 3 -iterations 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cellgan/internal/clientserver"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/report"
	"cellgan/internal/stats"
)

func main() {
	grids := flag.String("grids", "2,3", "comma-separated square grid sides")
	modes := flag.String("modes", "seq,par", "comma-separated modes: seq, par, async, http")
	repeats := flag.Int("repeats", 3, "repetitions per sweep cell (paper: 10)")
	iterations := flag.Int("iterations", 2, "training iterations per run")
	batches := flag.Int("batches", 2, "mini-batches per iteration")
	batch := flag.Int("batch", 16, "mini-batch size")
	datasetSize := flag.Int("dataset", 200, "training samples")
	hidden := flag.Int("hidden", 32, "hidden width")
	latent := flag.Int("latent", 16, "latent dimension")
	seed := flag.Uint64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	flag.Parse()

	var sides []int
	for _, s := range strings.Split(*grids, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad grid side %q", s))
		}
		sides = append(sides, v)
	}
	modeList := strings.Split(*modes, ",")

	runMode := func(mode string, cfg config.Config) error {
		var err error
		switch strings.TrimSpace(mode) {
		case "seq", "par", "async":
			_, err = core.Run(strings.TrimSpace(mode), cfg, core.RunOptions{})
		case "http":
			_, err = clientserver.Run(cfg, core.RunOptions{})
		default:
			err = fmt.Errorf("unknown mode %q", mode)
		}
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("Parameter sweep: %d repetition(s) per cell, %d iterations each", *repeats, *iterations),
		"grid", "mode", "avg±std (ms)", "95% CI", "min", "max")
	var csv strings.Builder
	csv.WriteString("grid,mode,mean_ms,std_ms,ci95_ms,min_ms,max_ms,repeats\n")

	for _, side := range sides {
		cfg := config.Default()
		cfg.GridRows, cfg.GridCols = side, side
		cfg.Iterations = *iterations
		cfg.BatchesPerIteration = *batches
		cfg.BatchSize = *batch
		cfg.DatasetSize = *datasetSize
		cfg.NeuronsPerHidden = *hidden
		cfg.InputNeurons = *latent
		cfg.Seed = *seed
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		for _, mode := range modeList {
			mode := strings.TrimSpace(mode)
			sum, err := stats.Repeat(*repeats, time.Millisecond, func() error {
				return runMode(mode, cfg)
			})
			if err != nil {
				fatal(fmt.Errorf("grid %d mode %s: %w", side, mode, err))
			}
			t.AddRow(
				fmt.Sprintf("%d×%d", side, side), mode, sum.String(),
				fmt.Sprintf("±%.2f", sum.CI95()),
				fmt.Sprintf("%.1f", sum.Min), fmt.Sprintf("%.1f", sum.Max),
			)
			fmt.Fprintf(&csv, "%dx%d,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n",
				side, side, mode, sum.Mean, sum.Std, sum.CI95(), sum.Min, sum.Max, sum.N)
		}
	}
	fmt.Println(t.String())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV written to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
