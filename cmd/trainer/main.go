// Command trainer runs cellular coevolutionary GAN training on the
// synthetic digits dataset and reports generator quality.
//
// Modes:
//
//	-mode seq    sequential single-process baseline
//	-mode par    parallel: one goroutine per cell over inproc message passing
//	-mode async  asynchronous cells (no barrier, push/pull exchange)
//	-mode http   the pre-MPI client-server architecture (comparator)
//	-mode job    full master/slave job with heartbeats and placement
//
// Examples:
//
//	trainer -grid 2 -iterations 5 -batches 10 -dataset 2000 -samples 3
//	trainer -checkpoint run.ckpt -iterations 5      # then later:
//	trainer -resume run.ckpt -iterations 10
//	trainer -idx-images train-images-idx3-ubyte.gz -idx-labels train-labels-idx1-ubyte.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/clientserver"
	"cellgan/internal/cluster"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/dataset"
	"cellgan/internal/metrics"
	"cellgan/internal/profile"
	"cellgan/internal/telemetry"
	"cellgan/internal/tensor"
)

func main() {
	gridSide := flag.Int("grid", 2, "square grid side (2-4 in the paper)")
	iterations := flag.Int("iterations", 10, "training iterations (paper: 200)")
	batch := flag.Int("batch", 100, "mini-batch size")
	batches := flag.Int("batches", 10, "mini-batches per iteration (0 = full epoch, as the paper)")
	datasetSize := flag.Int("dataset", 5000, "training samples (0 = full 60k split)")
	hidden := flag.Int("hidden", 64, "hidden-layer width (paper: 256)")
	latent := flag.Int("latent", 32, "latent dimension (paper: 64)")
	seed := flag.Uint64("seed", 1, "random seed")
	mode := flag.String("mode", "par", "execution mode: seq, par, async or job")
	samples := flag.Int("samples", 0, "print N generated digits as ASCII art")
	evalQuality := flag.Bool("eval", true, "train a classifier and report inception score etc.")
	verbose := flag.Bool("v", false, "per-iteration progress")
	saveCkpt := flag.String("checkpoint", "", "write a resumable checkpoint here after training (seq/par/async modes)")
	ckptEvery := flag.Int("checkpoint-every", 0, "also write a checkpoint generation (<checkpoint>.N) every N iterations; needs -checkpoint")
	ckptKeep := flag.Int("checkpoint-keep", 0, "checkpoint generations to retain (0 = default)")
	exportMix := flag.String("export-mixture", "", "write the best cell's generator mixture here as a serving artifact (see cmd/serve)")
	resumeCkpt := flag.String("resume", "", "resume from the newest valid checkpoint at this path (generations included); -iterations sets the new target")
	idxImages := flag.String("idx-images", "", "train on a real MNIST IDX image file (plain or .gz)")
	idxLabels := flag.String("idx-labels", "", "label file paired with -idx-images")
	dieting := flag.Bool("dieting", false, "data dieting: each cell trains on a disjoint 1/N data shard")
	mustangs := flag.Bool("mustangs", false, "evolve the GAN loss function (bce/minimax/lsgan pool)")
	saveSamples := flag.String("save-samples", "", "write generated samples as PGM images into this directory")
	netType := flag.String("net", "MLP", "network topology: MLP (paper) or CNN (DCGAN-style, future-work)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address during the run")
	tracePath := flag.String("trace", "", "append one JSONL event per cell iteration to this file")
	flag.Parse()

	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = *gridSide, *gridSide
	cfg.Iterations = *iterations
	cfg.BatchSize = *batch
	cfg.BatchesPerIteration = *batches
	cfg.DatasetSize = *datasetSize
	cfg.NeuronsPerHidden = *hidden
	cfg.InputNeurons = *latent
	cfg.Seed = *seed
	cfg.DataDieting = *dieting
	cfg.NetworkType = strings.ToUpper(*netType)
	if *mustangs {
		cfg = cfg.Mustangs()
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "trainer:", err)
		os.Exit(2)
	}

	prof := profile.New()
	reg := telemetry.NewRegistry()
	telemetry.AttachProfiler(reg, "trainer", prof)
	if *debugAddr != "" {
		srv, bound, err := telemetry.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (/metrics, /debug/pprof/)\n", bound)
	}

	// First SIGINT/SIGTERM requests a stop at the next iteration boundary
	// (the run returns normally, so -checkpoint and the summary still
	// happen); a second signal exits immediately.
	var stopFlag atomic.Bool
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "trainer: interrupted, stopping at the next iteration boundary (^C again to exit now)")
		stopFlag.Store(true)
		close(interrupt)
		<-sigCh
		os.Exit(130)
	}()

	opts := core.RunOptions{Prof: prof, Telemetry: reg, Stop: stopFlag.Load}
	if *tracePath != "" {
		tr, err := telemetry.OpenTraceFile(*tracePath, cfg.Seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		defer tr.Close()
		opts.Trace = tr
	}
	if *idxImages != "" || *idxLabels != "" {
		if *idxImages == "" || *idxLabels == "" {
			fmt.Fprintln(os.Stderr, "trainer: -idx-images and -idx-labels must be given together")
			os.Exit(2)
		}
		src, err := dataset.LoadIDX(*idxImages, *idxLabels)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		fmt.Printf("training on %d real MNIST samples from %s\n", src.Len(), *idxImages)
		opts.Data = src
	}
	if *verbose {
		opts.Progress = func(rank int, s core.IterStats) {
			fmt.Printf("cell %d iter %3d: G loss %.4f, D loss %.4f, mixture fitness %.4f, lr %.2e\n",
				rank, s.Iteration, s.GenLoss, s.DiscLoss, s.MixtureFitness, s.GenLR)
		}
	}

	// Periodic checkpointing: every N iterations the run's consistent cut
	// is written as a new generation of the -checkpoint base. Sink
	// failures are warnings — a lost snapshot must not kill training.
	ckptMetrics := checkpoint.NewMetrics(reg)
	sinkCfg := cfg
	if *ckptEvery > 0 {
		if *saveCkpt == "" {
			fmt.Fprintln(os.Stderr, "trainer: -checkpoint-every needs -checkpoint")
			os.Exit(2)
		}
		saver, serr := checkpoint.NewSaver(checkpoint.OS{}, *saveCkpt, *ckptKeep, ckptMetrics)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "trainer:", serr)
			os.Exit(1)
		}
		opts.CheckpointEvery = *ckptEvery
		opts.CheckpointSink = func(iter int, states []*core.FullState) error {
			cp, err := checkpoint.New(sinkCfg, states)
			var gen int
			if err == nil {
				gen, err = saver.Save(cp)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "trainer: checkpoint at iteration %d failed: %v\n", iter, err)
				return nil
			}
			if *verbose {
				fmt.Printf("checkpoint generation %d written at iteration %d\n", gen, iter)
			}
			return nil
		}
	}

	started := time.Now()
	var res *core.Result
	var err error
	switch {
	case *resumeCkpt != "":
		var cp *checkpoint.Checkpoint
		var gen int
		cp, gen, err = checkpoint.LoadLatest(checkpoint.OS{}, *resumeCkpt)
		if err == nil {
			from := *resumeCkpt
			if gen > 0 {
				from = fmt.Sprintf("%s (generation %d)", *resumeCkpt, gen)
			}
			fmt.Printf("resuming from %s (iteration %d) to %d iterations\n",
				from, cp.Iteration(), cfg.Iterations)
			ckptMetrics.ObserveResume()
			sinkCfg = cp.Cfg
			sinkCfg.Iterations = cfg.Iterations
			res, err = checkpoint.Resume(cp, *mode, cfg.Iterations, opts)
			if err == nil {
				cfg = res.Cfg
				cfg.Iterations = res.Cells[0].Last.Iteration
			}
		}
	default:
		res, err = runMode(*mode, cfg, opts, *verbose, reg, interrupt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainer:", err)
		os.Exit(1)
	}
	if res == nil {
		return // job mode prints its own summary
	}
	if stopFlag.Load() {
		fmt.Printf("run stopped early at iteration %d/%d\n",
			res.Cells[0].Last.Iteration, cfg.Iterations)
	}

	if *saveCkpt != "" {
		cp, err := checkpoint.FromResult(res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		if err := checkpoint.SaveFile(*saveCkpt, cp); err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s (iteration %d)\n", *saveCkpt, cp.Iteration())
	}

	if *exportMix != "" {
		a, err := checkpoint.ExportMixture(res, res.BestRank)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		if err := checkpoint.SaveMixtureFile(*exportMix, a); err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		fmt.Printf("mixture artifact written to %s (%d generators; serve with: serve -model digits=%s)\n",
			*exportMix, len(a.Ranks), *exportMix)
	}

	fmt.Printf("%s training on %d×%d grid: %d iterations in %s\n",
		*mode, cfg.GridRows, cfg.GridCols, cfg.Iterations, time.Since(started).Round(time.Millisecond))
	fmt.Printf("best cell: %d (mixture fitness %.4f)\n", res.BestRank, res.Best().MixtureFitness)
	fmt.Println()
	fmt.Println(prof.Report())

	mix, err := res.MixtureFor(res.BestRank)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainer:", err)
		os.Exit(1)
	}
	rng := tensor.NewRNG(cfg.Seed + 12345)

	if *evalQuality {
		cls, err := metrics.TrainClassifier(dataset.Train(cfg.Seed), metrics.DefaultClassifierOptions(), rng.Split())
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		gen := mix.Sample(500, cfg.InputNeurons, rng.Split())
		rep, err := metrics.Evaluate(cls, gen, dataset.Test(cfg.Seed), 500)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		fmt.Printf("generator quality: inception score %.3f (max %d), Fréchet %.2f, modes %d/%d, TVD %.3f\n",
			rep.InceptionScore, dataset.NumClasses, rep.Frechet, rep.ModeCoverage, dataset.NumClasses, rep.TVD)
	}

	if *samples > 0 {
		imgs := mix.Sample(*samples, cfg.InputNeurons, rng.Split())
		for i := 0; i < imgs.Rows; i++ {
			fmt.Printf("\ngenerated sample %d:\n%s", i+1, dataset.ASCIIArt(imgs.Row(i), dataset.Side))
		}
	}

	if *saveSamples != "" {
		if err := os.MkdirAll(*saveSamples, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		imgs := mix.Sample(16, cfg.InputNeurons, rng.Split())
		for i := 0; i < imgs.Rows; i++ {
			name := filepath.Join(*saveSamples, fmt.Sprintf("generated_%02d.pgm", i))
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "trainer:", err)
				os.Exit(1)
			}
			err = dataset.WritePGM(f, imgs.Row(i), dataset.Side)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trainer:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote 16 generated samples to %s\n", *saveSamples)
	}
}

// runMode dispatches the non-resume execution paths. Job mode prints its
// own summary and returns (nil, nil).
func runMode(mode string, cfg config.Config, opts core.RunOptions, verbose bool,
	reg *telemetry.Registry, interrupt <-chan struct{}) (*core.Result, error) {
	switch mode {
	case "seq", "par", "async":
		return core.Run(mode, cfg, opts)
	case "http":
		// The pre-MPI client-server architecture, kept as a comparator.
		return clientserver.Run(cfg, opts)
	case "job":
		job, err := cluster.RunJob(cluster.MasterOptions{
			Cfg:       cfg,
			Logf:      logfIf(verbose),
			Interrupt: interrupt,
			Metrics:   cluster.NewMetrics(reg),
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("job finished: best cell %d, %d slaves, elapsed %s\n",
			job.BestCell, len(job.Reports), job.Elapsed.Round(time.Millisecond))
		for _, r := range job.Reports {
			if r.Error != "" {
				return nil, fmt.Errorf("cell %d failed: %s", r.CellRank, r.Error)
			}
			fmt.Printf("  cell %d: %d iterations, mixture fitness %.4f on %s\n",
				r.CellRank, r.Iterations, r.MixtureFitness, r.Node)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
}

func logfIf(verbose bool) func(string, ...interface{}) {
	if !verbose {
		return nil
	}
	return func(format string, args ...interface{}) {
		fmt.Printf(format+"\n", args...)
	}
}
