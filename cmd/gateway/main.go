// Command gateway fronts a fleet of serve replicas: it consistent-hash
// routes /v1/generate requests across them, ejects replicas that fail
// health probes (readmitting them when they recover), hedges tail-slow
// requests against a second replica, retries connection errors, and —
// with -watch — hot-reloads a freshly exported mixture artifact across
// the fleet without dropping traffic.
//
// Serve three replicas behind one endpoint:
//
//	trainer -iterations 20 -export-mixture best.mix
//	serve -model digits=best.mix -addr 127.0.0.1:8081 -shard 0/3 &
//	serve -model digits=best.mix -addr 127.0.0.1:8082 -shard 1/3 &
//	serve -model digits=best.mix -addr 127.0.0.1:8083 -shard 2/3 &
//	gateway -addr 127.0.0.1:8080 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	curl -s -X POST localhost:8080/v1/generate -d '{"model":"digits","n":4}'
//
// Continuous deployment — retrain and the fleet follows:
//
//	gateway -addr :8080 -replicas ... -watch best.mix -watch-model digits
//
// Multi-process load test (spawns its own replica subprocesses):
//
//	gateway -loadtest -model digits=best.mix -replica-count 3 -clients 32 -requests 2048
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/gateway"
	"cellgan/internal/report"
	"cellgan/internal/serve"
	"cellgan/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "gateway listen address")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")

		probeInterval = flag.Duration("probe-interval", time.Second, "replica health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
		strikes       = flag.Int("strikes", 3, "consecutive failures that eject a replica")
		readmit       = flag.Int("readmit", 2, "consecutive clean probes that readmit an ejected replica")

		timeout     = flag.Duration("timeout", 30*time.Second, "end-to-end client request timeout")
		maxAttempts = flag.Int("max-attempts", 3, "attempts per request (first try plus retries)")
		backoff     = flag.Duration("retry-backoff", 10*time.Millisecond, "initial retry backoff (doubles per retry)")

		hedgeQuantile = flag.Float64("hedge-quantile", 0.99, "latency quantile that arms the hedge timer")
		hedgeMin      = flag.Duration("hedge-min", time.Millisecond, "minimum hedge delay")
		hedgeMax      = flag.Duration("hedge-max", 250*time.Millisecond, "maximum hedge delay")
		hedgeBudget   = flag.Int("hedge-budget", 10, "hedges as percent of requests (0 disables hedging)")

		watch      = flag.String("watch", "", "mixture artifact file to watch and hot-reload across replicas")
		watchModel = flag.String("watch-model", "digits", "model name the watched artifact is served under")

		debugAddr = flag.String("debug-addr", "", "serve gateway /metrics and /debug/pprof on this extra address")

		loadtest     = flag.Bool("loadtest", false, "spawn replica subprocesses and load-test the gateway instead of serving")
		model        = flag.String("model", "", "loadtest/replica: model to load as name=path")
		replicaCount = flag.Int("replica-count", 3, "loadtest: replica subprocesses to spawn")
		shardFleet   = flag.Bool("shard-fleet", false, "loadtest: give replica i shard i/N of the mixture instead of a full copy")
		clients      = flag.Int("clients", 32, "loadtest: concurrent clients")
		requests     = flag.Int("requests", 2048, "loadtest: total requests")
		samplesPer   = flag.Int("n", 4, "loadtest: samples per request")

		replicaMode  = flag.Bool("replica-mode", false, "internal: run as a loadtest replica subprocess")
		replicaShard = flag.String("shard", "", "internal: replica shard spec i/n")
		replicaSeed  = flag.Uint64("seed", 1, "internal: replica latent-sampling seed")
	)
	flag.Parse()

	switch {
	case *replicaMode:
		runReplicaChild(*model, *replicaShard, *replicaSeed)
	case *loadtest:
		runLoadTest(*model, *replicaCount, *shardFleet, *clients, *requests, *samplesPer,
			gateway.Options{
				Table: gateway.TableOptions{
					ProbeInterval:    *probeInterval,
					ProbeTimeout:     *probeTimeout,
					StrikeLimit:      *strikes,
					ReadmitSuccesses: *readmit,
				},
				RequestTimeout:     *timeout,
				MaxAttempts:        *maxAttempts,
				RetryBackoff:       *backoff,
				HedgeQuantile:      *hedgeQuantile,
				HedgeMin:           *hedgeMin,
				HedgeMax:           *hedgeMax,
				HedgeBudgetPercent: *hedgeBudget,
			})
	default:
		if *replicas == "" {
			fmt.Fprintln(os.Stderr, "gateway: -replicas is required (or use -loadtest)")
			os.Exit(2)
		}
		urls := splitList(*replicas)
		runGateway(*addr, *debugAddr, *watch, *watchModel, gateway.Options{
			Replicas: urls,
			Table: gateway.TableOptions{
				ProbeInterval:    *probeInterval,
				ProbeTimeout:     *probeTimeout,
				StrikeLimit:      *strikes,
				ReadmitSuccesses: *readmit,
			},
			RequestTimeout:     *timeout,
			MaxAttempts:        *maxAttempts,
			RetryBackoff:       *backoff,
			HedgeQuantile:      *hedgeQuantile,
			HedgeMin:           *hedgeMin,
			HedgeMax:           *hedgeMax,
			HedgeBudgetPercent: *hedgeBudget,
		})
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gateway:", err)
	os.Exit(1)
}

// runGateway is the serving mode: route until SIGINT/SIGTERM, then drain.
func runGateway(addr, debugAddr, watch, watchModel string, opts gateway.Options) {
	g, err := gateway.New(opts)
	if err != nil {
		fatal(err)
	}
	g.Start()
	defer g.Stop()

	if watch != "" {
		dopts := gateway.DeployOptions{
			Path:  watch,
			Model: watchModel,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "gateway: "+format+"\n", args...)
			},
		}
		d, err := gateway.NewDeployer(dopts, g.Table(), g.Metrics())
		if err != nil {
			fatal(err)
		}
		d.Start()
		defer d.Stop()
		fmt.Printf("watching %s: new artifacts hot-reload as model %q\n", watch, watchModel)
	}

	if debugAddr != "" {
		dsrv, bound, err := telemetry.StartDebugServer(debugAddr, g.Metrics().Registry())
		if err != nil {
			fatal(err)
		}
		defer dsrv.Close()
		fmt.Printf("debug server on http://%s (/metrics, /debug/pprof/)\n", bound)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	httpServer := &http.Server{Handler: g, ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("gateway on http://%s routing %d replica(s) (POST /v1/generate, /healthz, /replicaz, /metrics)\n",
		ln.Addr(), len(opts.Replicas))

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("gateway: draining...")
		// Fail /healthz first so upstream balancers divert, then finish
		// in-flight routed requests.
		g.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpServer.Shutdown(ctx)
	}()
	if err := httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
	fmt.Println("gateway: drained, bye")
}

// runReplicaChild is the -replica-mode entry point: one serve replica for
// the multi-process load test. It binds an ephemeral port, announces it
// on stdout as "REPLICA <url>", and exits when its stdin reaches EOF —
// tying its lifetime to the parent without signals or pid files.
func runReplicaChild(modelSpec, shard string, seed uint64) {
	name, path, ok := strings.Cut(modelSpec, "=")
	if !ok || name == "" || path == "" {
		fatal(fmt.Errorf("replica-mode needs -model name=path, got %q", modelSpec))
	}
	a, err := checkpoint.LoadMixtureFile(path)
	if err != nil {
		fatal(err)
	}
	if shard != "" {
		var i, n int
		if _, err := fmt.Sscanf(shard, "%d/%d", &i, &n); err != nil {
			fatal(fmt.Errorf("bad -shard %q: %v", shard, err))
		}
		if a, err = checkpoint.ShardMixture(a, i, n); err != nil {
			fatal(err)
		}
	}
	reg := serve.NewRegistry(serve.EngineConfig{Seed: seed}, nil)
	if err := reg.Load(name, a); err != nil {
		fatal(err)
	}
	srv := serve.NewServer(reg, serve.DefaultRequestTimeout)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpServer := &http.Server{Handler: srv}
	go httpServer.Serve(ln) //nolint:errcheck // Serve returns on Close
	fmt.Printf("REPLICA http://%s\n", ln.Addr())

	// Block until the parent closes our stdin (or dies, which closes it
	// too), then shut down.
	bufio.NewReader(os.Stdin).WriteTo(new(nullWriter)) //nolint:errcheck
	httpServer.Close()
	reg.Close()
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// childReplica is one spawned replica subprocess.
type childReplica struct {
	cmd   *exec.Cmd
	stdin *os.File // write end; closing it tells the child to exit
	url   string
}

// spawnReplica starts this binary in -replica-mode and waits for its
// address announcement.
func spawnReplica(exe, modelSpec, shard string, seed uint64) (*childReplica, error) {
	args := []string{"-replica-mode", "-model", modelSpec, "-seed", fmt.Sprint(seed)}
	if shard != "" {
		args = append(args, "-shard", shard)
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdin = pr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		pr.Close()
		pw.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		return nil, err
	}
	pr.Close() // child holds its own copy now

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if url, ok := strings.CutPrefix(line, "REPLICA "); ok {
			// Keep draining the child's stdout so it never blocks on a
			// full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return &childReplica{cmd: cmd, stdin: pw, url: url}, nil
		}
		fmt.Println(line) // model-load banner etc.
	}
	pw.Close()
	cmd.Wait() //nolint:errcheck
	return nil, fmt.Errorf("replica subprocess exited before announcing its address")
}

func (c *childReplica) stop() {
	c.stdin.Close()
	c.cmd.Wait() //nolint:errcheck
}

// runLoadTest is the multi-process harness: N real replica subprocesses,
// one in-process gateway routing them, and the serve load generator
// aimed at the gateway. Results print as a table plus a `go test -bench`
// line, so the run can be piped through cmd/benchjson into
// BENCH_serve.json.
func runLoadTest(modelSpec string, replicaCount int, shardFleet bool, clients, requests, n int, opts gateway.Options) {
	if modelSpec == "" {
		fatal(fmt.Errorf("-loadtest needs -model name=path (export one with: trainer -export-mixture best.mix)"))
	}
	name, _, ok := strings.Cut(modelSpec, "=")
	if !ok {
		fatal(fmt.Errorf("bad -model %q (want name=path)", modelSpec))
	}
	if replicaCount < 1 {
		replicaCount = 1
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}

	children := make([]*childReplica, 0, replicaCount)
	defer func() {
		for _, c := range children {
			c.stop()
		}
	}()
	for i := 0; i < replicaCount; i++ {
		shard := ""
		if shardFleet {
			shard = fmt.Sprintf("%d/%d", i, replicaCount)
		}
		c, err := spawnReplica(exe, modelSpec, shard, uint64(i+1))
		if err != nil {
			fatal(err)
		}
		children = append(children, c)
		fmt.Printf("replica %d: %s%s\n", i, c.url, map[bool]string{true: " (shard " + shard + ")"}[shard != ""])
	}

	opts.Replicas = make([]string, len(children))
	for i, c := range children {
		opts.Replicas[i] = c.url
	}
	g, err := gateway.New(opts)
	if err != nil {
		fatal(err)
	}
	g.Start()
	defer g.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpServer := &http.Server{Handler: g}
	go httpServer.Serve(ln) //nolint:errcheck
	defer httpServer.Close()

	url := "http://" + ln.Addr().String()
	fmt.Printf("load-testing gateway %s over %d replicas: %d clients × %d requests × %d samples\n",
		url, replicaCount, clients, requests, n)
	res, err := serve.LoadTest(url, serve.LoadTestOptions{
		Clients:  clients,
		Requests: requests,
		N:        n,
		Model:    name,
	})
	if err != nil {
		fatal(err)
	}

	t := report.NewTable("Gateway load test", "metric", "value")
	t.AddRow("replicas", fmt.Sprint(replicaCount))
	t.AddRow("requests ok", fmt.Sprint(res.Requests))
	t.AddRow("requests shed (429)", fmt.Sprint(res.Shed))
	t.AddRow("errors", fmt.Sprint(res.Errors))
	t.AddRow("elapsed", res.Elapsed.Round(time.Millisecond).String())
	t.AddRow("throughput", fmt.Sprintf("%.1f req/s", res.RPS))
	t.AddRow("sample throughput", fmt.Sprintf("%.1f samples/s", res.SamplesPerSec))
	t.AddRow("latency p50", res.P50.String())
	t.AddRow("latency p99", res.P99.String())
	t.AddRow("latency max", res.Max.String())
	hedges, _ := metricPair(g)
	t.AddRow("hedges launched", fmt.Sprint(hedges))
	fmt.Println(t)
	fmt.Println(res.BenchLine(fmt.Sprintf("GatewayServe_replicas_%d", replicaCount)))
}

func metricPair(g *gateway.Gateway) (hedges, requests uint64) {
	return g.Metrics().Hedges(), g.Metrics().Requests()
}
