// Command cluster runs one rank of a genuinely distributed training job
// over TCP — the deployment analogue of launching the paper's
// implementation with mpirun. Every process is started with the same
// -addrs list; rank 0 becomes the master and ranks 1..N-1 become slaves
// (one per grid cell, so N = grid² + 1; with -async -join-slots R, the
// last R ranks are elastic reserves that join mid-run).
//
// Example (2×2 grid, 5 processes on one machine):
//
//	for r in 0 1 2 3 4; do
//	  cluster -rank $r -grid 2 -iterations 3 \
//	          -addrs 127.0.0.1:9500,127.0.0.1:9501,127.0.0.1:9502,127.0.0.1:9503,127.0.0.1:9504 &
//	done; wait
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/cluster"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
	"cellgan/internal/telemetry"
)

func main() {
	rank := flag.Int("rank", -1, "this process's rank (0 = master)")
	addrs := flag.String("addrs", "", "comma-separated host:port for every rank, in rank order")
	gridSide := flag.Int("grid", 2, "square grid side")
	iterations := flag.Int("iterations", 10, "training iterations")
	batch := flag.Int("batch", 100, "mini-batch size")
	batches := flag.Int("batches", 10, "mini-batches per iteration (0 = full epoch)")
	datasetSize := flag.Int("dataset", 5000, "training samples (0 = full split)")
	hidden := flag.Int("hidden", 64, "hidden width")
	latent := flag.Int("latent", 32, "latent dimension")
	seed := flag.Uint64("seed", 1, "random seed")
	timeout := flag.Duration("connect-timeout", 30*time.Second, "mesh connection timeout")
	resilient := flag.Bool("resilient", false, "route exchanges through the master so crashed slaves are evicted and their cells reassigned")
	async := flag.Bool("async", false, "asynchronous exchange: slaves push snapshots peer-to-peer under a bounded-staleness window instead of synchronous rounds")
	staleness := flag.Int("staleness", 0, "bounded-staleness window S for -async (0 = config default)")
	joinSlots := flag.Int("join-slots", 0, "extra reserve ranks beyond the grid that may join mid-run (-async only; addrs must cover them)")
	joinDelay := flag.Duration("join-delay", 2*time.Second, "how long a reserve rank idles before asking to join the running job")
	chaosSeed := flag.Uint64("chaos-seed", 0, "enable deterministic fault injection with this schedule seed (0 = off, implies -resilient unless -async)")
	chaosDrop := flag.Float64("chaos-drop", 0.1, "injected message drop probability (with -chaos-seed)")
	chaosDup := flag.Float64("chaos-dup", 0.1, "injected message duplication probability (with -chaos-seed)")
	chaosDelay := flag.Float64("chaos-delay", 0.2, "injected message delay probability (with -chaos-seed)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address during the run")
	ckptPath := flag.String("checkpoint", "", "rank 0: write a final resumable checkpoint here (periodic generations <path>.N with -checkpoint-every); other ranks ignore it")
	ckptEvery := flag.Int("checkpoint-every", 0, "rank 0: also checkpoint every N iterations from the master's gathered state (-resilient or -async)")
	ckptKeep := flag.Int("checkpoint-keep", 0, "rank 0: checkpoint generations to retain (0 = default)")
	resume := flag.Bool("resume", false, "rank 0: resume the whole job from the newest valid checkpoint at -checkpoint (fresh start if none exists)")
	supervise := flag.Bool("supervise", false, "run this rank under a supervisor that relaunches it with exponential backoff after a crash (rank 0 restarts with -resume)")
	maxRestarts := flag.Int("max-restarts", 5, "restarts allowed under -supervise before giving up")
	flag.Parse()

	list := strings.Split(*addrs, ",")
	n := len(list)
	if *addrs == "" || n < 2 {
		fatal(fmt.Errorf("need -addrs with at least 2 entries"))
	}
	if *rank < 0 || *rank >= n {
		fatal(fmt.Errorf("-rank %d out of range for %d addresses", *rank, n))
	}

	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = *gridSide, *gridSide
	cfg.Iterations = *iterations
	cfg.BatchSize = *batch
	cfg.BatchesPerIteration = *batches
	cfg.DatasetSize = *datasetSize
	cfg.NeuronsPerHidden = *hidden
	cfg.InputNeurons = *latent
	cfg.Seed = *seed
	if *staleness > 0 {
		cfg.AsyncStaleness = *staleness
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if !*async && *joinSlots > 0 {
		fatal(fmt.Errorf("-join-slots needs -async"))
	}
	want := cfg.NumTasks()
	if *async {
		want += *joinSlots
	}
	if want != n {
		fatal(fmt.Errorf("grid %d×%d needs %d processes (cells + master + reserves), got %d addresses",
			*gridSide, *gridSide, want, n))
	}

	if *chaosSeed != 0 && !*async {
		// Fault injection without recovery would just be a broken job.
		*resilient = true
	}
	if *ckptEvery > 0 {
		if *ckptPath == "" {
			fatal(fmt.Errorf("-checkpoint-every needs -checkpoint"))
		}
		if !*resilient && !*async {
			fatal(fmt.Errorf("-checkpoint-every needs -resilient or -async (the plain master holds no cell state)"))
		}
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint"))
	}

	if *supervise {
		// Supervisor mode: this process never touches the mesh — it
		// relaunches itself (minus -supervise) with exponential backoff
		// until the child exits cleanly. Rank 0's child always gets
		// -resume, so every restart continues from the newest durable
		// generation instead of starting over.
		if *rank == 0 && *ckptPath == "" {
			fatal(fmt.Errorf("-supervise on rank 0 needs -checkpoint (a restart without one would lose all progress)"))
		}
		child := superviseChildArgs(os.Args[1:], *rank == 0)
		err := cluster.Supervise(cluster.SuperviseOptions{
			MaxRestarts: *maxRestarts,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "cluster: rank %d "+format+"\n", append([]interface{}{*rank}, args...)...)
			},
		}, func(attempt int) error {
			cmd := exec.Command(os.Args[0], child...)
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			return cmd.Run()
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	// The resilient and async runtimes expect peers to misbehave, so pair
	// them with the hardened transport: connect retries, write deadlines
	// and transparent reconnection on broken pipes.
	tcpOpts := mpi.TCPOptions{}
	if *resilient || *async {
		tcpOpts = mpi.HardenedTCPOptions()
	}
	node, err := mpi.ListenTCPOpts(*rank, n, list[*rank], tcpOpts)
	if err != nil {
		fatal(err)
	}
	defer node.Close()
	fmt.Printf("rank %d listening on %s, connecting mesh...\n", *rank, node.Addr())
	if err := node.Connect(list, *timeout); err != nil {
		fatal(err)
	}
	comm, err := node.WorldComm()
	if err != nil {
		fatal(err)
	}
	var faultStats mpi.FaultStats
	if *chaosSeed != 0 {
		plan := cluster.ChaosPlan(*chaosSeed, *chaosDrop, *chaosDup, *chaosDelay)
		if *async {
			plan = cluster.AsyncChaosPlan(*chaosSeed, *chaosDrop, *chaosDup, *chaosDelay)
		}
		plan.Stats = &faultStats
		comm = mpi.FaultyComm(comm, plan)
		if *rank == 0 {
			fmt.Printf("chaos: injecting faults with seed %d (drop %.2f, dup %.2f, delay %.2f)\n",
				*chaosSeed, *chaosDrop, *chaosDup, *chaosDelay)
		}
	}
	// The stats wrap goes outside the fault layer so the counters see
	// what actually enters the wire, duplicates included.
	var commStats mpi.CommStats
	comm = mpi.InstrumentComm(comm, &commStats)

	reg := telemetry.NewRegistry()
	registerRankMetrics(reg, *rank, &commStats, &faultStats, *chaosSeed != 0)
	if *debugAddr != "" {
		srv, bound, err := telemetry.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("rank %d debug server on http://%s (/metrics, /debug/pprof/)\n", *rank, bound)
	}

	// First SIGINT/SIGTERM: the master aborts the job at the next round /
	// iteration boundary and still collects results; slaves rely on the
	// master's abort. A second signal exits immediately.
	interrupt := make(chan struct{})
	var interruptOnce sync.Once
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		if *rank == 0 {
			fmt.Fprintln(os.Stderr, "cluster: interrupted, aborting job at the next boundary (^C again to exit now)")
		} else {
			fmt.Fprintln(os.Stderr, "cluster: interrupted, waiting for the master to abort (^C again to exit now)")
		}
		interruptOnce.Do(func() { close(interrupt) })
		<-sigCh
		os.Exit(130)
	}()

	local, err := cluster.SplitLocal(comm)
	if err != nil {
		fatal(err)
	}

	if *rank == 0 {
		ckptMetrics := checkpoint.NewMetrics(reg)
		jobCfg := cfg
		mopts := cluster.MasterOptions{
			Resilient: *resilient,
			Async:     *async,
			JoinSlots: *joinSlots,
			Logf:      func(format string, args ...interface{}) { fmt.Printf(format+"\n", args...) },
			Interrupt: interrupt,
			Metrics:   cluster.NewMetrics(reg),
		}
		if *resume {
			cp, gen, lerr := checkpoint.LoadLatest(checkpoint.OS{}, *ckptPath)
			switch {
			case lerr != nil:
				// A first supervised launch has nothing on disk yet, and a
				// crash during the very first generation write can leave
				// only torn files; both start fresh, loudly.
				fmt.Fprintf(os.Stderr, "cluster: no resumable checkpoint at %s (%v); starting fresh\n", *ckptPath, lerr)
			case cp.Cfg.NumCells() != cfg.NumCells():
				fatal(fmt.Errorf("checkpoint %s is for a %d-cell grid, flags say %d cells",
					*ckptPath, cp.Cfg.NumCells(), cfg.NumCells()))
			default:
				// The stored config wins (it is what the states were
				// trained under); only the iteration target comes from the
				// flags — the same contract as trainer -resume.
				jobCfg = cp.Cfg
				jobCfg.Iterations = cfg.Iterations
				mopts.Resume = cp.States
				ckptMetrics.ObserveResume()
				fmt.Printf("resuming from %s generation %d (iteration %d) to %d iterations\n",
					*ckptPath, gen, cp.Iteration(), jobCfg.Iterations)
			}
		}
		mopts.Cfg = jobCfg
		if *ckptEvery > 0 {
			saver, serr := checkpoint.NewSaver(checkpoint.OS{}, *ckptPath, *ckptKeep, ckptMetrics)
			if serr != nil {
				fatal(serr)
			}
			mopts.CheckpointEvery = *ckptEvery
			// Errors surface through the master's log and the write-error
			// counter; a lost snapshot never kills the job.
			mopts.CheckpointSink = func(iter int, states []*core.FullState) error {
				cp, err := checkpoint.New(jobCfg, states)
				if err != nil {
					return err
				}
				_, err = saver.Save(cp)
				return err
			}
		}
		res, err := cluster.RunMaster(comm, mopts)
		if err != nil {
			fatal(err)
		}
		if *ckptPath != "" {
			states, serr := res.FullStates()
			if serr == nil {
				var cp *checkpoint.Checkpoint
				cp, serr = checkpoint.New(jobCfg, states)
				if serr == nil {
					serr = checkpoint.SaveFile(*ckptPath, cp)
				}
			}
			if serr != nil {
				fmt.Fprintf(os.Stderr, "cluster: final checkpoint failed: %v\n", serr)
			} else {
				fmt.Printf("final checkpoint written to %s\n", *ckptPath)
			}
		}
		fmt.Printf("\njob complete in %s; best cell %d (mixture fitness %.4f)\n",
			res.Elapsed.Round(time.Millisecond), res.BestCell, res.Best().MixtureFitness)
		for _, r := range res.Reports {
			status := "ok"
			if r.Error != "" {
				status = "FAILED: " + r.Error
			}
			fmt.Printf("  cell %d on %s: %d iterations, fitness %.4f [%s]\n",
				r.CellRank, r.Node, r.Iterations, r.MixtureFitness, status)
		}
		if len(res.Profile) > 0 {
			p := profile.New()
			p.Merge(res.Profile)
			fmt.Println()
			fmt.Println(p.Report())
		}
		fmt.Printf("comm: %d messages / %d bytes sent, %d messages / %d bytes received\n",
			commStats.SentMessages.Load(), commStats.SentBytes.Load(),
			commStats.RecvMessages.Load(), commStats.RecvBytes.Load())
		return
	}
	var sopts cluster.SlaveOptions
	if *async && *rank >= cfg.NumTasks() {
		// Reserve rank: idle, then ask the master for a mid-run join.
		joinCh := make(chan struct{})
		delay := *joinDelay
		go func() {
			time.Sleep(delay)
			fmt.Printf("rank %d (reserve) requesting to join the job\n", *rank)
			close(joinCh)
		}()
		sopts.JoinSignal = joinCh
	}
	if err := cluster.RunSlaveOpts(comm, local, sopts); err != nil {
		fatal(err)
	}
	fmt.Printf("rank %d (slave) finished\n", *rank)
}

// registerRankMetrics exposes the rank's communicator traffic (and, under
// chaos, the injected-fault counts) on the debug registry.
func registerRankMetrics(reg *telemetry.Registry, rank int, cs *mpi.CommStats, fs *mpi.FaultStats, chaos bool) {
	reg.GaugeFunc("mpi_rank", "This process's world rank.",
		func() float64 { return float64(rank) })
	reg.GaugeFunc("mpi_sent_messages_total", "Messages sent by this rank.",
		func() float64 { return float64(cs.SentMessages.Load()) })
	reg.GaugeFunc("mpi_sent_bytes_total", "Bytes sent by this rank.",
		func() float64 { return float64(cs.SentBytes.Load()) })
	reg.GaugeFunc("mpi_recv_messages_total", "Messages received by this rank.",
		func() float64 { return float64(cs.RecvMessages.Load()) })
	reg.GaugeFunc("mpi_recv_bytes_total", "Bytes received by this rank.",
		func() float64 { return float64(cs.RecvBytes.Load()) })
	if !chaos {
		return
	}
	reg.GaugeFunc("mpi_fault_drops_total", "Messages dropped by the fault plan.",
		func() float64 { return float64(fs.Drops.Load()) })
	reg.GaugeFunc("mpi_fault_dups_total", "Messages duplicated by the fault plan.",
		func() float64 { return float64(fs.Dups.Load()) })
	reg.GaugeFunc("mpi_fault_delays_total", "Messages delayed by the fault plan.",
		func() float64 { return float64(fs.Delays.Load()) })
	reg.GaugeFunc("mpi_fault_partition_drops_total", "Messages dropped by partition windows.",
		func() float64 { return float64(fs.PartitionDrops.Load()) })
	reg.GaugeFunc("mpi_fault_crashes_total", "Injected rank crashes.",
		func() float64 { return float64(fs.Crashes.Load()) })
}

// superviseChildArgs builds the supervised child's command line: the
// parent's flags minus the supervision ones, plus -resume on rank 0 so a
// restarted master continues from the newest durable generation.
func superviseChildArgs(args []string, master bool) []string {
	out := make([]string, 0, len(args)+1)
	skipNext := false
	for _, a := range args {
		if skipNext {
			skipNext = false
			continue
		}
		name, hasValue := strings.TrimLeft(a, "-"), strings.Contains(a, "=")
		if hasValue {
			name = name[:strings.Index(name, "=")]
		}
		switch name {
		case "supervise", "resume":
			// Boolean flags: a separate value argument is never consumed.
			continue
		case "max-restarts":
			skipNext = !hasValue
			continue
		}
		out = append(out, a)
	}
	if master {
		out = append(out, "-resume")
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}
