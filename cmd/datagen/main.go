// Command datagen inspects and exports the synthetic digits dataset that
// substitutes for MNIST in this reproduction.
//
// Examples:
//
//	datagen -show 3                 # print 3 samples as ASCII art
//	datagen -digit 7 -show 2        # two sevens
//	datagen -export out/ -n 20      # write 20 PGM images
//	datagen -stats                  # class balance and pixel statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cellgan/internal/dataset"
)

func main() {
	seed := flag.Uint64("seed", 1, "dataset seed")
	split := flag.String("split", "train", "dataset split: train or test")
	show := flag.Int("show", 0, "print N samples as ASCII art")
	digit := flag.Int("digit", -1, "restrict to one digit class (0-9)")
	export := flag.String("export", "", "directory to write PGM images into")
	exportIDX := flag.String("export-idx", "", "directory to write MNIST-format IDX files into")
	n := flag.Int("n", 10, "number of images to export")
	stats := flag.Bool("stats", false, "print dataset statistics")
	flag.Parse()

	var ds *dataset.Dataset
	switch *split {
	case "train":
		ds = dataset.Train(*seed)
	case "test":
		ds = dataset.Test(*seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown split %q\n", *split)
		os.Exit(2)
	}

	// pick returns the i-th index matching the digit filter.
	pick := func(i int) int {
		if *digit < 0 {
			return i
		}
		return *digit + i*dataset.NumClasses // label(idx) = idx mod 10
	}

	if *stats {
		counts := make([]int, dataset.NumClasses)
		sampleN := 1000
		var mean, mn, mx float64
		mn, mx = 1, -1
		buf := make([]float64, dataset.Pixels)
		for i := 0; i < sampleN; i++ {
			counts[ds.Label(i)]++
			ds.Render(i, buf)
			for _, v := range buf {
				mean += v
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
		}
		mean /= float64(sampleN * dataset.Pixels)
		fmt.Printf("split %s: %d samples, %d classes\n", *split, ds.N, dataset.NumClasses)
		fmt.Printf("class counts over first %d samples: %v\n", sampleN, counts)
		fmt.Printf("pixel stats over first %d samples: mean %.4f, min %.2f, max %.2f\n", sampleN, mean, mn, mx)
	}

	for i := 0; i < *show; i++ {
		idx := pick(i)
		if idx >= ds.N {
			break
		}
		img, label := ds.Sample(idx)
		fmt.Printf("sample %d (digit %d):\n%s\n", idx, label, dataset.ASCIIArt(img, dataset.Side))
	}

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		for i := 0; i < *n; i++ {
			idx := pick(i)
			if idx >= ds.N {
				break
			}
			img, label := ds.Sample(idx)
			name := filepath.Join(*export, fmt.Sprintf("%s_%05d_digit%d.pgm", *split, idx, label))
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			if err := dataset.WritePGM(f, img, dataset.Side); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d PGM images to %s\n", *n, *export)
	}

	if *exportIDX != "" {
		if err := os.MkdirAll(*exportIDX, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		imgPath := filepath.Join(*exportIDX, *split+"-images-idx3-ubyte")
		lblPath := filepath.Join(*exportIDX, *split+"-labels-idx1-ubyte")
		if err := dataset.SaveIDX(ds, *n, imgPath, lblPath); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d samples to %s and %s (MNIST IDX format)\n", *n, imgPath, lblPath)
	}
}
