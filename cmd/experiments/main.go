// Command experiments regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	experiments -all                # every artefact in paper order
//	experiments -table 3           # one table (1-4)
//	experiments -fig 2             # one figure (1-4)
//	experiments -measured          # reduced-scale real-engine companions
//	experiments -dcgan 2           # CNN (DCGAN) grid: train → exchange → serve
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cellgan/internal/config"
	"cellgan/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-4)")
	fig := flag.Int("fig", 0, "regenerate one figure (1-4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	measured := flag.Bool("measured", false, "also run the real engine at reduced scale (companion tables)")
	repeats := flag.Int("repeats", 0, "repeated-run methodology: N independent executions per grid (avg±std)")
	arch := flag.Bool("arch", false, "compare execution architectures (seq / MPI sync / MPI async / HTTP)")
	quality := flag.Int("quality", 0, "train for N iterations and report generator quality vs real/noise baselines")
	dcgan := flag.Int("dcgan", 0, "train a CNN (DCGAN) grid for N iterations and serve the exported mixture")
	outDir := flag.String("out", "", "also write each artefact to a file in this directory")
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 && !*measured && *repeats == 0 && !*arch && *quality == 0 && *dcgan == 0 {
		*all = true
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	artefact := 0
	emit := func(s string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(s)
		if *outDir != "" {
			artefact++
			name := filepath.Join(*outDir, fmt.Sprintf("artefact_%02d.txt", artefact))
			if err := os.WriteFile(name, []byte(s+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	if *all {
		emit(experiments.All())
	}
	switch *table {
	case 0:
	case 1:
		emit(experiments.TableI(config.Default()), nil)
	case 2:
		emit(experiments.TableII([]int{2, 3, 4}))
	case 3:
		emit(experiments.TableIII([]int{2, 3, 4}))
	case 4:
		emit(experiments.TableIV())
	default:
		fmt.Fprintf(os.Stderr, "experiments: no table %d (the paper has 1-4)\n", *table)
		os.Exit(2)
	}
	switch *fig {
	case 0:
	case 1:
		emit(experiments.Fig1(), nil)
	case 2:
		emit(experiments.Fig2(experiments.TinyJobConfig()))
	case 3:
		emit(experiments.Fig3(experiments.TinyJobConfig()))
	case 4:
		emit(experiments.Fig4())
	default:
		fmt.Fprintf(os.Stderr, "experiments: no figure %d (the paper has 1-4)\n", *fig)
		os.Exit(2)
	}
	if *measured {
		emit(experiments.MeasuredScalingTable(experiments.TinyJobConfig(), []int{2, 3}))
		emit(experiments.MeasuredProfileTable(experiments.TinyJobConfig()))
	}
	if *repeats > 0 {
		emit(experiments.RepeatedScalingTable(experiments.TinyJobConfig(), []int{2, 3}, *repeats))
	}
	if *arch {
		emit(experiments.ArchitectureTable(experiments.TinyJobConfig()))
	}
	if *quality > 0 {
		cfg := config.Default()
		cfg.GridRows, cfg.GridCols = 2, 2
		cfg.Iterations = *quality
		cfg.BatchesPerIteration = 15
		cfg.BatchSize = 50
		cfg.DatasetSize = 2000
		cfg.NeuronsPerHidden = 64
		cfg.InputNeurons = 32
		emit(experiments.QualityTable(cfg, 400))
	}
	if *dcgan > 0 {
		cfg := experiments.DCGANJobConfig()
		cfg.Iterations = *dcgan
		emit(experiments.DCGANTable(cfg, 64))
	}
}
