// Command serve exposes trained generator mixtures over HTTP: it loads
// mixture artifacts exported by trainer -export-mixture, batches
// concurrent /generate requests into shared forward passes, and reports
// request/latency/batch metrics on /metrics.
//
// Serve a model:
//
//	trainer -iterations 20 -export-mixture best.mix
//	serve -model digits=best.mix -addr 127.0.0.1:8080
//	curl -s -X POST localhost:8080/v1/generate -d '{"n":4,"encoding":"pgm"}'
//
// Load-test a configuration in-process (no network setup needed):
//
//	serve -model digits=best.mix -loadtest -clients 32 -requests 1024 -n 4
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/report"
	"cellgan/internal/serve"
	"cellgan/internal/telemetry"
)

func main() {
	models := flag.String("model", "", "models to serve as name=path[,name=path...]")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 2, "forward-pass workers per model")
	maxBatch := flag.Int("max-batch", 256, "max samples coalesced into one forward pass")
	queue := flag.Int("queue", 256, "request queue bound per model (full queue sheds with 429)")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "how long a worker waits to coalesce more requests")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request timeout")
	seed := flag.Uint64("seed", 1, "latent-sampling seed")
	f32 := flag.Bool("f32", false, "serve forward passes on the float32 kernel tier (outputs match float64 only to float32 precision)")
	shard := flag.String("shard", "", "serve only shard i/n of each mixture, e.g. 0/3 (weights renormalized)")
	loadtest := flag.Bool("loadtest", false, "run an in-process load test instead of serving")
	clients := flag.Int("clients", 32, "loadtest: concurrent clients")
	requests := flag.Int("requests", 1024, "loadtest: total requests")
	samplesPer := flag.Int("n", 4, "loadtest: samples per request")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this extra address")
	flag.Parse()

	if *models == "" {
		fmt.Fprintln(os.Stderr, "serve: -model name=path is required (export one with: trainer -export-mixture best.mix)")
		os.Exit(2)
	}
	ecfg := serve.EngineConfig{
		Workers:         *workers,
		MaxBatchSamples: *maxBatch,
		QueueSize:       *queue,
		BatchWait:       *batchWait,
		Seed:            *seed,
		Float32:         *f32,
	}
	shardIdx, shardOf, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}

	reg := serve.NewRegistry(ecfg, nil)
	for _, spec := range strings.Split(*models, ",") {
		name, path, ok := strings.Cut(strings.TrimSpace(spec), "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(os.Stderr, "serve: bad -model entry %q (want name=path)\n", spec)
			os.Exit(2)
		}
		a, err := checkpoint.LoadMixtureFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		total := len(a.Ranks)
		if shardOf > 1 {
			if a, err = checkpoint.ShardMixture(a, shardIdx, shardOf); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
		}
		if err := reg.Load(name, a); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		e, _ := reg.Engine(name)
		m := e.Model()
		if shardOf > 1 {
			fmt.Printf("loaded %s from %s: shard %d/%d holds %d of %d members, latent %d → output %d\n",
				name, path, shardIdx, shardOf, len(m.Artifact.Ranks), total, m.LatentDim, m.OutputDim)
		} else {
			fmt.Printf("loaded %s from %s: %d-member mixture, latent %d → output %d\n",
				name, path, len(m.Artifact.Ranks), m.LatentDim, m.OutputDim)
		}
	}

	if *debugAddr != "" {
		// The debug server shares the serving metrics registry, so the
		// same series appear on both /metrics endpoints, plus pprof.
		dsrv, bound, err := telemetry.StartDebugServer(*debugAddr, reg.Metrics().Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		defer dsrv.Close()
		fmt.Printf("debug server on http://%s (/metrics, /debug/pprof/)\n", bound)
	}

	srv := serve.NewServer(reg, *timeout)
	if *loadtest {
		runLoadTest(reg, srv, *clients, *requests, *samplesPer)
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	httpServer := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("serving %d model(s) on http://%s (POST /v1/generate, /healthz, /modelz, /metrics)\n",
		reg.Len(), ln.Addr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("serve: draining...")
		// Fail health checks first so balancers divert traffic, then stop
		// accepting connections, finish in-flight requests, and drain the
		// engine queues.
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpServer.Shutdown(ctx)
		reg.Close()
	}()
	if err := httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("serve: drained, bye")
}

// parseShard parses an "i/n" shard spec; "" means no sharding (0, 1).
func parseShard(s string) (idx, of int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil || n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n with 0 <= i < n)", s)
	}
	return i, n, nil
}

// runLoadTest drives the server over loopback and prints a latency and
// throughput report — the serving counterpart of the training benchmarks.
func runLoadTest(reg *serve.Registry, srv *serve.Server, clients, requests, n int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	httpServer := &http.Server{Handler: srv}
	go httpServer.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer func() {
		httpServer.Close()
		reg.Close()
	}()

	url := "http://" + ln.Addr().String()
	fmt.Printf("load-testing %s: %d clients × %d total requests × %d samples\n",
		url, clients, requests, n)
	res, err := serve.LoadTest(url, serve.LoadTestOptions{
		Clients:  clients,
		Requests: requests,
		N:        n,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	t := report.NewTable("Serving load test", "metric", "value")
	t.AddRow("requests ok", fmt.Sprint(res.Requests))
	t.AddRow("requests shed (429)", fmt.Sprint(res.Shed))
	t.AddRow("errors", fmt.Sprint(res.Errors))
	t.AddRow("elapsed", res.Elapsed.Round(time.Millisecond).String())
	t.AddRow("throughput", fmt.Sprintf("%.1f req/s", res.RPS))
	t.AddRow("sample throughput", fmt.Sprintf("%.1f samples/s", res.SamplesPerSec))
	t.AddRow("latency p50", res.P50.String())
	t.AddRow("latency p90", res.P90.String())
	t.AddRow("latency p99", res.P99.String())
	t.AddRow("latency max", res.Max.String())
	t.AddRow("max batch (requests)", fmt.Sprint(reg.Metrics().MaxBatch()))
	fmt.Println(t)
}
