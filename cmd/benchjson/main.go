// Command benchjson converts `go test -bench` text output on stdin into a
// JSON report on stdout, so CI and the experiment scripts can archive
// benchmark runs as machine-readable artifacts (e.g. BENCH_compute.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/tensor/ | go run ./cmd/benchjson
//
// Each benchmark line becomes one record with the iteration count and
// every value/unit pair (ns/op, B/op, allocs/op, MB/s, custom metrics).
// Non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string `json:"name"`
	// Iterations is the b.N the measurement averaged over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op" → 9530000.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Results []Result `json:"results"`
}

// parseLine parses a `BenchmarkName-8   123   456 ns/op   789 B/op` line;
// ok is false for anything that is not a benchmark result.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
