module cellgan

go 1.22
