# make check mirrors .github/workflows/ci.yml for local runs.
GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke bench-json

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (serving engine, message passing,
# client-server exchange, checkpoint train-in-test helpers).
race:
	$(GO) test -race ./internal/serve/ ./internal/mpi/ ./internal/clientserver/ ./internal/checkpoint/

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic, without the cost of a measured run.
bench-smoke:
	$(GO) test -run=NoTests -bench=. -benchtime=1x ./...

# Measured compute benchmarks archived as machine-readable JSON.
bench-json:
	$(GO) test -run=NoTests -bench=. -benchmem ./internal/tensor/ ./internal/nn/ \
		| $(GO) run ./cmd/benchjson > BENCH_compute.json
	@echo wrote BENCH_compute.json
