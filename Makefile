# make check mirrors .github/workflows/ci.yml for local runs.
GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke bench-json bench-serve staticcheck recovery-smoke

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (serving engine, gateway routing,
# message passing, client-server exchange, checkpoint train-in-test
# helpers, cluster runtime incl. the async chaos suite, telemetry
# registry) plus the in-process async/staleness training tests.
race:
	$(GO) test -race -timeout 25m ./internal/serve/ ./internal/gateway/ ./internal/mpi/ ./internal/clientserver/ ./internal/checkpoint/ ./internal/cluster/ ./internal/telemetry/ ./internal/nn/ ./internal/tensor/
	$(GO) test -race -timeout 25m -run 'Async|Staleness' ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark plus the allocation tripwires
# (-run='Allocs' picks up the AllocsPerRun tests guarding the training
# iteration and telemetry observation hot paths).
bench-smoke:
	$(GO) test -run='Allocs' -bench=. -benchtime=1x ./...

# Best-effort static analysis: runs staticcheck when it is installed
# (CI pins its own copy via dominikh/staticcheck-action).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

# Crash-recovery e2e: SIGKILL a supervised TCP cluster job mid-run and
# require the resumed job's final checkpoint to be byte-identical to an
# uninterrupted run's.
recovery-smoke:
	bash scripts/recovery_smoke.sh

# Measured compute benchmarks archived as machine-readable JSON.
bench-json:
	$(GO) test -run=NoTests -bench=. -benchmem ./internal/tensor/ ./internal/nn/ \
		| $(GO) run ./cmd/benchjson > BENCH_compute.json
	@echo wrote BENCH_compute.json

# Multi-process serving benchmark: train a small artifact, spawn a
# 3-replica fleet behind the gateway, and archive aggregate QPS and
# latency percentiles as machine-readable JSON.
BENCH_MIX ?= /tmp/cellgan-bench.mix
bench-serve:
	$(GO) run ./cmd/trainer -iterations 4 -dataset 1000 -batches 4 -eval=false \
		-export-mixture $(BENCH_MIX)
	$(GO) run ./cmd/gateway -loadtest -model digits=$(BENCH_MIX) \
		-replica-count 3 -clients 32 -requests 2048 -n 4 \
		| $(GO) run ./cmd/benchjson > BENCH_serve.json
	@echo wrote BENCH_serve.json
