// Quickstart: train a 2×2 grid of GANs with cellular coevolution and
// sample the resulting generator mixture.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/dataset"
	"cellgan/internal/tensor"
)

func main() {
	// Start from the paper's Table I settings and shrink them so the
	// example finishes in seconds on a laptop.
	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.Iterations = 5
	cfg.BatchesPerIteration = 8
	cfg.DatasetSize = 2000
	cfg.NeuronsPerHidden = 64
	cfg.InputNeurons = 32

	started := time.Now()
	res, err := core.RunParallel(cfg, core.RunOptions{
		Progress: func(rank int, s core.IterStats) {
			if rank == 0 {
				fmt.Printf("iteration %d: generator loss %.4f, discriminator loss %.4f\n",
					s.Iteration, s.GenLoss, s.DiscLoss)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained %d cells in %s; best cell %d (mixture fitness %.4f)\n",
		len(res.Cells), time.Since(started).Round(time.Millisecond),
		res.BestRank, res.Best().MixtureFitness)

	// The returned generative model is the best neighbourhood's weighted
	// generator mixture (§II-B).
	mix, err := res.MixtureFor(res.BestRank)
	if err != nil {
		log.Fatal(err)
	}
	imgs := mix.Sample(2, cfg.InputNeurons, tensor.NewRNG(42))
	for i := 0; i < imgs.Rows; i++ {
		fmt.Printf("\ngenerated digit %d:\n%s", i+1, dataset.ASCIIArt(imgs.Row(i), dataset.Side))
	}
}
