// Checkpointing: the paper's jobs run under a 96-hour wall-clock limit on
// a shared, best-effort queue (Table I / §IV-B), so long trainings must
// survive preemption. This example trains half the iterations, writes a
// checkpoint, "crashes", reloads the file and finishes — then proves the
// result is bit-identical to a run that was never interrupted.
//
// Run with: go run ./examples/checkpointing
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cellgan/internal/checkpoint"
	"cellgan/internal/config"
	"cellgan/internal/core"
)

func main() {
	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.Iterations = 6
	cfg.BatchesPerIteration = 2
	cfg.DatasetSize = 500
	cfg.NeuronsPerHidden = 32
	cfg.InputNeurons = 16

	// Reference: the uninterrupted run.
	fmt.Println("reference run: 6 iterations straight through...")
	full, err := core.RunSequential(cfg, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Interrupted run: stop at iteration 3 and persist everything —
	// parameters, Adam moments, RNG streams, loader positions, mixture
	// weights.
	half := cfg
	half.Iterations = 3
	fmt.Println("interrupted run: 3 iterations, then checkpoint to disk...")
	first, err := core.RunSequential(half, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cp, err := checkpoint.FromResult(first)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "cellgan-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")
	if err := checkpoint.SaveFile(path, cp); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("  wrote %s (%.1f KiB) at iteration %d\n", path, float64(info.Size())/1024, cp.Iteration())

	// ...process dies, new process resumes from the file.
	loaded, err := checkpoint.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resumed run: 3 more iterations from the checkpoint...")
	resumed, err := checkpoint.Resume(loaded, "seq", cfg.Iterations, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Verify bit-exact equality with the uninterrupted reference.
	for r := range full.Cells {
		if !bytes.Equal(full.Cells[r].State.GenParams, resumed.Cells[r].State.GenParams) ||
			!bytes.Equal(full.Cells[r].State.DiscParams, resumed.Cells[r].State.DiscParams) {
			log.Fatalf("cell %d diverged after resume!", r)
		}
	}
	fmt.Println()
	fmt.Printf("all %d cells bit-identical to the uninterrupted run ✓\n", len(full.Cells))
	fmt.Printf("best cell %d, mixture fitness %.4f (reference %.4f)\n",
		resumed.BestRank, resumed.Best().MixtureFitness, full.Best().MixtureFitness)
}
