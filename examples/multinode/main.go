// Multi-node serving: one gateway fronting a sharded replica fleet.
// This example closes the distributed half of the serving story: train a
// small grid, export the best cell's mixture, split it into three shards
// (replica i holds members i, i+3, ... with weights renormalized), stand
// three replica servers up on loopback, and route traffic through the
// gateway — then kill a replica mid-traffic to show health-driven
// ejection and retry keeping clients whole, bring it back to show
// readmission, and finally hot-reload the full mixture across the fleet
// with the deployer.
//
// Run with: go run ./examples/multinode
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/gateway"
	"cellgan/internal/serve"
)

// replica is one in-process serve node: registry + HTTP server, with
// enough handle kept around to kill and restart it on the same address.
type replica struct {
	reg  *serve.Registry
	srv  *http.Server
	addr string
}

func startReplica(reg *serve.Registry, addr string) (*replica, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.NewServer(reg, 10*time.Second)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return &replica{reg: reg, srv: srv, addr: ln.Addr().String()}, nil
}

func main() {
	const shards = 3

	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.Iterations = 6
	cfg.BatchesPerIteration = 4
	cfg.DatasetSize = 1000
	cfg.NeuronsPerHidden = 64
	cfg.InputNeurons = 32

	fmt.Println("training a 2×2 grid...")
	res, err := core.RunSequential(cfg, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	artifact, err := checkpoint.ExportMixture(res, res.BestRank)
	if err != nil {
		log.Fatal(err)
	}
	fullHash, _ := checkpoint.HashMixture(artifact)
	fmt.Printf("exported best cell %d: %d-generator mixture, hash %.12s\n",
		res.BestRank, len(artifact.Ranks), fullHash)

	// Shard the mixture across the fleet: replica i serves members
	// i, i+3, ... with weights renormalized — the serving analogue of
	// spreading the cellular grid across training nodes.
	replicas := make([]*replica, shards)
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		sh, err := checkpoint.ShardMixture(artifact, i, shards)
		if err != nil {
			log.Fatal(err)
		}
		reg := serve.NewRegistry(serve.EngineConfig{Workers: 2, Seed: uint64(i + 1)}, nil)
		if err := reg.Load("digits", sh); err != nil {
			log.Fatal(err)
		}
		if replicas[i], err = startReplica(reg, "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		urls[i] = "http://" + replicas[i].addr
		fmt.Printf("replica %d on %s: %d of %d members\n", i, urls[i], len(sh.Ranks), len(artifact.Ranks))
	}

	// The gateway: consistent-hash routing, strike-based ejection after 2
	// failures, readmission after 2 clean probes, hedging on.
	g, err := gateway.New(gateway.Options{
		Replicas:           urls,
		Table:              gateway.TableOptions{StrikeLimit: 2, ReadmitSuccesses: 2},
		RetryBackoff:       2 * time.Millisecond,
		HedgeBudgetPercent: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	g.Start()
	defer g.Stop()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	gsrv := &http.Server{Handler: g}
	go gsrv.Serve(gln) //nolint:errcheck
	defer gsrv.Close()
	url := "http://" + gln.Addr().String()
	fmt.Println("gateway on", url)

	post := func() (*serve.GenerateResponse, error) {
		body, _ := json.Marshal(serve.GenerateRequest{Model: "digits", N: 1})
		resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		var out serve.GenerateResponse
		return &out, json.NewDecoder(resp.Body).Decode(&out)
	}
	burst := func(n int) int {
		ok := 0
		for i := 0; i < n; i++ {
			if _, err := post(); err == nil {
				ok++
			}
		}
		return ok
	}

	fmt.Printf("\nburst of 30 requests: %d/30 ok\n", burst(30))

	// Kill replica 1. The gateway retries its keys onto neighbours, so
	// clients stay whole; health probes then eject it from routing.
	fmt.Println("\nkilling replica 1...")
	replicas[1].srv.Close()
	fmt.Printf("burst with a dead replica: %d/30 ok (retries route around it)\n", burst(30))
	g.Table().ProbeAll()
	g.Table().ProbeAll()
	for _, info := range g.Table().Info() {
		fmt.Printf("replica %d: %s\n", info.Index, info.State)
	}

	// Bring it back on the same address: two clean probes readmit it.
	fmt.Println("\nrestarting replica 1...")
	if replicas[1], err = startReplica(replicas[1].reg, replicas[1].addr); err != nil {
		log.Fatal(err)
	}
	g.Table().ProbeAll()
	g.Table().ProbeAll()
	for _, info := range g.Table().Info() {
		fmt.Printf("replica %d: %s\n", info.Index, info.State)
	}

	// Continuous deployment: drop the full mixture where the deployer
	// watches and it rolls replica by replica, flipping traffic only once
	// each replica reports the new content hash healthy.
	dir, err := os.MkdirTemp("", "cellgan-multinode")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "full.mix")
	if err := checkpoint.SaveMixtureFile(path, artifact); err != nil {
		log.Fatal(err)
	}
	d, err := gateway.NewDeployer(gateway.DeployOptions{Path: path, Model: "digits"}, g.Table(), g.Metrics())
	if err != nil {
		log.Fatal(err)
	}
	updated, err := d.CheckOnce(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	out, err := post()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhot-reloaded full mixture onto %d replicas; serving hash %.12s (want %.12s)\n",
		updated, out.Hash, fullHash)

	for _, r := range replicas {
		r.srv.Close()
		r.reg.Close()
	}
	fmt.Println("fleet stopped")
}
