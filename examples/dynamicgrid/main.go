// Dynamicgrid: the paper's new grid class supports "modifying the grid and
// also the structure of neighboring processes dynamically ... exploring
// different patterns for training and learning" (§III-C). This example
// trains a 3×3 grid and switches every cell's neighbourhood pattern from
// the five-cell Moore neighbourhood to the full nine-cell Moore
// neighbourhood halfway through, showing how the sub-populations and
// mixtures grow in response.
//
// Run with: go run ./examples/dynamicgrid
package main

import (
	"fmt"
	"log"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/grid"
	"cellgan/internal/profile"
)

func main() {
	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 3, 3
	cfg.Iterations = 4 // driven manually below
	cfg.BatchesPerIteration = 2
	cfg.DatasetSize = 500
	cfg.NeuronsPerHidden = 32
	cfg.InputNeurons = 16

	g, err := grid.New(cfg.GridRows, cfg.GridCols)
	if err != nil {
		log.Fatal(err)
	}
	prof := profile.New()
	cells := make([]*core.Cell, g.Size())
	for r := range cells {
		cells[r], err = core.NewCell(cfg, r, g, prof)
		if err != nil {
			log.Fatal(err)
		}
	}
	exchange := func() {
		states := map[int]*core.CellState{}
		for _, c := range cells {
			s, err := c.State()
			if err != nil {
				log.Fatal(err)
			}
			states[c.Rank] = s
		}
		for _, c := range cells {
			if err := c.SetNeighbors(states); err != nil {
				log.Fatal(err)
			}
		}
	}

	exchange()
	fmt.Printf("phase 1 — Moore-5 neighbourhoods: cell 4 trains against cells %v\n",
		cells[4].Neighborhood())
	for iter := 0; iter < 2; iter++ {
		for _, c := range cells {
			if _, err := c.Iterate(); err != nil {
				log.Fatal(err)
			}
		}
		exchange()
	}
	fmt.Printf("  mixture of cell 4 spans %d generators: %v\n",
		len(cells[4].Mixture().Ranks), cells[4].Mixture().Ranks)

	// Reconfigure the topology while training state is live: every cell
	// now sees the full 3×3 Moore neighbourhood.
	if err := g.SetPattern(grid.Moore9); err != nil {
		log.Fatal(err)
	}
	exchange() // re-gather under the new pattern

	fmt.Printf("\nphase 2 — switched to Moore-9: cell 4 now trains against cells %v\n",
		cells[4].Neighborhood())
	for iter := 0; iter < 2; iter++ {
		for _, c := range cells {
			if _, err := c.Iterate(); err != nil {
				log.Fatal(err)
			}
		}
		exchange()
	}
	fmt.Printf("  mixture of cell 4 spans %d generators: %v\n",
		len(cells[4].Mixture().Ranks), cells[4].Mixture().Ranks)

	fmt.Printf("\non a 3×3 torus Moore-9 covers the whole grid, so every cell's\n")
	fmt.Printf("sub-population grew from 5 to %d members without restarting training.\n",
		len(cells[4].Mixture().Ranks))
}
