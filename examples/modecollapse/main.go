// Modecollapse: the motivation of the paper's introduction — distributed
// coevolutionary training mitigates GAN pathologies such as mode collapse.
// This example trains (a) a single conventional GAN (a 1×1 grid, no
// neighbours, no mixture diversity) and (b) a 2×2 cellular coevolutionary
// grid, with the same total budget of gradient steps, and compares mode
// coverage and inception score over the ten digit classes.
//
// Run with: go run ./examples/modecollapse
package main

import (
	"fmt"
	"log"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/dataset"
	"cellgan/internal/metrics"
	"cellgan/internal/tensor"
)

func main() {
	base := config.Default()
	base.BatchesPerIteration = 10
	base.DatasetSize = 3000
	base.NeuronsPerHidden = 64
	base.InputNeurons = 32
	base.BatchSize = 50

	// Single GAN: one cell, so the sub-population is just itself; same
	// number of total gradient steps as the 2×2 run below (4 cells × 6
	// iterations = 24 cell-iterations).
	single := base.WithGrid(1, 1)
	single.Iterations = 24

	coev := base.WithGrid(2, 2)
	coev.Iterations = 6

	rng := tensor.NewRNG(7)
	cls, err := metrics.TrainClassifier(dataset.Train(base.Seed), metrics.DefaultClassifierOptions(), rng.Split())
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func(name string, cfg config.Config) metrics.Report {
		res, err := core.RunParallel(cfg, core.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		mix, err := res.MixtureFor(res.BestRank)
		if err != nil {
			log.Fatal(err)
		}
		gen := mix.Sample(400, cfg.InputNeurons, rng.Split())
		rep, err := metrics.Evaluate(cls, gen, dataset.Test(cfg.Seed), 400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s inception score %.3f | modes %2d/%d | TVD from uniform %.3f | Fréchet %.1f\n",
			name, rep.InceptionScore, rep.ModeCoverage, dataset.NumClasses, rep.TVD, rep.Frechet)
		return rep
	}

	fmt.Println("same budget of 24 cell-iterations, evaluated with a digit classifier:")
	s := evaluate("single GAN (1×1):", single)
	c := evaluate("coevolution (2×2):", coev)

	fmt.Println()
	switch {
	case c.ModeCoverage > s.ModeCoverage:
		fmt.Println("the coevolutionary mixture covers more digit modes — the diversity")
		fmt.Println("of the neighbourhood mixture counteracts generator collapse.")
	case c.InceptionScore > s.InceptionScore:
		fmt.Println("equal coverage, but the coevolutionary mixture scores higher —")
		fmt.Println("its samples are more class-balanced and more confidently classified.")
	default:
		fmt.Println("at this tiny training budget the runs are comparable; increase")
		fmt.Println("-iterations to see the populations separate (the paper trains 200).")
	}
}
