// Distributed: the full master/slave protocol of the paper's §III over
// real TCP sockets on loopback — five endpoints (one master, four slaves
// for a 2×2 grid) building an MPI-style mesh, with heartbeats, placement,
// per-iteration neighbourhood allgather and final result reduction.
//
// Each rank here runs as a goroutine for convenience; cmd/cluster runs the
// identical code as separate OS processes across machines.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"cellgan/internal/cluster"
	"cellgan/internal/config"
	"cellgan/internal/mpi"
)

func main() {
	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.Iterations = 3
	cfg.BatchesPerIteration = 4
	cfg.DatasetSize = 1000
	cfg.NeuronsPerHidden = 32
	cfg.InputNeurons = 16

	n := cfg.NumTasks()
	nodes := make([]*mpi.TCPNode, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		node, err := mpi.ListenTCP(r, n, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		nodes[r] = node
		addrs[r] = node.Addr()
		defer node.Close()
	}
	fmt.Printf("mesh of %d TCP endpoints: %v\n\n", n, addrs)

	var res *cluster.JobResult
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				if err := nodes[rank].Connect(addrs, 10*time.Second); err != nil {
					return err
				}
				comm, err := nodes[rank].WorldComm()
				if err != nil {
					return err
				}
				local, err := cluster.SplitLocal(comm)
				if err != nil {
					return err
				}
				if rank == 0 {
					r, err := cluster.RunMaster(comm, cluster.MasterOptions{
						Cfg: cfg,
						Logf: func(format string, args ...interface{}) {
							fmt.Printf("  "+format+"\n", args...)
						},
					})
					res = r
					return err
				}
				return cluster.RunSlave(comm, local)
			}()
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\njob done in %s — best cell %d\n", res.Elapsed.Round(time.Millisecond), res.BestCell)
	for _, rep := range res.Reports {
		fmt.Printf("  cell %d (on %s): %d iterations, mixture fitness %.4f, mixture over cells %v\n",
			rep.CellRank, rep.Node, rep.Iterations, rep.MixtureFitness, rep.MixtureRanks)
	}
	fmt.Println("\nmerged routine profile across slaves:")
	for name, s := range res.Profile {
		fmt.Printf("  %-16s %6d calls, %s total\n", name, s.Count, s.Total.Round(time.Microsecond))
	}
}
