// Mustangs: the framework the paper parallelises is "Mustangs/Lipizzaner"
// — Lipizzaner's spatial coevolution plus Mustangs' evolvable loss
// function. This example enables the full loss pool (non-saturating BCE,
// minimax, least-squares) and traces how the loss genes drift and spread
// through the grid via mutation and selection.
//
// Run with: go run ./examples/mustangs
package main

import (
	"fmt"
	"log"

	"cellgan/internal/config"
	"cellgan/internal/core"
)

func main() {
	cfg := config.Default().Mustangs() // loss_set = bce,minimax,lsgan
	cfg.GridRows, cfg.GridCols = 3, 3
	cfg.Iterations = 6
	cfg.BatchesPerIteration = 2
	cfg.DatasetSize = 500
	cfg.NeuronsPerHidden = 32
	cfg.InputNeurons = 16
	cfg.LossMutationProbability = 0.5

	g, err := core.BuildGridFor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cells := make([]*core.Cell, g.Size())
	for r := range cells {
		cells[r], err = core.NewCell(cfg, r, g, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	exchange := func() {
		states := map[int]*core.CellState{}
		for _, c := range cells {
			s, err := c.State()
			if err != nil {
				log.Fatal(err)
			}
			states[c.Rank] = s
		}
		for _, c := range cells {
			if err := c.SetNeighbors(states); err != nil {
				log.Fatal(err)
			}
		}
	}
	printLosses := func(iter int) {
		fmt.Printf("iteration %d — generator loss genes on the grid:\n", iter)
		for row := 0; row < cfg.GridRows; row++ {
			for col := 0; col < cfg.GridCols; col++ {
				s, err := cells[g.Rank(row, col)].State()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-8s", s.GenLoss)
			}
			fmt.Println()
		}
	}

	exchange()
	printLosses(0)
	for iter := 1; iter <= cfg.Iterations; iter++ {
		for _, c := range cells {
			if _, err := c.Iterate(); err != nil {
				log.Fatal(err)
			}
		}
		exchange()
		if iter%2 == 0 {
			printLosses(iter)
		}
	}

	fmt.Println("\nloss genes mutate per iteration (p=0.5) and also spread when a")
	fmt.Println("cell adopts a fitter neighbour's center — selection acts on the")
	fmt.Println("objective function itself, exactly as in the Mustangs framework.")
}
