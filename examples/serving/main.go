// Serving: the training stack's end-product is a weighted generator
// mixture — a deployable generative model. This example closes the loop
// the production system needs: train a small grid, export the best cell's
// mixture as a generator-only artifact, load it into the serving registry,
// stand the HTTP API up on loopback, and generate digits through it —
// including a burst of concurrent requests to show the engine coalescing
// them into shared forward passes.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/dataset"
	"cellgan/internal/serve"
)

func main() {
	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.Iterations = 6
	cfg.BatchesPerIteration = 4
	cfg.DatasetSize = 1000
	cfg.NeuronsPerHidden = 64
	cfg.InputNeurons = 32

	fmt.Println("training a 2×2 grid...")
	res, err := core.RunSequential(cfg, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Export the best cell's mixture: generator parameters and weights
	// only — the deployable artifact, a fraction of a full checkpoint.
	dir, err := os.MkdirTemp("", "cellgan-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "best.mix")
	artifact, err := checkpoint.ExportMixture(res, res.BestRank)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkpoint.SaveMixtureFile(path, artifact); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported best cell %d as %s (%d-generator mixture)\n",
		res.BestRank, path, len(artifact.Ranks))

	// Load it into a registry and serve it over loopback, exactly what
	// `serve -model digits=best.mix` does.
	reg := serve.NewRegistry(serve.EngineConfig{Workers: 2}, nil)
	if err := reg.LoadFile("digits", path); err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(reg, 10*time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: srv}
	go httpServer.Serve(ln) //nolint:errcheck // Serve returns on Close
	url := "http://" + ln.Addr().String()
	fmt.Println("serving on", url)

	// One request, decoded and drawn.
	body, _ := json.Marshal(serve.GenerateRequest{Model: "digits", N: 2})
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var out serve.GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\ngenerated %d samples of dim %d from model %q v%d:\n",
		out.N, out.Dim, out.Model, out.Version)
	fmt.Println(dataset.ASCIIArt(out.Samples[0], dataset.Side))

	// A concurrent burst: the engine coalesces these into shared forward
	// passes (watch serve_batch_requests_max on /metrics).
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
			if err == nil {
				r.Body.Close()
			}
		}()
	}
	wg.Wait()
	metricsResp, err := http.Get(url + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metricsResp.Body.Close()
	fmt.Printf("burst of 24 concurrent requests served; max coalesced batch: %d requests\n",
		reg.Metrics().MaxBatch())

	// Graceful drain: health flips to 503, in-flight work finishes.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpServer.Shutdown(ctx) //nolint:errcheck
	reg.Close()
	fmt.Println("drained and stopped")
}
