package cellgan_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/clientserver"
	"cellgan/internal/cluster"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/dataset"
	"cellgan/internal/experiments"
	"cellgan/internal/grid"
	"cellgan/internal/mpi"
	"cellgan/internal/nn"
	"cellgan/internal/perfmodel"
	"cellgan/internal/profile"
	"cellgan/internal/tensor"
)

// benchConfig is the reduced-scale configuration used by the real-engine
// benchmarks: the full algorithm (all four routines + exchange) at a size
// that completes in milliseconds per iteration.
func benchConfig(side int) config.Config {
	cfg := config.Default().Scaled(1, 16, 200)
	return cfg.WithGrid(side, side)
}

// ---------------------------------------------------------------------------
// Table I — parameter settings: configuration construction, validation and
// the broadcastable JSON round trip performed by the master at start-up.

func BenchmarkTableI_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		data, err := cfg.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := config.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table II — resource allocation on the simulated Cluster-UY inventory for
// the paper's three grid sizes (5, 10 and 17 tasks).

func BenchmarkTableII_Allocation(b *testing.B) {
	inv := cluster.DefaultInventory()
	for _, side := range []int{2, 3, 4} {
		cfg := config.Default().WithGrid(side, side)
		b.Run(cfg.TableI()[9][1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ps, err := cluster.Allocate(inv, cfg.NumTasks(), cfg.MemoryPerTaskMB)
				if err != nil {
					b.Fatal(err)
				}
				if len(ps) != cfg.NumTasks() {
					b.Fatal("wrong placement count")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table III — execution times and speedup. The real engine runs at reduced
// scale in both modes (per grid size); custom metrics report the modelled
// paper-scale speedup next to the measured wall-clock of each mode.

func BenchmarkTableIII_Sequential(b *testing.B) {
	for _, side := range []int{2, 3, 4} {
		side := side
		b.Run(gridName(side), func(b *testing.B) {
			cfg := benchConfig(side)
			for i := 0; i < b.N; i++ {
				if _, err := core.RunSequential(cfg, core.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			reportModelSpeedup(b, side)
		})
	}
}

func BenchmarkTableIII_Parallel(b *testing.B) {
	for _, side := range []int{2, 3, 4} {
		side := side
		b.Run(gridName(side), func(b *testing.B) {
			cfg := benchConfig(side)
			for i := 0; i < b.N; i++ {
				if _, err := core.RunParallel(cfg, core.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			reportModelSpeedup(b, side)
		})
	}
}

func gridName(side int) string {
	return map[int]string{2: "2x2", 3: "3x3", 4: "4x4"}[side]
}

func reportModelSpeedup(b *testing.B, side int) {
	b.Helper()
	s, err := perfmodel.CalibratedScaling().Speedup(side * side)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s, "model-speedup")
}

// ---------------------------------------------------------------------------
// Table IV — routine profile. One full reduced-scale run per iteration,
// reporting each routine's share of the measured total as custom metrics
// (the shape comparison against the paper's 4×4 profile).

func BenchmarkTableIV_Profile(b *testing.B) {
	cfg := benchConfig(4)
	var snap map[string]profile.Stat
	for i := 0; i < b.N; i++ {
		prof := profile.New()
		if _, err := core.RunSequential(cfg, core.RunOptions{Prof: prof}); err != nil {
			b.Fatal(err)
		}
		snap = prof.Snapshot()
	}
	var total time.Duration
	for _, s := range snap {
		total += s.Total
	}
	if total > 0 {
		for _, r := range []string{profile.RoutineTrain, profile.RoutineUpdateGenomes,
			profile.RoutineMutate, profile.RoutineGather} {
			b.ReportMetric(float64(snap[r].Total)/float64(total)*100, shortRoutine(r)+"-%")
		}
	}
}

func shortRoutine(r string) string {
	if r == profile.RoutineUpdateGenomes {
		return "update"
	}
	return r
}

// ---------------------------------------------------------------------------
// Fig 1 — grid/neighbourhood rendering and the topology computations
// behind it.

func BenchmarkFig1_Neighborhoods(b *testing.B) {
	g := grid.MustNew(4, 4)
	for i := 0; i < b.N; i++ {
		for rank := 0; rank < g.Size(); rank++ {
			if len(g.Neighborhood(rank)) != 5 {
				b.Fatal("wrong neighbourhood")
			}
		}
		_ = g.Render(5)
	}
}

// ---------------------------------------------------------------------------
// Fig 2 — the slave state machine: a complete master/slave job driven
// through inactive → processing → finished under heartbeat monitoring.

func BenchmarkFig2_StateMachine(b *testing.B) {
	cfg := benchConfig(2)
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunJob(cluster.MasterOptions{Cfg: cfg, HeartbeatInterval: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Transitions) == 0 {
			b.Fatal("no transitions observed")
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 3 — the master/slave communication flow: the same job measured end
// to end including placement, config distribution, result gathering and
// reduction.

func BenchmarkFig3_MasterSlaveFlow(b *testing.B) {
	cfg := benchConfig(2)
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunJob(cluster.MasterOptions{Cfg: cfg, HeartbeatInterval: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Log) == 0 {
			b.Fatal("no flow log")
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 4 — the routine-time comparison chart from the calibrated model.

func BenchmarkFig4_RoutineChart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty chart")
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate benchmarks: the computational kernels the training loop is
// made of.

func BenchmarkMatMulGeneratorLayer(b *testing.B) {
	// The paper's widest layer: batch 100 × (256 → 784).
	rng := tensor.NewRNG(1)
	x := tensor.New(100, 256)
	tensor.GaussianFill(x, 0, 1, rng)
	w := tensor.New(256, 784)
	tensor.GaussianFill(w, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, w)
	}
	b.SetBytes(int64(8 * 100 * 256 * 784))
}

func BenchmarkGeneratorForward(b *testing.B) {
	cfg := config.Default()
	rng := tensor.NewRNG(1)
	g := core.BuildGenerator(cfg, rng)
	z := tensor.New(cfg.BatchSize, cfg.InputNeurons)
	tensor.GaussianFill(z, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Forward(z)
	}
}

func BenchmarkDiscriminatorForwardBackward(b *testing.B) {
	cfg := config.Default()
	rng := tensor.NewRNG(1)
	d := core.BuildDiscriminator(cfg, rng)
	x := tensor.New(cfg.BatchSize, cfg.OutputNeurons)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.Full(cfg.BatchSize, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ZeroGrads()
		logits := d.Forward(x)
		_, grad := nn.BCEWithLogitsLoss(logits, y)
		d.Backward(grad)
	}
}

func BenchmarkCellIterate(b *testing.B) {
	cfg := benchConfig(2)
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := core.NewCell(cfg, 0, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.Iterate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetRender(b *testing.B) {
	ds := dataset.Train(1)
	buf := make([]float64, dataset.Pixels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.Render(i%ds.N, buf)
	}
	b.SetBytes(int64(8 * dataset.Pixels))
}

func BenchmarkCellStateMarshal(b *testing.B) {
	cfg := benchConfig(2)
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := core.NewCell(cfg, 0, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	state, err := cell.State()
	if err != nil {
		b.Fatal(err)
	}
	payload := state.Marshal()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := state.Marshal()
		if _, err := core.UnmarshalCellState(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllgatherInproc measures the neighbourhood exchange collective
// on the in-process transport with a cell-state-sized payload, for the
// paper's three slave counts.
func BenchmarkAllgatherInproc(b *testing.B) {
	for _, side := range []int{2, 3, 4} {
		side := side
		b.Run(gridName(side), func(b *testing.B) {
			n := side * side
			payload := make([]byte, 64*1024)
			w := mpi.MustWorld(n)
			defer w.Close()
			comms := w.Comms()
			b.SetBytes(int64(len(payload) * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for r := 0; r < n; r++ {
					wg.Add(1)
					go func(c *mpi.Comm) {
						defer wg.Done()
						if _, err := c.Allgather(payload); err != nil {
							b.Error(err)
						}
					}(comms[r])
				}
				wg.Wait()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices called out in DESIGN.md §5.
// Each reports the final best mixture fitness as a custom metric so the
// quality impact is visible next to the cost.

func ablationRun(b *testing.B, mutate func(*config.Config)) {
	b.Helper()
	cfg := benchConfig(2)
	cfg.Iterations = 2
	mutate(&cfg)
	var fit float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunSequential(cfg, core.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		fit = res.Best().MixtureFitness
	}
	b.ReportMetric(fit, "best-fitness")
}

func BenchmarkAblationTournament(b *testing.B) {
	b.Run("k=1", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.TournamentSize = 1 }) })
	b.Run("k=2", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.TournamentSize = 2 }) })
	b.Run("k=4", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.TournamentSize = 4 }) })
}

func BenchmarkAblationMutation(b *testing.B) {
	b.Run("off", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.MutationProbability = 0 }) })
	b.Run("paper", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.MutationProbability = 0.5 }) })
	b.Run("always", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.MutationProbability = 1 }) })
}

// BenchmarkAblationExchange compares per-iteration neighbourhood exchange
// (the paper's scheme) against fully isolated cells.
func BenchmarkAblationExchange(b *testing.B) {
	cfg := benchConfig(2)
	cfg.Iterations = 2
	b.Run("exchange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunSequential(cfg, core.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("isolated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := grid.MustNew(cfg.GridRows, cfg.GridCols)
			for r := 0; r < g.Size(); r++ {
				cell, err := core.NewCell(cfg, r, g, nil)
				if err != nil {
					b.Fatal(err)
				}
				for it := 0; it < cfg.Iterations; it++ {
					if _, err := cell.Iterate(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkAblationArchitecture compares one full reduced-scale training
// run under the four exchange architectures: the sequential baseline, the
// paper's synchronous MPI-style collective, the asynchronous push/pull
// variant, and the pre-MPI HTTP client-server model it replaced.
func BenchmarkAblationArchitecture(b *testing.B) {
	cfg := benchConfig(2)
	cfg.Iterations = 2
	run := func(b *testing.B, f func() (*core.Result, error)) {
		b.Helper()
		var fit float64
		for i := 0; i < b.N; i++ {
			res, err := f()
			if err != nil {
				b.Fatal(err)
			}
			fit = res.Best().MixtureFitness
		}
		b.ReportMetric(fit, "best-fitness")
	}
	b.Run("sequential", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return core.RunSequential(cfg, core.RunOptions{}) })
	})
	b.Run("mpi-sync", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return core.RunParallel(cfg, core.RunOptions{}) })
	})
	b.Run("mpi-async", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return core.RunAsync(cfg, core.RunOptions{}) })
	})
	b.Run("http-clientserver", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return clientserver.Run(cfg, core.RunOptions{}) })
	})
}

// BenchmarkAblationMustangs compares plain Lipizzaner (BCE only) against
// the Mustangs loss-function evolution (bce/minimax/lsgan pool) and each
// fixed alternative loss.
func BenchmarkAblationMustangs(b *testing.B) {
	b.Run("lipizzaner-bce", func(b *testing.B) { ablationRun(b, func(c *config.Config) {}) })
	b.Run("fixed-lsgan", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.LossSet = "lsgan" }) })
	b.Run("fixed-minimax", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.LossSet = "minimax" }) })
	b.Run("mustangs", func(b *testing.B) { ablationRun(b, func(c *config.Config) { *c = c.Mustangs() }) })
}

// BenchmarkAblationNeighborhood compares the paper's Moore-5 pattern with
// the 9-cell Moore neighbourhood and the centerless ring.
func BenchmarkAblationNeighborhood(b *testing.B) {
	for _, nb := range []string{"moore5", "moore9", "ring4"} {
		nb := nb
		b.Run(nb, func(b *testing.B) {
			ablationRun(b, func(c *config.Config) {
				c.GridRows, c.GridCols = 3, 3
				c.Neighborhood = nb
			})
		})
	}
}

// BenchmarkAblationDataDieting measures the data-dieting variant (each
// cell on a disjoint 1/N shard) against full-data training.
func BenchmarkAblationDataDieting(b *testing.B) {
	b.Run("full-data", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.DataDieting = false }) })
	b.Run("dieting", func(b *testing.B) { ablationRun(b, func(c *config.Config) { c.DataDieting = true }) })
}

// BenchmarkCheckpointRoundTrip measures the cost of capturing, writing
// and re-reading a full training checkpoint.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	cfg := benchConfig(2)
	res, err := core.RunSequential(cfg, core.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cp, err := checkpoint.FromResult(res)
	if err != nil {
		b.Fatal(err)
	}
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := checkpoint.Write(&buf, cp); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
		if _, err := checkpoint.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(size))
}

// BenchmarkAblationTransport compares the allgather over the in-process
// transport against TCP loopback at the 2×2 slave count.
func BenchmarkAblationTransport(b *testing.B) {
	const n = 4
	payload := make([]byte, 64*1024)

	b.Run("inproc", func(b *testing.B) {
		w := mpi.MustWorld(n)
		defer w.Close()
		comms := w.Comms()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runAllgather(b, comms, payload)
		}
	})
	b.Run("tcp", func(b *testing.B) {
		nodes := make([]*mpi.TCPNode, n)
		addrs := make([]string, n)
		for r := 0; r < n; r++ {
			node, err := mpi.ListenTCP(r, n, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			nodes[r] = node
			addrs[r] = node.Addr()
			defer node.Close()
		}
		var wg sync.WaitGroup
		for _, node := range nodes {
			wg.Add(1)
			go func(nd *mpi.TCPNode) {
				defer wg.Done()
				if err := nd.Connect(addrs, 10*time.Second); err != nil {
					b.Error(err)
				}
			}(node)
		}
		wg.Wait()
		comms := make([]*mpi.Comm, n)
		for r, nd := range nodes {
			c, err := nd.WorldComm()
			if err != nil {
				b.Fatal(err)
			}
			comms[r] = c
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runAllgather(b, comms, payload)
		}
	})
}

func runAllgather(b *testing.B, comms []*mpi.Comm, payload []byte) {
	b.Helper()
	var wg sync.WaitGroup
	for _, c := range comms {
		wg.Add(1)
		go func(c *mpi.Comm) {
			defer wg.Done()
			if _, err := c.Allgather(payload); err != nil {
				b.Error(err)
			}
		}(c)
	}
	wg.Wait()
}
