#!/usr/bin/env bash
# Crash-recovery e2e smoke: a supervised 5-rank TCP cluster job is
# SIGKILLed mid-run (every worker process at once — a whole-node power
# cut), the per-rank supervisors restart the mesh, the master resumes
# from the newest durable checkpoint generation, and the final
# checkpoint must come out byte-identical to an uninterrupted run.
#
# This is the multi-process half of the recovery acceptance; the
# in-process halves (crash-point sweeps, bit-exact resume of every mode)
# live in internal/checkpoint and internal/cluster tests.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN="$WORK/cluster-smoke"
cleanup() {
  pkill -9 -f "$BIN" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "=== building cmd/cluster ==="
go build -o "$BIN" ./cmd/cluster

# Small 2x2 resilient job: 5 ranks, tiny net, fixed seed.
PORT=$(( 21000 + $$ % 9000 ))
mkaddrs() {
  local base i out
  base=$1
  out="127.0.0.1:$base"
  for i in 1 2 3 4; do out="$out,127.0.0.1:$((base + i))"; done
  echo "$out"
}
COMMON=(-grid 2 -resilient -iterations 5 -dataset 300 -batches 2 -batch 32
        -hidden 16 -latent 8 -seed 7)

echo "=== golden run (uninterrupted) ==="
pids=()
for r in 1 2 3 4; do
  "$BIN" -rank "$r" -addrs "$(mkaddrs "$PORT")" "${COMMON[@]}" >/dev/null 2>&1 &
  pids+=($!)
done
"$BIN" -rank 0 -addrs "$(mkaddrs "$PORT")" "${COMMON[@]}" \
  -checkpoint "$WORK/golden.ckpt" >/dev/null &
pids+=($!)
for p in "${pids[@]}"; do wait "$p"; done
[ -f "$WORK/golden.ckpt" ] || { echo "FAIL: golden checkpoint missing"; exit 1; }

echo "=== supervised run, SIGKILL all workers mid-job ==="
PORT2=$((PORT + 10))
sup=()
for r in 1 2 3 4; do
  "$BIN" -rank "$r" -addrs "$(mkaddrs "$PORT2")" "${COMMON[@]}" \
    -supervise >/dev/null 2>&1 &
  sup+=($!)
done
"$BIN" -rank 0 -addrs "$(mkaddrs "$PORT2")" "${COMMON[@]}" \
  -checkpoint "$WORK/run.ckpt" -checkpoint-every 1 -checkpoint-keep 4 \
  -supervise >"$WORK/master.log" 2>&1 &
sup+=($!)

# Wait for the first durable generation, then pull the plug.
for _ in $(seq 1 1200); do
  [ -f "$WORK/run.ckpt.1" ] && break
  sleep 0.1
done
[ -f "$WORK/run.ckpt.1" ] || { echo "FAIL: no checkpoint generation appeared"; cat "$WORK/master.log"; exit 1; }

# Every cluster process whose command line lacks -supervise is a worker
# (the supervisors' children). Kill them all, un-gracefully.
killed=0
for pid in $(pgrep -f "$BIN" || true); do
  if ! tr '\0' ' ' <"/proc/$pid/cmdline" 2>/dev/null | grep -q -- -supervise; then
    kill -9 "$pid" 2>/dev/null && killed=$((killed + 1)) || true
  fi
done
echo "killed $killed worker processes"
if [ "$killed" -eq 0 ]; then
  echo "WARN: job finished before the kill landed; recovery path not exercised"
fi

# The supervisors restart their ranks; the master's replacement resumes
# from the newest valid generation and the job runs to completion.
for p in "${sup[@]}"; do wait "$p"; done
[ -f "$WORK/run.ckpt" ] || { echo "FAIL: final checkpoint missing"; cat "$WORK/master.log"; exit 1; }

if [ "$killed" -gt 0 ] && ! grep -q "resuming from" "$WORK/master.log"; then
  echo "FAIL: master log never mentions resuming"
  cat "$WORK/master.log"
  exit 1
fi

echo "=== comparing final checkpoints ==="
if cmp "$WORK/golden.ckpt" "$WORK/run.ckpt"; then
  echo "PASS: recovered run is byte-identical to the uninterrupted run"
else
  echo "FAIL: recovered checkpoint differs from golden"
  exit 1
fi
