// Package serve is the inference half of the training/inference stack: it
// loads generator-mixture artifacts exported from internal/checkpoint and
// serves samples from them over HTTP. The throughput lever is request
// coalescing — concurrent /generate requests are merged into single
// forward passes through the mixture, amortising the matmul cost exactly
// the way the training loop amortises it over mini-batches.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/core"
	"cellgan/internal/tensor"
)

// ErrOverloaded is returned when the request queue is full; HTTP maps it
// to 429 so clients back off instead of piling up.
var ErrOverloaded = errors.New("serve: queue full, request shed")

// ErrStopped is returned for requests submitted after shutdown began.
var ErrStopped = errors.New("serve: engine stopped")

// MaxSamplesPerRequest bounds one request's sample count so a single
// caller cannot monopolise a batch.
const MaxSamplesPerRequest = 4096

// Model is an immutable, loaded generator mixture. Hot-reloading replaces
// the whole Model atomically; in-flight batches finish on the version they
// started with.
type Model struct {
	// Name is the registry key the model is served under.
	Name string
	// Version increments on every (re)load of the name.
	Version uint64
	// Hash is the content hash of the artifact (checkpoint.HashMixture):
	// the cross-process model identity health checks and the deployment
	// gateway compare against.
	Hash string
	// Artifact is the deployable export the model was built from.
	Artifact *checkpoint.MixtureArtifact
	// LatentDim and OutputDim describe the generator's signature.
	LatentDim, OutputDim int

	// proto is the reconstructed mixture; generators cache forward-pass
	// state, so workers sample from private clones, never from proto.
	proto *core.Mixture
}

// newModel rebuilds the sampleable model from an artifact.
func newModel(name string, version uint64, a *checkpoint.MixtureArtifact) (*Model, error) {
	m, err := a.Mixture()
	if err != nil {
		return nil, err
	}
	hash, err := checkpoint.HashMixture(a)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:      name,
		Version:   version,
		Hash:      hash,
		Artifact:  a,
		LatentDim: a.LatentDim(),
		OutputDim: m.OutputDim(),
		proto:     m,
	}, nil
}

// EngineConfig tunes a batched sampling engine.
type EngineConfig struct {
	// Workers is the number of concurrent forward-pass workers; each owns
	// a private clone of the mixture (default 2).
	Workers int
	// MaxBatchSamples caps the samples coalesced into one forward pass
	// (default 256).
	MaxBatchSamples int
	// QueueSize bounds the request queue; submissions beyond it are shed
	// with ErrOverloaded (default 256).
	QueueSize int
	// BatchWait is how long a worker holding a request waits for more
	// requests to coalesce before running the forward pass (default 2 ms).
	// Zero batches opportunistically: only what is already queued.
	BatchWait time.Duration
	// Seed keys the latent-sampling RNG streams (one split per worker).
	Seed uint64
	// Float32 serves forward passes on the float32 kernel tier: each
	// worker compiles its mixture into a core.Mixture32 instead of cloning
	// the float64 networks. Routing and latent draws stay float64, so the
	// same seed produces the same sample-to-generator assignment; outputs
	// agree with the float64 path only to float32 precision. A model with
	// a layer the float32 tier cannot lower falls back to float64 serving.
	Float32 bool
}

// withDefaults fills zero fields.
func (c EngineConfig) withDefaults() EngineConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBatchSamples <= 0 {
		c.MaxBatchSamples = 256
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchWait == 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// genRequest is one caller waiting for samples.
type genRequest struct {
	ctx  context.Context
	n    int
	done chan genResult // buffered(1): workers never block on delivery
}

type genResult struct {
	out *tensor.Mat
	err error
}

// Engine serves one named model: a bounded queue feeding a pool of
// workers that coalesce queued requests into single forward passes.
type Engine struct {
	cfg     EngineConfig
	cur     atomic.Pointer[Model]
	queue   chan *genRequest
	metrics *Metrics

	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	// closeMu serialises submissions against Close: an enqueue holds the
	// read lock, so once Close holds the write lock and flips closed, no
	// request can slip into the queue after the final drain.
	closeMu sync.RWMutex
	closed  bool
}

// NewEngine starts an engine serving m.
func NewEngine(m *Model, cfg EngineConfig, metrics *Metrics) *Engine {
	cfg = cfg.withDefaults()
	if metrics == nil {
		metrics = NewMetrics()
	}
	e := &Engine{
		cfg:     cfg,
		queue:   make(chan *genRequest, cfg.QueueSize),
		metrics: metrics,
		closing: make(chan struct{}),
	}
	e.cur.Store(m)
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(uint64(i))
	}
	return e
}

// Model returns the currently served model.
func (e *Engine) Model() *Model { return e.cur.Load() }

// Swap atomically replaces the served model (hot reload). Batches already
// running finish on the old version.
func (e *Engine) Swap(m *Model) { e.cur.Store(m) }

// QueueDepth returns the number of requests waiting in the queue.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// Close drains the queue and stops the workers. Requests already queued
// are served; new submissions fail with ErrStopped.
func (e *Engine) Close() {
	e.closeMu.Lock()
	e.closed = true
	e.closeMu.Unlock()
	e.closeOnce.Do(func() { close(e.closing) })
	e.wg.Wait()
	// A submission racing with worker exit can still have made the queue
	// (it held closeMu before closed flipped); fail it rather than leave
	// the caller waiting.
	for {
		select {
		case req := <-e.queue:
			req.done <- genResult{err: ErrStopped}
		default:
			return
		}
	}
}

// Generate returns n samples from the served mixture, coalesced with
// concurrent callers into shared forward passes. It blocks until the
// samples are ready, ctx is done, or the request is shed.
func (e *Engine) Generate(ctx context.Context, n int) (*tensor.Mat, error) {
	started := time.Now()
	out, err := e.generate(ctx, n)
	e.metrics.ObserveRequest(n, time.Since(started), err)
	return out, err
}

func (e *Engine) generate(ctx context.Context, n int) (*tensor.Mat, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: sample count %d must be positive", n)
	}
	if n > MaxSamplesPerRequest {
		return nil, fmt.Errorf("serve: sample count %d exceeds limit %d", n, MaxSamplesPerRequest)
	}
	req := &genRequest{ctx: ctx, n: n, done: make(chan genResult, 1)}
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, ErrStopped
	}
	select {
	case e.queue <- req:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		e.metrics.ObserveShed()
		return nil, ErrOverloaded
	}
	select {
	case res := <-req.done:
		return res.out, res.err
	case <-ctx.Done():
		// The worker will find the expired context and drop the request.
		return nil, ctx.Err()
	}
}

// sampler is the worker-side forward interface: a private float64 clone
// (*core.Mixture) or a compiled float32 snapshot (*core.Mixture32).
type sampler interface {
	SampleWith(ws *core.SampleWorkspace, n, latentDim int, rng *tensor.RNG) *tensor.Mat
}

// newSampler builds a worker's private sampler for the current model:
// a compiled float32 mixture when the tier is enabled (falling back to a
// float64 clone if any generator layer has no float32 lowering), else a
// float64 clone.
func (e *Engine) newSampler(m *Model) sampler {
	if e.cfg.Float32 {
		if c, err := core.CompileMixture32(m.proto); err == nil {
			return c
		}
	}
	return m.proto.Clone()
}

// worker runs forward passes over coalesced request batches on a private
// clone of the mixture.
func (e *Engine) worker(id uint64) {
	defer e.wg.Done()
	rng := tensor.NewRNG(e.cfg.Seed + (id+1)*0x9e3779b97f4a7c15)
	// One sampling workspace per worker, reused across every coalesced
	// batch this worker ever runs (it is keyed to the goroutine, not the
	// model, so it survives hot reloads).
	sws := core.NewSampleWorkspace()
	var local sampler
	var version uint64
	var name string
	for {
		var first *genRequest
		select {
		case first = <-e.queue:
		case <-e.closing:
			// Drain what is already queued, then exit.
			select {
			case first = <-e.queue:
			default:
				return
			}
		}
		batch := e.gather(first)
		m := e.cur.Load()
		if local == nil || version != m.Version || name != m.Name {
			local = e.newSampler(m)
			version, name = m.Version, m.Name
		}
		e.runBatch(local, m, batch, rng, sws)
	}
}

// gather coalesces queued requests behind first, up to MaxBatchSamples
// total samples or until BatchWait elapses with the queue empty.
func (e *Engine) gather(first *genRequest) []*genRequest {
	batch := []*genRequest{first}
	total := first.n
	drain := func() []*genRequest {
		for total < e.cfg.MaxBatchSamples {
			select {
			case r := <-e.queue:
				batch = append(batch, r)
				total += r.n
			default:
				return batch
			}
		}
		return batch
	}
	if e.cfg.BatchWait <= 0 {
		return drain()
	}
	timer := time.NewTimer(e.cfg.BatchWait)
	defer timer.Stop()
	for total < e.cfg.MaxBatchSamples {
		select {
		case r := <-e.queue:
			batch = append(batch, r)
			total += r.n
		case <-timer.C:
			return batch
		case <-e.closing:
			return drain()
		}
	}
	return batch
}

// runBatch executes one coalesced forward pass and distributes the rows
// back to the waiting requests. The shared batch is assembled in the
// worker's reusable sampling workspace; only the per-request result
// matrices are allocated, because their ownership transfers to the
// callers.
func (e *Engine) runBatch(local sampler, m *Model, batch []*genRequest, rng *tensor.RNG, sws *core.SampleWorkspace) {
	// Drop requests whose caller already gave up.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- genResult{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	total := 0
	for _, r := range live {
		total += r.n
	}
	out := local.SampleWith(sws, total, m.LatentDim, rng)
	e.metrics.ObserveBatch(len(live))
	offset := 0
	for _, r := range live {
		sub := tensor.New(r.n, out.Cols)
		for i := 0; i < r.n; i++ {
			copy(sub.Row(i), out.Row(offset+i))
		}
		offset += r.n
		r.done <- genResult{out: sub}
	}
}
