package serve

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestLoadTestLatencyBudget drives the full HTTP stack (pooled encode
// buffers, coalescing engine, per-worker sampling workspaces) under
// concurrent load and asserts the error count and a generous p99 latency
// tripwire. The bound is deliberately loose — it catches pathological
// regressions (lock contention on the pools, per-request reallocation
// storms), not small shifts that machine noise could produce.
func TestLoadTestLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in -short mode")
	}
	reg := NewRegistry(EngineConfig{Workers: 2, QueueSize: 1024}, nil)
	if err := reg.Load("digits", trainedArtifact(t)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg, 30*time.Second))
	defer ts.Close()

	res, err := LoadTest(ts.URL, LoadTestOptions{Clients: 8, Requests: 200, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load test: %d ok, %d shed, p50=%s p99=%s, %.0f samples/s",
		res.Requests, res.Shed, res.P50, res.P99, res.SamplesPerSec)
	if res.Errors != 0 {
		t.Fatalf("%d transport/server errors under load", res.Errors)
	}
	if res.Requests == 0 {
		t.Fatal("no successful requests")
	}
	if res.P99 > 2*time.Second {
		t.Fatalf("p99 latency %s exceeds 2s budget", res.P99)
	}
}
