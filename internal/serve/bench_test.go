package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkEngineGenerate measures the raw sampling engine without HTTP:
// concurrent callers coalescing into shared forward passes.
func BenchmarkEngineGenerate(b *testing.B) {
	m, err := newModel("digits", 1, trainedArtifact(b))
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(m, EngineConfig{Workers: 2, BatchWait: 200 * time.Microsecond, QueueSize: 1024}, nil)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Generate(context.Background(), 4); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(4*b.N)/b.Elapsed().Seconds(), "samples/s")
	b.ReportMetric(e.metrics.LatencyQuantile(0.99)*1e3, "p99-ms")
}

// BenchmarkServeLoopback is the serving baseline: the full HTTP path over
// loopback — JSON decode, batched sampling, JSON encode — driven by the
// load-test harness. The reported samples/s figure is the first entry of
// the serving trajectory in the bench history.
func BenchmarkServeLoopback(b *testing.B) {
	reg := NewRegistry(EngineConfig{Workers: 2, QueueSize: 1024}, nil)
	if err := reg.Load("digits", trainedArtifact(b)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg, 30*time.Second))
	defer func() {
		ts.Close()
		reg.Close()
	}()
	b.ResetTimer()
	res, err := LoadTest(ts.URL, LoadTestOptions{Clients: 8, Requests: b.N, N: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if res.Errors > 0 {
		b.Fatalf("%d errors during bench", res.Errors)
	}
	b.ReportMetric(res.SamplesPerSec, "samples/s")
	b.ReportMetric(res.RPS, "req/s")
	b.ReportMetric(float64(res.P99.Microseconds())/1e3, "p99-ms")
}
