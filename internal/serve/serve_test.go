package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/config"
	"cellgan/internal/core"
)

// trainedArtifact trains a small 2×2 grid once per test binary and
// returns the exported best-cell mixture artifact.
var artifactOnce struct {
	sync.Once
	a   *checkpoint.MixtureArtifact
	err error
}

func trainedArtifact(tb testing.TB) *checkpoint.MixtureArtifact {
	tb.Helper()
	artifactOnce.Do(func() {
		cfg := config.Default().Scaled(2, 8, 100)
		res, err := core.RunSequential(cfg, core.RunOptions{})
		if err != nil {
			artifactOnce.err = err
			return
		}
		artifactOnce.a, artifactOnce.err = checkpoint.ExportMixture(res, res.BestRank)
	})
	if artifactOnce.err != nil {
		tb.Fatal(artifactOnce.err)
	}
	return artifactOnce.a
}

// newTestServer loads the trained artifact as "digits" and serves it over
// a loopback HTTP listener.
func newTestServer(tb testing.TB, ecfg EngineConfig) (*Registry, *httptest.Server) {
	tb.Helper()
	reg := NewRegistry(ecfg, nil)
	if err := reg.Load("digits", trainedArtifact(tb)); err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg, 30*time.Second))
	tb.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return reg, ts
}

func postGenerate(tb testing.TB, url string, req GenerateRequest) (int, *GenerateResponse) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var out GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, &out
}

// TestEndToEndServing is the acceptance path: train → export → serve →
// 32 concurrent requests → all succeed, batching observed, 28×28 shapes.
func TestEndToEndServing(t *testing.T) {
	_, ts := newTestServer(t, EngineConfig{Workers: 1, BatchWait: 10 * time.Millisecond, QueueSize: 64})

	const concurrent = 32
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	start := make(chan struct{})
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			body, _ := json.Marshal(GenerateRequest{Model: "digits", N: 2})
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- errors.New(resp.Status + ": " + string(b))
				return
			}
			var out GenerateResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Dim != 784 || out.N != 2 || len(out.Samples) != 2 || len(out.Samples[0]) != 784 {
				errs <- errors.New("wrong sample shape")
				return
			}
			errs <- nil
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Batching must have occurred: with one worker and 32 concurrent
	// requests, at least one forward pass coalesced several requests.
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	text, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	maxBatch := metricValue(t, string(text), "serve_batch_requests_max")
	if maxBatch <= 1 {
		t.Fatalf("no batching observed: serve_batch_requests_max = %g\n%s", maxBatch, text)
	}
	if n := metricValue(t, string(text), "serve_requests_total"); n != concurrent {
		t.Fatalf("serve_requests_total = %g, want %d", n, concurrent)
	}
}

// metricValue extracts a scalar metric from the text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEncodings(t *testing.T) {
	_, ts := newTestServer(t, EngineConfig{})

	code, flt := postGenerate(t, ts.URL, GenerateRequest{N: 3, Encoding: "float"})
	if code != http.StatusOK || len(flt.Samples) != 3 {
		t.Fatalf("float encoding: code %d", code)
	}
	code, b64 := postGenerate(t, ts.URL, GenerateRequest{N: 3, Encoding: "base64"})
	if code != http.StatusOK || b64.Data == "" {
		t.Fatalf("base64 encoding: code %d", code)
	}
	raw, err := base64.StdEncoding.DecodeString(b64.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 3*784*8 {
		t.Fatalf("base64 payload %d bytes, want %d", len(raw), 3*784*8)
	}
	for i := 0; i < 3*784; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		if math.IsNaN(v) || v < -1.5 || v > 1.5 {
			t.Fatalf("sample value %g outside generator range", v)
		}
	}
	code, pgm := postGenerate(t, ts.URL, GenerateRequest{N: 2, Encoding: "pgm"})
	if code != http.StatusOK || len(pgm.PGM) != 2 {
		t.Fatalf("pgm encoding: code %d", code)
	}
	if !strings.HasPrefix(pgm.PGM[0], "P2\n28 28\n255\n") {
		t.Fatalf("pgm header wrong: %q", pgm.PGM[0][:20])
	}

	if code, _ := postGenerate(t, ts.URL, GenerateRequest{N: 1, Encoding: "bmp"}); code != http.StatusBadRequest {
		t.Fatalf("unknown encoding accepted: %d", code)
	}
	if code, _ := postGenerate(t, ts.URL, GenerateRequest{N: -4}); code != http.StatusBadRequest {
		t.Fatalf("negative n accepted: %d", code)
	}
	if code, _ := postGenerate(t, ts.URL, GenerateRequest{Model: "nope"}); code != http.StatusNotFound {
		t.Fatalf("unknown model accepted: %d", code)
	}
}

func TestHealthzAndModelz(t *testing.T) {
	reg, ts := newTestServer(t, EngineConfig{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/modelz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var models struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 || models.Models[0].Name != "digits" {
		t.Fatalf("modelz: %+v", models)
	}
	if models.Models[0].OutputDim != 784 {
		t.Fatalf("modelz output dim %d", models.Models[0].OutputDim)
	}
	wsum := 0.0
	for _, w := range models.Models[0].Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("mixture weights sum %g", wsum)
	}
	_ = reg
}

func TestHotReload(t *testing.T) {
	reg, ts := newTestServer(t, EngineConfig{})
	if _, r1 := postGenerate(t, ts.URL, GenerateRequest{N: 1}); r1.Version != 1 {
		t.Fatalf("initial version %d", r1.Version)
	}
	// Reloading the same name must bump the version atomically while the
	// server keeps answering.
	if err := reg.Load("digits", trainedArtifact(t)); err != nil {
		t.Fatal(err)
	}
	code, r2 := postGenerate(t, ts.URL, GenerateRequest{N: 1})
	if code != http.StatusOK || r2.Version != 2 {
		t.Fatalf("post-reload: code %d version %d", code, r2.Version)
	}
}

func TestLoadSheddingWhenQueueFull(t *testing.T) {
	// White-box: an engine with a one-slot queue and no workers must shed
	// the second submission. Workers are not started so the queue cannot
	// drain underneath the test.
	m, err := newModel("digits", 1, trainedArtifact(t))
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{
		cfg:     EngineConfig{}.withDefaults(),
		queue:   make(chan *genRequest, 1),
		metrics: NewMetrics(),
		closing: make(chan struct{}),
	}
	e.cur.Store(m)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := e.Generate(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first submission: %v", err)
	}
	if _, err := e.Generate(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second submission: %v, want ErrOverloaded", err)
	}
}

func TestGracefulDrainServesQueuedRequests(t *testing.T) {
	m, err := newModel("digits", 1, trainedArtifact(t))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, EngineConfig{Workers: 1, BatchWait: 5 * time.Millisecond}, nil)

	const inFlight = 8
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Generate(context.Background(), 1)
			errs <- err
		}()
	}
	// Close concurrently with the submissions: everything that made it
	// into the queue must still be answered, the rest gets ErrStopped.
	time.Sleep(time.Millisecond)
	e.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, ErrStopped) {
			t.Fatal(err)
		}
	}
	if _, err := e.Generate(context.Background(), 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-close submission: %v, want ErrStopped", err)
	}
}

func TestRegistryDefaultModelResolution(t *testing.T) {
	reg := NewRegistry(EngineConfig{}, nil)
	defer reg.Close()
	if _, err := reg.Engine(""); err == nil {
		t.Fatal("empty registry resolved a default model")
	}
	if err := reg.Load("a", trainedArtifact(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Engine(""); err != nil {
		t.Fatalf("single model should be the default: %v", err)
	}
	if err := reg.Load("b", trainedArtifact(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Engine(""); err == nil {
		t.Fatal("ambiguous default resolved with two models loaded")
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names %v", got)
	}
}

func TestEngineSamplingIsSeededAndSane(t *testing.T) {
	a := trainedArtifact(t)
	m, err := newModel("digits", 1, a)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, EngineConfig{Workers: 1, Seed: 42}, nil)
	defer e.Close()
	out, err := e.Generate(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 8 || out.Cols != 784 {
		t.Fatalf("shape %d×%d", out.Rows, out.Cols)
	}
	for _, v := range out.Data {
		if math.IsNaN(v) || v < -1.001 || v > 1.001 {
			t.Fatalf("sample value %g outside tanh range", v)
		}
	}
}

func TestLoadTestHarness(t *testing.T) {
	_, ts := newTestServer(t, EngineConfig{Workers: 2, QueueSize: 128})
	res, err := LoadTest(ts.URL, LoadTestOptions{Clients: 8, Requests: 64, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.Shed+res.Errors != 64 {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("load test hit %d errors", res.Errors)
	}
	if res.Requests == 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible percentiles: %+v", res)
	}
}
