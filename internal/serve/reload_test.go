package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellgan/internal/checkpoint"
)

// variantArtifact returns a second artifact with a different content
// hash: the even shard of the trained mixture. Tests that alternate the
// two can tell by hash alone which model a response came from.
func variantArtifact(tb testing.TB) *checkpoint.MixtureArtifact {
	tb.Helper()
	a := trainedArtifact(tb)
	if len(a.Ranks) < 2 {
		tb.Skipf("mixture too small for a distinguishable variant: %d members", len(a.Ranks))
	}
	v, err := checkpoint.ShardMixture(a, 0, 2)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func artifactHash(tb testing.TB, a *checkpoint.MixtureArtifact) string {
	tb.Helper()
	h, err := checkpoint.HashMixture(a)
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func getHealth(tb testing.TB, url string) (int, HealthStatus) {
	tb.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var st HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, st
}

// TestHealthzReportsModelIdentity verifies the gateway-facing health
// signal: /healthz must name each loaded model with its version and
// artifact content hash plus the queue depth, not just answer 200.
func TestHealthzReportsModelIdentity(t *testing.T) {
	reg, ts := newTestServer(t, EngineConfig{})
	code, st := getHealth(t, ts.URL)
	if code != http.StatusOK || st.Status != "ok" {
		t.Fatalf("healthz %d %q", code, st.Status)
	}
	if len(st.Models) != 1 || st.Models[0].Name != "digits" || st.Models[0].Version != 1 {
		t.Fatalf("models: %+v", st.Models)
	}
	if want := artifactHash(t, trainedArtifact(t)); st.Models[0].Hash != want {
		t.Fatalf("healthz hash %q, want artifact hash %q", st.Models[0].Hash, want)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("idle queue depth %d", st.QueueDepth)
	}

	// After a reload the reported identity must flip to the new artifact.
	v := variantArtifact(t)
	if err := reg.Load("digits", v); err != nil {
		t.Fatal(err)
	}
	_, st = getHealth(t, ts.URL)
	if st.Models[0].Version != 2 || st.Models[0].Hash != artifactHash(t, v) {
		t.Fatalf("post-reload identity: %+v", st.Models[0])
	}
}

// TestReloadEndpoint pushes a serialised artifact over /v1/reload and
// confirms the version bump and hash flip — the replica half of the
// train→serve deployment loop.
func TestReloadEndpoint(t *testing.T) {
	_, ts := newTestServer(t, EngineConfig{})
	v := variantArtifact(t)
	var buf bytes.Buffer
	if err := checkpoint.WriteMixture(&buf, v); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/reload?model=digits", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	var rr ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Model != "digits" || rr.Version != 2 || rr.Hash != artifactHash(t, v) {
		t.Fatalf("reload response: %+v", rr)
	}
	// Requests now serve the new identity.
	if code, gr := postGenerate(t, ts.URL, GenerateRequest{N: 1}); code != http.StatusOK || gr.Version != 2 || gr.Hash != rr.Hash {
		t.Fatalf("post-reload generate: code %d %+v", code, gr)
	}
}

func TestReloadEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, EngineConfig{})
	if resp, err := http.Get(ts.URL + "/v1/reload?model=digits"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET reload: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/v1/reload", "application/octet-stream", bytes.NewReader([]byte{1})); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("missing model accepted: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/v1/reload?model=digits", "application/octet-stream", bytes.NewReader([]byte("garbage"))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("garbage artifact accepted: %d", resp.StatusCode)
		}
	}
	// A rejected push must not disturb the serving model.
	if code, gr := postGenerate(t, ts.URL, GenerateRequest{N: 1}); code != http.StatusOK || gr.Version != 1 {
		t.Fatalf("model disturbed by bad reload: code %d %+v", code, gr)
	}
}

// TestConcurrentReloadNoTornSwap hammers /v1/generate while the model is
// reloaded many times, alternating two artifacts with distinct hashes.
// No request may fail, and every response's (version, hash) pair must be
// one of the pairs that actually existed — version v odd ⇒ hash of
// artifact A, even ⇒ hash of artifact B. A torn swap (version from one
// model, hash or dims from another) fails the pairing check.
func TestConcurrentReloadNoTornSwap(t *testing.T) {
	a := trainedArtifact(t)
	b := variantArtifact(t)
	hashA, hashB := artifactHash(t, a), artifactHash(t, b)
	reg, ts := newTestServer(t, EngineConfig{Workers: 2, QueueSize: 1024})

	const reloads = 20
	var maxVersion atomic.Uint64
	maxVersion.Store(1)
	stop := make(chan struct{})
	reloadDone := make(chan error, 1)
	go func() {
		defer close(stop)
		for i := 0; i < reloads; i++ {
			art := b
			if i%2 == 1 {
				art = a
			}
			if err := reg.Load("digits", art); err != nil {
				reloadDone <- err
				return
			}
			maxVersion.Store(uint64(i + 2))
			time.Sleep(2 * time.Millisecond)
		}
		reloadDone <- nil
	}()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, gr := postGenerate(t, ts.URL, GenerateRequest{N: 2})
				if code != http.StatusOK {
					errs <- &reloadRaceError{code: code}
					return
				}
				want := hashA
				if gr.Version%2 == 0 {
					want = hashB
				}
				if gr.Hash != want {
					errs <- &reloadRaceError{version: gr.Version, hash: gr.Hash, want: want}
					return
				}
				if gr.Version > maxVersion.Load() || gr.Version < 1 {
					errs <- &reloadRaceError{version: gr.Version}
					return
				}
				if gr.Dim != 784 || len(gr.Samples) != 2 {
					errs <- &reloadRaceError{version: gr.Version, hash: "bad shape"}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-reloadDone; err != nil {
		t.Fatal(err)
	}
	// The final identity must be the last loaded artifact.
	_, st := getHealth(t, ts.URL)
	if st.Models[0].Version != reloads+1 {
		t.Fatalf("final version %d, want %d", st.Models[0].Version, reloads+1)
	}
}

type reloadRaceError struct {
	code       int
	version    uint64
	hash, want string
}

func (e *reloadRaceError) Error() string {
	if e.code != 0 {
		return "generate failed with status " + http.StatusText(e.code)
	}
	return "torn swap: version " + itoa(e.version) + " hash " + e.hash + " want " + e.want
}

func itoa(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestInFlightRequestsDrainAcrossSwap: requests queued before a Swap
// must all complete successfully — the worker finishes the batch it
// gathered on the clone it gathered it with, then picks up the new
// model. White-box so the swap lands while requests sit in the queue.
func TestInFlightRequestsDrainAcrossSwap(t *testing.T) {
	a := trainedArtifact(t)
	mOld, err := newModel("digits", 1, a)
	if err != nil {
		t.Fatal(err)
	}
	mNew, err := newModel("digits", 2, variantArtifact(t))
	if err != nil {
		t.Fatal(err)
	}
	// A long BatchWait keeps the first batch open while we enqueue and
	// swap, guaranteeing requests are genuinely in flight across it.
	e := NewEngine(mOld, EngineConfig{Workers: 1, BatchWait: 50 * time.Millisecond, QueueSize: 64}, nil)
	defer e.Close()

	const inFlight = 16
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := e.Generate(context.Background(), 1)
			if err != nil {
				errs <- err
				return
			}
			if out.Rows != 1 || out.Cols != mOld.OutputDim {
				errs <- &reloadRaceError{hash: "bad drain shape"}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let requests reach the queue
	e.Swap(mNew)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if e.Model().Version != 2 {
		t.Fatalf("swap lost: version %d", e.Model().Version)
	}
}
