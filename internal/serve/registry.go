package serve

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"cellgan/internal/checkpoint"
)

// Registry holds the named models a server offers. Loading an existing
// name hot-reloads it: the engine keeps running and the model pointer is
// swapped atomically, so in-flight requests finish on the version they
// started with and later batches see the new parameters.
type Registry struct {
	cfg     EngineConfig
	metrics *Metrics

	mu       sync.RWMutex
	engines  map[string]*Engine
	versions map[string]uint64
	closed   bool
}

// NewRegistry returns an empty registry whose engines share cfg and
// metrics.
func NewRegistry(cfg EngineConfig, metrics *Metrics) *Registry {
	if metrics == nil {
		metrics = NewMetrics()
	}
	r := &Registry{
		cfg:      cfg.withDefaults(),
		metrics:  metrics,
		engines:  make(map[string]*Engine),
		versions: make(map[string]uint64),
	}
	metrics.setQueueDepth(r.QueueDepth)
	metrics.setModels(r.Len)
	return r
}

// Metrics returns the registry's shared metrics set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Load (re)loads a model under the given name from an artifact.
func (r *Registry) Load(name string, a *checkpoint.MixtureArtifact) error {
	if name == "" {
		return fmt.Errorf("serve: model name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrStopped
	}
	version := r.versions[name] + 1
	m, err := newModel(name, version, a)
	if err != nil {
		return err
	}
	r.versions[name] = version
	if e, ok := r.engines[name]; ok {
		e.Swap(m)
		return nil
	}
	r.engines[name] = NewEngine(m, r.cfg, r.metrics)
	return nil
}

// LoadFile (re)loads a model from a mixture artifact file.
func (r *Registry) LoadFile(name, path string) error {
	a, err := checkpoint.LoadMixtureFile(path)
	if err != nil {
		return err
	}
	return r.Load(name, a)
}

// LoadBytes (re)loads a model from a serialised mixture artifact, e.g.
// the body of a /v1/reload push.
func (r *Registry) LoadBytes(name string, data []byte) error {
	a, err := checkpoint.ReadMixture(bytes.NewReader(data))
	if err != nil {
		return err
	}
	return r.Load(name, a)
}

// ModelStatus identifies one loaded model for health checks: the
// registry key, the monotonically increasing load version, the artifact
// content hash, and the model's current request queue depth.
type ModelStatus struct {
	Name       string `json:"name"`
	Version    uint64 `json:"version"`
	Hash       string `json:"hash"`
	QueueDepth int    `json:"queue_depth"`
}

// Statuses returns the status of every loaded model in name order — the
// payload of /healthz and the signal the gateway's readiness and
// readmission decisions key on.
func (r *Registry) Statuses() []ModelStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sts := make([]ModelStatus, 0, len(r.engines))
	for name, e := range r.engines {
		m := e.Model()
		sts = append(sts, ModelStatus{
			Name:       name,
			Version:    m.Version,
			Hash:       m.Hash,
			QueueDepth: e.QueueDepth(),
		})
	}
	sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
	return sts
}

// Engine returns the engine serving name. An empty name resolves to the
// only loaded model, so single-model deployments can omit it.
func (r *Registry) Engine(name string) (*Engine, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.engines) == 1 {
			for _, e := range r.engines {
				return e, nil
			}
		}
		return nil, fmt.Errorf("serve: %d models loaded, name required", len(r.engines))
	}
	e, ok := r.engines[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return e, nil
}

// Names returns the loaded model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.engines))
	for n := range r.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of loaded models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.engines)
}

// QueueDepth returns the total requests waiting across all engines.
func (r *Registry) QueueDepth() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	depth := 0
	for _, e := range r.engines {
		depth += e.QueueDepth()
	}
	return depth
}

// Close drains and stops every engine. Queued requests are served first;
// later loads and submissions fail.
func (r *Registry) Close() {
	r.mu.Lock()
	engines := make([]*Engine, 0, len(r.engines))
	for _, e := range r.engines {
		engines = append(engines, e)
	}
	r.closed = true
	r.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
}
