package serve

import (
	"io"
	"time"

	"cellgan/internal/telemetry"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram: exponential from 100 µs to ~100 s.
var latencyBuckets = func() []float64 {
	b := make([]float64, 0, 21)
	for v := 1e-4; v <= 110; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// batchBuckets are the upper bounds of the batch-size histogram
// (requests coalesced per forward pass).
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Metrics aggregates server-side counters for the /metrics endpoint,
// built on the shared telemetry registry. All methods are safe for
// concurrent use; observations are lock-free atomics, so a slow scrape
// reader can never stall the request hot path (the pre-telemetry
// implementation held one mutex across both, which let a stalled
// /metrics client block ObserveRequest and let the scrape-time
// callbacks deadlock against engine locks).
type Metrics struct {
	reg       *telemetry.Registry
	requests  *telemetry.Counter
	errors    *telemetry.Counter
	shed      *telemetry.Counter
	samples   *telemetry.Counter
	latency   *telemetry.Histogram
	batchSize *telemetry.Histogram
}

// NewMetrics returns an empty metrics set on a private registry.
func NewMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	return &Metrics{
		reg:       reg,
		requests:  reg.Counter("serve_requests_total", "Completed generate requests."),
		errors:    reg.Counter("serve_request_errors_total", "Requests that failed."),
		shed:      reg.Counter("serve_requests_shed_total", "Requests rejected with 429 (queue full)."),
		samples:   reg.Counter("serve_samples_total", "Generated samples."),
		latency:   reg.Histogram("serve_request_latency_seconds", "Request latency.", latencyBuckets),
		batchSize: reg.Histogram("serve_batch_requests", "Requests coalesced per forward pass.", batchBuckets),
	}
}

// Registry exposes the underlying telemetry registry so callers can
// attach additional instruments or collectors to the same /metrics
// exposition.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// setQueueDepth registers the live queue-depth gauge. The callback runs
// at scrape time, outside every metrics lock, so it may take engine and
// registry locks freely.
func (m *Metrics) setQueueDepth(fn func() int) {
	m.reg.GaugeFunc("serve_queue_depth", "Requests waiting in engine queues.",
		func() float64 { return float64(fn()) })
}

// setModels registers the loaded-model-count gauge; same contract as
// setQueueDepth.
func (m *Metrics) setModels(fn func() int) {
	m.reg.GaugeFunc("serve_models", "Loaded models.",
		func() float64 { return float64(fn()) })
}

// ObserveRequest records one completed /generate request.
func (m *Metrics) ObserveRequest(n int, d time.Duration, err error) {
	m.requests.Inc()
	if err != nil {
		m.errors.Inc()
		return
	}
	m.samples.Add(uint64(n))
	m.latency.Observe(d.Seconds())
}

// ObserveShed records one request rejected because the queue was full.
func (m *Metrics) ObserveShed() { m.shed.Inc() }

// ObserveBatch records the size (coalesced requests) of one forward pass.
func (m *Metrics) ObserveBatch(requests int) { m.batchSize.Observe(float64(requests)) }

// MaxBatch returns the largest observed batch (in coalesced requests).
func (m *Metrics) MaxBatch() int { return int(m.batchSize.Max()) }

// LatencyQuantile returns an upper-bound estimate of the q-quantile of
// request latency in seconds.
func (m *Metrics) LatencyQuantile(q float64) float64 { return m.latency.Quantile(q) }

// Requests returns the number of completed requests (including errors).
func (m *Metrics) Requests() uint64 { return m.requests.Value() }

// WriteText renders all metrics in a Prometheus-style text exposition.
// Values are read atomically and the queue-depth/model callbacks are
// invoked without holding any lock.
func (m *Metrics) WriteText(w io.Writer) { m.reg.WriteText(w) }
