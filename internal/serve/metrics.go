package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram: exponential from 100 µs to ~100 s.
var latencyBuckets = func() []float64 {
	b := make([]float64, 0, 21)
	for v := 1e-4; v <= 110; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// batchBuckets are the upper bounds of the batch-size histogram
// (requests coalesced per forward pass).
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	bounds []float64
	counts []uint64 // one per bound, plus the +Inf bucket at the end
	sum    float64
	total  uint64
	max    float64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	if v > h.max {
		h.max = v
	}
}

// quantile returns an upper-bound estimate of the q-quantile from the
// cumulative bucket counts.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Metrics aggregates server-side counters for the /metrics endpoint. All
// methods are safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	requests  uint64
	errors    uint64
	shed      uint64
	samples   uint64
	latency   *histogram
	batchSize *histogram

	// queueDepth reads the live engine queue depths at scrape time.
	queueDepth func() int
	models     func() int
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		latency:   newHistogram(latencyBuckets),
		batchSize: newHistogram(batchBuckets),
	}
}

// ObserveRequest records one completed /generate request.
func (m *Metrics) ObserveRequest(n int, d time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if err != nil {
		m.errors++
		return
	}
	m.samples += uint64(n)
	m.latency.observe(d.Seconds())
}

// ObserveShed records one request rejected because the queue was full.
func (m *Metrics) ObserveShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// ObserveBatch records the size (coalesced requests) of one forward pass.
func (m *Metrics) ObserveBatch(requests int) {
	m.mu.Lock()
	m.batchSize.observe(float64(requests))
	m.mu.Unlock()
}

// MaxBatch returns the largest observed batch (in coalesced requests).
func (m *Metrics) MaxBatch() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.batchSize.max)
}

// LatencyQuantile returns an upper-bound estimate of the q-quantile of
// request latency in seconds.
func (m *Metrics) LatencyQuantile(q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latency.quantile(q)
}

// Requests returns the number of completed requests (including errors).
func (m *Metrics) Requests() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests
}

// writeHistogram renders one histogram in the text exposition format.
func writeHistogram(w io.Writer, name string, h *histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtBound(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
	fmt.Fprintf(w, "%s_max %g\n", name, h.max)
}

func fmtBound(v float64) string { return fmt.Sprintf("%g", v) }

// WriteText renders all metrics in a Prometheus-style text exposition.
func (m *Metrics) WriteText(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP serve_requests_total Completed generate requests.\n")
	fmt.Fprintf(w, "serve_requests_total %d\n", m.requests)
	fmt.Fprintf(w, "# HELP serve_request_errors_total Requests that failed.\n")
	fmt.Fprintf(w, "serve_request_errors_total %d\n", m.errors)
	fmt.Fprintf(w, "# HELP serve_requests_shed_total Requests rejected with 429 (queue full).\n")
	fmt.Fprintf(w, "serve_requests_shed_total %d\n", m.shed)
	fmt.Fprintf(w, "# HELP serve_samples_total Generated samples.\n")
	fmt.Fprintf(w, "serve_samples_total %d\n", m.samples)
	fmt.Fprintf(w, "# HELP serve_request_latency_seconds Request latency.\n")
	writeHistogram(w, "serve_request_latency_seconds", m.latency)
	fmt.Fprintf(w, "# HELP serve_batch_requests Requests coalesced per forward pass.\n")
	writeHistogram(w, "serve_batch_requests", m.batchSize)
	if m.queueDepth != nil {
		fmt.Fprintf(w, "# HELP serve_queue_depth Requests waiting in engine queues.\n")
		fmt.Fprintf(w, "serve_queue_depth %d\n", m.queueDepth())
	}
	if m.models != nil {
		fmt.Fprintf(w, "# HELP serve_models Loaded models.\n")
		fmt.Fprintf(w, "serve_models %d\n", m.models())
	}
}
