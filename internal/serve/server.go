package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cellgan/internal/dataset"
)

// maxPooledBuf caps how large a recycled buffer may be: a single huge
// response must not pin a megabyte-scale buffer in the pool forever.
const maxPooledBuf = 1 << 20

// encodeBufPool recycles the JSON response buffers of the hot /generate
// path, so steady-state request handling reuses encoder scratch instead
// of allocating per response.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// rawBufPool recycles the little-endian staging buffer of the base64
// encoding (pointer-to-slice, the sync.Pool idiom that avoids boxing
// allocations on Put).
var rawBufPool = sync.Pool{New: func() any { return new([]byte) }}

// writeJSONPooled encodes v through a pooled buffer and writes it as the
// response body.
func writeJSONPooled(w http.ResponseWriter, v any) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
	} else {
		w.Write(buf.Bytes())
	}
	if buf.Cap() <= maxPooledBuf {
		encodeBufPool.Put(buf)
	}
}

// DefaultRequestTimeout bounds one /generate request end to end (queueing
// plus forward passes).
const DefaultRequestTimeout = 30 * time.Second

// maxGenerateBody bounds a /generate request body.
const maxGenerateBody = 1 << 20

// Server is the HTTP front of a model registry.
type Server struct {
	reg     *Registry
	timeout time.Duration
	mux     *http.ServeMux
	// draining flips health to 503 ahead of connection shutdown so load
	// balancers stop routing here while in-flight requests finish.
	draining atomic.Bool
}

// NewServer returns a server over reg. requestTimeout bounds each
// /generate request; zero selects DefaultRequestTimeout.
func NewServer(reg *Registry, requestTimeout time.Duration) *Server {
	if requestTimeout <= 0 {
		requestTimeout = DefaultRequestTimeout
	}
	s := &Server{reg: reg, timeout: requestTimeout, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/generate", s.handleGenerate)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/modelz", s.handleModelz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining marks the server as draining (health checks fail, new
// generate requests are refused with 503). Call before http.Server
// Shutdown so upstream balancers divert traffic first.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// GenerateRequest is the body of POST /v1/generate.
type GenerateRequest struct {
	// Model names the registry entry; may be empty when exactly one model
	// is loaded.
	Model string `json:"model,omitempty"`
	// N is the number of samples to generate (default 1).
	N int `json:"n,omitempty"`
	// Encoding selects the sample representation: "float" (default,
	// JSON arrays), "base64" (row-major little-endian float64), or "pgm"
	// (plain-text PGM images, square outputs only).
	Encoding string `json:"encoding,omitempty"`
}

// GenerateResponse is the body of a successful generate call.
type GenerateResponse struct {
	Model    string      `json:"model"`
	Version  uint64      `json:"version"`
	Hash     string      `json:"hash,omitempty"`
	N        int         `json:"n"`
	Dim      int         `json:"dim"`
	Encoding string      `json:"encoding"`
	Samples  [][]float64 `json:"samples,omitempty"`
	Data     string      `json:"data,omitempty"`
	PGM      []string    `json:"pgm,omitempty"`
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req GenerateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGenerateBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.N == 0 {
		req.N = 1
	}
	if req.N < 0 || req.N > MaxSamplesPerRequest {
		httpError(w, http.StatusBadRequest, "n must be in [1,%d]", MaxSamplesPerRequest)
		return
	}
	encoding := strings.ToLower(req.Encoding)
	if encoding == "" {
		encoding = "float"
	}
	switch encoding {
	case "float", "base64", "pgm":
	default:
		httpError(w, http.StatusBadRequest, "unknown encoding %q (want float, base64 or pgm)", encoding)
		return
	}
	engine, err := s.reg.Engine(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	out, err := engine.Generate(ctx, req.N)
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrStopped):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "request timed out after %s", s.timeout)
		return
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		return
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	m := engine.Model()
	resp := GenerateResponse{
		Model:    m.Name,
		Version:  m.Version,
		Hash:     m.Hash,
		N:        out.Rows,
		Dim:      out.Cols,
		Encoding: encoding,
	}
	switch encoding {
	case "float":
		resp.Samples = make([][]float64, out.Rows)
		for i := range resp.Samples {
			resp.Samples[i] = out.Row(i)
		}
	case "base64":
		rawp := rawBufPool.Get().(*[]byte)
		raw := *rawp
		if need := 8 * len(out.Data); cap(raw) < need {
			raw = make([]byte, need)
		} else {
			raw = raw[:need]
		}
		for i, v := range out.Data {
			binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
		}
		resp.Data = base64.StdEncoding.EncodeToString(raw)
		*rawp = raw
		if cap(raw) <= maxPooledBuf {
			rawBufPool.Put(rawp)
		}
	case "pgm":
		side := int(math.Round(math.Sqrt(float64(out.Cols))))
		if side*side != out.Cols {
			httpError(w, http.StatusBadRequest, "pgm needs square outputs, dim %d is not a square", out.Cols)
			return
		}
		resp.PGM = make([]string, out.Rows)
		for i := range resp.PGM {
			var b strings.Builder
			if err := dataset.WritePGM(&b, out.Row(i), side); err != nil {
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			resp.PGM[i] = b.String()
		}
	}
	writeJSONPooled(w, resp)
}

// maxReloadBody bounds one /v1/reload artifact push. Mixture artifacts
// are generator parameters only, megabytes at most; anything larger is a
// malformed or hostile push.
const maxReloadBody = 256 << 20

// HealthStatus is the /healthz response body. Beyond the bare liveness
// bit it carries the identity (version + content hash) of every loaded
// model and the request queue depth, so a routing gateway can decide
// readiness, confirm a hot reload took effect, and weigh readmission on
// real signal instead of a blind 200.
type HealthStatus struct {
	Status string `json:"status"`
	// QueueDepth is the total requests waiting across all engines.
	QueueDepth int           `json:"queue_depth"`
	Models     []ModelStatus `json:"models"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := HealthStatus{
		Status:     "ok",
		QueueDepth: s.reg.QueueDepth(),
		Models:     s.reg.Statuses(),
	}
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		st.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

// ReloadResponse is the body of a successful /v1/reload.
type ReloadResponse struct {
	Model   string `json:"model"`
	Version uint64 `json:"version"`
	Hash    string `json:"hash"`
}

// handleReload accepts a serialised mixture artifact as the request body
// and hot-swaps it into the registry under the model named by the
// ?model= query parameter. In-flight and queued requests finish on the
// old version; batches formed after the swap see the new one. This is
// the push half of the train→serve deployment loop: the gateway's
// deployer POSTs fresh artifacts here, then confirms the new hash via
// /healthz before counting the replica as flipped.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	name := r.URL.Query().Get("model")
	if name == "" {
		httpError(w, http.StatusBadRequest, "model query parameter required")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReloadBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading artifact body: %v", err)
		return
	}
	if err := s.reg.LoadBytes(name, data); err != nil {
		httpError(w, http.StatusBadRequest, "loading artifact: %v", err)
		return
	}
	engine, err := s.reg.Engine(name)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	m := engine.Model()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ReloadResponse{Model: m.Name, Version: m.Version, Hash: m.Hash})
}

// modelInfo is one /modelz entry.
type modelInfo struct {
	Name      string    `json:"name"`
	Version   uint64    `json:"version"`
	LatentDim int       `json:"latent_dim"`
	OutputDim int       `json:"output_dim"`
	Members   []int     `json:"members"`
	Weights   []float64 `json:"weights"`
	Network   string    `json:"network"`
}

func (s *Server) handleModelz(w http.ResponseWriter, r *http.Request) {
	infos := make([]modelInfo, 0, s.reg.Len())
	for _, name := range s.reg.Names() {
		engine, err := s.reg.Engine(name)
		if err != nil {
			continue
		}
		m := engine.Model()
		infos = append(infos, modelInfo{
			Name:      m.Name,
			Version:   m.Version,
			LatentDim: m.LatentDim,
			OutputDim: m.OutputDim,
			Members:   m.Artifact.Ranks,
			Weights:   m.Artifact.Weights,
			Network:   m.Artifact.Cfg.NetworkType,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"models": infos})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Metrics().WriteText(w)
}
