package serve

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedWriter blocks every Write until released, simulating a stalled
// /metrics scrape client (slow network, dead TCP peer).
type gatedWriter struct {
	started chan struct{} // closed on first Write
	release chan struct{} // Writes block until this closes
	once    sync.Once
	buf     bytes.Buffer
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.buf.Write(p)
}

// TestSlowScraperDoesNotBlockObserve is the regression test for the
// WriteText locking bug: the old implementation held the metrics mutex
// while writing to the scrape client, so a stalled reader blocked
// ObserveRequest on the request hot path. With the telemetry-backed
// metrics, observations are lock-free and must complete while a scrape
// is wedged mid-write.
func TestSlowScraperDoesNotBlockObserve(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest(1, time.Millisecond, nil) // something to render

	gw := newGatedWriter()
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gw.release) }) }
	defer release() // unwedge the scrape even on failure
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		m.WriteText(gw)
	}()
	<-gw.started // the scraper is now wedged mid-exposition

	observed := make(chan struct{})
	go func() {
		defer close(observed)
		for i := 0; i < 100; i++ {
			m.ObserveRequest(2, time.Millisecond, nil)
			m.ObserveShed()
			m.ObserveBatch(4)
		}
	}()
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("ObserveRequest blocked behind a stalled /metrics scrape")
	}

	// Release the scrape and check it still renders a full exposition.
	release()
	<-scrapeDone
	if !strings.Contains(gw.buf.String(), "serve_requests_total") {
		t.Fatalf("scrape output truncated:\n%s", gw.buf.String())
	}
}

// TestMetricsCallbackReentrancy pins the second half of the fix: the
// queue-depth/models callbacks run at scrape time and may themselves
// read metrics (the engine/registry paths do exactly that through their
// own locks). The old implementation invoked them under the metrics
// mutex, so a callback touching the metrics deadlocked.
func TestMetricsCallbackReentrancy(t *testing.T) {
	m := NewMetrics()
	m.setQueueDepth(func() int { return int(m.Requests()) })
	m.setModels(func() int {
		m.ObserveBatch(1) // writes from a callback must be safe too
		return 1
	})
	m.ObserveRequest(1, time.Millisecond, nil)

	done := make(chan struct{})
	var out bytes.Buffer
	go func() {
		defer close(done)
		m.WriteText(&out)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteText deadlocked on a re-entrant metrics callback")
	}
	if !strings.Contains(out.String(), "serve_queue_depth 1") {
		t.Fatalf("queue depth callback value missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "serve_models 1") {
		t.Fatalf("models callback value missing:\n%s", out.String())
	}
}

// TestMetricsExpositionUnchanged pins the exact serving metric names and
// line formats that existed before the telemetry migration, so scrape
// dashboards keep working.
func TestMetricsExpositionUnchanged(t *testing.T) {
	m := NewMetrics()
	m.setQueueDepth(func() int { return 3 })
	m.setModels(func() int { return 2 })
	m.ObserveRequest(5, 250*time.Millisecond, nil)
	m.ObserveRequest(0, 0, io.ErrUnexpectedEOF)
	m.ObserveShed()
	m.ObserveBatch(8)

	var b bytes.Buffer
	m.WriteText(&b)
	got := b.String()
	for _, want := range []string{
		"# HELP serve_requests_total Completed generate requests.\n",
		"serve_requests_total 2\n",
		"serve_request_errors_total 1\n",
		"serve_requests_shed_total 1\n",
		"serve_samples_total 5\n",
		`serve_request_latency_seconds_bucket{le="0.0001"} 0` + "\n",
		`serve_request_latency_seconds_bucket{le="+Inf"} 1` + "\n",
		"serve_request_latency_seconds_sum 0.25\n",
		"serve_request_latency_seconds_count 1\n",
		"serve_request_latency_seconds_max 0.25\n",
		`serve_batch_requests_bucket{le="8"} 1` + "\n",
		"serve_batch_requests_max 8\n",
		"serve_queue_depth 3\n",
		"serve_models 2\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}
