package serve

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestFloat32EngineMatchesFloat64 runs the same trained artifact through a
// float64 engine and a float32 engine with identical seeds. The float32
// tier consumes the RNG stream exactly as the float64 path does, so the
// sample batches line up row for row and differ only by float32 forward
// precision.
func TestFloat32EngineMatchesFloat64(t *testing.T) {
	a := trainedArtifact(t)
	mk := func(f32 bool) *Engine {
		m, err := newModel("digits", 1, a)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(m, EngineConfig{
			Workers:   1,
			Seed:      42,
			BatchWait: time.Millisecond,
			Float32:   f32,
		}, nil)
		t.Cleanup(func() { e.Close() })
		return e
	}
	e64 := mk(false)
	e32 := mk(true)

	const n = 16
	want, err := e64.Generate(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e32.Generate(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("float32 batch %d×%d, float64 %d×%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	maxd := 0.0
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-4 {
		t.Fatalf("float32 engine drifts %g from float64 (want float32-precision agreement)", maxd)
	}
	if maxd == 0 {
		t.Fatal("float32 and float64 outputs are bitwise identical — the float32 tier is not actually in use")
	}
}
