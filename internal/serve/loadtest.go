package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadTestOptions tunes the load generator.
type LoadTestOptions struct {
	// Clients is the number of concurrent request loops (default 16).
	Clients int
	// Requests is the total request budget across clients (default 256).
	Requests int
	// N is the samples per request (default 1).
	N int
	// Model names the target model; empty uses the server default.
	Model string
	// Timeout bounds one request on the client side (default 30 s).
	Timeout time.Duration
}

func (o LoadTestOptions) withDefaults() LoadTestOptions {
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Requests <= 0 {
		o.Requests = 256
	}
	if o.N <= 0 {
		o.N = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// LoadTestResult summarises one load-test run.
type LoadTestResult struct {
	Requests int // completed OK
	Shed     int // 429 responses
	Errors   int // transport errors and non-2xx other than 429
	Elapsed  time.Duration
	// RPS and SamplesPerSec are computed over successful requests.
	RPS           float64
	SamplesPerSec float64
	// Client-observed latency percentiles over successful requests.
	P50, P90, P99, Max time.Duration
}

// String renders the result as a one-run report.
func (r *LoadTestResult) String() string {
	return fmt.Sprintf(
		"requests %d ok, %d shed, %d errors in %v\nthroughput %.1f req/s, %.1f samples/s\nlatency p50 %v  p90 %v  p99 %v  max %v",
		r.Requests, r.Shed, r.Errors, r.Elapsed.Round(time.Millisecond),
		r.RPS, r.SamplesPerSec, r.P50, r.P90, r.P99, r.Max)
}

// BenchLine renders the result as one `go test -bench`-style line
// (`BenchmarkName <iterations> <value> <unit> ...`), so load-test runs
// can be piped through cmd/benchjson and archived as machine-readable
// serving benchmarks (BENCH_serve.json) — the serving analogue of the
// paper's speedup tables. name must not contain whitespace.
func (r *LoadTestResult) BenchLine(name string) string {
	nsPerReq := 0.0
	if r.Requests > 0 {
		nsPerReq = float64(r.Elapsed.Nanoseconds()) / float64(r.Requests)
	}
	return fmt.Sprintf("Benchmark%s %d %.0f ns/op %.2f qps %.2f samples/s %d p50-ns %d p99-ns %d max-ns %d shed %d errors",
		name, r.Requests, nsPerReq, r.RPS, r.SamplesPerSec,
		r.P50.Nanoseconds(), r.P99.Nanoseconds(), r.Max.Nanoseconds(), r.Shed, r.Errors)
}

// percentile returns the p-quantile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// LoadTest drives a running server at baseURL with concurrent /generate
// requests and reports throughput and client-observed latency
// percentiles — the serving-side analogue of the training benchmarks.
func LoadTest(baseURL string, opts LoadTestOptions) (*LoadTestResult, error) {
	opts = opts.withDefaults()
	body, err := json.Marshal(GenerateRequest{Model: opts.Model, N: opts.N, Encoding: "base64"})
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: opts.Timeout}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		shed      int
		errCount  int
	)
	next := make(chan struct{}, opts.Requests)
	for i := 0; i < opts.Requests; i++ {
		next <- struct{}{}
	}
	close(next)
	started := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				reqStart := time.Now()
				resp, err := client.Post(baseURL+"/v1/generate", "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					errCount++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusOK:
					latencies = append(latencies, time.Since(reqStart))
				case resp.StatusCode == http.StatusTooManyRequests:
					shed++
				default:
					errCount++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(started)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res := &LoadTestResult{
		Requests: len(latencies),
		Shed:     shed,
		Errors:   errCount,
		Elapsed:  elapsed,
		P50:      percentile(latencies, 0.50),
		P90:      percentile(latencies, 0.90),
		P99:      percentile(latencies, 0.99),
	}
	if len(latencies) > 0 {
		res.Max = latencies[len(latencies)-1]
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.RPS = float64(res.Requests) / secs
		res.SamplesPerSec = float64(res.Requests*opts.N) / secs
	}
	return res, nil
}
