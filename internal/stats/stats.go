// Package stats implements the summary statistics of the paper's
// methodology: "Ten executions were performed for each experiment, in
// order to reduce the effects of non-determinism ... Average and standard
// deviation values are computed for the obtained execution times" (§IV-B).
// It provides sample summaries, confidence intervals and a repeated-run
// harness for timing experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of real-valued observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Summary{}, fmt.Errorf("stats: non-finite observation %v", x)
		}
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// String renders the paper's avg±std form.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f±%.2f", s.Mean, s.Std)
}

// tCritical95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-30); larger samples fall back to the normal 1.96.
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	df := s.N - 1
	t := 1.96
	if df < len(tCritical95) {
		t = tCritical95[df]
	}
	return t * s.Std / math.Sqrt(float64(s.N))
}

// CV returns the coefficient of variation (std/mean); 0 for a zero mean.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / math.Abs(s.Mean)
}

// Speedup computes the ratio of two summaries' means with a first-order
// propagated standard deviation: r = a/b,
// σ_r ≈ r·sqrt((σ_a/a)² + (σ_b/b)²).
func Speedup(single, parallel Summary) (ratio, std float64, err error) {
	if parallel.Mean == 0 || single.Mean == 0 {
		return 0, 0, fmt.Errorf("stats: speedup with zero mean")
	}
	r := single.Mean / parallel.Mean
	cv2 := single.CV()*single.CV() + parallel.CV()*parallel.CV()
	return r, r * math.Sqrt(cv2), nil
}

// Repeat runs fn n times and summarises the elapsed wall-clock durations
// in the given unit (e.g. time.Millisecond ⇒ values are milliseconds) —
// the harness behind "ten independent executions".
func Repeat(n int, unit time.Duration, fn func() error) (Summary, error) {
	if n <= 0 {
		return Summary{}, fmt.Errorf("stats: repeat count %d must be positive", n)
	}
	if unit <= 0 {
		return Summary{}, fmt.Errorf("stats: non-positive unit")
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return Summary{}, fmt.Errorf("stats: run %d: %w", i+1, err)
		}
		xs = append(xs, float64(time.Since(start))/float64(unit))
	}
	return Summarize(xs)
}
