package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%v", s.N, s.Mean)
	}
	// Sample std of this classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeSingleAndOddMedian(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Median != 7 {
		t.Fatalf("%+v", s)
	}
	s, err = Summarize([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 2 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeRejectsBadInput(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Summarize([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s, _ := Summarize([]float64{39.80, 39.82})
	if got := s.String(); got != "39.81±0.01" {
		t.Fatalf("String %q", got)
	}
}

func TestCI95(t *testing.T) {
	// n=10 (paper's count), df=9: t = 2.262.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
	}
	s, _ := Summarize(xs)
	want := 2.262 * s.Std / math.Sqrt(10)
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Fatalf("CI %v want %v", s.CI95(), want)
	}
	one, _ := Summarize([]float64{5})
	if !math.IsInf(one.CI95(), 1) {
		t.Fatal("CI of single observation should be infinite")
	}
	// Large sample falls back to z=1.96.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 7)
	}
	bs, _ := Summarize(big)
	wantBig := 1.96 * bs.Std / 10
	if math.Abs(bs.CI95()-wantBig) > 1e-12 {
		t.Fatalf("big CI %v want %v", bs.CI95(), wantBig)
	}
}

func TestSpeedupPropagation(t *testing.T) {
	single, _ := Summarize([]float64{100, 100})
	par, _ := Summarize([]float64{10, 10})
	r, std, err := Speedup(single, par)
	if err != nil {
		t.Fatal(err)
	}
	if r != 10 || std != 0 {
		t.Fatalf("r=%v std=%v", r, std)
	}
	noisy, _ := Summarize([]float64{9, 11})
	_, std, err = Speedup(single, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if std <= 0 {
		t.Fatal("noisy denominator should propagate uncertainty")
	}
	zero, _ := Summarize([]float64{0})
	if _, _, err := Speedup(single, zero); err == nil {
		t.Fatal("zero mean accepted")
	}
}

func TestRepeat(t *testing.T) {
	calls := 0
	s, err := Repeat(5, time.Nanosecond, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || s.N != 5 {
		t.Fatalf("calls=%d N=%d", calls, s.N)
	}
	if s.Mean <= 0 {
		t.Fatal("durations must be positive")
	}
	sentinel := errors.New("boom")
	if _, err := Repeat(3, time.Millisecond, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, err := Repeat(0, time.Second, func() error { return nil }); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := Repeat(1, 0, func() error { return nil }); err == nil {
		t.Fatal("zero unit accepted")
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCVZeroMean(t *testing.T) {
	s, _ := Summarize([]float64{-1, 1})
	if s.CV() != 0 {
		t.Fatalf("CV %v", s.CV())
	}
	if !strings.Contains(s.String(), "±") {
		t.Fatal("format")
	}
}
