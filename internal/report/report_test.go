package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator %q", lines[2])
	}
	// The value column must start at the same offset in every row.
	off := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "22") != off {
		t.Fatalf("misaligned columns:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows %d", tab.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	tab.AddRow("x", "y", "z", "dropped")
	out := tab.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("extra cell not dropped")
	}
	if !strings.Contains(out, "only") {
		t.Fatal("short row lost")
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	tab := NewTable("", "grid", "t")
	tab.AddRow("2×2", "1")
	tab.AddRow("10×10", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	off1 := strings.IndexRune(lines[2], '1')
	off2 := strings.IndexRune(lines[3], '2')
	// Rune-aware padding: the single-digit columns must align even though
	// × is multi-byte.
	if off1 < 0 || off2 < 0 {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestBarChartBasics(t *testing.T) {
	ch := NewBarChart("Fig", "min", "single", "dist")
	if err := ch.Add("train", 100, 25); err != nil {
		t.Fatal(err)
	}
	if err := ch.Add("gather", 10, 10); err != nil {
		t.Fatal(err)
	}
	out := ch.String()
	if !strings.Contains(out, "Fig") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "100.00min") {
		t.Fatalf("missing value:\n%s", out)
	}
	// The 100-minute bar must be the longest.
	var maxHashes int
	for _, line := range strings.Split(out, "\n") {
		if n := strings.Count(line, "#"); n > maxHashes {
			maxHashes = n
		}
	}
	if maxHashes != 40 {
		t.Fatalf("longest bar %d chars, want full width 40:\n%s", maxHashes, out)
	}
	// Second series uses a different glyph.
	if !strings.Contains(out, "=") {
		t.Fatal("second series glyph missing")
	}
}

func TestBarChartSeriesMismatch(t *testing.T) {
	ch := NewBarChart("", "", "a", "b")
	if err := ch.Add("x", 1); err == nil {
		t.Fatal("wrong value count accepted")
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	ch := NewBarChart("", "", "s")
	if err := ch.Add("big", 1000); err != nil {
		t.Fatal(err)
	}
	if err := ch.Add("tiny", 0.1); err != nil {
		t.Fatal(err)
	}
	out := ch.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("tiny positive value rendered with no bar:\n%s", out)
	}
}

func TestBarChartZeroAndCustomWidth(t *testing.T) {
	ch := NewBarChart("", "", "s")
	ch.Width = 10
	if err := ch.Add("zero", 0); err != nil {
		t.Fatal(err)
	}
	out := ch.String()
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar:\n%s", out)
	}
}

func TestBarChartLabelShownOncePerGroup(t *testing.T) {
	ch := NewBarChart("", "", "a", "b")
	if err := ch.Add("group", 1, 2); err != nil {
		t.Fatal(err)
	}
	out := ch.String()
	if strings.Count(out, "group") != 1 {
		t.Fatalf("label repeated:\n%s", out)
	}
}
