// Package report renders experiment outputs as aligned text tables and
// horizontal bar charts, the terminal equivalents of the paper's tables
// and Fig 4.
package report

import (
	"fmt"
	"strings"
)

// Table is an aligned-column text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are
// dropped to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := widths[i] - len([]rune(c)); pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// BarChart renders grouped horizontal bars, e.g. single-core vs
// distributed time per routine (the paper's Fig 4).
type BarChart struct {
	Title string
	// Unit is appended to printed values.
	Unit string
	// Width is the maximum bar width in characters (default 40).
	Width int

	series []string
	labels []string
	values [][]float64 // values[group][series]
}

// NewBarChart returns a chart with the given series names.
func NewBarChart(title, unit string, series ...string) *BarChart {
	return &BarChart{Title: title, Unit: unit, series: series}
}

// Add appends one group of bars (one value per series).
func (b *BarChart) Add(label string, values ...float64) error {
	if len(values) != len(b.series) {
		return fmt.Errorf("report: group %q has %d values, chart has %d series", label, len(values), len(b.series))
	}
	b.labels = append(b.labels, label)
	b.values = append(b.values, append([]float64(nil), values...))
	return nil
}

// String renders the chart.
func (b *BarChart) String() string {
	width := b.Width
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, group := range b.values {
		for _, v := range group {
			if v > max {
				max = v
			}
		}
	}
	labelW := 0
	for _, l := range b.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	seriesW := 0
	for _, s := range b.series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	glyphs := []byte{'#', '=', '+', 'o', '*'}
	var out strings.Builder
	if b.Title != "" {
		out.WriteString(b.Title)
		out.WriteByte('\n')
	}
	for gi, label := range b.labels {
		for si, v := range b.values[gi] {
			n := 0
			if max > 0 {
				n = int(v/max*float64(width) + 0.5)
			}
			if n == 0 && v > 0 {
				n = 1
			}
			g := glyphs[si%len(glyphs)]
			fmt.Fprintf(&out, "%-*s  %-*s |%s%s %.2f%s\n",
				labelW, onceOnly(label, si), seriesW, b.series[si],
				strings.Repeat(string(g), n), strings.Repeat(" ", width-n), v, b.Unit)
		}
	}
	return out.String()
}

// onceOnly shows the group label only for its first series row.
func onceOnly(label string, seriesIdx int) string {
	if seriesIdx == 0 {
		return label
	}
	return ""
}
