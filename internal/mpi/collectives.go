package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Barrier blocks until every member of the communicator has entered it.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	if c.Size() == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			if _, err := c.recv(c.group[r], tag); err != nil {
				return err
			}
		}
		for r := 1; r < c.Size(); r++ {
			if err := c.send(r, tag, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tag, nil); err != nil {
		return err
	}
	_, err := c.recv(c.group[0], tag)
	return err
}

// Bcast distributes root's data to every member using a binomial tree
// (⌈log₂ n⌉ rounds; each holder forwards to one new member per round);
// every member receives a copy (the root gets its own payload back).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkRank(root, "root"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	size := c.Size()
	// Virtual ranks place the root at 0: vrank = (rank − root) mod n.
	vrank := (c.rank - root + size) % size
	payload := data
	if vrank != 0 {
		// Receive from the parent: clear the lowest set bit of vrank.
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := (vrank - mask + root) % size
		m, err := c.recv(c.group[parent], tag)
		if err != nil {
			return nil, err
		}
		payload = m.Data
		// Forward to children above the received bit.
		for mask >>= 1; mask > 0; mask >>= 1 {
			child := vrank + mask
			if child < size {
				if err := c.send((child+root)%size, tag, payload); err != nil {
					return nil, err
				}
			}
		}
		return payload, nil
	}
	// Root: send to vranks 1, 2, 4, 8, … descending so the highest
	// subtree starts first.
	highest := 1
	for highest < size {
		highest <<= 1
	}
	for mask := highest >> 1; mask > 0; mask >>= 1 {
		child := mask
		if child < size {
			if err := c.send((child+root)%size, tag, payload); err != nil {
				return nil, err
			}
		}
	}
	return append([]byte(nil), payload...), nil
}

// Gather collects each member's data at root. At the root the result has
// Size() entries ordered by rank; other members receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRank(root, "root"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for i := 1; i < c.Size(); i++ {
		m, err := c.recv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.Src] = m.Data
	}
	return out, nil
}

// Allgather collects each member's data and distributes the full set to
// every member, ordered by rank. This is the operation the slaves use each
// iteration to exchange center networks with their neighbourhoods
// (the paper's profile attributes the "gather" routine to MPI allgather).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = packParts(parts)
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	return unpackParts(packed, c.Size())
}

// Scatter distributes parts[i] from root to member i; every member
// (including the root) returns its own part.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkRank(root, "root"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.Size(), len(parts))
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		return append([]byte(nil), parts[root]...), nil
	}
	m, err := c.recv(c.group[root], tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// ReduceOp combines two float64 element-wise vectors in place (dst op= src).
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpProd
	OpMax
	OpMin
)

func (op ReduceOp) apply(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(dst), len(src))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpProd:
		for i, v := range src {
			dst[i] *= v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		return fmt.Errorf("mpi: unknown reduce op %d", op)
	}
	return nil
}

// EncodeFloats serialises a float64 vector for message payloads.
func EncodeFloats(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// DecodeFloats deserialises a payload produced by EncodeFloats.
func DecodeFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: float payload length %d not a multiple of 8", len(b))
	}
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs, nil
}

// Reduce combines each member's vector with op; the root returns the
// combined vector (deterministic rank order), others return nil.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) ([]float64, error) {
	parts, err := c.Gather(root, EncodeFloats(data))
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	// Combine in rank order so floating-point results are reproducible.
	acc, err := DecodeFloats(parts[0])
	if err != nil {
		return nil, err
	}
	for r := 1; r < len(parts); r++ {
		v, err := DecodeFloats(parts[r])
		if err != nil {
			return nil, err
		}
		if err := op.apply(acc, v); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Allreduce combines every member's vector with op and distributes the
// result to all members.
func (c *Comm) Allreduce(data []float64, op ReduceOp) ([]float64, error) {
	acc, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = EncodeFloats(acc)
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	return DecodeFloats(packed)
}

// packParts frames a list of byte slices as one payload.
func packParts(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(parts)))
	out = append(out, n[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(n[:], uint32(len(p)))
		out = append(out, n[:]...)
		out = append(out, p...)
	}
	return out
}

// unpackParts reverses packParts, validating the expected part count.
func unpackParts(b []byte, want int) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("mpi: packed parts too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n != want {
		return nil, fmt.Errorf("mpi: packed parts count %d, want %d", n, want)
	}
	b = b[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("mpi: truncated part header at %d", i)
		}
		l := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return nil, fmt.Errorf("mpi: truncated part %d: want %d bytes, have %d", i, l, len(b))
		}
		out[i] = append([]byte(nil), b[:l]...)
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mpi: %d trailing bytes after parts", len(b))
	}
	return out, nil
}
