package mpi

import (
	"errors"
	"sync/atomic"
)

// errProbeUnsupported is returned when a wrapped transport lacks Probe.
var errProbeUnsupported = errors.New("mpi: transport does not support Probe")

// CommStats counts the traffic of one process's communicator endpoint.
// All fields are atomic, so a telemetry scrape can read them while the
// training loop is mid-collective. Counts are taken at the endpoint, so
// every transport-level message is counted once — including collective
// protocol traffic and duplicates injected by an inner fault layer when
// the stats wrap is applied outside FaultyComm (the recommended order:
// wrap faults first, stats last, so the stats see what actually enters
// the wire).
type CommStats struct {
	SentMessages atomic.Uint64
	SentBytes    atomic.Uint64
	RecvMessages atomic.Uint64
	RecvBytes    atomic.Uint64
}

// statsEndpoint is a counting middleware endpoint, the same wrapping
// pattern as faultEndpoint.
type statsEndpoint struct {
	inner endpoint
	st    *CommStats
}

// InstrumentComm wraps a communicator's transport so every message and
// byte it sends or receives is counted in st. The returned communicator
// has the same group and rank; derive sub-communicators (Split, Dup)
// from it so they share the counters. A nil st returns c unchanged.
func InstrumentComm(c *Comm, st *CommStats) *Comm {
	if st == nil {
		return c
	}
	nc, err := newComm(&statsEndpoint{inner: c.ep, st: st}, c.id, c.group)
	if err != nil {
		// The group and rank come from a valid Comm; reconstruction cannot
		// fail.
		panic(err)
	}
	return nc
}

func (se *statsEndpoint) sendWorld(dst int, m wireMsg) error {
	if err := se.inner.sendWorld(dst, m); err != nil {
		return err
	}
	se.st.SentMessages.Add(1)
	se.st.SentBytes.Add(uint64(len(m.Data)))
	return nil
}

func (se *statsEndpoint) recvWorld(commID uint32, srcWorld, tag int) (wireMsg, error) {
	m, err := se.inner.recvWorld(commID, srcWorld, tag)
	if err != nil {
		return m, err
	}
	se.st.RecvMessages.Add(1)
	se.st.RecvBytes.Add(uint64(len(m.Data)))
	return m, nil
}

func (se *statsEndpoint) probe(commID uint32, srcWorld, tag int) (bool, error) {
	p, ok := se.inner.(interface {
		probe(commID uint32, srcWorld, tag int) (bool, error)
	})
	if !ok {
		return false, errProbeUnsupported
	}
	return p.probe(commID, srcWorld, tag)
}

func (se *statsEndpoint) tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error) {
	tr, ok := se.inner.(interface {
		tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error)
	})
	if !ok {
		return wireMsg{}, false, errors.New("mpi: transport does not support TryRecv")
	}
	m, got, err := tr.tryRecvWorld(commID, srcWorld, tag)
	if err != nil || !got {
		return m, got, err
	}
	se.st.RecvMessages.Add(1)
	se.st.RecvBytes.Add(uint64(len(m.Data)))
	return m, true, nil
}

func (se *statsEndpoint) worldRank() int { return se.inner.worldRank() }
func (se *statsEndpoint) worldSize() int { return se.inner.worldSize() }
func (se *statsEndpoint) close() error   { return se.inner.close() }
