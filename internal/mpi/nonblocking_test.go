package mpi

import (
	"fmt"
	"testing"
	"time"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 3, []byte("async"))
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 3)
		m, err := req.Wait()
		if err != nil {
			return err
		}
		if string(m.Data) != "async" || m.Src != 0 {
			return fmt.Errorf("got %+v", m)
		}
		return nil
	})
}

func TestIrecvBeforeSend(t *testing.T) {
	// Posting the receive first must not lose the message.
	runRanks(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			req := c.Irecv(0, 9)
			// Give the send time to land after the receive is posted.
			m, err := req.Wait()
			if err != nil {
				return err
			}
			if string(m.Data) != "later" {
				return fmt.Errorf("got %q", m.Data)
			}
			return nil
		}
		time.Sleep(20 * time.Millisecond)
		return c.Send(1, 9, []byte("later"))
	})
}

func TestIsendDoesNotAliasBuffer(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("orig")
			req := c.Isend(1, 1, buf)
			buf[0] = 'X'
			_, err := req.Wait()
			return err
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m.Data) != "orig" {
			return fmt.Errorf("buffer aliased: %q", m.Data)
		}
		return nil
	})
}

func TestRequestTest(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)
	req := c1.Irecv(0, 5)
	if _, done, err := req.Test(); done || err != nil {
		t.Fatalf("request completed before send: done=%v err=%v", done, err)
	}
	if err := c0.Send(1, 5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, done, err := req.Test()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if string(m.Data) != "x" {
				t.Fatalf("got %q", m.Data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWaitAll(t *testing.T) {
	runRanks(t, 3, func(c *Comm) error {
		if c.Rank() == 0 {
			var reqs []*Request
			for dst := 1; dst <= 2; dst++ {
				reqs = append(reqs, c.Isend(dst, 7, []byte{byte(dst)}))
			}
			_, err := WaitAll(reqs)
			return err
		}
		reqs := []*Request{c.Irecv(0, 7)}
		msgs, err := WaitAll(reqs)
		if err != nil {
			return err
		}
		if int(msgs[0].Data[0]) != c.Rank() {
			return fmt.Errorf("rank %d got %d", c.Rank(), msgs[0].Data[0])
		}
		return nil
	})
}

func TestWaitAllPropagatesError(t *testing.T) {
	w := MustWorld(2)
	c := w.MustComm(0)
	req := c.Irecv(1, 0)
	w.Close()
	if _, err := WaitAll([]*Request{req}); err == nil {
		t.Fatal("closed-world receive did not error")
	}
}

func TestProbeInproc(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)
	ok, err := c1.Probe(0, 4)
	if err != nil || ok {
		t.Fatalf("probe before send: %v %v", ok, err)
	}
	if err := c0.Send(1, 4, []byte("p")); err != nil {
		t.Fatal(err)
	}
	// The inproc transport delivers synchronously.
	ok, err = c1.Probe(0, 4)
	if err != nil || !ok {
		t.Fatalf("probe after send: %v %v", ok, err)
	}
	// Wildcards.
	ok, err = c1.Probe(AnySource, AnyTag)
	if err != nil || !ok {
		t.Fatalf("wildcard probe: %v %v", ok, err)
	}
	// Probing must not consume.
	m, err := c1.Recv(0, 4)
	if err != nil || string(m.Data) != "p" {
		t.Fatalf("recv after probe: %v %v", m, err)
	}
	if _, err := c1.Probe(9, 0); err == nil {
		t.Fatal("bad src accepted")
	}
}

func TestProbeTCP(t *testing.T) {
	nodes := startTCPWorld(t, 2)
	c0, _ := nodes[0].WorldComm()
	c1, _ := nodes[1].WorldComm()
	if err := c0.Send(1, 2, []byte("t")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok, err := c1.Probe(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never probed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRecvTimeout(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)

	start := time.Now()
	_, err := c1.RecvTimeout(0, 3, 50*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("got %v want ErrTimeout", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("returned before the deadline")
	}

	if err := c0.Send(1, 3, []byte("late")); err != nil {
		t.Fatal(err)
	}
	m, err := c1.RecvTimeout(0, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "late" {
		t.Fatalf("got %q", m.Data)
	}
}

func TestRecvTimeoutClosedWorld(t *testing.T) {
	w := MustWorld(2)
	c := w.MustComm(0)
	w.Close()
	if _, err := c.RecvTimeout(1, 0, time.Second); err != ErrClosed {
		t.Fatalf("got %v want ErrClosed", err)
	}
}

func TestProbeClosed(t *testing.T) {
	w := MustWorld(2)
	c := w.MustComm(0)
	w.Close()
	if _, err := c.Probe(1, 0); err != ErrClosed {
		t.Fatalf("got %v want ErrClosed", err)
	}
}

func TestTryRecvInproc(t *testing.T) {
	w := MustWorld(3)
	defer w.Close()
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)
	c2 := w.MustComm(2)

	if _, ok, err := c1.TryRecv(0, 4); err != nil || ok {
		t.Fatalf("try-recv before send: %v %v", ok, err)
	}
	if err := c0.Send(1, 4, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send(1, 4, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Source-specific match skips the non-matching message.
	m, ok, err := c1.TryRecv(2, 4)
	if err != nil || !ok || string(m.Data) != "b" || m.Src != 2 {
		t.Fatalf("try-recv src 2: %v %v %v", m, ok, err)
	}
	// Wildcard drains what remains, then reports empty.
	m, ok, err = c1.TryRecv(AnySource, AnyTag)
	if err != nil || !ok || string(m.Data) != "a" {
		t.Fatalf("wildcard try-recv: %v %v %v", m, ok, err)
	}
	if _, ok, err = c1.TryRecv(AnySource, AnyTag); err != nil || ok {
		t.Fatalf("drained mailbox still yields: %v %v", ok, err)
	}
	if _, _, err := c1.TryRecv(9, 0); err == nil {
		t.Fatal("bad src accepted")
	}
}

func TestTryRecvTCP(t *testing.T) {
	nodes := startTCPWorld(t, 2)
	c0, _ := nodes[0].WorldComm()
	c1, _ := nodes[1].WorldComm()
	if err := c0.Send(1, 2, []byte("t")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, ok, err := c1.TryRecv(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if string(m.Data) != "t" {
				t.Fatalf("got %q", m.Data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTryRecvClosed(t *testing.T) {
	w := MustWorld(2)
	c := w.MustComm(0)
	w.Close()
	if _, _, err := c.TryRecv(1, 0); err != ErrClosed {
		t.Fatalf("got %v want ErrClosed", err)
	}
}

func TestTryRecvThroughWrappers(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	var st CommStats
	c0 := w.MustComm(0)
	c1 := InstrumentComm(FaultyComm(w.MustComm(1), FaultPlan{Seed: 1, DupProb: 1e-9}), &st)
	if err := c0.Send(1, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m, ok, err := c1.TryRecv(0, 7)
	if err != nil || !ok || string(m.Data) != "x" {
		t.Fatalf("wrapped try-recv: %v %v %v", m, ok, err)
	}
	if st.RecvMessages.Load() != 1 {
		t.Fatalf("stats saw %d receives, want 1", st.RecvMessages.Load())
	}
}
