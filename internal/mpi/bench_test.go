package mpi

import (
	"sync"
	"testing"
	"time"
)

func BenchmarkInprocPingPong(b *testing.B) {
	w := MustWorld(2)
	defer w.Close()
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m, err := c1.Recv(0, 1)
			if err != nil {
				b.Error(err)
				return
			}
			if err := c1.Send(0, 2, m.Data); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c0.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c0.Recv(1, 2); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

func BenchmarkTCPPingPong(b *testing.B) {
	nodes := make([]*TCPNode, 2)
	addrs := make([]string, 2)
	for r := 0; r < 2; r++ {
		node, err := ListenTCP(r, 2, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		nodes[r] = node
		addrs[r] = node.Addr()
		defer node.Close()
	}
	var wg sync.WaitGroup
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *TCPNode) {
			defer wg.Done()
			if err := nd.Connect(addrs, 5*time.Second); err != nil {
				b.Error(err)
			}
		}(nd)
	}
	wg.Wait()
	c0, _ := nodes[0].WorldComm()
	c1, _ := nodes[1].WorldComm()
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m, err := c1.Recv(0, 1)
			if err != nil {
				b.Error(err)
				return
			}
			if err := c1.Send(0, 2, m.Data); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c0.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c0.Recv(1, 2); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// runCollective drives one collective call on every rank concurrently.
func runCollective(b *testing.B, comms []*Comm, f func(c *Comm) error) {
	b.Helper()
	var wg sync.WaitGroup
	for _, c := range comms {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			if err := f(c); err != nil {
				b.Error(err)
			}
		}(c)
	}
	wg.Wait()
}

func BenchmarkBarrier16(b *testing.B) {
	w := MustWorld(16)
	defer w.Close()
	comms := w.Comms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollective(b, comms, func(c *Comm) error { return c.Barrier() })
	}
}

func BenchmarkBcast16_64KiB(b *testing.B) {
	w := MustWorld(16)
	defer w.Close()
	comms := w.Comms()
	payload := make([]byte, 64*1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollective(b, comms, func(c *Comm) error {
			var data []byte
			if c.Rank() == 0 {
				data = payload
			}
			_, err := c.Bcast(0, data)
			return err
		})
	}
}

func BenchmarkAllreduce16(b *testing.B) {
	w := MustWorld(16)
	defer w.Close()
	comms := w.Comms()
	vec := make([]float64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollective(b, comms, func(c *Comm) error {
			_, err := c.Allreduce(vec, OpSum)
			return err
		})
	}
}
