package mpi

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements deterministic fault injection: a middleware endpoint
// that wraps any transport (inproc or TCP) and injects message drops,
// duplicated deliveries, bounded delivery delays and one-way partitions —
// the failure modes of the best-effort queue the paper's jobs ran on
// (Cluster-UY preempts slave processes at will).
//
// Every decision is derived from (plan seed, sender rank, destination,
// tag, per-stream message count) and never from the wall clock, so a chaos
// scenario is bit-reproducible: the same (seed, schedule) pair yields the
// same faults on every run. Delays are expressed in *messages*, not
// milliseconds — a delayed message is held back until later sends on the
// same stream overtake it — which keeps the reordering schedule
// count-deterministic too.

// ErrCrashed is returned by operations on an endpoint whose rank was
// killed by an injected CrashPoint — the fault-injection analogue of a
// preempted cluster process.
var ErrCrashed = errors.New("mpi: rank crashed (injected fault)")

// Partition is a one-way link failure: messages from rank From to rank To
// whose per-stream sequence number falls in [FromSeq, ToSeq) are dropped.
// Tag scopes the window to one message stream; AnyTag partitions every
// user-tag stream of the (From, To) pair using a shared pair counter.
type Partition struct {
	From, To int
	Tag      int
	FromSeq  int
	ToSeq    int
}

// CrashPoint kills a rank after it completes AfterSends matching sends:
// the Nth matching send is still delivered, every operation after it fails
// with ErrCrashed. Tag selects which sends count; AnyTag counts every
// user-tag send.
type CrashPoint struct {
	Rank       int
	Tag        int
	AfterSends int
}

// FaultPlan is a deterministic chaos schedule. Probabilities are applied
// per message via a seeded hash of (rank, destination, tag, stream
// sequence), so two runs with the same plan inject identical faults.
// Collective-protocol messages (reserved tags) are never faulted: the plan
// targets the application protocol, not the transport bootstrap.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// DropProb is the probability a message is silently discarded.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayProb is the probability a message is held back behind later
	// sends on its stream (a count-based reordering delay).
	DelayProb float64
	// MaxDelayHold bounds how many subsequent same-stream sends a delayed
	// message waits behind; 0 defaults to 2.
	MaxDelayHold int
	// Tags, when non-empty, restricts probabilistic faults to these tags.
	Tags []int
	// Partitions are scheduled one-way link failures.
	Partitions []Partition
	// Crashes are scheduled rank deaths.
	Crashes []CrashPoint
	// Stats, when non-nil, counts every injected fault as it fires, so a
	// chaos run can report what the schedule actually did. Shared across
	// the ranks of a job to aggregate, or per-rank to attribute.
	Stats *FaultStats
}

// FaultStats counts injected faults. All fields are atomic: ranks inject
// concurrently and telemetry scrapes read while they do.
type FaultStats struct {
	Drops          atomic.Uint64
	Dups           atomic.Uint64
	Delays         atomic.Uint64
	PartitionDrops atomic.Uint64
	Crashes        atomic.Uint64
}

// Active reports whether the plan injects anything at all.
func (p FaultPlan) Active() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.DelayProb > 0 ||
		len(p.Partitions) > 0 || len(p.Crashes) > 0
}

// holdFlushAge is the backstop for held (delayed) messages: a flusher
// releases anything held longer than this so a delayed final message on an
// otherwise-quiet stream cannot deadlock the job. In a live run the
// count-based release fires first; the backstop only matters when a stream
// goes silent, where both runs stall identically.
const holdFlushAge = 250 * time.Millisecond

// splitmix64 is the SplitMix64 finalizer, the repo's standard seeding hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultHash derives a decision value for one (message, salt) pair.
func faultHash(seed uint64, src, dst, tag, seq int, salt uint64) uint64 {
	h := splitmix64(seed ^ salt)
	h = splitmix64(h ^ uint64(int64(src))*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(int64(dst))*0xc2b2ae3d27d4eb4f)
	h = splitmix64(h ^ uint64(int64(tag))*0x165667b19e3779f9)
	h = splitmix64(h ^ uint64(int64(seq)))
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

const (
	saltDrop  = 0xd6e8feb86659fd93
	saltDup   = 0xa3b195354a39b70d
	saltDelay = 0x1b03738712fad5c9
	saltHold  = 0x9c06faf4d023e3ab
)

// streamKey identifies one (destination, tag) message stream of a sender.
type streamKey struct {
	dst, tag int
}

// heldMsg is a delayed message awaiting release.
type heldMsg struct {
	dst          int
	m            wireMsg
	releaseAfter int // same-stream sequence number that releases it
	heldAt       time.Time
}

// faultEndpoint wraps a real endpoint with the fault plan.
type faultEndpoint struct {
	inner endpoint
	plan  FaultPlan
	tags  map[int]bool // nil = all user tags

	mu       sync.Mutex
	streams  map[streamKey]*faultStream
	pairSeq  map[int]int // per-destination counter for AnyTag windows
	crashAt  map[int]int // crash-point index -> matching sends so far
	crashed  bool
	flusher  *time.Ticker
	stopOnce sync.Once
	stop     chan struct{}
}

// faultStream is the per-(dst, tag) counter and hold queue.
type faultStream struct {
	seq  int
	held []heldMsg
}

// FaultyComm wraps a communicator's transport with the fault plan and
// returns a communicator with identical group and rank whose traffic is
// subject to the schedule. Derive sub-communicators (Split, Dup) from the
// returned Comm so they inherit the faults. Wrapping with an inactive plan
// returns c unchanged.
func FaultyComm(c *Comm, plan FaultPlan) *Comm {
	if !plan.Active() {
		return c
	}
	if plan.MaxDelayHold <= 0 {
		plan.MaxDelayHold = 2
	}
	fe := &faultEndpoint{
		inner:   c.ep,
		plan:    plan,
		streams: make(map[streamKey]*faultStream),
		pairSeq: make(map[int]int),
		crashAt: make(map[int]int),
		stop:    make(chan struct{}),
	}
	if len(plan.Tags) > 0 {
		fe.tags = make(map[int]bool, len(plan.Tags))
		for _, t := range plan.Tags {
			fe.tags[t] = true
		}
	}
	nc, err := newComm(fe, c.id, c.group)
	if err != nil {
		// The group and rank come from a valid Comm; reconstruction cannot
		// fail.
		panic(err)
	}
	return nc
}

// inScope reports whether probabilistic faults apply to this tag.
func (fe *faultEndpoint) inScope(tag int) bool {
	if tag < 0 || tag >= maxUserTag {
		return false // never fault the collective protocol
	}
	if fe.tags == nil {
		return true
	}
	return fe.tags[tag]
}

// sendWorld applies the schedule to one outgoing message.
func (fe *faultEndpoint) sendWorld(dst int, m wireMsg) error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.crashed {
		return ErrCrashed
	}
	if !fe.inScope(m.Tag) {
		return fe.inner.sendWorld(dst, m)
	}

	me := fe.inner.worldRank()
	key := streamKey{dst: dst, tag: m.Tag}
	st := fe.streams[key]
	if st == nil {
		st = &faultStream{}
		fe.streams[key] = st
	}
	seq := st.seq
	st.seq++
	pairSeq := fe.pairSeq[dst]
	fe.pairSeq[dst]++

	// Crash points: the matching send still goes out, then the rank dies.
	crashNow := false
	for i, cp := range fe.plan.Crashes {
		if cp.Rank != me {
			continue
		}
		if cp.Tag != AnyTag && cp.Tag != m.Tag {
			continue
		}
		fe.crashAt[i]++
		if fe.crashAt[i] >= cp.AfterSends {
			crashNow = true
		}
	}

	err := fe.deliverLocked(dst, m, st, seq, pairSeq, me)
	if crashNow {
		fe.crashLocked()
	}
	return err
}

// deliverLocked decides the fate of one in-scope message and releases any
// due held messages. Caller holds fe.mu.
func (fe *faultEndpoint) deliverLocked(dst int, m wireMsg, st *faultStream, seq, pairSeq, me int) error {
	// One-way partitions.
	for _, p := range fe.plan.Partitions {
		if p.From != me || p.To != dst {
			continue
		}
		w := seq
		if p.Tag == AnyTag {
			w = pairSeq
		} else if p.Tag != m.Tag {
			continue
		}
		if w >= p.FromSeq && w < p.ToSeq {
			if fe.plan.Stats != nil {
				fe.plan.Stats.PartitionDrops.Add(1)
			}
			fe.releaseDueLocked(st, seq)
			return nil // dropped by partition
		}
	}

	switch {
	case unit(faultHash(fe.plan.Seed, me, dst, m.Tag, seq, saltDrop)) < fe.plan.DropProb:
		// Dropped: the message vanishes but still advances the counters.
		if fe.plan.Stats != nil {
			fe.plan.Stats.Drops.Add(1)
		}
	case unit(faultHash(fe.plan.Seed, me, dst, m.Tag, seq, saltDup)) < fe.plan.DupProb:
		if fe.plan.Stats != nil {
			fe.plan.Stats.Dups.Add(1)
		}
		if err := fe.inner.sendWorld(dst, m); err != nil {
			return err
		}
		if err := fe.inner.sendWorld(dst, m); err != nil {
			return err
		}
	case unit(faultHash(fe.plan.Seed, me, dst, m.Tag, seq, saltDelay)) < fe.plan.DelayProb:
		if fe.plan.Stats != nil {
			fe.plan.Stats.Delays.Add(1)
		}
		hold := 1 + int(faultHash(fe.plan.Seed, me, dst, m.Tag, seq, saltHold)%uint64(fe.plan.MaxDelayHold))
		st.held = append(st.held, heldMsg{dst: dst, m: m, releaseAfter: seq + hold, heldAt: time.Now()})
		fe.ensureFlusherLocked()
	default:
		if err := fe.inner.sendWorld(dst, m); err != nil {
			return err
		}
	}
	fe.releaseDueLocked(st, seq)
	return nil
}

// releaseDueLocked delivers held messages whose release sequence has been
// reached, preserving FIFO order within the stream. Caller holds fe.mu.
func (fe *faultEndpoint) releaseDueLocked(st *faultStream, seq int) {
	for len(st.held) > 0 && st.held[0].releaseAfter <= seq {
		h := st.held[0]
		st.held = st.held[1:]
		_ = fe.inner.sendWorld(h.dst, h.m)
	}
}

// ensureFlusherLocked starts the backstop flusher on first hold.
func (fe *faultEndpoint) ensureFlusherLocked() {
	if fe.flusher != nil {
		return
	}
	fe.flusher = time.NewTicker(holdFlushAge / 4)
	go func() {
		for {
			select {
			case <-fe.stop:
				return
			case <-fe.flusher.C:
				fe.flushAged()
			}
		}
	}()
}

// flushAged releases held messages older than the backstop age.
func (fe *faultEndpoint) flushAged() {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.crashed {
		return
	}
	now := time.Now()
	for _, st := range fe.streams {
		for len(st.held) > 0 && now.Sub(st.held[0].heldAt) >= holdFlushAge {
			h := st.held[0]
			st.held = st.held[1:]
			_ = fe.inner.sendWorld(h.dst, h.m)
		}
	}
}

// crashLocked kills the rank: held messages are discarded and every
// subsequent operation fails. Caller holds fe.mu.
func (fe *faultEndpoint) crashLocked() {
	if fe.plan.Stats != nil {
		fe.plan.Stats.Crashes.Add(1)
	}
	fe.crashed = true
	for _, st := range fe.streams {
		st.held = nil
	}
	fe.stopFlusher()
}

func (fe *faultEndpoint) stopFlusher() {
	fe.stopOnce.Do(func() { close(fe.stop) })
	if fe.flusher != nil {
		fe.flusher.Stop()
	}
}

func (fe *faultEndpoint) recvWorld(commID uint32, srcWorld, tag int) (wireMsg, error) {
	fe.mu.Lock()
	dead := fe.crashed
	fe.mu.Unlock()
	if dead {
		return wireMsg{}, ErrCrashed
	}
	return fe.inner.recvWorld(commID, srcWorld, tag)
}

func (fe *faultEndpoint) probe(commID uint32, srcWorld, tag int) (bool, error) {
	fe.mu.Lock()
	dead := fe.crashed
	fe.mu.Unlock()
	if dead {
		return false, ErrCrashed
	}
	p, ok := fe.inner.(interface {
		probe(commID uint32, srcWorld, tag int) (bool, error)
	})
	if !ok {
		return false, errors.New("mpi: transport does not support Probe")
	}
	return p.probe(commID, srcWorld, tag)
}

func (fe *faultEndpoint) tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error) {
	fe.mu.Lock()
	dead := fe.crashed
	fe.mu.Unlock()
	if dead {
		return wireMsg{}, false, ErrCrashed
	}
	tr, ok := fe.inner.(interface {
		tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error)
	})
	if !ok {
		return wireMsg{}, false, errors.New("mpi: transport does not support TryRecv")
	}
	return tr.tryRecvWorld(commID, srcWorld, tag)
}

func (fe *faultEndpoint) worldRank() int { return fe.inner.worldRank() }
func (fe *faultEndpoint) worldSize() int { return fe.inner.worldSize() }

func (fe *faultEndpoint) close() error {
	fe.mu.Lock()
	fe.stopFlusher()
	fe.mu.Unlock()
	return fe.inner.close()
}
