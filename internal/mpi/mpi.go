// Package mpi implements the message-passing substrate of the parallel
// implementation: MPI-flavoured communicators over interchangeable
// transports.
//
// The paper's implementation uses mpi4py with three communication contexts
// — WORLD for global control, LOCAL for collective operations among active
// slaves, and GLOBAL for collectives that include the master (§III-D). This
// package reproduces that surface: point-to-point tagged Send/Recv with
// wildcard source/tag, the collective operations the training loop needs
// (Barrier, Bcast, Gather, Allgather, Scatter, Reduce, Allreduce), CommSplit
// for deriving sub-communicators, and a Cartesian topology helper mirroring
// MPI_CART_CREATE.
//
// Two transports are provided. The inproc transport runs every rank as a
// goroutine inside one process and carries messages over in-memory
// mailboxes; it is the default for training and testing. The tcp transport
// (see tcp.go) connects genuinely separate processes over sockets with the
// same semantics, enabling real distributed deployment.
package mpi

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
)

// Wildcards for Recv, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// maxUserTag bounds application tags; larger tags are reserved for the
// collective-operation protocol.
const maxUserTag = 1 << 24

// collTagBase is the start of the reserved collective tag space.
const collTagBase = 1 << 25

// ErrClosed is returned by operations on a closed communicator or
// transport.
var ErrClosed = errors.New("mpi: communicator closed")

// Message is a received point-to-point message.
type Message struct {
	// Src is the comm-relative rank of the sender.
	Src int
	// Tag is the application tag the message was sent with.
	Tag int
	// Data is the payload (owned by the receiver).
	Data []byte
}

// wireMsg is the transport-level representation of a message. Src is a
// world rank; Comm scopes the message to one communicator.
type wireMsg struct {
	Comm uint32
	Src  int
	Tag  int
	Data []byte
}

// endpoint is the per-process transport handle. Implementations must be
// safe for concurrent use.
type endpoint interface {
	// sendWorld delivers m to the process with the given world rank.
	sendWorld(dstWorld int, m wireMsg) error
	// recvWorld blocks until a message matching (commID, srcWorld, tag)
	// arrives; srcWorld/tag may be AnySource/AnyTag.
	recvWorld(commID uint32, srcWorld int, tag int) (wireMsg, error)
	// worldRank is this process's rank in the world communicator.
	worldRank() int
	// worldSize is the total number of processes.
	worldSize() int
	// close releases the endpoint, unblocking pending receives.
	close() error
}

// worldCommID is the communicator id of the world communicator on every
// transport.
const worldCommID uint32 = 1

// Comm is a communicator: an ordered group of processes with a private
// message context. A Comm handle belongs to one process; its methods may
// be called from multiple goroutines of that process.
type Comm struct {
	ep endpoint
	id uint32
	// group maps comm rank -> world rank.
	group []int
	// worldToComm maps world rank -> comm rank.
	worldToComm map[int]int
	rank        int

	collSeq  atomic.Uint32
	splitSeq atomic.Uint32
}

func newComm(ep endpoint, id uint32, group []int) (*Comm, error) {
	w2c := make(map[int]int, len(group))
	for i, wr := range group {
		w2c[wr] = i
	}
	me, ok := w2c[ep.worldRank()]
	if !ok {
		return nil, fmt.Errorf("mpi: process %d not in communicator group %v", ep.worldRank(), group)
	}
	return &Comm{ep: ep, id: id, group: group, worldToComm: w2c, rank: me}, nil
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.ep.worldRank() }

// Group returns a copy of the comm-rank → world-rank mapping.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

func (c *Comm) checkRank(r int, what string) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("mpi: %s rank %d out of range [0,%d)", what, r, len(c.group))
	}
	return nil
}

// Send delivers data to dst (comm rank) with the given tag. The payload is
// not aliased after Send returns.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkRank(dst, "destination"); err != nil {
		return err
	}
	if tag < 0 || tag >= maxUserTag {
		return fmt.Errorf("mpi: tag %d out of range [0,%d)", tag, maxUserTag)
	}
	return c.send(dst, tag, data)
}

// send skips user-tag validation so collectives can use reserved tags.
func (c *Comm) send(dst, tag int, data []byte) error {
	buf := append([]byte(nil), data...)
	return c.ep.sendWorld(c.group[dst], wireMsg{Comm: c.id, Src: c.ep.worldRank(), Tag: tag, Data: buf})
}

// Recv blocks until a message from src (or AnySource) with the given tag
// (or AnyTag) arrives on this communicator.
func (c *Comm) Recv(src, tag int) (Message, error) {
	srcWorld := AnySource
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return Message{}, err
		}
		srcWorld = c.group[src]
	}
	if tag != AnyTag && (tag < 0 || tag >= maxUserTag) {
		return Message{}, fmt.Errorf("mpi: tag %d out of range [0,%d)", tag, maxUserTag)
	}
	return c.recv(srcWorld, tag)
}

// recv matches on world source rank and raw (possibly reserved) tags.
func (c *Comm) recv(srcWorld, tag int) (Message, error) {
	m, err := c.ep.recvWorld(c.id, srcWorld, tag)
	if err != nil {
		return Message{}, err
	}
	commSrc, ok := c.worldToComm[m.Src]
	if !ok {
		return Message{}, fmt.Errorf("mpi: message from world rank %d not in communicator", m.Src)
	}
	return Message{Src: commSrc, Tag: m.Tag, Data: m.Data}, nil
}

// Sendrecv performs a combined send to dst and receive from src with the
// same tag, as MPI_Sendrecv; it never deadlocks under paired usage because
// the send buffers the payload before blocking on the receive.
func (c *Comm) Sendrecv(dst, src, tag int, data []byte) (Message, error) {
	if err := c.Send(dst, tag, data); err != nil {
		return Message{}, err
	}
	return c.Recv(src, tag)
}

// Close releases the communicator's transport endpoint. All communicators
// derived from the same endpoint become unusable.
func (c *Comm) Close() error { return c.ep.close() }

// nextCollTag reserves a tag for one collective operation. Members of a
// communicator invoke collectives in the same order, so independent
// counters agree across processes.
func (c *Comm) nextCollTag() int {
	return collTagBase + int(c.collSeq.Add(1))
}

// Split partitions the communicator by color, as MPI_Comm_split: processes
// passing the same color form a new communicator, ranked by (key, old
// rank). Every member of c must call Split. A negative color returns
// (nil, nil): the caller does not join any new communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Exchange (color, key) with every member.
	payload := make([]byte, 16)
	putI64(payload[0:], int64(color))
	putI64(payload[8:], int64(key))
	all, err := c.Allgather(payload)
	if err != nil {
		return nil, fmt.Errorf("mpi: split exchange: %w", err)
	}
	gen := c.splitSeq.Add(1)
	if color < 0 {
		return nil, nil
	}
	type member struct {
		key, commRank int
	}
	var members []member
	for r, b := range all {
		if len(b) != 16 {
			return nil, fmt.Errorf("mpi: split: malformed exchange payload from rank %d", r)
		}
		if int(getI64(b[0:])) == color {
			members = append(members, member{key: int(getI64(b[8:])), commRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].commRank < members[j].commRank
	})
	group := make([]int, len(members))
	for i, m := range members {
		group[i] = c.group[m.commRank]
	}
	// Derive a communicator id every member computes identically.
	h := fnv.New32a()
	var hb [12]byte
	put32(hb[0:], c.id)
	put32(hb[4:], gen)
	put32(hb[8:], uint32(color))
	h.Write(hb[:])
	id := h.Sum32()
	if id <= worldCommID {
		id += 2
	}
	return newComm(c.ep, id, group)
}

// Dup returns a new communicator with the same group but a separate
// message context, like MPI_Comm_dup. Every member must call Dup.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}

func putI64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
