package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Request is a handle on a non-blocking operation, in the spirit of
// MPI_Request. Exactly one of Wait or repeated Test calls should be used
// to complete it.
type Request struct {
	mu   sync.Mutex
	done chan struct{}
	msg  Message
	err  error
}

func newRequest() *Request {
	return &Request{done: make(chan struct{})}
}

func (r *Request) complete(m Message, err error) {
	r.mu.Lock()
	r.msg = m
	r.err = err
	r.mu.Unlock()
	close(r.done)
}

// Wait blocks until the operation completes and returns its result. For a
// send request the Message is zero-valued.
func (r *Request) Wait() (Message, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msg, r.err
}

// Test reports whether the operation has completed; when it has, the
// result is returned as from Wait.
func (r *Request) Test() (Message, bool, error) {
	select {
	case <-r.done:
		m, err := r.Wait()
		return m, true, err
	default:
		return Message{}, false, nil
	}
}

// Isend starts a non-blocking send and returns immediately. Completion
// means the message is handed to the transport (both transports buffer,
// so Isend cannot deadlock against a matching Irecv).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	req := newRequest()
	buf := append([]byte(nil), data...)
	go func() {
		req.complete(Message{}, c.Send(dst, tag, buf))
	}()
	return req
}

// Irecv starts a non-blocking receive matching (src, tag), which may use
// the AnySource/AnyTag wildcards.
func (c *Comm) Irecv(src, tag int) *Request {
	req := newRequest()
	go func() {
		m, err := c.Recv(src, tag)
		req.complete(m, err)
	}()
	return req
}

// WaitAll completes every request, returning the messages in order and
// the first error encountered (all requests are still drained).
func WaitAll(reqs []*Request) ([]Message, error) {
	msgs := make([]Message, len(reqs))
	var firstErr error
	for i, r := range reqs {
		m, err := r.Wait()
		msgs[i] = m
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: request %d: %w", i, err)
		}
	}
	return msgs, firstErr
}

// ErrTimeout is returned by RecvTimeout when no matching message arrives
// in time.
var ErrTimeout = errors.New("mpi: receive timed out")

// RecvTimeout is Recv with a deadline: it polls the mailbox via Probe and
// returns ErrTimeout if no matching message arrives within d. The master
// uses it to detect unresponsive slaves instead of blocking forever.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, error) {
	deadline := time.Now().Add(d)
	sleep := time.Millisecond
	for {
		ok, err := c.Probe(src, tag)
		if err != nil {
			return Message{}, err
		}
		if ok {
			return c.Recv(src, tag)
		}
		if time.Now().After(deadline) {
			return Message{}, ErrTimeout
		}
		time.Sleep(sleep)
		if sleep < 16*time.Millisecond {
			sleep *= 2
		}
	}
}

// TryRecv receives a message matching (src, tag) if one is already
// queued, without blocking; ok is false when nothing matches right now.
// Unlike a Probe/Recv pair it is race-free under concurrent receivers:
// the matching message is removed atomically, so two goroutines draining
// the same pattern never block each other. The asynchronous exchange
// loops drain their neighbour-state mailboxes with it.
func (c *Comm) TryRecv(src, tag int) (Message, bool, error) {
	srcWorld := AnySource
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return Message{}, false, err
		}
		srcWorld = c.group[src]
	}
	if tag != AnyTag && (tag < 0 || tag >= maxUserTag) {
		return Message{}, false, fmt.Errorf("mpi: tag %d out of range [0,%d)", tag, maxUserTag)
	}
	type tryRecver interface {
		tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error)
	}
	tr, ok := c.ep.(tryRecver)
	if !ok {
		return Message{}, false, fmt.Errorf("mpi: transport does not support TryRecv")
	}
	m, ok, err := tr.tryRecvWorld(c.id, srcWorld, tag)
	if err != nil || !ok {
		return Message{}, false, err
	}
	commSrc, inGroup := c.worldToComm[m.Src]
	if !inGroup {
		return Message{}, false, fmt.Errorf("mpi: message from world rank %d not in communicator", m.Src)
	}
	return Message{Src: commSrc, Tag: m.Tag, Data: m.Data}, true, nil
}

func (e *inprocEndpoint) tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error) {
	return e.w.boxes[e.rank].tryTake(commID, srcWorld, tag)
}

func (t *TCPNode) tryRecvWorld(commID uint32, srcWorld, tag int) (wireMsg, bool, error) {
	return t.inbox.tryTake(commID, srcWorld, tag)
}

// Probe reports whether a message matching (src, tag) is available
// without receiving it. It never blocks.
func (c *Comm) Probe(src, tag int) (bool, error) {
	srcWorld := AnySource
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return false, err
		}
		srcWorld = c.group[src]
	}
	type prober interface {
		probe(commID uint32, srcWorld, tag int) (bool, error)
	}
	p, ok := c.ep.(prober)
	if !ok {
		return false, fmt.Errorf("mpi: transport does not support Probe")
	}
	return p.probe(c.id, srcWorld, tag)
}

// probe on the shared mailbox scans without removing.
func (b *mailbox) probe(commID uint32, srcWorld, tag int) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false, ErrClosed
	}
	for _, m := range b.queue {
		if matches(m, commID, srcWorld, tag) {
			return true, nil
		}
	}
	return false, nil
}

func (e *inprocEndpoint) probe(commID uint32, srcWorld, tag int) (bool, error) {
	return e.w.boxes[e.rank].probe(commID, srcWorld, tag)
}

func (t *TCPNode) probe(commID uint32, srcWorld, tag int) (bool, error) {
	return t.inbox.probe(commID, srcWorld, tag)
}
