package mpi

import (
	"fmt"
	"testing"
	"time"
)

// faultPair builds a 2-rank inproc world where rank 0's traffic is subject
// to the plan and rank 1 receives cleanly.
func faultPair(t *testing.T, plan FaultPlan) (*Comm, *Comm) {
	t.Helper()
	w := MustWorld(2)
	t.Cleanup(w.Close)
	return FaultyComm(w.MustComm(0), plan), w.MustComm(1)
}

// faultTrace records the fate of n sends under a plan by sending numbered
// messages and draining whatever arrives.
func faultTrace(t *testing.T, plan FaultPlan, n int) []string {
	t.Helper()
	sender, receiver := faultPair(t, plan)
	for i := 0; i < n; i++ {
		if err := sender.Send(1, 7, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// A final in-scope flush message plus the aged-hold backstop guarantee
	// held messages drain before we stop reading.
	var got []string
	for {
		m, err := receiver.RecvTimeout(0, 7, 2*holdFlushAge)
		if err != nil {
			break
		}
		got = append(got, string(m.Data))
	}
	return got
}

func TestFaultPlanDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, DropProb: 0.2, DupProb: 0.2, DelayProb: 0.3}
	a := faultTrace(t, plan, 40)
	b := faultTrace(t, plan, 40)
	if len(a) == 0 {
		t.Fatal("every message lost — plan too aggressive for the test")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same (seed, schedule) produced different traces:\n%v\n%v", a, b)
	}
	// A different seed must produce a different schedule (overwhelmingly
	// likely over 40 messages with these rates).
	c := faultTrace(t, FaultPlan{Seed: 43, DropProb: 0.2, DupProb: 0.2, DelayProb: 0.3}, 40)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFaultDropAndDup(t *testing.T) {
	got := faultTrace(t, FaultPlan{Seed: 7, DropProb: 0.5}, 30)
	if len(got) == 0 || len(got) >= 30 {
		t.Fatalf("drop plan delivered %d of 30", len(got))
	}
	seen := make(map[string]int)
	for _, g := range got {
		seen[g]++
		if seen[g] > 1 {
			t.Fatalf("drop-only plan duplicated %s", g)
		}
	}

	got = faultTrace(t, FaultPlan{Seed: 7, DupProb: 0.5}, 30)
	if len(got) <= 30 {
		t.Fatalf("dup plan delivered %d of 30, want > 30", len(got))
	}
}

func TestFaultDelayReorders(t *testing.T) {
	// Delay-only plan: everything arrives exactly once, and with a high
	// delay rate over many messages some arrive out of order.
	got := faultTrace(t, FaultPlan{Seed: 3, DelayProb: 0.6, MaxDelayHold: 3}, 40)
	if len(got) != 40 {
		t.Fatalf("delay plan delivered %d of 40", len(got))
	}
	inOrder := true
	seen := make(map[string]bool)
	for i, g := range got {
		if seen[g] {
			t.Fatalf("delay plan duplicated %s", g)
		}
		seen[g] = true
		if g != fmt.Sprintf("m%d", i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("delay plan delivered all 40 messages in order")
	}
}

func TestFaultPartitionWindow(t *testing.T) {
	// Drop sends 3..6 on the (0→1, tag 7) stream; everything else flows.
	plan := FaultPlan{
		Seed:       1,
		Partitions: []Partition{{From: 0, To: 1, Tag: 7, FromSeq: 3, ToSeq: 6}},
	}
	got := faultTrace(t, plan, 10)
	if len(got) != 7 {
		t.Fatalf("partition delivered %d of 10, want 7", len(got))
	}
	for _, g := range got {
		for i := 3; i < 6; i++ {
			if g == fmt.Sprintf("m%d", i) {
				t.Fatalf("partitioned message %s delivered", g)
			}
		}
	}
}

func TestFaultCrashPoint(t *testing.T) {
	plan := FaultPlan{
		Seed:    1,
		Crashes: []CrashPoint{{Rank: 0, Tag: 7, AfterSends: 3}},
	}
	sender, receiver := faultPair(t, plan)
	// The third matching send is still delivered...
	for i := 0; i < 3; i++ {
		if err := sender.Send(1, 7, []byte("x")); err != nil {
			t.Fatalf("send %d before crash: %v", i, err)
		}
	}
	// ...then the rank is dead for sends and receives.
	if err := sender.Send(1, 7, []byte("x")); err != ErrCrashed {
		t.Fatalf("send after crash: %v, want ErrCrashed", err)
	}
	if _, err := sender.Recv(1, AnyTag); err != ErrCrashed {
		t.Fatalf("recv after crash: %v, want ErrCrashed", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := receiver.RecvTimeout(0, 7, time.Second); err != nil {
			t.Fatalf("pre-crash message %d lost: %v", i, err)
		}
	}
	// Other ranks' sends don't count toward rank 0's crash point.
	if err := receiver.Send(0, 7, []byte("y")); err != nil {
		t.Fatalf("peer send: %v", err)
	}
}

func TestFaultScopeAndPassthrough(t *testing.T) {
	// Tag scoping: faults on tag 7 only; tag 8 is untouched.
	plan := FaultPlan{Seed: 9, DropProb: 1, Tags: []int{7}}
	sender, receiver := faultPair(t, plan)
	if err := sender.Send(1, 7, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(1, 8, []byte("safe")); err != nil {
		t.Fatal(err)
	}
	m, err := receiver.RecvTimeout(0, 8, time.Second)
	if err != nil || string(m.Data) != "safe" {
		t.Fatalf("out-of-scope message: %v %v", m, err)
	}
	if ok, _ := receiver.Probe(0, 7); ok {
		t.Fatal("in-scope message survived DropProb=1")
	}

	// Inactive plan returns the identical communicator.
	w := MustWorld(1)
	defer w.Close()
	c := w.MustComm(0)
	if FaultyComm(c, FaultPlan{Seed: 123}) != c {
		t.Fatal("inactive plan wrapped the comm")
	}
}

func TestFaultCollectivesSurvive(t *testing.T) {
	// Collective-protocol tags are reserved and must never be faulted, so
	// collectives work even under a total drop plan.
	w := MustWorld(3)
	defer w.Close()
	plan := FaultPlan{Seed: 5, DropProb: 1}
	errs := make(chan error, 3)
	for r := 0; r < 3; r++ {
		go func(r int) {
			c := FaultyComm(w.MustComm(r), plan)
			parts, err := c.Allgather([]byte{byte(r)})
			if err == nil && len(parts) != 3 {
				err = fmt.Errorf("allgather returned %d parts", len(parts))
			}
			errs <- err
		}(r)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
