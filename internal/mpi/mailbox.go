package mpi

import "sync"

// mailbox is an in-order message store with blocking, predicate-matched
// receives. Both transports (inproc and tcp) deliver incoming wire messages
// into a mailbox; Comm.Recv drains it with (comm, src, tag) matching,
// preserving MPI's non-overtaking order for messages that match the same
// receive pattern.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []wireMsg
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put appends a message and wakes any blocked receivers.
func (b *mailbox) put(m wireMsg) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.queue = append(b.queue, m)
	b.cond.Broadcast()
	return nil
}

// matches reports whether m satisfies the (comm, src, tag) pattern.
func matches(m wireMsg, commID uint32, srcWorld, tag int) bool {
	if m.Comm != commID {
		return false
	}
	if srcWorld != AnySource && m.Src != srcWorld {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// take blocks until a message matching the pattern is available and
// removes the earliest such message.
func (b *mailbox) take(commID uint32, srcWorld, tag int) (wireMsg, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if matches(m, commID, srcWorld, tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		if b.closed {
			return wireMsg{}, ErrClosed
		}
		b.cond.Wait()
	}
}

// tryTake removes and returns the earliest message matching the pattern
// without blocking; ok is false when no matching message is queued.
func (b *mailbox) tryTake(commID uint32, srcWorld, tag int) (wireMsg, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.queue {
		if matches(m, commID, srcWorld, tag) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m, true, nil
		}
	}
	if b.closed {
		return wireMsg{}, false, ErrClosed
	}
	return wireMsg{}, false, nil
}

// close marks the mailbox closed and unblocks all waiting receivers.
func (b *mailbox) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}
