package mpi

import (
	"fmt"
	"reflect"
	"testing"
)

func TestSplitByParity(t *testing.T) {
	runRanks(t, 6, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("world rank %d got sub rank %d want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Collective inside the sub-communicator.
		parts, err := sub.Allgather([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for i, p := range parts {
			want := byte(2*i + c.Rank()%2)
			if p[0] != want {
				return fmt.Errorf("sub allgather part %d = %d want %d", i, p[0], want)
			}
		}
		return nil
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	runRanks(t, 4, func(c *Comm) error {
		// Reverse ordering via descending keys.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		want := c.Size() - 1 - c.Rank()
		if sub.Rank() != want {
			return fmt.Errorf("world %d -> sub %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
}

func TestSplitNegativeColorExcluded(t *testing.T) {
	runRanks(t, 3, func(c *Comm) error {
		color := 0
		if c.Rank() == 1 {
			color = -1
		}
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if sub != nil {
				return fmt.Errorf("excluded rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 2 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// A world barrier would hang (rank 1 left); use the sub-comm.
		return sub.Barrier()
	})
}

func TestSplitIsolatesMessageContexts(t *testing.T) {
	// The same tag on parent and child communicators must not cross.
	runRanks(t, 2, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		const tag = 5
		if c.Rank() == 0 {
			if err := c.Send(1, tag, []byte("parent")); err != nil {
				return err
			}
			return sub.Send(1, tag, []byte("child"))
		}
		mc, err := sub.Recv(0, tag)
		if err != nil {
			return err
		}
		if string(mc.Data) != "child" {
			return fmt.Errorf("child comm got %q", mc.Data)
		}
		mp, err := c.Recv(0, tag)
		if err != nil {
			return err
		}
		if string(mp.Data) != "parent" {
			return fmt.Errorf("parent comm got %q", mp.Data)
		}
		return nil
	})
}

func TestDupSeparateContext(t *testing.T) {
	runRanks(t, 3, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Size() != c.Size() || dup.Rank() != c.Rank() {
			return fmt.Errorf("dup geometry %d/%d", dup.Rank(), dup.Size())
		}
		if dup.id == c.id {
			return fmt.Errorf("dup shares message context")
		}
		return dup.Barrier()
	})
}

func TestSplitTwiceDistinctComms(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		a, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		b, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if a.id == b.id {
			return fmt.Errorf("two splits share a communicator id")
		}
		return nil
	})
}

func TestCartCreateValidation(t *testing.T) {
	w := MustWorld(4)
	defer w.Close()
	c := w.MustComm(0)
	if _, err := CartCreate(c, 3, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := CartCreate(c, 0, 4); err == nil {
		t.Fatal("zero dim accepted")
	}
	cc, err := CartCreate(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, cl := cc.Dims()
	if r != 2 || cl != 2 {
		t.Fatalf("dims %d×%d", r, cl)
	}
}

func TestCartCoordsAndRank(t *testing.T) {
	w := MustWorld(12)
	defer w.Close()
	cc, err := CartCreate(w.MustComm(7), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	row, col, err := cc.Coords(7)
	if err != nil {
		t.Fatal(err)
	}
	if row != 1 || col != 3 {
		t.Fatalf("coords (%d,%d)", row, col)
	}
	if cc.CartRank(row, col) != 7 {
		t.Fatal("CartRank round trip")
	}
	if cc.CartRank(-1, 4) != cc.CartRank(2, 0) {
		t.Fatal("periodic wrap broken")
	}
	if _, _, err := cc.Coords(99); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func TestCartShift(t *testing.T) {
	w := MustWorld(9)
	defer w.Close()
	cc, err := CartCreate(w.MustComm(4), 3, 3) // center cell (1,1)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, err := cc.Shift(0, 1) // rows
	if err != nil {
		t.Fatal(err)
	}
	if src != cc.CartRank(0, 1) || dst != cc.CartRank(2, 1) {
		t.Fatalf("row shift src %d dst %d", src, dst)
	}
	src, dst, err = cc.Shift(1, 1) // cols
	if err != nil {
		t.Fatal(err)
	}
	if src != cc.CartRank(1, 0) || dst != cc.CartRank(1, 2) {
		t.Fatalf("col shift src %d dst %d", src, dst)
	}
	if _, _, err := cc.Shift(2, 1); err == nil {
		t.Fatal("bad dim accepted")
	}
}

func TestCartNeighborRanks(t *testing.T) {
	w := MustWorld(16)
	defer w.Close()
	cc, err := CartCreate(w.MustComm(0), 4, 4) // corner cell (0,0)
	if err != nil {
		t.Fatal(err)
	}
	got := cc.NeighborRanks()
	want := [4]int{cc.CartRank(3, 0), cc.CartRank(0, 3), cc.CartRank(0, 1), cc.CartRank(1, 0)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("neighbours %v want %v", got, want)
	}
}
