package mpi

import (
	"fmt"
	"sync"
)

// World is the in-process transport: n ranks in one OS process, one
// goroutine (or more) per rank, messages moved between in-memory
// mailboxes. It reproduces the process structure of an MPI job — the
// paper's two-level parallel model maps MPI processes onto goroutines and
// their internal threads onto further goroutines.
type World struct {
	boxes []*mailbox

	mu     sync.Mutex
	closed bool
}

// NewWorld creates an in-process world of n ranks.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	w := &World{boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// MustWorld is NewWorld that panics on error.
func MustWorld(n int) *World {
	w, err := NewWorld(n)
	if err != nil {
		panic(err)
	}
	return w
}

// inprocEndpoint is one rank's handle on a World.
type inprocEndpoint struct {
	w    *World
	rank int
}

func (e *inprocEndpoint) sendWorld(dst int, m wireMsg) error {
	if dst < 0 || dst >= len(e.w.boxes) {
		return fmt.Errorf("mpi: destination world rank %d out of range [0,%d)", dst, len(e.w.boxes))
	}
	return e.w.boxes[dst].put(m)
}

func (e *inprocEndpoint) recvWorld(commID uint32, srcWorld, tag int) (wireMsg, error) {
	return e.w.boxes[e.rank].take(commID, srcWorld, tag)
}

func (e *inprocEndpoint) worldRank() int { return e.rank }
func (e *inprocEndpoint) worldSize() int { return len(e.w.boxes) }

func (e *inprocEndpoint) close() error {
	e.w.Close()
	return nil
}

// Comm returns the world communicator handle for the given rank. Each rank
// must use its own handle.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= len(w.boxes) {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, len(w.boxes))
	}
	group := make([]int, len(w.boxes))
	for i := range group {
		group[i] = i
	}
	return newComm(&inprocEndpoint{w: w, rank: rank}, worldCommID, group)
}

// MustComm is Comm that panics on error.
func (w *World) MustComm(rank int) *Comm {
	c, err := w.Comm(rank)
	if err != nil {
		panic(err)
	}
	return c
}

// Comms returns one world communicator handle per rank.
func (w *World) Comms() []*Comm {
	out := make([]*Comm, len(w.boxes))
	for i := range out {
		out[i] = w.MustComm(i)
	}
	return out
}

// Close shuts the world down, unblocking all pending receives with
// ErrClosed.
func (w *World) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for _, b := range w.boxes {
		b.close()
	}
}
