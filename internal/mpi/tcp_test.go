package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// startTCPWorld spins up an n-node loopback mesh and returns the connected
// nodes. Cleanup closes every node.
func startTCPWorld(t *testing.T, n int) []*TCPNode {
	t.Helper()
	nodes := make([]*TCPNode, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		node, err := ListenTCP(r, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[r] = node
		addrs[r] = node.Addr()
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *TCPNode) {
			defer wg.Done()
			errs <- nd.Connect(addrs, 5*time.Second)
		}(node)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestTCPValidation(t *testing.T) {
	if _, err := ListenTCP(3, 2, "127.0.0.1:0"); err == nil {
		t.Fatal("bad rank accepted")
	}
	node, err := ListenTCP(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Connect([]string{"x"}, time.Second); err == nil {
		t.Fatal("wrong address count accepted")
	}
}

func TestTCPPointToPoint(t *testing.T) {
	nodes := startTCPWorld(t, 3)
	comms := make([]*Comm, 3)
	for i, nd := range nodes {
		c, err := nd.WorldComm()
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			errs <- func() error {
				next := (c.Rank() + 1) % 3
				prev := (c.Rank() + 2) % 3
				if err := c.Send(next, 1, []byte{byte(c.Rank())}); err != nil {
					return err
				}
				m, err := c.Recv(prev, 1)
				if err != nil {
					return err
				}
				if int(m.Data[0]) != prev {
					return fmt.Errorf("rank %d got %d", c.Rank(), m.Data[0])
				}
				return nil
			}()
		}(comms[r])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPSelfSend(t *testing.T) {
	nodes := startTCPWorld(t, 2)
	c, err := nodes[0].WorldComm()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(0, 3, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "loop" {
		t.Fatalf("self send got %q", m.Data)
	}
}

func TestTCPCollectivesAndSplit(t *testing.T) {
	nodes := startTCPWorld(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd *TCPNode) {
			defer wg.Done()
			errs <- func() error {
				c, err := nd.WorldComm()
				if err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				parts, err := c.Allgather([]byte{byte(c.Rank() * 2)})
				if err != nil {
					return err
				}
				for r, p := range parts {
					if int(p[0]) != 2*r {
						return fmt.Errorf("allgather part %d = %d", r, p[0])
					}
				}
				sub, err := c.Split(c.Rank()/2, c.Rank())
				if err != nil {
					return err
				}
				sum, err := sub.Allreduce([]float64{float64(c.Rank())}, OpSum)
				if err != nil {
					return err
				}
				want := 1.0 // ranks {0,1} or {2,3}
				if c.Rank() >= 2 {
					want = 5
				}
				if sum[0] != want {
					return fmt.Errorf("rank %d sub sum %v want %v", c.Rank(), sum[0], want)
				}
				return nil
			}()
		}(nd)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPLargeMessage(t *testing.T) {
	nodes := startTCPWorld(t, 2)
	c0, _ := nodes[0].WorldComm()
	c1, _ := nodes[1].WorldComm()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() {
		m, err := c1.Recv(0, 8)
		if err != nil {
			done <- err
			return
		}
		for i := range m.Data {
			if m.Data[i] != byte(i*31) {
				done <- fmt.Errorf("corruption at byte %d", i)
				return
			}
		}
		done <- nil
	}()
	if err := c0.Send(1, 8, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPCloseUnblocks(t *testing.T) {
	nodes := startTCPWorld(t, 2)
	c, _ := nodes[0].WorldComm()
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(1, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	nodes[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("got %v want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	if err := c.Send(1, 0, nil); err == nil {
		t.Fatal("send after close accepted")
	}
}

func TestTCPConnectTimeout(t *testing.T) {
	// Rank 1 dials rank 0 at an address where nothing listens.
	node, err := ListenTCP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	err = node.Connect([]string{"127.0.0.1:1", node.Addr()}, 200*time.Millisecond)
	if err == nil {
		t.Fatal("connect to dead address succeeded")
	}
}

// startTCPWorldOpts is startTCPWorld with explicit transport options.
func startTCPWorldOpts(t *testing.T, n int, opts TCPOptions) []*TCPNode {
	t.Helper()
	nodes := make([]*TCPNode, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		node, err := ListenTCPOpts(r, n, "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		nodes[r] = node
		addrs[r] = node.Addr()
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *TCPNode) {
			defer wg.Done()
			errs <- nd.Connect(addrs, 5*time.Second)
		}(node)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestTCPReconnect(t *testing.T) {
	nodes := startTCPWorldOpts(t, 2, TCPOptions{
		WriteTimeout:      2 * time.Second,
		ReconnectAttempts: 5,
		ReconnectBackoff:  5 * time.Millisecond,
		DialTimeout:       2 * time.Second,
	})
	c0, err := nodes[0].WorldComm()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := nodes[1].WorldComm()
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.Send(1, 5, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if m, err := c1.Recv(0, 5); err != nil || string(m.Data) != "before" {
		t.Fatalf("pre-break message: %v %v", m, err)
	}

	// Sever the link from rank 0's side; the next send must notice the
	// broken pipe, re-dial rank 1, and deliver the frame.
	nodes[0].mu.Lock()
	conn := nodes[0].conns[1]
	nodes[0].mu.Unlock()
	conn.Close()

	if err := c0.Send(1, 5, []byte("after")); err != nil {
		t.Fatalf("send after break: %v", err)
	}
	m, err := c1.RecvTimeout(0, 5, 5*time.Second)
	if err != nil || string(m.Data) != "after" {
		t.Fatalf("post-reconnect message: %v %v", m, err)
	}

	// The replacement connection works in both directions.
	if err := c1.Send(0, 6, []byte("reply")); err != nil {
		t.Fatalf("reverse send: %v", err)
	}
	m, err = c0.RecvTimeout(1, 6, 5*time.Second)
	if err != nil || string(m.Data) != "reply" {
		t.Fatalf("reverse message: %v %v", m, err)
	}
}
