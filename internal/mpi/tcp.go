package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// frame layout: u32 payloadLen | u32 comm | i32 src | i32 tag | payload.
const frameHeaderLen = 16

// maxFrameLen bounds a single message (64 MiB) to catch corrupted streams.
const maxFrameLen = 64 << 20

// TCPNode is one process of a TCP-connected world. All ranks listen, then
// build a full mesh: rank i dials every rank j < i and accepts connections
// from every rank j > i. After Connect, the node behaves exactly like an
// inproc rank: WorldComm returns the world communicator and all Comm
// operations work unchanged, so the training code is transport-agnostic
// (the decoupling the paper attributes to its comm-manager class).
type TCPNode struct {
	rank int
	n    int

	listener net.Listener
	inbox    *mailbox

	mu     sync.Mutex
	conns  map[int]net.Conn
	sendMu map[int]*sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP creates a node for the given rank of an n-process world,
// listening on bind (e.g. "127.0.0.1:0"). The chosen address is available
// via Addr.
func ListenTCP(rank, n int, bind string) (*TCPNode, error) {
	if n <= 0 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("mpi: invalid rank %d of %d", rank, n)
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s: %w", bind, err)
	}
	return &TCPNode{
		rank:     rank,
		n:        n,
		listener: ln,
		inbox:    newMailbox(),
		conns:    make(map[int]net.Conn),
		sendMu:   make(map[int]*sync.Mutex),
	}, nil
}

// Addr returns the node's listening address.
func (t *TCPNode) Addr() string { return t.listener.Addr().String() }

// Connect establishes the full mesh. addrs maps every rank to its
// listening address (addrs[t.rank] is ignored). Dialing retries until the
// deadline to tolerate staggered process start-up.
func (t *TCPNode) Connect(addrs []string, timeout time.Duration) error {
	if len(addrs) != t.n {
		return fmt.Errorf("mpi: Connect wants %d addresses, got %d", t.n, len(addrs))
	}
	deadline := time.Now().Add(timeout)
	errc := make(chan error, 2)

	// Accept connections from higher ranks.
	expectAccept := t.n - 1 - t.rank
	go func() {
		for i := 0; i < expectAccept; i++ {
			conn, err := t.listener.Accept()
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d accept: %w", t.rank, err)
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				errc <- fmt.Errorf("mpi: rank %d reading hello: %w", t.rank, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= t.rank || peer >= t.n {
				errc <- fmt.Errorf("mpi: rank %d got hello from unexpected rank %d", t.rank, peer)
				return
			}
			t.addConn(peer, conn)
		}
		errc <- nil
	}()

	// Dial lower ranks.
	go func() {
		for peer := 0; peer < t.rank; peer++ {
			var conn net.Conn
			var err error
			for {
				d := net.Dialer{Deadline: deadline}
				conn, err = d.Dial("tcp", addrs[peer])
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("mpi: rank %d dialing rank %d at %s: %w", t.rank, peer, addrs[peer], err)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(t.rank))
			if _, err := conn.Write(hello[:]); err != nil {
				errc <- fmt.Errorf("mpi: rank %d hello to rank %d: %w", t.rank, peer, err)
				return
			}
			t.addConn(peer, conn)
		}
		errc <- nil
	}()

	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Close()
			return err
		}
	}
	return nil
}

// addConn registers a peer connection and starts its reader goroutine.
func (t *TCPNode) addConn(peer int, conn net.Conn) {
	t.mu.Lock()
	t.conns[peer] = conn
	t.sendMu[peer] = &sync.Mutex{}
	t.mu.Unlock()
	t.wg.Add(1)
	go t.readLoop(conn)
}

// readLoop decodes frames from one peer into the inbox until the
// connection fails or the node closes.
func (t *TCPNode) readLoop(conn net.Conn) {
	defer t.wg.Done()
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		if plen > maxFrameLen {
			return
		}
		m := wireMsg{
			Comm: binary.LittleEndian.Uint32(hdr[4:]),
			Src:  int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
			Tag:  int(int32(binary.LittleEndian.Uint32(hdr[12:]))),
		}
		if plen > 0 {
			m.Data = make([]byte, plen)
			if _, err := io.ReadFull(conn, m.Data); err != nil {
				return
			}
		}
		if t.inbox.put(m) != nil {
			return
		}
	}
}

func (t *TCPNode) sendWorld(dst int, m wireMsg) error {
	if dst == t.rank {
		return t.inbox.put(m)
	}
	t.mu.Lock()
	conn := t.conns[dst]
	mu := t.sendMu[dst]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if conn == nil {
		return fmt.Errorf("mpi: no connection to world rank %d", dst)
	}
	buf := make([]byte, frameHeaderLen+len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(m.Data)))
	binary.LittleEndian.PutUint32(buf[4:], m.Comm)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(m.Src)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(m.Tag)))
	copy(buf[frameHeaderLen:], m.Data)
	mu.Lock()
	defer mu.Unlock()
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("mpi: send to rank %d: %w", dst, err)
	}
	return nil
}

func (t *TCPNode) recvWorld(commID uint32, srcWorld, tag int) (wireMsg, error) {
	return t.inbox.take(commID, srcWorld, tag)
}

func (t *TCPNode) worldRank() int { return t.rank }
func (t *TCPNode) worldSize() int { return t.n }

func (t *TCPNode) close() error {
	t.Close()
	return nil
}

// Close tears the node down: the listener and all connections are closed
// and pending receives unblock with ErrClosed.
func (t *TCPNode) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	t.inbox.close()
	t.wg.Wait()
}

// WorldComm returns the world communicator for this node. Call after
// Connect.
func (t *TCPNode) WorldComm() (*Comm, error) {
	group := make([]int, t.n)
	for i := range group {
		group[i] = i
	}
	return newComm(t, worldCommID, group)
}
