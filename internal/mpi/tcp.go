package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// frame layout: u32 payloadLen | u32 comm | i32 src | i32 tag | payload.
const frameHeaderLen = 16

// maxFrameLen bounds a single message (64 MiB) to catch corrupted streams.
const maxFrameLen = 64 << 20

// TCPOptions tunes the transport's failure behaviour. The zero value
// reproduces the original strict semantics: no deadlines, no reconnection,
// a broken pipe fails the send.
type TCPOptions struct {
	// WriteTimeout bounds one frame write; 0 means no deadline.
	WriteTimeout time.Duration
	// ReadIdleTimeout bounds the silence a reader tolerates before
	// declaring the connection dead; 0 means wait forever.
	ReadIdleTimeout time.Duration
	// ReconnectAttempts is how many times a failed send re-dials the peer
	// before giving up; 0 disables reconnection.
	ReconnectAttempts int
	// ReconnectBackoff is the initial delay between reconnect attempts,
	// doubled each retry (capped at 32×); 0 defaults to 25 ms.
	ReconnectBackoff time.Duration
	// DialTimeout bounds one reconnect dial; 0 defaults to 5 s.
	DialTimeout time.Duration
}

// HardenedTCPOptions returns the recommended production settings: bounded
// writes and capped reconnection with exponential backoff, the transport
// half of the failure-recovery design (the cluster master supplies the
// protocol half).
func HardenedTCPOptions() TCPOptions {
	return TCPOptions{
		WriteTimeout:      10 * time.Second,
		ReconnectAttempts: 3,
		ReconnectBackoff:  25 * time.Millisecond,
		DialTimeout:       5 * time.Second,
	}
}

// TCPNode is one process of a TCP-connected world. All ranks listen, then
// build a full mesh: rank i dials every rank j < i and accepts connections
// from every rank j > i. After Connect, the node behaves exactly like an
// inproc rank: WorldComm returns the world communicator and all Comm
// operations work unchanged, so the training code is transport-agnostic
// (the decoupling the paper attributes to its comm-manager class).
//
// With reconnection enabled (TCPOptions.ReconnectAttempts > 0) a send that
// hits a broken pipe re-dials the peer with exponential backoff, and the
// listener keeps accepting replacement connections after the initial mesh
// is built, so a transient connection loss does not fail the job.
type TCPNode struct {
	rank int
	n    int
	opts TCPOptions

	listener net.Listener
	inbox    *mailbox

	mu     sync.Mutex
	conns  map[int]net.Conn
	sendMu map[int]*sync.Mutex
	addrs  []string
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP creates a node for the given rank of an n-process world,
// listening on bind (e.g. "127.0.0.1:0") with strict zero options. The
// chosen address is available via Addr.
func ListenTCP(rank, n int, bind string) (*TCPNode, error) {
	return ListenTCPOpts(rank, n, bind, TCPOptions{})
}

// ListenTCPOpts is ListenTCP with explicit failure-behaviour options.
func ListenTCPOpts(rank, n int, bind string, opts TCPOptions) (*TCPNode, error) {
	if n <= 0 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("mpi: invalid rank %d of %d", rank, n)
	}
	if opts.ReconnectBackoff <= 0 {
		opts.ReconnectBackoff = 25 * time.Millisecond
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s: %w", bind, err)
	}
	return &TCPNode{
		rank:     rank,
		n:        n,
		opts:     opts,
		listener: ln,
		inbox:    newMailbox(),
		conns:    make(map[int]net.Conn),
		sendMu:   make(map[int]*sync.Mutex),
	}, nil
}

// Addr returns the node's listening address.
func (t *TCPNode) Addr() string { return t.listener.Addr().String() }

// Connect establishes the full mesh. addrs maps every rank to its
// listening address (addrs[t.rank] is ignored). Dialing retries until the
// deadline to tolerate staggered process start-up. After the initial mesh
// is up the accept loop keeps running so peers can replace broken
// connections.
func (t *TCPNode) Connect(addrs []string, timeout time.Duration) error {
	if len(addrs) != t.n {
		return fmt.Errorf("mpi: Connect wants %d addresses, got %d", t.n, len(addrs))
	}
	t.mu.Lock()
	t.addrs = append([]string(nil), addrs...)
	t.mu.Unlock()
	deadline := time.Now().Add(timeout)
	errc := make(chan error, 2)

	// Accept connections from higher ranks; stay alive afterwards to serve
	// reconnects from any peer.
	expectAccept := t.n - 1 - t.rank
	t.wg.Add(1)
	go t.acceptLoop(expectAccept, errc)

	// Dial lower ranks.
	go func() {
		for peer := 0; peer < t.rank; peer++ {
			conn, err := t.dialPeer(peer, deadline)
			if err != nil {
				errc <- err
				return
			}
			t.addConn(peer, conn)
		}
		errc <- nil
	}()

	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Close()
			return err
		}
	}
	return nil
}

// dialPeer dials one peer and performs the hello handshake, retrying until
// the deadline.
func (t *TCPNode) dialPeer(peer int, deadline time.Time) (net.Conn, error) {
	t.mu.Lock()
	addr := t.addrs[peer]
	t.mu.Unlock()
	var conn net.Conn
	var err error
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err = d.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mpi: rank %d dialing rank %d at %s: %w", t.rank, peer, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(t.rank))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpi: rank %d hello to rank %d: %w", t.rank, peer, err)
	}
	return conn, nil
}

// acceptLoop accepts peer connections for the lifetime of the node. The
// first expectInitial accepts form the initial mesh (reported on errc);
// later accepts replace broken connections from reconnecting peers.
func (t *TCPNode) acceptLoop(expectInitial int, errc chan<- error) {
	defer t.wg.Done()
	got := 0
	if expectInitial == 0 {
		errc <- nil
	}
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			if got < expectInitial {
				errc <- fmt.Errorf("mpi: rank %d accept: %w", t.rank, err)
			}
			return // listener closed
		}
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			if got < expectInitial {
				errc <- fmt.Errorf("mpi: rank %d reading hello: %w", t.rank, err)
				return
			}
			conn.Close()
			continue
		}
		peer := int(binary.LittleEndian.Uint32(hello[:]))
		if peer == t.rank || peer < 0 || peer >= t.n {
			if got < expectInitial {
				errc <- fmt.Errorf("mpi: rank %d got hello from unexpected rank %d", t.rank, peer)
				return
			}
			conn.Close()
			continue
		}
		t.addConn(peer, conn)
		if got < expectInitial {
			got++
			if got == expectInitial {
				errc <- nil
			}
		}
	}
}

// addConn registers a peer connection (replacing and closing any previous
// one) and starts its reader goroutine.
func (t *TCPNode) addConn(peer int, conn net.Conn) {
	t.mu.Lock()
	old := t.conns[peer]
	t.conns[peer] = conn
	if t.sendMu[peer] == nil {
		t.sendMu[peer] = &sync.Mutex{}
	}
	closed := t.closed
	t.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if closed {
		conn.Close()
		return
	}
	t.wg.Add(1)
	go t.readLoop(conn)
}

// readLoop decodes frames from one peer into the inbox until the
// connection fails or the node closes.
func (t *TCPNode) readLoop(conn net.Conn) {
	defer t.wg.Done()
	hdr := make([]byte, frameHeaderLen)
	for {
		if t.opts.ReadIdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(t.opts.ReadIdleTimeout)) //nolint:errcheck
		}
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		if plen > maxFrameLen {
			return
		}
		m := wireMsg{
			Comm: binary.LittleEndian.Uint32(hdr[4:]),
			Src:  int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
			Tag:  int(int32(binary.LittleEndian.Uint32(hdr[12:]))),
		}
		if plen > 0 {
			m.Data = make([]byte, plen)
			if _, err := io.ReadFull(conn, m.Data); err != nil {
				return
			}
		}
		if t.inbox.put(m) != nil {
			return
		}
	}
}

func (t *TCPNode) sendWorld(dst int, m wireMsg) error {
	if dst == t.rank {
		return t.inbox.put(m)
	}
	buf := make([]byte, frameHeaderLen+len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(m.Data)))
	binary.LittleEndian.PutUint32(buf[4:], m.Comm)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(m.Src)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(m.Tag)))
	copy(buf[frameHeaderLen:], m.Data)

	backoff := t.opts.ReconnectBackoff
	for attempt := 0; ; attempt++ {
		t.mu.Lock()
		conn := t.conns[dst]
		mu := t.sendMu[dst]
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		var err error
		if conn == nil {
			err = fmt.Errorf("mpi: no connection to world rank %d", dst)
		} else {
			err = t.writeFrame(conn, mu, buf)
			if err == nil {
				return nil
			}
		}
		if attempt >= t.opts.ReconnectAttempts {
			return fmt.Errorf("mpi: send to rank %d: %w", dst, err)
		}
		// Broken pipe with reconnection enabled: re-dial the peer with
		// capped exponential backoff and retry the frame.
		if conn != nil {
			conn.Close()
		}
		time.Sleep(backoff)
		if backoff < 32*t.opts.ReconnectBackoff {
			backoff *= 2
		}
		if rerr := t.reconnect(dst, conn); rerr != nil && attempt == t.opts.ReconnectAttempts-1 {
			return fmt.Errorf("mpi: send to rank %d: reconnect: %w", dst, rerr)
		}
	}
}

// writeFrame writes one frame under the peer's send lock, applying the
// configured write deadline.
func (t *TCPNode) writeFrame(conn net.Conn, mu *sync.Mutex, frame []byte) error {
	mu.Lock()
	defer mu.Unlock()
	if t.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)) //nolint:errcheck
	}
	_, err := conn.Write(frame)
	return err
}

// reconnect replaces a broken connection to dst, unless another goroutine
// already did.
func (t *TCPNode) reconnect(dst int, broken net.Conn) error {
	t.mu.Lock()
	if t.closed || t.addrs == nil {
		t.mu.Unlock()
		return ErrClosed
	}
	if cur := t.conns[dst]; cur != nil && cur != broken {
		t.mu.Unlock()
		return nil // already replaced (by acceptLoop or a racing sender)
	}
	t.mu.Unlock()
	conn, err := t.dialPeer(dst, time.Now().Add(t.opts.DialTimeout))
	if err != nil {
		return err
	}
	t.addConn(dst, conn)
	return nil
}

func (t *TCPNode) recvWorld(commID uint32, srcWorld, tag int) (wireMsg, error) {
	return t.inbox.take(commID, srcWorld, tag)
}

func (t *TCPNode) worldRank() int { return t.rank }
func (t *TCPNode) worldSize() int { return t.n }

func (t *TCPNode) close() error {
	t.Close()
	return nil
}

// Close tears the node down: the listener and all connections are closed
// and pending receives unblock with ErrClosed.
func (t *TCPNode) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	t.inbox.close()
	t.wg.Wait()
}

// WorldComm returns the world communicator for this node. Call after
// Connect.
func (t *TCPNode) WorldComm() (*Comm, error) {
	group := make([]int, t.n)
	for i := range group {
		group[i] = i
	}
	return newComm(t, worldCommID, group)
}
