package mpi

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// runRanks executes body once per rank of a fresh inproc world,
// concurrently, and fails the test on any returned error.
func runRanks(t *testing.T, n int, body func(c *Comm) error) {
	t.Helper()
	w := MustWorld(n)
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- body(w.MustComm(rank))
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("zero-size world accepted")
	}
	w := MustWorld(2)
	defer w.Close()
	if _, err := w.Comm(2); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := w.Comm(-1); err == nil {
		t.Fatal("negative rank accepted")
	}
	if got := len(w.Comms()); got != 2 {
		t.Fatalf("Comms len %d", got)
	}
}

func TestSendRecvBasic(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(m.Data) != "hello" || m.Src != 0 || m.Tag != 7 {
			return fmt.Errorf("got %+v", m)
		}
		return nil
	})
}

func TestSendDoesNotAliasPayload(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("abc")
			if err := c.Send(1, 1, buf); err != nil {
				return err
			}
			buf[0] = 'X' // must not affect the delivered message
			return c.Send(1, 2, nil)
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if _, err := c.Recv(0, 2); err != nil {
			return err
		}
		if string(m.Data) != "abc" {
			return fmt.Errorf("payload aliased: %q", m.Data)
		}
		return nil
	})
}

func TestRecvTagSelectivity(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("five")); err != nil {
				return err
			}
			return c.Send(1, 3, []byte("three"))
		}
		// Receive tag 3 first even though tag 5 arrived earlier.
		m3, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		m5, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(m3.Data) != "three" || string(m5.Data) != "five" {
			return fmt.Errorf("tag matching broken: %q %q", m3.Data, m5.Data)
		}
		return nil
	})
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	runRanks(t, 3, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 10+c.Rank(), []byte{byte(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			m, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if m.Tag != 10+m.Src || int(m.Data[0]) != m.Src {
				return fmt.Errorf("inconsistent message %+v", m)
			}
			seen[m.Src] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("sources seen: %v", seen)
		}
		return nil
	})
}

func TestFIFOPerPattern(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		const k = 50
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.Send(1, 4, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			m, err := c.Recv(0, 4)
			if err != nil {
				return err
			}
			if int(m.Data[0]) != i {
				return fmt.Errorf("message %d arrived out of order as %d", i, m.Data[0])
			}
		}
		return nil
	})
}

func TestSendRecvValidation(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	c := w.MustComm(0)
	if err := c.Send(5, 1, nil); err == nil {
		t.Fatal("bad dst accepted")
	}
	if err := c.Send(1, -2, nil); err == nil {
		t.Fatal("negative tag accepted")
	}
	if err := c.Send(1, maxUserTag, nil); err == nil {
		t.Fatal("reserved tag accepted")
	}
	if _, err := c.Recv(9, 0); err == nil {
		t.Fatal("bad src accepted")
	}
	if _, err := c.Recv(1, maxUserTag+5); err == nil {
		t.Fatal("reserved recv tag accepted")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	w := MustWorld(2)
	c := w.MustComm(0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(1, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := c.Send(1, 0, nil); err == nil {
		t.Fatal("send after close accepted")
	}
}

func TestSendrecvExchange(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		m, err := c.Sendrecv(other, other, 9, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if int(m.Data[0]) != other {
			return fmt.Errorf("rank %d received %d", c.Rank(), m.Data[0])
		}
		return nil
	})
}

func TestBarrierOrdering(t *testing.T) {
	// After the barrier, every rank must observe every other rank's
	// pre-barrier flag.
	n := 5
	flags := make([]int32, n)
	var mu sync.Mutex
	runRanks(t, n, func(c *Comm) error {
		mu.Lock()
		flags[c.Rank()] = 1
		mu.Unlock()
		if err := c.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for r, f := range flags {
			if f != 1 {
				return fmt.Errorf("rank %d saw rank %d unflagged after barrier", c.Rank(), r)
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	runRanks(t, 4, func(c *Comm) error {
		var payload []byte
		if c.Rank() == 2 {
			payload = []byte("root-data")
		}
		got, err := c.Bcast(2, payload)
		if err != nil {
			return err
		}
		if string(got) != "root-data" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	// The binomial tree must deliver for every (size, root) combination.
	for n := 1; n <= 9; n++ {
		for root := 0; root < n; root++ {
			n, root := n, root
			runRanks(t, n, func(c *Comm) error {
				var payload []byte
				if c.Rank() == root {
					payload = []byte{byte(root), byte(n)}
				}
				got, err := c.Bcast(root, payload)
				if err != nil {
					return err
				}
				if len(got) != 2 || got[0] != byte(root) || got[1] != byte(n) {
					return fmt.Errorf("n=%d root=%d rank=%d got %v", n, root, c.Rank(), got)
				}
				return nil
			})
		}
	}
}

func TestBcastRepeatedUsesDistinctTags(t *testing.T) {
	runRanks(t, 5, func(c *Comm) error {
		for round := 0; round < 10; round++ {
			var payload []byte
			if c.Rank() == round%5 {
				payload = []byte{byte(round)}
			}
			got, err := c.Bcast(round%5, payload)
			if err != nil {
				return err
			}
			if got[0] != byte(round) {
				return fmt.Errorf("round %d got %v", round, got)
			}
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	runRanks(t, 4, func(c *Comm) error {
		data := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1) // variable sizes
		parts, err := c.Gather(1, data)
		if err != nil {
			return err
		}
		if c.Rank() != 1 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		for r, p := range parts {
			if len(p) != r+1 {
				return fmt.Errorf("part %d has len %d", r, len(p))
			}
			for _, b := range p {
				if int(b) != r {
					return fmt.Errorf("part %d contains %d", r, b)
				}
			}
		}
		return nil
	})
}

func TestAllgatherVariableSizes(t *testing.T) {
	runRanks(t, 5, func(c *Comm) error {
		data := bytes.Repeat([]byte{byte('A' + c.Rank())}, 2*c.Rank())
		parts, err := c.Allgather(data)
		if err != nil {
			return err
		}
		if len(parts) != 5 {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for r, p := range parts {
			if len(p) != 2*r {
				return fmt.Errorf("rank %d: part %d len %d", c.Rank(), r, len(p))
			}
			for _, b := range p {
				if b != byte('A'+r) {
					return fmt.Errorf("part %d content %q", r, p)
				}
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	runRanks(t, 3, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			parts = [][]byte{[]byte("zero"), []byte("one"), []byte("two")}
		}
		got, err := c.Scatter(0, parts)
		if err != nil {
			return err
		}
		want := []string{"zero", "one", "two"}[c.Rank()]
		if string(got) != want {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
}

func TestScatterWrongPartCount(t *testing.T) {
	// A root erroring out of a collective while peers entered it would be
	// an MPI-contract violation, so validate on a single-rank world.
	runRanks(t, 1, func(c *Comm) error {
		if _, err := c.Scatter(0, [][]byte{nil, nil}); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		got, err := c.Scatter(0, [][]byte{[]byte("solo")})
		if err != nil {
			return err
		}
		if string(got) != "solo" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want []float64
	}{
		{OpSum, []float64{0 + 1 + 2 + 3, 4 * 10}},
		{OpProd, []float64{0, 10 * 10 * 10 * 10}},
		{OpMax, []float64{3, 10}},
		{OpMin, []float64{0, 10}},
	}
	for _, tc := range cases {
		tc := tc
		runRanks(t, 4, func(c *Comm) error {
			in := []float64{float64(c.Rank()), 10}
			got, err := c.Reduce(0, in, tc.op)
			if err != nil {
				return err
			}
			if c.Rank() == 0 && !reflect.DeepEqual(got, tc.want) {
				return fmt.Errorf("op %d: got %v want %v", tc.op, got, tc.want)
			}
			if c.Rank() != 0 && got != nil {
				return fmt.Errorf("non-root got result")
			}
			return nil
		})
	}
}

func TestAllreduce(t *testing.T) {
	runRanks(t, 4, func(c *Comm) error {
		got, err := c.Allreduce([]float64{1, float64(c.Rank())}, OpSum)
		if err != nil {
			return err
		}
		want := []float64{4, 6}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("rank %d: %v want %v", c.Rank(), got, want)
		}
		return nil
	})
}

func TestReduceLengthMismatch(t *testing.T) {
	runRanks(t, 2, func(c *Comm) error {
		data := []float64{1}
		if c.Rank() == 1 {
			data = []float64{1, 2}
		}
		_, err := c.Reduce(0, data, OpSum)
		if c.Rank() == 0 && err == nil {
			return fmt.Errorf("length mismatch accepted")
		}
		return nil
	})
}

func TestEncodeDecodeFloats(t *testing.T) {
	xs := []float64{0, -1.5, 3.25e10}
	got, err := DecodeFloats(EncodeFloats(xs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, xs) {
		t.Fatalf("round trip %v", got)
	}
	if _, err := DecodeFloats([]byte{1, 2, 3}); err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestPackUnpackParts(t *testing.T) {
	parts := [][]byte{[]byte("a"), nil, []byte("ccc")}
	got, err := unpackParts(packParts(parts), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "a" || len(got[1]) != 0 || string(got[2]) != "ccc" {
		t.Fatalf("unpack: %v", got)
	}
	if _, err := unpackParts(packParts(parts), 2); err == nil {
		t.Fatal("wrong count accepted")
	}
	if _, err := unpackParts([]byte{1}, 1); err == nil {
		t.Fatal("short buffer accepted")
	}
	p := packParts(parts)
	if _, err := unpackParts(p[:len(p)-1], 3); err == nil {
		t.Fatal("truncated part accepted")
	}
	if _, err := unpackParts(append(p, 0), 3); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCollectivesInterleavedWithP2P(t *testing.T) {
	// A user message with an ordinary tag must not be swallowed by a
	// collective running concurrently.
	runRanks(t, 3, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 99, []byte("user")); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := c.Allgather([]byte{byte(c.Rank())}); err != nil {
			return err
		}
		if c.Rank() == 1 {
			m, err := c.Recv(0, 99)
			if err != nil {
				return err
			}
			if string(m.Data) != "user" {
				return fmt.Errorf("user payload %q", m.Data)
			}
		}
		return nil
	})
}
