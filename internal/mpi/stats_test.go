package mpi

import (
	"sync"
	"testing"
)

func TestInstrumentCommCountsTraffic(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	var st0, st1 CommStats
	c0 := InstrumentComm(mustComm(t, w, 0), &st0)
	c1 := InstrumentComm(mustComm(t, w, 1), &st1)

	payload := []byte("hello")
	done := make(chan error, 1)
	go func() {
		_, err := c1.Recv(0, 7)
		done <- err
	}()
	if err := c0.Send(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := st0.SentMessages.Load(); got != 1 {
		t.Fatalf("sender counted %d messages, want 1", got)
	}
	if got := st0.SentBytes.Load(); got != uint64(len(payload)) {
		t.Fatalf("sender counted %d bytes, want %d", got, len(payload))
	}
	if got := st1.RecvMessages.Load(); got != 1 {
		t.Fatalf("receiver counted %d messages, want 1", got)
	}
	if got := st1.RecvBytes.Load(); got != uint64(len(payload)) {
		t.Fatalf("receiver counted %d bytes, want %d", got, len(payload))
	}
}

func TestInstrumentCommNilStatsIsIdentity(t *testing.T) {
	w := MustWorld(1)
	defer w.Close()
	c := mustComm(t, w, 0)
	if InstrumentComm(c, nil) != c {
		t.Fatal("nil stats must return the communicator unchanged")
	}
}

func TestInstrumentCommCollectives(t *testing.T) {
	// Collective traffic flows through the endpoint, so an allgather is
	// counted too — and Probe passes through the middleware.
	const n = 3
	w := MustWorld(n)
	defer w.Close()
	stats := make([]CommStats, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := InstrumentComm(mustComm(t, w, r), &stats[r])
			if _, err := c.Allgather([]byte{byte(r)}); err != nil {
				errs <- err
				return
			}
			if _, err := c.Probe(AnySource, 5); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for r := range stats {
		if stats[r].SentMessages.Load() == 0 && stats[r].RecvMessages.Load() == 0 {
			t.Fatalf("rank %d counted no collective traffic", r)
		}
	}
}

func TestFaultStatsCounting(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	var fs FaultStats
	plan := FaultPlan{Seed: 7, DropProb: 1, Stats: &fs}
	c0 := FaultyComm(mustComm(t, w, 0), plan)
	for i := 0; i < 5; i++ {
		if err := c0.Send(1, 3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.Drops.Load(); got != 5 {
		t.Fatalf("counted %d drops, want 5", got)
	}
}

func mustComm(t *testing.T, w *World, rank int) *Comm {
	t.Helper()
	c, err := w.Comm(rank)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
