package mpi

import "fmt"

// CartComm overlays a periodic two-dimensional Cartesian topology on a
// communicator, mirroring MPI_CART_CREATE — the optimisation the paper
// suggests for mapping grid coordinates onto slave ranks (§III-A). Rank r
// sits at (r / cols, r % cols) and the torus wraps in both dimensions.
type CartComm struct {
	*Comm
	rows, cols int
}

// CartCreate builds the topology; the communicator size must equal
// rows*cols.
func CartCreate(c *Comm, rows, cols int) (*CartComm, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mpi: cartesian dims must be positive, got %d×%d", rows, cols)
	}
	if rows*cols != c.Size() {
		return nil, fmt.Errorf("mpi: cartesian dims %d×%d need %d processes, communicator has %d",
			rows, cols, rows*cols, c.Size())
	}
	return &CartComm{Comm: c, rows: rows, cols: cols}, nil
}

// Dims returns the (rows, cols) extents of the topology.
func (cc *CartComm) Dims() (rows, cols int) { return cc.rows, cc.cols }

// Coords returns the Cartesian coordinates of a rank.
func (cc *CartComm) Coords(rank int) (row, col int, err error) {
	if err := cc.checkRank(rank, "cartesian"); err != nil {
		return 0, 0, err
	}
	return rank / cc.cols, rank % cc.cols, nil
}

// CartRank returns the rank at the (periodically wrapped) coordinates.
func (cc *CartComm) CartRank(row, col int) int {
	r := row % cc.rows
	if r < 0 {
		r += cc.rows
	}
	c := col % cc.cols
	if c < 0 {
		c += cc.cols
	}
	return r*cc.cols + c
}

// Shift returns the (source, destination) ranks for a displacement along
// dim (0 = rows, 1 = cols), as MPI_Cart_shift with periodic boundaries:
// src is the rank that would send to this process, dst the rank this
// process would send to.
func (cc *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	row, col, err := cc.Coords(cc.Rank())
	if err != nil {
		return 0, 0, err
	}
	switch dim {
	case 0:
		return cc.CartRank(row-disp, col), cc.CartRank(row+disp, col), nil
	case 1:
		return cc.CartRank(row, col-disp), cc.CartRank(row, col+disp), nil
	default:
		return 0, 0, fmt.Errorf("mpi: cartesian dim %d out of range [0,2)", dim)
	}
}

// NeighborRanks returns the four cardinal neighbours (N, W, E, S) of this
// process on the torus, in that order.
func (cc *CartComm) NeighborRanks() [4]int {
	row, col, _ := cc.Coords(cc.Rank())
	return [4]int{
		cc.CartRank(row-1, col),
		cc.CartRank(row, col-1),
		cc.CartRank(row, col+1),
		cc.CartRank(row+1, col),
	}
}
