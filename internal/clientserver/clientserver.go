// Package clientserver implements the predecessor architecture the paper
// replaces: "In a previous implementation of Mustangs/Lipizzaner, each
// slave is binded to a port, allowing the system to execute in a
// client-server parallel model" (§III-B). Every cell runs an HTTP server
// publishing its latest center networks; instead of the MPI allgather,
// cells *pull* their neighbours' states over HTTP after each iteration.
//
// The package exists as a working baseline comparator: the benchmarks
// contrast its per-iteration exchange cost against the MPI-style
// collective, which is the engineering argument of §III.
package clientserver

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/profile"
)

// statePath is the HTTP endpoint a cell publishes its center state on.
const statePath = "/state"

// maxStateBody bounds a pulled state (64 MiB).
const maxStateBody = 64 << 20

// node is one cell plus its HTTP server and published state.
type node struct {
	cell *core.Cell

	mu    sync.RWMutex
	state []byte

	listener net.Listener
	server   *http.Server
}

// publish snapshots the cell's current state into the served buffer.
func (n *node) publish() error {
	s, err := n.cell.State()
	if err != nil {
		return err
	}
	payload := s.Marshal()
	n.mu.Lock()
	n.state = payload
	n.mu.Unlock()
	return nil
}

// ServeHTTP serves the published state.
func (n *node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != statePath {
		http.NotFound(w, r)
		return
	}
	n.mu.RLock()
	payload := n.state
	n.mu.RUnlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// start brings the node's HTTP server up on a loopback port.
func (n *node) start() (url string, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("clientserver: %w", err)
	}
	n.listener = ln
	n.server = &http.Server{Handler: n, ReadHeaderTimeout: 5 * time.Second}
	go n.server.Serve(ln) //nolint:errcheck // Serve returns on Close
	return "http://" + ln.Addr().String(), nil
}

func (n *node) stop() {
	if n.server != nil {
		n.server.Close()
	}
}

// pull fetches a neighbour's state over HTTP.
func pull(client *http.Client, url string) (*core.CellState, error) {
	resp, err := client.Get(url + statePath)
	if err != nil {
		return nil, fmt.Errorf("clientserver: pulling %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain the (bounded) error body so the keep-alive connection can
		// be reused instead of being torn down.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return nil, fmt.Errorf("clientserver: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxStateBody))
	if err != nil {
		return nil, fmt.Errorf("clientserver: reading %s: %w", url, err)
	}
	return core.UnmarshalCellState(body)
}

// Run trains the grid in the client-server model: every cell serves its
// state on its own port and pulls its neighbourhood over HTTP after each
// iteration. Results match the structure of core's runners so callers can
// compare the architectures directly.
func Run(cfg config.Config, opts core.RunOptions) (*core.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := opts.Prof
	if prof == nil {
		prof = profile.New()
	}
	started := time.Now()
	g, err := core.BuildGridFor(cfg)
	if err != nil {
		return nil, err
	}
	nCells := g.Size()

	nodes := make([]*node, nCells)
	urls := make([]string, nCells)
	for r := 0; r < nCells; r++ {
		cell, err := core.NewCellWithData(cfg, r, g, prof, opts.Data)
		if err != nil {
			return nil, err
		}
		nodes[r] = &node{cell: cell}
		if err := nodes[r].publish(); err != nil {
			return nil, err
		}
		if urls[r], err = nodes[r].start(); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	client := &http.Client{Timeout: 30 * time.Second}
	results := make([]core.CellResult, nCells)
	errs := make(chan error, nCells)
	var wg sync.WaitGroup
	for r := 0; r < nCells; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				nd := nodes[rank]
				refresh := func() error {
					defer prof.Start(profile.RoutineGather)()
					for _, nb := range g.Neighborhood(rank) {
						if nb == rank {
							continue
						}
						s, err := pull(client, urls[nb])
						if err != nil {
							return err
						}
						if err := nd.cell.UpdateNeighbor(s); err != nil {
							return err
						}
					}
					return nil
				}
				var last core.IterStats
				for iter := 0; iter < cfg.Iterations; iter++ {
					// Like the async mode there is no barrier, so each
					// rank honours the stop signal at its own boundary.
					if opts.Stop != nil && opts.Stop() {
						break
					}
					if err := refresh(); err != nil {
						return err
					}
					var err error
					last, err = nd.cell.Iterate()
					if err != nil {
						return err
					}
					if opts.Progress != nil {
						opts.Progress(rank, last)
					}
					if err := nd.publish(); err != nil {
						return err
					}
				}
				state, err := nd.cell.State()
				if err != nil {
					return err
				}
				results[rank] = core.CellResult{
					Rank:           rank,
					State:          state,
					MixtureRanks:   append([]int(nil), nd.cell.Mixture().Ranks...),
					MixtureWeights: append([]float64(nil), nd.cell.Mixture().Weights...),
					MixtureFitness: last.MixtureFitness,
					Last:           last,
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &core.Result{Cfg: cfg, Cells: results, Elapsed: time.Since(started), Profile: prof.Snapshot()}
	best := 0
	for i, c := range results {
		if c.MixtureFitness < results[best].MixtureFitness {
			best = i
		}
	}
	res.BestRank = best
	return res, nil
}
