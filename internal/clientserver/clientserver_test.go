package clientserver

import (
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/grid"
	"cellgan/internal/profile"
)

func tinyCfg() config.Config {
	return config.Default().Scaled(2, 8, 100)
}

func TestRunEndToEnd(t *testing.T) {
	cfg := tinyCfg()
	prof := profile.New()
	res, err := Run(cfg, core.RunOptions{Prof: prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != cfg.NumCells() {
		t.Fatalf("cells %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != cfg.Iterations {
			t.Fatalf("cell %d at iteration %d", c.Rank, c.Last.Iteration)
		}
		if math.IsNaN(c.MixtureFitness) {
			t.Fatalf("cell %d NaN fitness", c.Rank)
		}
		// Each cell must have pulled its neighbourhood.
		if len(c.MixtureRanks) < 2 {
			t.Fatalf("cell %d never absorbed a neighbour: %v", c.Rank, c.MixtureRanks)
		}
	}
	// The gather routine (HTTP pulls) must be profiled.
	if prof.Get(profile.RoutineGather).Count == 0 {
		t.Fatal("HTTP exchange not profiled as gather")
	}
	if res.BestRank < 0 || res.BestRank >= len(res.Cells) {
		t.Fatalf("best rank %d", res.BestRank)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := tinyCfg()
	cfg.BatchSize = -1
	if _, err := Run(cfg, core.RunOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNodeServesState(t *testing.T) {
	cfg := tinyCfg()
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := core.NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	nd := &node{cell: cell}
	if err := nd.publish(); err != nil {
		t.Fatal(err)
	}
	url, err := nd.start()
	if err != nil {
		t.Fatal(err)
	}
	defer nd.stop()

	s, err := pull(http.DefaultClient, url)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank != 0 {
		t.Fatalf("served state rank %d", s.Rank)
	}

	// Unknown paths 404.
	resp, err := http.Get(url + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", resp.StatusCode)
	}
}

func TestPullErrors(t *testing.T) {
	if _, err := pull(http.DefaultClient, "http://127.0.0.1:1"); err == nil {
		t.Fatal("dead server accepted")
	}
	// A server returning garbage must be rejected by the state decoder.
	mux := http.NewServeMux()
	mux.HandleFunc(statePath, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a cell state"))
	})
	srv := &http.Server{Handler: mux}
	ln, url := listenLoopback(t)
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	if _, err := pull(http.DefaultClient, url); err == nil {
		t.Fatal("garbage state accepted")
	}
}

func TestPullNon200(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(statePath, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	})
	srv := &http.Server{Handler: mux}
	ln, url := listenLoopback(t)
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	if _, err := pull(http.DefaultClient, url); err == nil {
		t.Fatal("503 accepted")
	}
}

func TestPullTimeout(t *testing.T) {
	// A neighbour that accepts the connection but never answers must not
	// hang the exchange: the client's timeout bounds the pull, and the
	// error must be classified as a timeout so callers can tell a slow
	// peer from a dead one.
	mux := http.NewServeMux()
	mux.HandleFunc(statePath, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold until the client gives up
	})
	srv := &http.Server{Handler: mux}
	ln, url := listenLoopback(t)
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := pull(client, url)
	if err == nil {
		t.Fatal("stalled server accepted")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled pull error is not a timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pull hung %v past the client timeout", elapsed)
	}
}

func TestPullConnectionRefused(t *testing.T) {
	// Reserve a loopback port, then close it: the address is syntactically
	// valid but nothing listens, so the dial must be refused immediately.
	ln, url := listenLoopback(t)
	ln.Close()
	_, err := pull(http.DefaultClient, url)
	if err == nil {
		t.Fatal("refused connection accepted")
	}
	if !strings.Contains(err.Error(), url) {
		t.Fatalf("error does not name the unreachable peer: %v", err)
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		t.Fatalf("connection refusal misclassified as timeout: %v", err)
	}
}

// countingListener counts accepted connections, exposing whether a client
// reused its keep-alive connection or dialled again.
type countingListener struct {
	net.Listener
	accepts int
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts++
	}
	return c, err
}

func TestPullNon200ReusesConnection(t *testing.T) {
	// The error body must be drained so consecutive failing pulls ride a
	// single keep-alive connection instead of redialling.
	mux := http.NewServeMux()
	mux.HandleFunc(statePath, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	})
	srv := &http.Server{Handler: mux}
	ln, url := listenLoopback(t)
	counting := &countingListener{Listener: ln}
	go srv.Serve(counting) //nolint:errcheck
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	for i := 0; i < 3; i++ {
		if _, err := pull(client, url); err == nil {
			t.Fatal("503 accepted")
		}
	}
	if counting.accepts != 1 {
		t.Fatalf("3 failing pulls used %d connections, want 1 (keep-alive reuse)", counting.accepts)
	}
}

func listenLoopback(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}
