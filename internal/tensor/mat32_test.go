package tensor

import (
	"math"
	"testing"
)

// The float32 tier shares the generic kernel cores with float64, so the
// structural edge cases are covered by the float64 bit-exactness sweep;
// here we bound the float32-vs-float64 error and exercise the float32
// plumbing (conversions, aliasing checks, the col2im scatter).

// f32Tolerance bounds the relative error of a float32 reduction of k
// terms against the float64 result: each of the ~k rounding steps
// contributes at most half a ulp (2⁻²⁴).
func f32Tolerance(k int) float64 {
	return float64(k+4) * math.Exp2(-24)
}

func wideMat(m *Mat32) *Mat { return m.WidenInto(new(Mat)) }

func TestMatMulInto32MatchesFloat64(t *testing.T) {
	rng := NewRNG(21)
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {2, 63, 7}, {4, 64, 4}, {5, 65, 3}, {33, 17, 29}, {64, 64, 64}, {130, 64, 96}}
	for _, sz := range shapes {
		m, k, n := sz[0], sz[1], sz[2]
		a := randMat(m, k, rng)
		b := randMat(k, n, rng)
		a32, b32 := Narrow(a), Narrow(b)
		got := wideMat(MatMulInto32(New32(0, 0), a32, b32))
		// Compare against the product of the narrowed operands in float64,
		// so only the accumulation precision differs.
		want := naiveMul(wideMat(a32), wideMat(b32))
		tol := f32Tolerance(k)
		for i := range got.Data {
			ref := want.Data[i]
			if math.Abs(got.Data[i]-ref) > tol*(1+math.Abs(ref))*float64(k) {
				t.Fatalf("MatMulInto32 at %v element %d: got %g want %g", sz, i, got.Data[i], ref)
			}
		}
	}
}

func TestMatMulT2Into32MatchesFloat64(t *testing.T) {
	rng := NewRNG(22)
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {2, 63, 7}, {4, 64, 5}, {9, 65, 3}, {31, 33, 29}}
	for _, sz := range shapes {
		m, k, n := sz[0], sz[1], sz[2]
		a := randMat(m, k, rng)
		b := randMat(n, k, rng)
		a32, b32 := Narrow(a), Narrow(b)
		got := wideMat(MatMulT2Into32(New32(0, 0), a32, b32))
		want := naiveMulT2(wideMat(a32), wideMat(b32))
		tol := f32Tolerance(k)
		for i := range got.Data {
			ref := want.Data[i]
			if math.Abs(got.Data[i]-ref) > tol*(1+math.Abs(ref))*float64(k) {
				t.Fatalf("MatMulT2Into32 at %v element %d: got %g want %g", sz, i, got.Data[i], ref)
			}
		}
	}
}

func TestMatMulInto32PropagatesNonFinite(t *testing.T) {
	a := FromSlice32(1, 2, []float32{0, 1})
	b := FromSlice32(2, 1, []float32{float32(math.NaN()), 2})
	got := MatMulInto32(New32(0, 0), a, b).At(0, 0)
	if !math.IsNaN(float64(got)) {
		t.Fatalf("float32 kernel lost the NaN: got %v", got)
	}
}

func TestMatMulInto32AliasPanics(t *testing.T) {
	backing := make([]float32, 32)
	a := FromSlice32(4, 4, backing[:16])
	dst := FromSlice32(4, 4, backing[8:24])
	b := New32(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto32 with overlapping dst did not panic")
		}
	}()
	MatMulInto32(dst, a, b)
}

func TestAddCol2ImInto32MatchesFloat64(t *testing.T) {
	rng := NewRNG(23)
	// ConvTranspose2D geometry from the repo's CNN generator: 2 samples,
	// c=3 channels, 4×4 kernel scattering a 7×7 grid into 14×14 images.
	const bsz, c, h, w, k, stride, pad = 2, 3, 14, 14, 4, 2, 1
	const posH, posW = 7, 7
	cols := randMat(bsz*posH*posW, c*k*k, rng)
	dst := randMat(bsz, c*h*w, rng)

	dst32 := Narrow(dst)
	cols32 := Narrow(cols)
	AddCol2ImInto32(dst32, cols32, c, h, w, k, stride, pad, posH, posW)

	ref := wideMat(Narrow(dst)) // start from the narrowed seed
	AddCol2ImInto(ref, wideMat(cols32), c, h, w, k, stride, pad, posH, posW)

	got := wideMat(dst32)
	maxTaps := k * k // overlapping contributions per output pixel ≤ k²/stride² per channel tap
	tol := f32Tolerance(maxTaps) * 4
	for i := range got.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > tol*(1+math.Abs(ref.Data[i])) {
			t.Fatalf("AddCol2ImInto32 element %d: got %g want %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestNarrowWidenRoundTrip(t *testing.T) {
	rng := NewRNG(24)
	m := randMat(5, 7, rng)
	w := wideMat(Narrow(m))
	for i := range m.Data {
		if float32(m.Data[i]) != float32(w.Data[i]) {
			t.Fatalf("round trip drifted at %d: %g vs %g", i, m.Data[i], w.Data[i])
		}
	}
	if !m.ApproxEqual(w, 1e-6) {
		t.Fatal("narrow/widen lost more than float32 precision")
	}
}

func TestMat32AddRowVecAndApply(t *testing.T) {
	m := FromSlice32(2, 3, []float32{1, 2, 3, 4, 5, 6})
	m.AddRowVec(FromSlice32(1, 3, []float32{10, 20, 30}))
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range m.Data {
		if v != want[i] {
			t.Fatalf("AddRowVec: %v", m.Data)
		}
	}
	ApplyInto32(m, m, func(v float32) float32 { return -v })
	if m.Data[0] != -11 {
		t.Fatalf("ApplyInto32 in place: %v", m.Data)
	}
}

func TestFloat32IntoKernelsAllocs(t *testing.T) {
	rng := NewRNG(25)
	a := Narrow(randMat(16, 24, rng))
	b := Narrow(randMat(24, 16, rng))
	bt := Narrow(randMat(16, 24, rng))
	dst := New32(16, 16)
	const c, h, w, k2, stride, pad, posH, posW = 1, 6, 6, 2, 2, 0, 3, 3
	img := New32(2, c*h*w)
	cols := Narrow(randMat(2*posH*posW, c*k2*k2, rng))

	src := wideMat(a)
	checks := map[string]func(){
		"MatMulInto32":    func() { MatMulInto32(dst, a, b) },
		"MatMulT2Into32":  func() { MatMulT2Into32(dst, a, bt) },
		"AddCol2ImInto32": func() { AddCol2ImInto32(img, cols, c, h, w, k2, stride, pad, posH, posW) },
		"NarrowInto":      func() { NarrowInto(a, src) },
	}
	for name, f := range checks {
		f() // warm capacity
		if allocs := testing.AllocsPerRun(20, f); allocs != 0 {
			t.Errorf("%s: %.0f allocs per run, want 0", name, allocs)
		}
	}
}
