package tensor

import (
	"math"
	"testing"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceAliases(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, d)
	d[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("FromSlice should alias the provided slice")
	}
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with bad length did not panic")
		}
	}()
	FromSlice(2, 3, []float64{1, 2})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7.5 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("Row must alias storage")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d][%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromFunc(2, 2, func(i, j int) float64 { return float64(i*2 + j) })
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone must not share storage")
	}
	if !m.Equal(FromSlice(2, 2, []float64{0, 1, 2, 3})) {
		t.Fatalf("original mutated: %v", m)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	a.Add(b)
	if !a.Equal(FromSlice(2, 2, []float64{11, 22, 33, 44})) {
		t.Fatalf("Add: %v", a)
	}
	a.Sub(b)
	if !a.Equal(FromSlice(2, 2, []float64{1, 2, 3, 4})) {
		t.Fatalf("Sub: %v", a)
	}
	a.Scale(2)
	if !a.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8})) {
		t.Fatalf("Scale: %v", a)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestMulElemAndAddScaled(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	a.MulElem(b)
	if !a.Equal(FromSlice(1, 3, []float64{4, 10, 18})) {
		t.Fatalf("MulElem: %v", a)
	}
	a.AddScaled(0.5, b)
	if !a.Equal(FromSlice(1, 3, []float64{6, 12.5, 21})) {
		t.Fatalf("AddScaled: %v", a)
	}
}

func TestAddRowVecBroadcast(t *testing.T) {
	m := New(3, 2)
	v := FromSlice(1, 2, []float64{1, -1})
	m.AddRowVec(v)
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 1 || m.At(i, 1) != -1 {
			t.Fatalf("row %d = %v", i, m.Row(i))
		}
	}
}

func TestAddRowVecBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRowVec with wrong width did not panic")
		}
	}()
	New(2, 3).AddRowVec(New(1, 2))
}

func TestApplyAndMap(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 4, 9})
	sq := m.Map(math.Sqrt)
	if !sq.ApproxEqual(FromSlice(1, 3, []float64{1, 2, 3}), 1e-12) {
		t.Fatalf("Map sqrt: %v", sq)
	}
	if !m.Equal(FromSlice(1, 3, []float64{1, 4, 9})) {
		t.Fatal("Map must not mutate receiver")
	}
	m.Apply(func(x float64) float64 { return -x })
	if !m.Equal(FromSlice(1, 3, []float64{-1, -4, -9})) {
		t.Fatalf("Apply: %v", m)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(7)
	m := FromFunc(5, 3, func(i, j int) float64 { return rng.NormFloat64() })
	tt := m.T().T()
	if !m.Equal(tt) {
		t.Fatal("T(T(m)) != m")
	}
	tr := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose wrong at %d,%d", i, j)
			}
		}
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, -2, 3, -4, 5, -6})
	if got := m.Sum(); got != -3 {
		t.Fatalf("Sum = %v", got)
	}
	if got := m.Mean(); math.Abs(got+0.5) > 1e-15 {
		t.Fatalf("Mean = %v", got)
	}
	if got := m.Max(); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	if got := m.Min(); got != -6 {
		t.Fatalf("Min = %v", got)
	}
	want := math.Sqrt(1 + 4 + 9 + 16 + 25 + 36)
	if got := m.Norm2(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm2 = %v want %v", got, want)
	}
}

func TestEmptyMatrixReductions(t *testing.T) {
	m := New(0, 3)
	if m.Sum() != 0 || m.Mean() != 0 {
		t.Fatal("empty Sum/Mean should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Max of empty matrix did not panic")
		}
	}()
	m.Max()
}

func TestDot(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestArgmaxRow(t *testing.T) {
	m := FromSlice(2, 4, []float64{0, 5, 2, 5, -3, -1, -2, -9})
	if got := m.ArgmaxRow(0); got != 1 {
		t.Fatalf("ArgmaxRow(0) = %d (first max wins)", got)
	}
	if got := m.ArgmaxRow(1); got != 1 {
		t.Fatalf("ArgmaxRow(1) = %d", got)
	}
}

func TestApproxEqual(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{1.0005, 2})
	if !a.ApproxEqual(b, 1e-3) {
		t.Fatal("should be approx equal at 1e-3")
	}
	if a.ApproxEqual(b, 1e-6) {
		t.Fatal("should differ at 1e-6")
	}
	if a.ApproxEqual(New(2, 1), 1) {
		t.Fatal("shape mismatch must not be approx equal")
	}
}

func TestFillZeroCopyFrom(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.Sum() != 12 {
		t.Fatalf("Fill: %v", m)
	}
	o := Full(2, 2, 9)
	m.CopyFrom(o)
	if !m.Equal(o) {
		t.Fatalf("CopyFrom: %v", m)
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("Zero: %v", m)
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice(1, 2, []float64{1, 2})
	if s := small.String(); s == "" || s[0] != 'M' {
		t.Fatalf("String small = %q", s)
	}
	big := New(100, 100)
	if s := big.String(); s != "Mat(100×100)" {
		t.Fatalf("String big = %q", s)
	}
}
