package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// matMagic guards against decoding arbitrary byte streams as matrices.
const matMagic = 0x4d41545a // "MATZ"

// maxDecodeElems bounds decoded matrix sizes to catch corrupted headers
// before they turn into multi-gigabyte allocations.
const maxDecodeElems = 1 << 28

// WriteTo serialises m to w in a fixed little-endian binary format:
// magic, rows, cols (uint32 each) followed by Rows*Cols float64 bits.
func (m *Mat) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], matMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Cols))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	n, err = w.Write(buf)
	return total + int64(n), err
}

// ReadMat decodes a matrix previously written with WriteTo.
func ReadMat(r io.Reader) (*Mat, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("tensor: reading matrix header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != matMagic {
		return nil, errors.New("tensor: bad matrix magic")
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	cols := int(binary.LittleEndian.Uint32(hdr[8:]))
	if rows < 0 || cols < 0 || (cols != 0 && rows > maxDecodeElems/max(cols, 1)) || rows*cols > maxDecodeElems {
		return nil, fmt.Errorf("tensor: implausible matrix size %d×%d", rows, cols)
	}
	m := New(rows, cols)
	buf := make([]byte, 8*len(m.Data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("tensor: reading matrix body: %w", err)
	}
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return m, nil
}

// EncodeMats serialises a sequence of matrices to w.
func EncodeMats(w io.Writer, ms []*Mat) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(ms)))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	for _, m := range ms {
		if _, err := m.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// DecodeMats reads a sequence of matrices written by EncodeMats.
func DecodeMats(r io.Reader) ([]*Mat, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading matrix count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("tensor: implausible matrix count %d", n)
	}
	ms := make([]*Mat, n)
	for i := range ms {
		m, err := ReadMat(r)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}
