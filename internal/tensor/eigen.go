package tensor

import (
	"fmt"
	"math"
	"sort"
)

// IsSymmetric reports whether m is square and symmetric within tol.
func IsSymmetric(m *Mat, tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SymEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method: a = V·diag(values)·Vᵀ with orthonormal
// eigenvector columns in V. Eigenvalues are returned in descending order.
// It backs the full-covariance Fréchet distance, whose matrix square
// roots reduce to eigenvalue square roots.
func SymEigen(a *Mat) (values []float64, vectors *Mat, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("tensor: SymEigen needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	if !IsSymmetric(a, 1e-8*(1+a.Norm2())) {
		return nil, nil, fmt.Errorf("tensor: SymEigen needs a symmetric matrix")
	}
	// Work on a copy; accumulate rotations in v.
	w := a.Clone()
	v := Eye(n)

	offdiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.At(i, j)
				s += x * x
			}
		}
		return s
	}
	scale := w.Norm2()
	if scale == 0 {
		scale = 1
	}
	const maxSweeps = 100
	tol := 1e-22 * scale * scale
	for sweep := 0; sweep < maxSweeps && offdiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Jacobi rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation to rows/cols p and q of w.
				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return values[order[i]] > values[order[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range order {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// Covariance returns the d×d sample covariance matrix of the rows of x
// (n×d), using the n-1 normalisation.
func Covariance(x *Mat) (*Mat, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, fmt.Errorf("tensor: covariance needs at least 2 samples, got %d", n)
	}
	mu := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			mu[j] += v / float64(n)
		}
	}
	centered := New(n, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		out := centered.Row(i)
		for j := range row {
			out[j] = row[j] - mu[j]
		}
	}
	cov := MatMulT1(centered, centered)
	cov.Scale(1 / float64(n-1))
	return cov, nil
}

// TraceSqrtProduct computes tr((a·b)^{1/2}) for symmetric positive
// semi-definite a and b, the cross term of the Fréchet distance. It uses
// tr((a·b)^{1/2}) = Σᵢ √λᵢ(a·b) with λ(a·b) computed through the
// symmetric similarity √a·b·√a. Tiny negative eigenvalues from numerical
// noise are clamped to zero.
func TraceSqrtProduct(a, b *Mat) (float64, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return 0, fmt.Errorf("tensor: TraceSqrtProduct needs equal square matrices")
	}
	va, ve, err := SymEigen(a)
	if err != nil {
		return 0, fmt.Errorf("tensor: sqrt of first factor: %w", err)
	}
	n := a.Rows
	// sqrtA = V diag(sqrt(max(λ,0))) Vᵀ
	d := New(n, n)
	for i, l := range va {
		if l > 0 {
			d.Set(i, i, math.Sqrt(l))
		}
	}
	// (V·d)·Vᵀ via the transposed-operand kernel: no materialised Vᵀ.
	sqrtA := MatMulT2(MatMul(ve, d), ve)
	m := MatMul(MatMul(sqrtA, b), sqrtA)
	// Symmetrise against round-off before the second decomposition,
	// pairwise in place: both elements of each (i,j)/(j,i) pair are set to
	// their mean, which matches m.Add(m.T()); m.Scale(0.5) bit for bit
	// (IEEE addition is commutative) without the transpose temporary.
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := (m.At(i, j) + m.At(j, i)) * 0.5
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	vm, _, err := SymEigen(m)
	if err != nil {
		return 0, fmt.Errorf("tensor: sqrt of product: %w", err)
	}
	tr := 0.0
	for _, l := range vm {
		if l > 0 {
			tr += math.Sqrt(l)
		}
	}
	return tr, nil
}
