package tensor

import "fmt"

// Mat32 is a dense, row-major matrix of float32 — the storage type of the
// opt-in serving compute tier. Training stays entirely on float64 Mat:
// the float32 tier exists for inference paths where bit-parity with
// training explicitly does not matter and halving the memory traffic
// nearly halves the matmul wall-clock. The API mirrors the subset of Mat
// the forward passes need; there is deliberately no backward-pass support.
type Mat32 struct {
	Rows, Cols int
	// Data holds the elements in row-major order; len(Data) == Rows*Cols.
	Data []float32
}

// New32 returns a zero-filled rows×cols float32 matrix.
func New32(rows, cols int) *Mat32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Mat32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice32 wraps data (not copied) as a rows×cols matrix.
func FromSlice32(rows, cols int, data []float32) *Mat32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice32 size mismatch: %d×%d vs %d elements", rows, cols, len(data)))
	}
	return &Mat32{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Mat32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Resize reshapes m to rows×cols in place, reusing the backing array when
// its capacity allows. Element values after a Resize are unspecified. It
// returns m.
func (m *Mat32) Resize(rows, cols int) *Mat32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: Resize to negative dimensions %d×%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// Zero sets every element of m to zero.
func (m *Mat32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Mat32) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// AddRowVec adds the 1×Cols row vector v to every row of m (broadcast) —
// the bias add of the float32 Linear forward.
func (m *Mat32) AddRowVec(v *Mat32) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec wants 1×%d, got %d×%d", m.Cols, v.Rows, v.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v.Data {
			row[j] += b
		}
	}
}

// NarrowInto resizes dst to src's shape and fills it with src narrowed to
// float32 — the model-load conversion of the serving tier. It returns dst.
func NarrowInto(dst *Mat32, src *Mat) *Mat32 {
	dst.Resize(src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
	return dst
}

// Narrow returns a freshly allocated float32 copy of src.
func Narrow(src *Mat) *Mat32 {
	return NarrowInto(&Mat32{}, src)
}

// WidenInto resizes dst to m's shape and fills it with m widened to
// float64 (exact). It returns dst.
func (m *Mat32) WidenInto(dst *Mat) *Mat {
	dst.Resize(m.Rows, m.Cols)
	for i, v := range m.Data {
		dst.Data[i] = float64(v)
	}
	return dst
}

// Apply32 sets every element x of m to f(x).
func (m *Mat32) Apply32(f func(float32) float32) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// ApplyInto32 sets dst (resized to src's shape) to f applied element-wise
// to src. dst == src is allowed. It returns dst.
func ApplyInto32(dst, src *Mat32, f func(float32) float32) *Mat32 {
	dst.Resize(src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = f(v)
	}
	return dst
}
