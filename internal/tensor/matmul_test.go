package tensor

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"
)

// naiveMul is the reference O(n³) triple loop used to validate the
// optimised kernels.
func naiveMul(a, b *Mat) *Mat {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randMat(rows, cols int, rng *RNG) *Mat {
	m := New(rows, cols)
	GaussianFill(m, 0, 1, rng)
	return m
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !c.Equal(want) {
		t.Fatalf("MatMul = %v want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := randMat(7, 7, rng)
	if !MatMul(a, Eye(7)).ApproxEqual(a, 1e-12) {
		t.Fatal("a·I != a")
	}
	if !MatMul(Eye(7), a).ApproxEqual(a, 1e-12) {
		t.Fatal("I·a != a")
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(2)
	for _, sz := range [][3]int{{1, 1, 1}, {3, 5, 2}, {10, 4, 7}, {33, 17, 29}} {
		a := randMat(sz[0], sz[1], rng)
		b := randMat(sz[1], sz[2], rng)
		if !MatMul(a, b).ApproxEqual(naiveMul(a, b), 1e-9) {
			t.Fatalf("MatMul disagrees with naive at %v", sz)
		}
	}
}

func TestMatMulLargeParallelPath(t *testing.T) {
	rng := NewRNG(3)
	a := randMat(120, 90, rng)
	b := randMat(90, 110, rng)
	// 120*90*110 > parallelThreshold, exercising the ParallelFor path.
	if !MatMul(a, b).ApproxEqual(naiveMul(a, b), 1e-8) {
		t.Fatal("parallel MatMul disagrees with naive")
	}
}

func TestMatMulT1MatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(4)
	a := randMat(13, 8, rng)
	b := randMat(13, 6, rng)
	got := MatMulT1(a, b)
	want := MatMul(a.T(), b)
	if !got.ApproxEqual(want, 1e-10) {
		t.Fatal("MatMulT1 != T(a)·b")
	}
}

func TestMatMulT2MatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(5)
	a := randMat(9, 11, rng)
	b := randMat(7, 11, rng)
	got := MatMulT2(a, b)
	want := MatMul(a, b.T())
	if !got.ApproxEqual(want, 1e-10) {
		t.Fatal("MatMulT2 != a·T(b)")
	}
}

func TestMatMulT1LargeParallelPath(t *testing.T) {
	rng := NewRNG(6)
	a := randMat(100, 80, rng)
	b := randMat(100, 90, rng)
	if !MatMulT1(a, b).ApproxEqual(MatMul(a.T(), b), 1e-8) {
		t.Fatal("parallel MatMulT1 wrong")
	}
}

func TestMatMulT2LargeParallelPath(t *testing.T) {
	rng := NewRNG(7)
	a := randMat(100, 90, rng)
	b := randMat(80, 90, rng)
	if !MatMulT2(a, b).ApproxEqual(MatMul(a, b.T()), 1e-8) {
		t.Fatal("parallel MatMulT2 wrong")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := FromSlice(3, 1, []float64{1, 0, -1})
	y := MatVec(a, x)
	if y.Rows != 2 || y.Cols != 1 || y.Data[0] != -2 || y.Data[1] != -2 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestColSumsRowMeans(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	cs := ColSums(m)
	if !cs.Equal(FromSlice(1, 3, []float64{5, 7, 9})) {
		t.Fatalf("ColSums = %v", cs)
	}
	rm := RowMeans(m)
	if !rm.ApproxEqual(FromSlice(2, 1, []float64{2, 5}), 1e-12) {
		t.Fatalf("RowMeans = %v", rm)
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := 1000
	marks := make([]int32, n)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	ParallelFor(n, 7, func(lo, hi int) {
		<-mu
		for i := lo; i < hi; i++ {
			marks[i]++
		}
		mu <- struct{}{}
	})
	for i, c := range marks {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestParallelForEmptyAndSmall(t *testing.T) {
	called := 0
	ParallelFor(0, 1, func(lo, hi int) { called++ })
	if called != 0 {
		t.Fatal("ParallelFor(0) must not invoke f")
	}
	ParallelFor(3, 100, func(lo, hi int) {
		called++
		if lo != 0 || hi != 3 {
			t.Fatalf("small n should run inline over [0,3), got [%d,%d)", lo, hi)
		}
	})
	if called != 1 {
		t.Fatalf("inline path called %d times", called)
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickMatMulDistributes(t *testing.T) {
	rng := NewRNG(99)
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(8)
		k := 1 + r.Intn(8)
		m := 1 + r.Intn(8)
		a := randMat(n, k, rng)
		b := randMat(k, m, rng)
		c := randMat(k, m, rng)
		bc := b.Clone()
		bc.Add(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.Add(MatMul(a, c))
		return left.ApproxEqual(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (a·b)ᵀ == bᵀ·aᵀ.
func TestQuickMatMulTransposeLaw(t *testing.T) {
	rng := NewRNG(100)
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		a := randMat(n, k, rng)
		b := randMat(k, m, rng)
		left := MatMul(a, b).T()
		right := MatMul(b.T(), a.T())
		return left.ApproxEqual(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is absolutely homogeneous: ‖αm‖ = |α|‖m‖.
func TestQuickNormHomogeneous(t *testing.T) {
	f := func(seed uint64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		r := NewRNG(seed)
		m := randMat(1+r.Intn(5), 1+r.Intn(5), r)
		want := math.Abs(alpha) * m.Norm2()
		m.Scale(alpha)
		return math.Abs(m.Norm2()-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
