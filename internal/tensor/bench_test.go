package tensor

import "testing"

func benchMat(rows, cols int, seed uint64) *Mat {
	m := New(rows, cols)
	GaussianFill(m, 0, 1, NewRNG(seed))
	return m
}

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		a := benchMat(n, n, 1)
		c := benchMat(n, n, 2)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n * n))
			for i := 0; i < b.N; i++ {
				_ = MatMul(a, c)
			}
		})
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		a := benchMat(n, n, 1)
		c := benchMat(n, n, 2)
		dst := New(n, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n * n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, c)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 16:
		return "16x16"
	case 64:
		return "64x64"
	case 256:
		return "256x256"
	default:
		return "n"
	}
}

func BenchmarkMatMulT1(b *testing.B) {
	a := benchMat(100, 256, 1)
	c := benchMat(100, 784, 2)
	b.SetBytes(int64(8 * 100 * 256 * 784))
	for i := 0; i < b.N; i++ {
		_ = MatMulT1(a, c)
	}
}

func BenchmarkMatMulT2(b *testing.B) {
	a := benchMat(100, 784, 1)
	c := benchMat(256, 784, 2)
	b.SetBytes(int64(8 * 100 * 784 * 256))
	for i := 0; i < b.N; i++ {
		_ = MatMulT2(a, c)
	}
}

func BenchmarkMatMulT1Into(b *testing.B) {
	a := benchMat(100, 256, 1)
	c := benchMat(100, 784, 2)
	dst := New(256, 784)
	b.SetBytes(int64(8 * 100 * 256 * 784))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulT1Into(dst, a, c)
	}
}

func BenchmarkAddMatMulT1Into(b *testing.B) {
	a := benchMat(100, 256, 1)
	c := benchMat(100, 784, 2)
	dst := New(256, 784)
	b.SetBytes(int64(8 * 100 * 256 * 784))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddMatMulT1Into(dst, a, c)
	}
}

func BenchmarkMatMulT2Into(b *testing.B) {
	a := benchMat(100, 784, 1)
	c := benchMat(256, 784, 2)
	dst := New(100, 256)
	b.SetBytes(int64(8 * 100 * 784 * 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulT2Into(dst, a, c)
	}
}

func BenchmarkMatMulInto32(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		a := Narrow(benchMat(n, n, 1))
		c := Narrow(benchMat(n, n, 2))
		dst := New32(n, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(4 * n * n * n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulInto32(dst, a, c)
			}
		})
	}
}

func BenchmarkMatMulT2Into32(b *testing.B) {
	a := Narrow(benchMat(100, 784, 1))
	c := Narrow(benchMat(256, 784, 2))
	dst := New32(100, 256)
	b.SetBytes(int64(4 * 100 * 784 * 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulT2Into32(dst, a, c)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	x := benchMat(256, 784, 1)
	y := benchMat(256, 784, 2)
	b.SetBytes(int64(8 * len(x.Data)))
	for i := 0; i < b.N; i++ {
		x.AddScaled(1e-9, y)
	}
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkRNGPerm(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Perm(1000)
	}
}

func BenchmarkSymEigen(b *testing.B) {
	rng := NewRNG(1)
	n := 64
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatSerialize(b *testing.B) {
	m := benchMat(256, 784, 1)
	var buf []byte
	{
		var w writerBuf
		if _, err := m.WriteTo(&w); err != nil {
			b.Fatal(err)
		}
		buf = w.data
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w writerBuf
		if _, err := m.WriteTo(&w); err != nil {
			b.Fatal(err)
		}
	}
}

// writerBuf is a minimal growing writer without bytes.Buffer bookkeeping.
type writerBuf struct{ data []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
