package tensor

import (
	"testing"
)

// TestIntoKernelsBitIdentical verifies every destination-passing kernel
// against its allocating form, bit for bit, on shapes below and above the
// parallel-dispatch threshold and with reused (dirty, over-capacity)
// destinations.
func TestIntoKernelsBitIdentical(t *testing.T) {
	rng := NewRNG(42)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 7, 5},
		{16, 16, 16},
		{50, 50, 60}, // 150k multiply-adds: above parallelThreshold
	}
	for _, s := range shapes {
		a := randMat(s.m, s.k, rng)
		b := randMat(s.k, s.n, rng)
		at := randMat(s.k, s.m, rng) // for T1: aᵀ×b with a of shape k×m
		bt := randMat(s.n, s.k, rng) // for T2: a×bᵀ with b of shape n×k

		// Dirty, oversized destination exercises the Resize reuse path.
		dst := randMat(s.m+3, s.n+3, rng)

		if got, want := MatMulInto(dst, a, b), MatMul(a, b); !got.Equal(want) {
			t.Fatalf("MatMulInto differs from MatMul at %+v", s)
		}
		if got, want := MatMulT1Into(dst, at, b), MatMulT1(at, b); !got.Equal(want) {
			t.Fatalf("MatMulT1Into differs from MatMulT1 at %+v", s)
		}
		if got, want := MatMulT2Into(dst, a, bt), MatMulT2(a, bt); !got.Equal(want) {
			t.Fatalf("MatMulT2Into differs from MatMulT2 at %+v", s)
		}
		if got, want := ColSumsInto(dst, a), ColSums(a); !got.Equal(want) {
			t.Fatalf("ColSumsInto differs from ColSums at %+v", s)
		}
		if got, want := TInto(dst, a), a.T(); !got.Equal(want) {
			t.Fatalf("TInto differs from T at %+v", s)
		}
		f := func(v float64) float64 { return v*v + 1 }
		if got, want := ApplyInto(dst, a, f), a.Map(f); !got.Equal(want) {
			t.Fatalf("ApplyInto differs from Map at %+v", s)
		}
	}
}

// TestAddMatMulT1IntoZeroStart verifies the fused accumulation matches
// MatMulT1 bit for bit when the destination arrives zeroed, and matches
// compute-then-Add within rounding from a non-zero start.
func TestAddMatMulT1IntoZeroStart(t *testing.T) {
	rng := NewRNG(7)
	a := randMat(9, 6, rng)
	b := randMat(9, 8, rng)

	zeroStart := New(6, 8)
	AddMatMulT1Into(zeroStart, a, b)
	if want := MatMulT1(a, b); !zeroStart.Equal(want) {
		t.Fatal("AddMatMulT1Into into zeroed dst differs from MatMulT1")
	}

	acc := randMat(6, 8, rng)
	ref := acc.Clone()
	AddMatMulT1Into(acc, a, b)
	ref.Add(MatMulT1(a, b))
	if !acc.ApproxEqual(ref, 1e-12) {
		t.Fatal("AddMatMulT1Into from non-zero start diverges beyond rounding")
	}
}

func TestAddColSumsInto(t *testing.T) {
	rng := NewRNG(8)
	m := randMat(5, 4, rng)
	acc := New(1, 4)
	AddColSumsInto(acc, m)
	if want := ColSums(m); !acc.Equal(want) {
		t.Fatal("AddColSumsInto into zeroed dst differs from ColSums")
	}
}

func TestResizeReusesCapacity(t *testing.T) {
	m := New(10, 10)
	data := &m.Data[0]
	m.Resize(5, 7)
	if m.Rows != 5 || m.Cols != 7 || len(m.Data) != 35 {
		t.Fatalf("Resize gave %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != data {
		t.Fatal("Resize within capacity reallocated")
	}
	m.Resize(20, 20)
	if len(m.Data) != 400 {
		t.Fatalf("Resize growth gave len %d", len(m.Data))
	}
}

func TestIntoKernelsRejectAliasing(t *testing.T) {
	a := New(4, 4)
	cases := map[string]func(){
		"MatMulInto":   func() { MatMulInto(a, a, New(4, 4)) },
		"MatMulT1Into": func() { MatMulT1Into(a, New(4, 4), a) },
		"MatMulT2Into": func() { MatMulT2Into(a, a, a) },
		"TInto":        func() { TInto(a, a) },
		"ColSumsInto": func() {
			v := FromSlice(1, 4, a.Data[:4])
			ColSumsInto(v, a)
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted an aliased destination", name)
				}
			}()
			f()
		}()
	}
}

// TestMatMulIntoZeroAllocs is the allocation regression tripwire of the
// destination-passing refactor: steady-state kernels must not allocate.
// Shapes stay below parallelThreshold because the parallel branch spawns
// goroutines (and that branch is amortised over far more arithmetic).
func TestMatMulIntoZeroAllocs(t *testing.T) {
	rng := NewRNG(9)
	a := randMat(16, 24, rng)
	b := randMat(24, 16, rng)
	bt := randMat(16, 24, rng)
	dst := New(16, 16)
	dw := New(24, 16)
	colsum := New(1, 24)

	checks := map[string]func(){
		"MatMulInto":      func() { MatMulInto(dst, a, b) },
		"MatMulT1Into":    func() { MatMulT1Into(dw, a, dst) },
		"AddMatMulT1Into": func() { AddMatMulT1Into(dw, a, dst) },
		"MatMulT2Into":    func() { MatMulT2Into(dst, a, bt) },
		"ColSumsInto":     func() { ColSumsInto(colsum, a) },
		"AddColSumsInto":  func() { AddColSumsInto(colsum, a) },
		"ApplyInto":       func() { ApplyInto(dst, dst, func(v float64) float64 { return v + 1 }) },
		"TInto":           func() { TInto(dst, bt) },
	}
	for name, f := range checks {
		f() // warm capacity
		if allocs := testing.AllocsPerRun(20, f); allocs != 0 {
			t.Errorf("%s: %.0f allocs per run, want 0", name, allocs)
		}
	}
}
