package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals %v want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit vectors.
	for c := 0; c < 3; c++ {
		nonzero := 0
		for r := 0; r < 3; r++ {
			if math.Abs(vecs.At(r, c)) > 1e-9 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Fatalf("eigenvector %d not axis-aligned: %v", c, vecs)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromSlice(2, 2, []float64{2, 1, 1, 2})
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals %v", vals)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := NewRNG(4)
	for _, n := range []int{1, 2, 5, 12, 30} {
		// Random symmetric matrix.
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Orthogonality: VᵀV = I.
		vtv := MatMulT1(vecs, vecs)
		if !vtv.ApproxEqual(Eye(n), 1e-8) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
		// Reconstruction: V diag(vals) Vᵀ = a.
		d := New(n, n)
		for i, l := range vals {
			d.Set(i, i, l)
		}
		rec := MatMul(MatMul(vecs, d), vecs.T())
		if !rec.ApproxEqual(a, 1e-8) {
			t.Fatalf("n=%d: reconstruction failed", n)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
	}
}

func TestSymEigenValidation(t *testing.T) {
	if _, _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	asym := FromSlice(2, 2, []float64{0, 1, -1, 0})
	if _, _, err := SymEigen(asym); err == nil {
		t.Fatal("asymmetric accepted")
	}
	// Zero matrix works.
	vals, _, err := SymEigen(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Fatalf("zero-matrix eigenvalues %v", vals)
		}
	}
}

func TestQuickSymEigenTraceInvariant(t *testing.T) {
	// Trace equals the eigenvalue sum; Frobenius norm equals the
	// eigenvalue 2-norm.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		frob2, eig2 := 0.0, 0.0
		for _, v := range a.Data {
			frob2 += v * v
		}
		for _, l := range vals {
			sum += l
			eig2 += l * l
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace)) &&
			math.Abs(frob2-eig2) < 1e-6*(1+frob2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCovariance(t *testing.T) {
	// Two perfectly correlated dimensions.
	x := FromSlice(4, 2, []float64{0, 0, 1, 2, 2, 4, 3, 6})
	cov, err := Covariance(x)
	if err != nil {
		t.Fatal(err)
	}
	// var(x0) = 5/3, cov = 10/3, var(x1) = 20/3.
	if math.Abs(cov.At(0, 0)-5.0/3) > 1e-12 ||
		math.Abs(cov.At(0, 1)-10.0/3) > 1e-12 ||
		math.Abs(cov.At(1, 1)-20.0/3) > 1e-12 {
		t.Fatalf("cov %v", cov)
	}
	if !IsSymmetric(cov, 1e-12) {
		t.Fatal("covariance not symmetric")
	}
	if _, err := Covariance(New(1, 3)); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestTraceSqrtProductIdentity(t *testing.T) {
	// tr((I·I)^½) = n.
	got, err := TraceSqrtProduct(Eye(4), Eye(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("tr = %v", got)
	}
}

func TestTraceSqrtProductDiagonal(t *testing.T) {
	// Diagonal PSD matrices: tr((ab)^½) = Σ √(aᵢbᵢ).
	a := New(3, 3)
	b := New(3, 3)
	av := []float64{1, 4, 9}
	bv := []float64{4, 1, 16}
	want := 0.0
	for i := 0; i < 3; i++ {
		a.Set(i, i, av[i])
		b.Set(i, i, bv[i])
		want += math.Sqrt(av[i] * bv[i])
	}
	got, err := TraceSqrtProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("tr = %v want %v", got, want)
	}
}

func TestTraceSqrtProductSameMatrix(t *testing.T) {
	// tr((Σ·Σ)^½) = tr(Σ) for PSD Σ.
	rng := NewRNG(8)
	x := New(50, 5)
	GaussianFill(x, 0, 1, rng)
	cov, err := Covariance(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TraceSqrtProduct(cov, cov)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 5; i++ {
		want += cov.At(i, i)
	}
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("tr = %v want %v", got, want)
	}
}

func TestTraceSqrtProductValidation(t *testing.T) {
	if _, err := TraceSqrtProduct(New(2, 2), New(3, 3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := TraceSqrtProduct(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}
