package tensor

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatRoundTrip(t *testing.T) {
	rng := NewRNG(1)
	m := randMat(7, 13, rng)
	m.Set(0, 0, math.Inf(1))
	m.Set(0, 1, -0.0)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
}

func TestMatRoundTripNaN(t *testing.T) {
	m := FromSlice(1, 2, []float64{math.NaN(), 1})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Data[0]) || got.Data[1] != 1 {
		t.Fatalf("NaN round trip: %v", got.Data)
	}
}

func TestReadMatBadMagic(t *testing.T) {
	if _, err := ReadMat(strings.NewReader("not a matrix header")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadMatTruncated(t *testing.T) {
	m := randMat(4, 4, NewRNG(2))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadMat(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestReadMatImplausibleSize(t *testing.T) {
	var buf bytes.Buffer
	huge := &Mat{Rows: 1, Cols: 1, Data: []float64{0}}
	if _, err := huge.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Overwrite rows/cols with absurd values.
	for i := 4; i < 12; i++ {
		b[i] = 0xff
	}
	if _, err := ReadMat(bytes.NewReader(b)); err == nil {
		t.Fatal("implausible size accepted")
	}
}

func TestEncodeDecodeMats(t *testing.T) {
	rng := NewRNG(3)
	ms := []*Mat{randMat(2, 3, rng), randMat(1, 1, rng), New(0, 5)}
	var buf bytes.Buffer
	if err := EncodeMats(&buf, ms); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d matrices, want %d", len(got), len(ms))
	}
	for i := range ms {
		if !got[i].Equal(ms[i]) {
			t.Fatalf("matrix %d mismatch", i)
		}
	}
}

func TestDecodeMatsEmptyStream(t *testing.T) {
	if _, err := DecodeMats(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDecodeMatsZeroCount(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeMats(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty, got %d", len(got))
	}
}

func TestQuickMatRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m := randMat(r.Intn(6), 1+r.Intn(6), r)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadMat(&buf)
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// failWriter fails after n bytes to exercise write error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteToPropagatesErrors(t *testing.T) {
	m := randMat(4, 4, NewRNG(5))
	if _, err := m.WriteTo(&failWriter{n: 3}); err == nil {
		t.Fatal("header write failure not propagated")
	}
	if _, err := m.WriteTo(&failWriter{n: 20}); err == nil {
		t.Fatal("body write failure not propagated")
	}
	if err := EncodeMats(&failWriter{n: 1}, []*Mat{m}); err == nil {
		t.Fatal("EncodeMats count write failure not propagated")
	}
	if err := EncodeMats(&failWriter{n: 6}, []*Mat{m}); err == nil {
		t.Fatal("EncodeMats body write failure not propagated")
	}
}
