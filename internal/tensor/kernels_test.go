package tensor

import (
	"math"
	"runtime"
	"testing"
)

// The cache-blocked kernels change the loop structure but must not change
// a single output bit relative to the naive ascending-k accumulation.
// These tests sweep shapes chosen to hit every remainder case of the
// tiling: k around the kernelKC=64 tile edge and the 4-wide unroll, j
// around the kernelJC edge, degenerate 1×N / N×1, and zero-dimension
// matrices.

// naiveMulT1 is the reference for MatMulT1 (aᵀ·b).
func naiveMulT1(a, b *Mat) *Mat {
	c := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// naiveMulT2 is the reference for MatMulT2 (a·bᵀ).
func naiveMulT2(a, b *Mat) *Mat {
	c := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// kernelEdgeDims are sizes straddling the unroll width (4), the k-tile
// (kernelKC=64) and small degenerate shapes.
var kernelEdgeDims = []int{1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 127, 130}

func TestTiledKernelsBitExactVsNaive(t *testing.T) {
	rng := NewRNG(11)
	shapes := [][3]int{}
	for _, k := range kernelEdgeDims {
		shapes = append(shapes, [3]int{3, k, 5}, [3]int{1, k, 1}, [3]int{2, k, 7})
	}
	// j-tile edge: kernelJC columns is large, cover it with a thin product.
	shapes = append(shapes,
		[3]int{1, 2, kernelJC - 1}, [3]int{1, 2, kernelJC}, [3]int{2, 3, kernelJC + 1},
		[3]int{31, 33, 29}, [3]int{64, 64, 64},
	)
	for _, sz := range shapes {
		m, k, n := sz[0], sz[1], sz[2]
		a := randMat(m, k, rng)
		b := randMat(k, n, rng)
		if got, want := MatMul(a, b), naiveMul(a, b); !got.Equal(want) {
			t.Fatalf("MatMul not bit-exact vs naive at %v", sz)
		}
		at := randMat(k, m, rng) // aᵀ operand: k rows feed the reduction
		if got, want := MatMulT1(at, b), naiveMulT1(at, b); !got.Equal(want) {
			t.Fatalf("MatMulT1 not bit-exact vs naive at %v", sz)
		}
		bt := randMat(n, k, rng)
		if got, want := MatMulT2(a, bt), naiveMulT2(a, bt); !got.Equal(want) {
			t.Fatalf("MatMulT2 not bit-exact vs naive at %v", sz)
		}
		dst := randMat(m, n, rng)
		acc := dst.Clone()
		AddMatMulT1Into(acc, at, b)
		// The reference must seed the accumulator with dst and then add the
		// ascending-k terms — the same FP order the kernel contracts to.
		ref := dst.Clone()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := ref.At(i, j)
				for kk := 0; kk < k; kk++ {
					s += at.At(kk, i) * b.At(kk, j)
				}
				ref.Set(i, j, s)
			}
		}
		if !acc.Equal(ref) {
			t.Fatalf("AddMatMulT1Into not bit-exact vs naive at %v", sz)
		}
	}
}

func TestTiledKernelsZeroDims(t *testing.T) {
	// Zero-dimension operands must produce empty (or zero-filled) results
	// without touching out-of-range memory.
	a := New(0, 5)
	b := New(5, 3)
	if c := MatMul(a, b); c.Rows != 0 || c.Cols != 3 {
		t.Fatalf("0×5 · 5×3 = %d×%d", c.Rows, c.Cols)
	}
	if c := MatMul(New(4, 0), New(0, 3)); c.Rows != 4 || c.Cols != 3 {
		t.Fatalf("4×0 · 0×3 = %d×%d", c.Rows, c.Cols)
	} else {
		for _, v := range c.Data {
			if v != 0 {
				t.Fatal("empty reduction must produce zeros")
			}
		}
	}
	if c := MatMulT1(New(0, 4), New(0, 3)); c.Rows != 4 || c.Cols != 3 {
		t.Fatalf("T1 with empty reduction = %d×%d", c.Rows, c.Cols)
	}
	if c := MatMulT2(New(2, 0), New(3, 0)); c.Rows != 2 || c.Cols != 3 {
		t.Fatalf("T2 with empty reduction = %d×%d", c.Rows, c.Cols)
	}
}

// Regression for the silent-numerics bug: the pre-tiled kernels skipped
// zero a-elements, so a zero times a NaN or Inf in b contributed nothing
// instead of poisoning the output. IEEE requires 0·NaN = NaN and
// 0·±Inf = NaN; corrupted weights must surface, not launder to finite.
func TestMatMulPropagatesNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := FromSlice(1, 2, []float64{0, 1})
		b := FromSlice(2, 1, []float64{bad, 2})
		if got := MatMul(a, b).At(0, 0); !math.IsNaN(got) {
			t.Fatalf("MatMul 0·%v lost the NaN: got %v", bad, got)
		}
		at := FromSlice(2, 1, []float64{0, 1})
		bb := FromSlice(2, 1, []float64{bad, 2})
		if got := MatMulT1(at, bb).At(0, 0); !math.IsNaN(got) {
			t.Fatalf("MatMulT1 0·%v lost the NaN: got %v", bad, got)
		}
		bt := FromSlice(1, 2, []float64{bad, 2})
		if got := MatMulT2(a, bt).At(0, 0); !math.IsNaN(got) {
			t.Fatalf("MatMulT2 0·%v lost the NaN: got %v", bad, got)
		}
		x := FromSlice(2, 1, []float64{bad, 2})
		az := FromSlice(1, 2, []float64{0, 1})
		if got := MatVec(az, x).At(0, 0); !math.IsNaN(got) {
			t.Fatalf("MatVec 0·%v lost the NaN: got %v", bad, got)
		}
	}
}

// And the finite flip side: removing the skip must not change finite
// results even in the presence of signed zeros, because accumulators
// start at +0 and (+0)+(±0) = +0 under round-to-nearest.
func TestMatMulSignedZeroStability(t *testing.T) {
	a := FromSlice(1, 3, []float64{0, math.Copysign(0, -1), 1})
	b := FromSlice(3, 2, []float64{5, math.Copysign(0, -1), 7, 3, 0, math.Copysign(0, -1)})
	c := MatMul(a, b)
	if math.Signbit(c.At(0, 1)) && c.At(0, 1) == 0 {
		t.Fatal("accumulation produced −0 where naive ascending-k gives +0")
	}
	if c.At(0, 0) != 0 || c.At(0, 1) != math.Copysign(0, -1) {
		// row: 0·5 + (−0)·7 + 1·0 = +0 ; 0·(−0) + (−0)·3 + 1·(−0) = −0
		t.Fatalf("signed-zero result drifted: %v", c.Data)
	}
}

// Regression for the aliasing-detector bug: the old mustNotShareData only
// compared first-element identity, so a destination overlapping a source
// mid-buffer sailed through and silently corrupted the product.
func TestMustNotShareDataCatchesPartialOverlap(t *testing.T) {
	backing := make([]float64, 64)
	a := FromSlice(4, 4, backing[:16])
	dst := FromSlice(4, 4, backing[8:24]) // overlaps a's tail, different first element
	b := FromSlice(4, 4, backing[32:48])  // disjoint
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with dst overlapping a mid-buffer did not panic")
		}
	}()
	MatMulInto(dst, a, b)
}

func TestMustNotShareDataAllowsDisjointViews(t *testing.T) {
	backing := make([]float64, 48)
	a := FromSlice(4, 4, backing[:16])
	b := FromSlice(4, 4, backing[16:32])
	dst := FromSlice(4, 4, backing[32:48])
	MatMulInto(dst, a, b) // adjacent but disjoint views of one array: legal
}

// Regression for the pinned worker pool: the pool used to be sized once,
// at first use, to the then-current GOMAXPROCS; raising GOMAXPROCS later
// left every dispatch under-parallelised forever.
func TestWorkerPoolGrowsWithGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	workerPool() // pin at 2 first, as a first caller would
	runtime.GOMAXPROCS(6)
	workerPool()
	if got := int(poolSize.Load()); got < 6 {
		t.Fatalf("worker pool has %d workers after GOMAXPROCS raised to 6", got)
	}
}

func TestSlicesOverlap(t *testing.T) {
	backing := make([]float64, 10)
	cases := []struct {
		a, b []float64
		want bool
	}{
		{backing[0:4], backing[4:8], false},
		{backing[0:5], backing[4:8], true},
		{backing[2:3], backing[0:10], true},
		{backing[0:0], backing[0:10], false}, // empty never overlaps
		{make([]float64, 4), backing[0:4], false},
	}
	for i, c := range cases {
		if got := slicesOverlap(c.a, c.b); got != c.want {
			t.Fatalf("case %d: slicesOverlap = %v want %v", i, got, c.want)
		}
		if got := slicesOverlap(c.b, c.a); got != c.want {
			t.Fatalf("case %d reversed: slicesOverlap = %v want %v", i, got, c.want)
		}
	}
}
