package tensor

import (
	"fmt"
	"sync"
)

// im2col / col2im lower 2-D (de)convolutions onto the ParallelFor-backed
// matmul kernels. A batch of flattened c×h×w images (one image per row of
// a Mat, laid out channel-major: (ch·h + y)·w + x) is expanded into "patch
// rows": one row per (sample, patch position), one column per
// (channel, ky, kx) kernel tap. With cols in that layout,
//
//	conv forward      = cols × Wᵀ            (MatMulT2Into)
//	conv ∂W           = dOutᵀ × cols         (AddMatMulT1Into)
//	conv ∂input       = col2im(dOut × W)     (MatMulInto + Col2ImInto)
//	convT forward     = col2im-add(xT × W)   (MatMulInto + AddCol2ImInto)
//
// The patch grid (posH×posW positions, sampled at y = py·stride − pad + ky)
// is the conv *output* grid when lowering a convolution over its input, and
// the conv *input* grid when scattering a transposed convolution into its
// output — the same two kernels serve all four passes by swapping which
// side is "positions" and which is "image".

// convGeom carries the shared gather/scatter geometry.
type convGeom struct {
	c, h, w, k, stride, pad, posH, posW int
}

// im2colCheck validates the shared geometry arguments.
func im2colCheck(op string, imgCols int, g convGeom) {
	if g.c <= 0 || g.h <= 0 || g.w <= 0 || g.k <= 0 || g.stride <= 0 || g.pad < 0 || g.posH <= 0 || g.posW <= 0 {
		panic(fmt.Sprintf("tensor: %s invalid geometry c%d h%d w%d k%d s%d p%d pos%d×%d",
			op, g.c, g.h, g.w, g.k, g.stride, g.pad, g.posH, g.posW))
	}
	if imgCols != g.c*g.h*g.w {
		panic(fmt.Sprintf("tensor: %s image width %d, want c·h·w = %d", op, imgCols, g.c*g.h*g.w))
	}
}

// im2colRange gathers samples [lo, hi) of img into patch rows of dst.
func im2colRange(dst, img *Mat, g convGeom, lo, hi int) {
	pos := g.posH * g.posW
	for bi := lo; bi < hi; bi++ {
		src := img.Row(bi)
		for py := 0; py < g.posH; py++ {
			for px := 0; px < g.posW; px++ {
				row := dst.Row(bi*pos + py*g.posW + px)
				i := 0
				for ch := 0; ch < g.c; ch++ {
					chBase := ch * g.h * g.w
					for ky := 0; ky < g.k; ky++ {
						y := py*g.stride - g.pad + ky
						if y < 0 || y >= g.h {
							for kx := 0; kx < g.k; kx++ {
								row[i] = 0
								i++
							}
							continue
						}
						rowBase := chBase + y*g.w
						for kx := 0; kx < g.k; kx++ {
							x := px*g.stride - g.pad + kx
							if x < 0 || x >= g.w {
								row[i] = 0
							} else {
								row[i] = src[rowBase+x]
							}
							i++
						}
					}
				}
			}
		}
	}
}

// col2imKernel scatter-adds patch rows of cols back into samples [lo, hi)
// of dst, in (position, column) order per sample, dropping out-of-bounds
// taps. Generic core shared by the float64 path and the float32 serving
// tier (AddCol2ImInto32); imgCols and fan are the row widths of dst and
// cols respectively.
func col2imKernel[F Float](dst, cols []F, imgCols, fan int, g convGeom, lo, hi int) {
	pos := g.posH * g.posW
	for bi := lo; bi < hi; bi++ {
		out := dst[bi*imgCols : (bi+1)*imgCols]
		for py := 0; py < g.posH; py++ {
			for px := 0; px < g.posW; px++ {
				r := bi*pos + py*g.posW + px
				row := cols[r*fan : (r+1)*fan]
				i := 0
				for ch := 0; ch < g.c; ch++ {
					chBase := ch * g.h * g.w
					for ky := 0; ky < g.k; ky++ {
						y := py*g.stride - g.pad + ky
						if y < 0 || y >= g.h {
							i += g.k
							continue
						}
						rowBase := chBase + y*g.w
						for kx := 0; kx < g.k; kx++ {
							x := px*g.stride - g.pad + kx
							if x >= 0 && x < g.w {
								out[rowBase+x] += row[i]
							}
							i++
						}
					}
				}
			}
		}
	}
}

// col2imRange is col2imKernel over float64 matrices.
func col2imRange(dst, cols *Mat, g convGeom, lo, hi int) {
	col2imKernel(dst.Data, cols.Data, dst.Cols, cols.Cols, g, lo, hi)
}

// Pooled dispatch headers (see matmul.go): parallel gather/scatter without
// per-call closure allocations.
type im2colTask struct {
	dst, img *Mat
	g        convGeom
}

func (t *im2colTask) run(lo, hi int) { im2colRange(t.dst, t.img, t.g, lo, hi) }

type col2imTask struct {
	dst, cols *Mat
	g         convGeom
}

func (t *col2imTask) run(lo, hi int) { col2imRange(t.dst, t.cols, t.g, lo, hi) }

var (
	im2colTaskPool = sync.Pool{New: func() any { return new(im2colTask) }}
	col2imTaskPool = sync.Pool{New: func() any { return new(col2imTask) }}
)

// Im2ColInto expands img (rows = samples, each a flattened c×h×w image)
// into patch rows: dst has shape (img.Rows·posH·posW) × (c·k·k), where row
// b·posH·posW + py·posW + px holds the receptive field sampled at
// y = py·stride − pad + ky, x = px·stride − pad + kx (out-of-bounds taps
// read as 0). dst is resized, must not alias img, and is returned.
func Im2ColInto(dst, img *Mat, c, h, w, k, stride, pad, posH, posW int) *Mat {
	g := convGeom{c, h, w, k, stride, pad, posH, posW}
	im2colCheck("Im2ColInto", img.Cols, g)
	b := img.Rows
	pos := posH * posW
	fan := c * k * k
	dst.Resize(b*pos, fan)
	mustNotShareData("Im2ColInto", dst, img)
	t := im2colTaskPool.Get().(*im2colTask)
	t.dst, t.img, t.g = dst, img, g
	parallelRun(b, parallelThreshold/(pos*fan+1)+1, t)
	t.dst, t.img = nil, nil
	im2colTaskPool.Put(t)
	return dst
}

// AddCol2ImInto scatter-adds patch rows back into images: the inverse of
// Im2ColInto with overlapping taps accumulated. cols has shape
// (b·posH·posW) × (c·k·k); dst must already have shape b × (c·h·w) (it is
// accumulated into, not zeroed — the transposed-convolution forward seeds
// it with the broadcast bias). Out-of-bounds taps are dropped. Within one
// sample the adds happen in (position, column) order, matching a direct
// scatter loop; samples are independent, so the batch is parallelised.
// dst must not alias cols. Returns dst.
func AddCol2ImInto(dst, cols *Mat, c, h, w, k, stride, pad, posH, posW int) *Mat {
	g := convGeom{c, h, w, k, stride, pad, posH, posW}
	im2colCheck("AddCol2ImInto", dst.Cols, g)
	pos := posH * posW
	fan := c * k * k
	if cols.Cols != fan {
		panic(fmt.Sprintf("tensor: AddCol2ImInto cols width %d, want c·k·k = %d", cols.Cols, fan))
	}
	if cols.Rows != dst.Rows*pos {
		panic(fmt.Sprintf("tensor: AddCol2ImInto cols rows %d, want %d samples × %d positions", cols.Rows, dst.Rows, pos))
	}
	mustNotShareData("AddCol2ImInto", dst, cols)
	t := col2imTaskPool.Get().(*col2imTask)
	t.dst, t.cols, t.g = dst, cols, g
	parallelRun(dst.Rows, parallelThreshold/(pos*fan+1)+1, t)
	t.dst, t.cols = nil, nil
	col2imTaskPool.Put(t)
	return dst
}

// Col2ImInto is AddCol2ImInto into a zeroed destination: dst is resized to
// (cols.Rows/(posH·posW)) × (c·h·w), cleared, and accumulated into. This is
// the ∂L/∂input reduction of the convolution backward pass. Returns dst.
func Col2ImInto(dst, cols *Mat, c, h, w, k, stride, pad, posH, posW int) *Mat {
	pos := posH * posW
	if pos <= 0 || cols.Rows%pos != 0 {
		panic(fmt.Sprintf("tensor: Col2ImInto cols rows %d not divisible by %d positions", cols.Rows, pos))
	}
	dst.Resize(cols.Rows/pos, c*h*w)
	dst.Zero()
	return AddCol2ImInto(dst, cols, c, h, w, k, stride, pad, posH, posW)
}
