package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide %d/100 times", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Parent remains usable and the two streams differ.
	diff := false
	for i := 0; i < 50; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Split stream identical to parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	s := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := NewRNG(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for d, ok := range seen {
		if !ok {
			t.Fatalf("value %d never produced", d)
		}
	}
}

func TestIntnOnePanicsZero(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) must be 0")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(8)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(10)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: %v", xs)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInitializers(t *testing.T) {
	rng := NewRNG(11)
	m := New(100, 100)
	XavierUniform(m, 100, 100, rng)
	bound := math.Sqrt(6.0 / 200.0)
	if m.Max() > bound || m.Min() < -bound {
		t.Fatalf("Xavier out of bounds [%v, %v]", m.Min(), m.Max())
	}
	if math.Abs(m.Mean()) > 0.01 {
		t.Fatalf("Xavier mean %v", m.Mean())
	}

	HeNormal(m, 50, rng)
	varWant := 2.0 / 50.0
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	if got := s / float64(len(m.Data)); math.Abs(got-varWant) > 0.2*varWant {
		t.Fatalf("He variance %v want %v", got, varWant)
	}

	GaussianFill(m, 3, 0.5, rng)
	if math.Abs(m.Mean()-3) > 0.05 {
		t.Fatalf("Gaussian mean %v", m.Mean())
	}

	UniformFill(m, -2, -1, rng)
	if m.Min() < -2 || m.Max() >= -1 {
		t.Fatalf("Uniform range [%v, %v]", m.Min(), m.Max())
	}
}
