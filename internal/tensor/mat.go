package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense, row-major matrix of float64. A Mat with Rows == 1 or
// Cols == 1 doubles as a vector. The zero value is an empty matrix.
//
// Allocation behaviour, for hot-path authors: the constructors (New,
// FromFunc, Eye, Full) and the value-returning operations (Clone, Map, T,
// MatMul, MatMulT1, MatMulT2, MatVec, ColSums, RowMeans) allocate a fresh
// result on every call. The in-place operations (Add, Sub, MulElem, Scale,
// AddScaled, AddRowVec, Apply, Zero, Fill, CopyFrom) and the
// destination-passing kernels (MatMulInto, MatMulT1Into, MatMulT2Into,
// AddMatMulT1Into, ColSumsInto, AddColSumsInto, ApplyInto, TInto) do not
// allocate once the destination has reached its steady-state capacity —
// Resize only reallocates when the requested shape outgrows the backing
// array. Steady-state training and serving loops must use the Into forms.
type Mat struct {
	Rows, Cols int
	// Data holds the elements in row-major order; len(Data) == Rows*Cols.
	Data []float64
}

// New returns a zero-filled rows×cols matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice size mismatch: %d×%d vs %d elements", rows, cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// FromFunc builds a rows×cols matrix whose (i,j) element is f(i, j).
func FromFunc(rows, cols int, f func(i, j int) float64) *Mat {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		base := i * cols
		for j := 0; j < cols; j++ {
			m.Data[base+j] = f(i, j)
		}
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Full returns a rows×cols matrix with every element set to v.
func Full(rows, cols int, v float64) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Resize reshapes m to rows×cols in place, reusing the backing array when
// its capacity allows and reallocating otherwise. The element values after
// a Resize are unspecified (destination-passing kernels overwrite them);
// callers that need zeroed storage follow with Zero or Fill. It returns m.
func (m *Mat) Resize(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: Resize to negative dimensions %d×%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; the shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Mat) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

func (m *Mat) mustSameShape(o *Mat, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %d×%d vs %d×%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add sets m = m + o element-wise.
func (m *Mat) Add(o *Mat) {
	m.mustSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Sub sets m = m - o element-wise.
func (m *Mat) Sub(o *Mat) {
	m.mustSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// MulElem sets m = m ⊙ o (Hadamard product).
func (m *Mat) MulElem(o *Mat) {
	m.mustSameShape(o, "MulElem")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Scale sets m = a*m.
func (m *Mat) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddScaled sets m = m + a*o (axpy).
func (m *Mat) AddScaled(a float64, o *Mat) {
	m.mustSameShape(o, "AddScaled")
	for i, v := range o.Data {
		m.Data[i] += a * v
	}
}

// AddRowVec adds the 1×Cols row vector v to every row of m (broadcast).
func (m *Mat) AddRowVec(v *Mat) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec wants 1×%d, got %d×%d", m.Cols, v.Rows, v.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v.Data {
			row[j] += b
		}
	}
}

// Apply sets every element x of m to f(x).
func (m *Mat) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Map returns a new matrix whose elements are f applied to m's elements.
func (m *Mat) Map(f func(float64) float64) *Mat {
	return ApplyInto(&Mat{}, m, f)
}

// ApplyInto sets dst (resized to src's shape) to f applied element-wise to
// src. dst == src is allowed and degenerates to Apply. It returns dst.
func ApplyInto(dst, src *Mat, f func(float64) float64) *Mat {
	dst.Resize(src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = f(v)
	}
	return dst
}

// T returns a newly allocated transpose of m. Hot paths should avoid the
// materialised transpose entirely via the MatMulT1/MatMulT2 kernels, or
// reuse a buffer with TInto.
func (m *Mat) T() *Mat {
	return TInto(&Mat{}, m)
}

// TInto writes the transpose of m into dst (resized to Cols×Rows). dst
// must not alias m. It returns dst.
func TInto(dst, m *Mat) *Mat {
	dst.Resize(m.Cols, m.Rows)
	mustNotShareData("TInto", dst, m)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*m.Rows+i] = m.Data[base+j]
		}
	}
	return dst
}

// Sum returns the sum of all elements.
func (m *Mat) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty matrix).
func (m *Mat) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// Max returns the maximum element; it panics on an empty matrix.
func (m *Mat) Max() float64 {
	if len(m.Data) == 0 {
		panic("tensor: Max of empty matrix")
	}
	mx := m.Data[0]
	for _, v := range m.Data[1:] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Min returns the minimum element; it panics on an empty matrix.
func (m *Mat) Min() float64 {
	if len(m.Data) == 0 {
		panic("tensor: Min of empty matrix")
	}
	mn := m.Data[0]
	for _, v := range m.Data[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// Norm2 returns the Frobenius norm of m.
func (m *Mat) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of m and o viewed as flat vectors.
func (m *Mat) Dot(o *Mat) float64 {
	m.mustSameShape(o, "Dot")
	s := 0.0
	for i, v := range m.Data {
		s += v * o.Data[i]
	}
	return s
}

// ArgmaxRow returns the column index of the maximum element of row i.
func (m *Mat) ArgmaxRow(i int) int {
	row := m.Row(i)
	best := 0
	for j, x := range row {
		if x > row[best] {
			best = j
		}
	}
	return best
}

// Equal reports whether m and o have the same shape and identical elements.
func (m *Mat) Equal(o *Mat) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, x := range m.Data {
		if x != o.Data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether m and o have the same shape and all elements
// within tol of each other.
func (m *Mat) ApproxEqual(o *Mat, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, x := range m.Data {
		if math.Abs(x-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact, human-readable form of small matrices.
func (m *Mat) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Mat(%d×%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Mat(%d×%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
