package tensor

import (
	"math"
	"testing"
)

// naiveIm2Col is an index-arithmetic-free reference: walk every output cell
// and look the source pixel up directly.
func naiveIm2Col(img *Mat, c, h, w, k, stride, pad, posH, posW int) *Mat {
	pos := posH * posW
	out := New(img.Rows*pos, c*k*k)
	for b := 0; b < img.Rows; b++ {
		for py := 0; py < posH; py++ {
			for px := 0; px < posW; px++ {
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							y := py*stride - pad + ky
							x := px*stride - pad + kx
							v := 0.0
							if y >= 0 && y < h && x >= 0 && x < w {
								v = img.At(b, (ch*h+y)*w+x)
							}
							out.Set(b*pos+py*posW+px, (ch*k+ky)*k+kx, v)
						}
					}
				}
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaive(t *testing.T) {
	rng := NewRNG(7)
	cases := []struct{ c, h, w, k, stride, pad, posH, posW int }{
		{1, 4, 4, 2, 2, 0, 2, 2},
		{2, 5, 7, 3, 2, 1, 3, 4}, // asymmetric h≠w
		{3, 6, 6, 1, 1, 0, 6, 6}, // 1×1 kernel
		{1, 28, 28, 4, 2, 1, 14, 14},
		{2, 3, 3, 3, 1, 2, 5, 5}, // pad larger than stride
	}
	for _, tc := range cases {
		img := New(3, tc.c*tc.h*tc.w)
		GaussianFill(img, 0, 1, rng)
		got := Im2ColInto(new(Mat), img, tc.c, tc.h, tc.w, tc.k, tc.stride, tc.pad, tc.posH, tc.posW)
		want := naiveIm2Col(img, tc.c, tc.h, tc.w, tc.k, tc.stride, tc.pad, tc.posH, tc.posW)
		if !got.Equal(want) {
			t.Fatalf("Im2ColInto mismatch for %+v", tc)
		}
	}
}

// TestCol2ImAdjoint checks the defining property of the scatter:
// ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩ for random x, y — col2im is the exact
// adjoint of the gather, including dropped out-of-bounds taps.
func TestCol2ImAdjoint(t *testing.T) {
	rng := NewRNG(11)
	c, h, w, k, stride, pad, posH, posW := 2, 5, 6, 3, 2, 1, 3, 3
	x := New(2, c*h*w)
	GaussianFill(x, 0, 1, rng)
	y := New(2*posH*posW, c*k*k)
	GaussianFill(y, 0, 1, rng)

	gx := Im2ColInto(new(Mat), x, c, h, w, k, stride, pad, posH, posW)
	sy := Col2ImInto(new(Mat), y, c, h, w, k, stride, pad, posH, posW)

	var lhs, rhs float64
	for i, v := range gx.Data {
		lhs += v * y.Data[i]
	}
	for i, v := range sy.Data {
		rhs += v * x.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

// With k == stride and no padding the patches tile the image exactly, so
// col2im(im2col(x)) must reproduce x bit-for-bit.
func TestCol2ImRoundTripNonOverlapping(t *testing.T) {
	rng := NewRNG(3)
	c, h, w, k := 2, 6, 4, 2
	x := New(3, c*h*w)
	GaussianFill(x, 0, 1, rng)
	cols := Im2ColInto(new(Mat), x, c, h, w, k, k, 0, h/k, w/k)
	back := Col2ImInto(new(Mat), cols, c, h, w, k, k, 0, h/k, w/k)
	if !back.Equal(x) {
		t.Fatal("non-overlapping col2im∘im2col is not the identity")
	}
}

// AddCol2ImInto must accumulate on top of existing contents.
func TestAddCol2ImAccumulates(t *testing.T) {
	rng := NewRNG(5)
	c, h, w, k := 1, 4, 4, 2
	cols := New(1*2*2, c*k*k)
	GaussianFill(cols, 0, 1, rng)
	base := New(1, c*h*w)
	for i := range base.Data {
		base.Data[i] = 10
	}
	AddCol2ImInto(base, cols, c, h, w, k, k, 0, 2, 2)
	scattered := Col2ImInto(new(Mat), cols, c, h, w, k, k, 0, 2, 2)
	for i := range base.Data {
		if base.Data[i] != 10+scattered.Data[i] {
			t.Fatalf("element %d: %g, want %g", i, base.Data[i], 10+scattered.Data[i])
		}
	}
}

// The batch loop is parallelised; repeated runs must be bit-identical.
func TestIm2ColDeterministic(t *testing.T) {
	rng := NewRNG(13)
	img := New(64, 1*28*28)
	GaussianFill(img, 0, 1, rng)
	a := Im2ColInto(new(Mat), img, 1, 28, 28, 4, 2, 1, 14, 14)
	b := Im2ColInto(new(Mat), img, 1, 28, 28, 4, 2, 1, 14, 14)
	if !a.Equal(b) {
		t.Fatal("Im2ColInto not deterministic across runs")
	}
	s1 := Col2ImInto(new(Mat), a, 1, 28, 28, 4, 2, 1, 14, 14)
	s2 := Col2ImInto(new(Mat), b, 1, 28, 28, 4, 2, 1, 14, 14)
	if !s1.Equal(s2) {
		t.Fatal("Col2ImInto not deterministic across runs")
	}
}

func TestIm2ColPanics(t *testing.T) {
	cases := []func(){
		func() { Im2ColInto(new(Mat), New(1, 12), 2, 2, 2, 2, 1, 0, 1, 1) },     // wrong image width
		func() { Im2ColInto(new(Mat), New(1, 8), 2, 2, 2, 2, 0, 0, 1, 1) },      // stride 0
		func() { Col2ImInto(new(Mat), New(5, 4), 1, 4, 4, 2, 2, 0, 2, 2) },      // rows not divisible
		func() { AddCol2ImInto(New(1, 15), New(4, 4), 1, 4, 4, 2, 2, 0, 2, 2) }, // wrong dst width
		func() { AddCol2ImInto(New(2, 16), New(4, 4), 1, 4, 4, 2, 2, 0, 2, 2) }, // wrong cols rows
		func() { AddCol2ImInto(New(1, 16), New(4, 3), 1, 4, 4, 2, 2, 0, 2, 2) }, // wrong cols width
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
