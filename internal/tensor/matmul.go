package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the minimum number of multiply-adds below which
// MatMul runs serially; parallel dispatch costs more than it saves on
// small products.
const parallelThreshold = 64 * 1024

// rangeTask is the allocation-free internal form of a ParallelFor body.
// The hot-path kernels submit pooled task structs implementing run instead
// of fresh closures, so a steady-state parallel dispatch performs zero
// allocations; the public ParallelFor wraps its closure in a funcTask.
type rangeTask interface {
	run(lo, hi int)
}

type funcTask func(lo, hi int)

func (f funcTask) run(lo, hi int) { f(lo, hi) }

// parcel is one chunk of a parallelRun dispatch, handed to the persistent
// worker pool by value.
type parcel struct {
	t      rangeTask
	lo, hi int
	wg     *sync.WaitGroup
}

// poolQueueCap bounds the submission queue. It is independent of the
// worker count so the pool can grow without reallocating the channel; a
// full queue degrades to inline execution in parallelRun, never blocks.
const poolQueueCap = 256

var (
	poolCh = make(chan parcel, poolQueueCap)
	poolMu sync.Mutex
	// poolSize is the number of persistent workers started so far. Read
	// atomically on the dispatch fast path, grown under poolMu.
	poolSize atomic.Int32
	wgPool   = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// workerPool returns the submission channel, first growing the persistent
// worker set to the current GOMAXPROCS when it lags behind — GOMAXPROCS is
// commonly raised after the pool's first use (tests, benchmarks), and a
// pool pinned to the first-use value would under-serve the chunk math in
// parallelRun, which re-reads GOMAXPROCS per call. Lowering GOMAXPROCS
// leaves surplus workers parked on the channel; parallelRun already clamps
// per-dispatch parallelism to the current value, so surplus workers only
// cost idle goroutines, never extra concurrency. Spawning goroutines per
// dispatch would allocate on every matmul; the persistent pool keeps the
// steady-state training iteration allocation-free.
func workerPool() chan parcel {
	n := int32(runtime.GOMAXPROCS(0))
	if poolSize.Load() >= n {
		return poolCh
	}
	poolMu.Lock()
	for poolSize.Load() < n {
		go func() {
			for p := range poolCh {
				p.t.run(p.lo, p.hi)
				p.wg.Done()
			}
		}()
		poolSize.Add(1)
	}
	poolMu.Unlock()
	return poolCh
}

// ParallelFor executes f(lo, hi) over disjoint chunks of [0, n) using up to
// GOMAXPROCS workers. It runs f(0, n) inline when n is small or only one
// worker is available. The chunk decomposition is deterministic, so
// numerically order-sensitive reductions inside a chunk stay reproducible.
func ParallelFor(n int, minChunk int, f func(lo, hi int)) {
	parallelRun(n, minChunk, funcTask(f))
}

// parallelRun is ParallelFor over a rangeTask. The submitting goroutine
// always runs the first chunk itself; the rest go to the worker pool. A
// full queue (deeply concurrent dispatch) degrades to running chunks
// inline rather than blocking, which also keeps nested dispatches
// deadlock-free.
func parallelRun(n, minChunk int, t rangeTask) {
	workers := runtime.GOMAXPROCS(0)
	if minChunk < 1 {
		minChunk = 1
	}
	if workers <= 1 || n <= minChunk {
		if n > 0 {
			t.run(0, n)
		}
		return
	}
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	chunk := (n + workers - 1) / workers
	ch := workerPool()
	wg := wgPool.Get().(*sync.WaitGroup)
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case ch <- parcel{t: t, lo: lo, hi: hi, wg: wg}:
		default:
			t.run(lo, hi)
			wg.Done()
		}
	}
	t.run(0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}

// mustNotShareData panics when dst's backing array overlaps a source
// operand's in any element — whole-matrix aliasing or partially
// overlapping FromSlice views of one array. Destination-passing kernels
// read their sources while writing dst, so any overlap would silently
// corrupt the result.
func mustNotShareData(op string, dst *Mat, srcs ...*Mat) {
	for _, s := range srcs {
		if s == dst || slicesOverlap(dst.Data, s.Data) {
			panic("tensor: " + op + " destination aliases a source operand")
		}
	}
}

// matMulRange computes rows [lo, hi) of c = a × b through the tiled ikj
// kernel (kernels.go). When zero is set each output row is cleared before
// accumulation (the destination-passing path); otherwise c is assumed to
// arrive zeroed (freshly allocated).
func matMulRange(c, a, b *Mat, zero bool, lo, hi int) {
	matMulKernel(c.Data, a.Data, b.Data, a.Cols, b.Cols, zero, lo, hi)
}

// Pooled dispatch tasks: one struct per kernel family so a parallel
// dispatch reuses a recycled header instead of allocating a closure.
type matMulTask struct {
	c, a, b *Mat
	zero    bool
}

func (t *matMulTask) run(lo, hi int) { matMulRange(t.c, t.a, t.b, t.zero, lo, hi) }

type matMulT1Task struct {
	c, a, b *Mat
	zero    bool
}

func (t *matMulT1Task) run(lo, hi int) { matMulT1Range(t.c, t.a, t.b, t.zero, lo, hi) }

type matMulT2Task struct {
	c, a, b *Mat
}

func (t *matMulT2Task) run(lo, hi int) { matMulT2Range(t.c, t.a, t.b, lo, hi) }

var (
	matMulTaskPool   = sync.Pool{New: func() any { return new(matMulTask) }}
	matMulT1TaskPool = sync.Pool{New: func() any { return new(matMulT1Task) }}
	matMulT2TaskPool = sync.Pool{New: func() any { return new(matMulT2Task) }}
)

func matMulDispatch(c, a, b *Mat, zero bool) {
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		matMulRange(c, a, b, zero, 0, a.Rows)
		return
	}
	t := matMulTaskPool.Get().(*matMulTask)
	t.c, t.a, t.b, t.zero = c, a, b, zero
	minChunk := parallelThreshold / (a.Cols*b.Cols + 1)
	parallelRun(a.Rows, minChunk+1, t)
	t.c, t.a, t.b = nil, nil, nil
	matMulTaskPool.Put(t)
}

// MatMul returns a × b in a freshly allocated matrix. It parallelises
// across rows of a for large products. Hot paths should prefer MatMulInto.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	matMulDispatch(c, a, b, false)
	return c
}

// MatMulInto computes dst = a × b, resizing dst as needed and reusing its
// backing storage when the capacity allows. dst must not alias a or b.
// The chunk decomposition matches MatMul exactly, so the result is
// bit-identical to the allocating form. It returns dst.
func MatMulInto(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Resize(a.Rows, b.Cols)
	mustNotShareData("MatMulInto", dst, a, b)
	matMulDispatch(dst, a, b, true)
	return dst
}

// matMulT1Range computes columns [lo, hi) of c = aᵀ × b:
// c[i][j] = Σ_k a[k][i]·b[k][j], through the tiled kernel (kernels.go).
// When zero is unset, c's rows [lo, hi) are accumulated into rather than
// overwritten (the fused dW += xᵀ·grad path).
func matMulT1Range(c, a, b *Mat, zero bool, lo, hi int) {
	matMulT1Kernel(c.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols, zero, lo, hi)
}

func matMulT1Dispatch(c, a, b *Mat, zero bool) {
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		matMulT1Range(c, a, b, zero, 0, a.Cols)
		return
	}
	t := matMulT1TaskPool.Get().(*matMulT1Task)
	t.c, t.a, t.b, t.zero = c, a, b, zero
	minChunk := parallelThreshold / (a.Rows*b.Cols + 1)
	parallelRun(a.Cols, minChunk+1, t)
	t.c, t.a, t.b = nil, nil, nil
	matMulT1TaskPool.Put(t)
}

// MatMulT1 returns aᵀ × b in a freshly allocated matrix without
// materialising the transpose of a.
func MatMulT1(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1 dimension mismatch %d×%d ᵀ· %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Cols, b.Cols)
	matMulT1Dispatch(c, a, b, false)
	return c
}

// MatMulT1Into computes dst = aᵀ × b, resizing dst as needed. dst must not
// alias a or b. Bit-identical to MatMulT1. It returns dst.
func MatMulT1Into(dst, a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1Into dimension mismatch %d×%d ᵀ· %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Resize(a.Cols, b.Cols)
	mustNotShareData("MatMulT1Into", dst, a, b)
	matMulT1Dispatch(dst, a, b, true)
	return dst
}

// AddMatMulT1Into computes dst += aᵀ × b without a temporary — the fused
// gradient accumulation dW += xᵀ·grad of Linear.Backward. dst must already
// have shape a.Cols×b.Cols and must not alias a or b. When dst arrives
// zeroed the result is bit-identical to MatMulT1 (every partial sum
// matches); from a non-zero start the accumulation order differs from
// compute-then-Add by at most one rounding per element, deterministically.
func AddMatMulT1Into(dst, a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: AddMatMulT1Into dimension mismatch %d×%d ᵀ· %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AddMatMulT1Into destination %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	mustNotShareData("AddMatMulT1Into", dst, a, b)
	matMulT1Dispatch(dst, a, b, false)
	return dst
}

// panel64Pool recycles the packed b-panels of the float64 a×bᵀ kernel;
// each concurrently running chunk borrows one, so the steady state holds
// about one panel per worker and dispatches stay allocation-free.
var panel64Pool = sync.Pool{New: func() any { return new([]float64) }}

// matMulT2Range computes rows [lo, hi) of c = a × bᵀ through the
// packed-panel dot-product kernel (kernels.go). Every element is a full
// dot product written once, so no zeroing pass is needed.
func matMulT2Range(c, a, b *Mat, lo, hi int) {
	p := panel64Pool.Get().(*[]float64)
	if need := 4 * a.Cols; cap(*p) < need {
		*p = make([]float64, need)
	}
	matMulT2Kernel(c.Data, a.Data, b.Data, a.Cols, b.Rows, lo, hi, (*p)[:cap(*p)])
	panel64Pool.Put(p)
}

func matMulT2Dispatch(c, a, b *Mat) {
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		matMulT2Range(c, a, b, 0, a.Rows)
		return
	}
	t := matMulT2TaskPool.Get().(*matMulT2Task)
	t.c, t.a, t.b = c, a, b
	minChunk := parallelThreshold / (a.Cols*b.Rows + 1)
	parallelRun(a.Rows, minChunk+1, t)
	t.c, t.a, t.b = nil, nil, nil
	matMulT2TaskPool.Put(t)
}

// MatMulT2 returns a × bᵀ in a freshly allocated matrix without
// materialising the transpose of b.
func MatMulT2(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2 dimension mismatch %d×%d · %d×%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	matMulT2Dispatch(c, a, b)
	return c
}

// MatMulT2Into computes dst = a × bᵀ, resizing dst as needed. dst must not
// alias a or b. Bit-identical to MatMulT2. It returns dst.
func MatMulT2Into(dst, a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2Into dimension mismatch %d×%d · %d×%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Resize(a.Rows, b.Rows)
	mustNotShareData("MatMulT2Into", dst, a, b)
	matMulT2Dispatch(dst, a, b)
	return dst
}

// MatVec returns a × x where x is treated as a column vector of length
// a.Cols; the result has shape a.Rows×1. Allocates.
func MatVec(a *Mat, x *Mat) *Mat {
	if x.Rows*x.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: MatVec length mismatch %d×%d · %d", a.Rows, a.Cols, x.Rows*x.Cols))
	}
	y := New(a.Rows, 1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for k, av := range row {
			s += av * x.Data[k]
		}
		y.Data[i] = s
	}
	return y
}

// ColSums returns a freshly allocated 1×Cols row vector of per-column sums
// of m.
func ColSums(m *Mat) *Mat {
	return ColSumsInto(&Mat{}, m)
}

// ColSumsInto computes the per-column sums of m into dst (resized to
// 1×Cols). dst must not alias m. It returns dst.
func ColSumsInto(dst, m *Mat) *Mat {
	dst.Resize(1, m.Cols)
	mustNotShareData("ColSumsInto", dst, m)
	for j := range dst.Data {
		dst.Data[j] = 0
	}
	colSumsAccum(dst, m)
	return dst
}

// AddColSumsInto accumulates the per-column sums of m into dst — the fused
// dB += colsums(grad) of Linear.Backward. dst must have shape 1×m.Cols and
// must not alias m.
func AddColSumsInto(dst, m *Mat) *Mat {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddColSumsInto destination %d×%d, want 1×%d", dst.Rows, dst.Cols, m.Cols))
	}
	mustNotShareData("AddColSumsInto", dst, m)
	colSumsAccum(dst, m)
	return dst
}

func colSumsAccum(dst, m *Mat) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			dst.Data[j] += x
		}
	}
}

// RowMeans returns a Rows×1 column vector of per-row means of m. Allocates.
func RowMeans(m *Mat) *Mat {
	r := New(m.Rows, 1)
	if m.Cols == 0 {
		return r
	}
	inv := 1.0 / float64(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for _, x := range row {
			s += x
		}
		r.Data[i] = s * inv
	}
	return r
}
