package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds below which
// MatMul runs serially; parallel dispatch costs more than it saves on
// small products.
const parallelThreshold = 64 * 1024

// ParallelFor executes f(lo, hi) over disjoint chunks of [0, n) using up to
// GOMAXPROCS goroutines. It runs f(0, n) inline when n is small or only one
// worker is available. The chunk decomposition is deterministic, so
// numerically order-sensitive reductions inside a chunk stay reproducible.
func ParallelFor(n int, minChunk int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if minChunk < 1 {
		minChunk = 1
	}
	if workers <= 1 || n <= minChunk {
		if n > 0 {
			f(0, n)
		}
		return
	}
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a × b. It parallelises across rows of a for large products
// and uses an ikj loop order for cache-friendly access to b.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	mulRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		mulRows(0, a.Rows)
	} else {
		minChunk := parallelThreshold / (a.Cols*b.Cols + 1)
		ParallelFor(a.Rows, minChunk+1, mulRows)
	}
	return c
}

// MatMulT1 returns aᵀ × b without materialising the transpose of a.
func MatMulT1(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1 dimension mismatch %d×%d ᵀ· %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Cols, b.Cols)
	// c[i][j] = sum_k a[k][i] * b[k][j]; accumulate row-of-b scaled by a[k][i].
	mulCols := func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := c.Row(i)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		mulCols(0, a.Cols)
	} else {
		minChunk := parallelThreshold / (a.Rows*b.Cols + 1)
		ParallelFor(a.Cols, minChunk+1, mulCols)
	}
	return c
}

// MatMulT2 returns a × bᵀ without materialising the transpose of b.
func MatMulT2(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2 dimension mismatch %d×%d · %d×%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	mulRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				crow[j] = s
			}
		}
	}
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		mulRows(0, a.Rows)
	} else {
		minChunk := parallelThreshold / (a.Cols*b.Rows + 1)
		ParallelFor(a.Rows, minChunk+1, mulRows)
	}
	return c
}

// MatVec returns a × x where x is treated as a column vector of length
// a.Cols; the result has shape a.Rows×1.
func MatVec(a *Mat, x *Mat) *Mat {
	if x.Rows*x.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: MatVec length mismatch %d×%d · %d", a.Rows, a.Cols, x.Rows*x.Cols))
	}
	y := New(a.Rows, 1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for k, av := range row {
			s += av * x.Data[k]
		}
		y.Data[i] = s
	}
	return y
}

// ColSums returns a 1×Cols row vector of per-column sums of m.
func ColSums(m *Mat) *Mat {
	s := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			s.Data[j] += x
		}
	}
	return s
}

// RowMeans returns a Rows×1 column vector of per-row means of m.
func RowMeans(m *Mat) *Mat {
	r := New(m.Rows, 1)
	if m.Cols == 0 {
		return r
	}
	inv := 1.0 / float64(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for _, x := range row {
			s += x
		}
		r.Data[i] = s * inv
	}
	return r
}
