package tensor

import (
	"fmt"
	"sync"
)

// Float32 forward-pass kernels for the serving tier. They share the
// generic cache-blocked cores (kernels.go) and the persistent worker pool
// with the float64 family, and are destination-passing only: serving hot
// paths never allocate. Only the kernels the generator forward passes
// need exist — MatMul (Linear, ConvTranspose2D), MatMulT2 (Conv2D) and
// the col2im scatter (ConvTranspose2D); there is no backward-pass tier.

// mustNotShareData32 is mustNotShareData for the float32 kernels.
func mustNotShareData32(op string, dst *Mat32, srcs ...*Mat32) {
	for _, s := range srcs {
		if s == dst || slicesOverlap(dst.Data, s.Data) {
			panic("tensor: " + op + " destination aliases a source operand")
		}
	}
}

type matMul32Task struct {
	c, a, b *Mat32
	zero    bool
}

func (t *matMul32Task) run(lo, hi int) {
	matMulKernel(t.c.Data, t.a.Data, t.b.Data, t.a.Cols, t.b.Cols, t.zero, lo, hi)
}

type matMulT232Task struct {
	c, a, b *Mat32
}

func (t *matMulT232Task) run(lo, hi int) {
	p := panel32Pool.Get().(*[]float32)
	if need := 4 * t.a.Cols; cap(*p) < need {
		*p = make([]float32, need)
	}
	matMulT2Kernel(t.c.Data, t.a.Data, t.b.Data, t.a.Cols, t.b.Rows, lo, hi, (*p)[:cap(*p)])
	panel32Pool.Put(p)
}

var (
	matMul32TaskPool   = sync.Pool{New: func() any { return new(matMul32Task) }}
	matMulT232TaskPool = sync.Pool{New: func() any { return new(matMulT232Task) }}
	panel32Pool        = sync.Pool{New: func() any { return new([]float32) }}
)

// MatMulInto32 computes dst = a × b, resizing dst as needed. dst must not
// alias a or b. It returns dst.
func MatMulInto32(dst, a, b *Mat32) *Mat32 {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto32 inner dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Resize(a.Rows, b.Cols)
	mustNotShareData32("MatMulInto32", dst, a, b)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		matMulKernel(dst.Data, a.Data, b.Data, a.Cols, b.Cols, true, 0, a.Rows)
		return dst
	}
	t := matMul32TaskPool.Get().(*matMul32Task)
	t.c, t.a, t.b, t.zero = dst, a, b, true
	minChunk := parallelThreshold / (a.Cols*b.Cols + 1)
	parallelRun(a.Rows, minChunk+1, t)
	t.c, t.a, t.b = nil, nil, nil
	matMul32TaskPool.Put(t)
	return dst
}

// MatMulT2Into32 computes dst = a × bᵀ, resizing dst as needed. dst must
// not alias a or b. It returns dst.
func MatMulT2Into32(dst, a, b *Mat32) *Mat32 {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2Into32 dimension mismatch %d×%d · %d×%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Resize(a.Rows, b.Rows)
	mustNotShareData32("MatMulT2Into32", dst, a, b)
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		t := matMulT232Task{c: dst, a: a, b: b}
		t.run(0, a.Rows)
		return dst
	}
	t := matMulT232TaskPool.Get().(*matMulT232Task)
	t.c, t.a, t.b = dst, a, b
	minChunk := parallelThreshold / (a.Cols*b.Rows + 1)
	parallelRun(a.Rows, minChunk+1, t)
	t.c, t.a, t.b = nil, nil, nil
	matMulT232TaskPool.Put(t)
	return dst
}

type col2im32Task struct {
	dst, cols *Mat32
	g         convGeom
}

func (t *col2im32Task) run(lo, hi int) {
	col2imKernel(t.dst.Data, t.cols.Data, t.dst.Cols, t.cols.Cols, t.g, lo, hi)
}

var col2im32TaskPool = sync.Pool{New: func() any { return new(col2im32Task) }}

// AddCol2ImInto32 is AddCol2ImInto for the float32 tier: scatter-adds
// patch rows of cols into the bias-seeded images of dst. Shapes and
// semantics match AddCol2ImInto exactly. Returns dst.
func AddCol2ImInto32(dst, cols *Mat32, c, h, w, k, stride, pad, posH, posW int) *Mat32 {
	g := convGeom{c, h, w, k, stride, pad, posH, posW}
	im2colCheck("AddCol2ImInto32", dst.Cols, g)
	pos := posH * posW
	fan := c * k * k
	if cols.Cols != fan {
		panic(fmt.Sprintf("tensor: AddCol2ImInto32 cols width %d, want c·k·k = %d", cols.Cols, fan))
	}
	if cols.Rows != dst.Rows*pos {
		panic(fmt.Sprintf("tensor: AddCol2ImInto32 cols rows %d, want %d samples × %d positions", cols.Rows, dst.Rows, pos))
	}
	mustNotShareData32("AddCol2ImInto32", dst, cols)
	t := col2im32TaskPool.Get().(*col2im32Task)
	t.dst, t.cols, t.g = dst, cols, g
	parallelRun(dst.Rows, parallelThreshold/(pos*fan+1)+1, t)
	t.dst, t.cols = nil, nil
	col2im32TaskPool.Put(t)
	return dst
}
