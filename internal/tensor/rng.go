// Package tensor provides the dense linear-algebra substrate used by the
// neural-network layers: row-major float64 matrices, (optionally parallel)
// matrix products, broadcast operations, reductions, weight initialisers and
// a deterministic, splittable pseudo-random number generator.
//
// The package is self-contained (standard library only) and deliberately
// favours predictable, allocation-conscious code over micro-optimised
// assembly: the goal is a faithful, fast-enough training substrate whose
// behaviour is reproducible bit-for-bit across runs and GOMAXPROCS settings.
package tensor

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded through SplitMix64. It is not safe for concurrent use;
// derive one RNG per goroutine with Split, which produces statistically
// independent streams.
type RNG struct {
	s [4]uint64
	// cached second normal variate for the polar Box-Muller transform
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the state and returns the next SplitMix64 output.
// It is used for seeding so that nearby seeds yield unrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent RNG from r. The derived
// stream is keyed by the next outputs of r, so repeated Splits yield
// distinct streams and the parent remains usable.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard normal variate using the polar Box-Muller
// method (exact, branch-light, no tables).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n indices using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// rngStateLen is the serialised size of an RNG: 4 state words, the
// cached-gaussian flag and the cached value.
const rngStateLen = 4*8 + 1 + 8

// MarshalBinary serialises the generator state so a restored stream
// continues bit-for-bit where it left off (checkpoint/resume support).
func (r *RNG) MarshalBinary() ([]byte, error) {
	out := make([]byte, rngStateLen)
	for i, s := range r.s {
		putU64(out[8*i:], s)
	}
	if r.hasGauss {
		out[32] = 1
	}
	putU64(out[33:], math.Float64bits(r.gauss))
	return out, nil
}

// UnmarshalBinary restores a state produced by MarshalBinary.
func (r *RNG) UnmarshalBinary(data []byte) error {
	if len(data) != rngStateLen {
		return errBadRNGState
	}
	for i := range r.s {
		r.s[i] = getU64(data[8*i:])
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		return errBadRNGState
	}
	r.hasGauss = data[32] == 1
	r.gauss = math.Float64frombits(getU64(data[33:]))
	return nil
}

var errBadRNGState = errorString("tensor: invalid RNG state")

// errorString is a tiny allocation-free error type.
type errorString string

func (e errorString) Error() string { return string(e) }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
