package tensor

import "unsafe"

// This file holds the cache-blocked, register-unrolled kernel cores shared
// by the float64 matmul family (matmul.go) and the opt-in float32 serving
// tier (matmul32.go). The cores are generic over the element type: Go
// instantiates one copy per element width, so the float64 path compiles to
// exactly the code it had when it was hand-written, and the float32 path
// reuses the same loop structure at half the memory traffic.
//
// Determinism contract: for every output element the multiply-adds are
// applied in ascending-k order with a single accumulator, exactly like the
// untiled loops these kernels replaced. Cache blocking reorders only which
// (i, j) elements are in flight, never the per-element accumulation order,
// and the 4-wide unrolls issue their four multiply-adds sequentially.
// Together with the deterministic chunk decomposition of parallelRun this
// keeps the float64 path bit-exact across tile-size changes, worker counts
// and the allocating/destination-passing forms.
//
// Zero-operand terms are NOT skipped: 0·NaN and 0·±Inf are NaN and must
// propagate so divergence shows up in losses instead of being silently
// swallowed (see the non-finite regression tests). Skipping was also
// value-identical for finite data only by accident of IEEE signed-zero
// rules; the tiled kernels drop it everywhere.

// Float constrains the kernel element types: float64 is the training
// default, float32 the serving tier where bit-parity with training does
// not matter.
type Float interface{ float32 | float64 }

// Tile sizes. kernelKC rows of b are kept hot across a sweep of output
// rows (the k-tile); kernelJC bounds the output columns touched per tile
// so one c-row segment plus four b-row segments stay L1-resident even for
// very wide operands (5 × 8 KB at float64). For this repo's layer widths
// (≤ 784) a row fits one j-tile, so the j-loop only pays off on wider
// shapes; the k-tile is what keeps 256×256 and up from streaming all of b
// through cache once per output row.
const (
	kernelKC = 64
	kernelJC = 1024
)

// mulAddRow4 computes crow[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j]
// with the four multiply-adds applied sequentially (ascending k), loading
// and storing each c element once per quad — the register micro-kernel of
// the ikj family.
func mulAddRow4[F Float](crow, b0, b1, b2, b3 []F, a0, a1, a2, a3 F) {
	b0 = b0[:len(crow)]
	b1 = b1[:len(crow)]
	b2 = b2[:len(crow)]
	b3 = b3[:len(crow)]
	for j, cv := range crow {
		cv += a0 * b0[j]
		cv += a1 * b1[j]
		cv += a2 * b2[j]
		cv += a3 * b3[j]
		crow[j] = cv
	}
}

// mulAddRow1 is the k-remainder form: crow[j] += av·brow[j].
func mulAddRow1[F Float](crow, brow []F, av F) {
	brow = brow[:len(crow)]
	for j, cv := range crow {
		crow[j] = cv + av*brow[j]
	}
}

// matMulKernel computes rows [lo, hi) of c = a × b (a is rows×aCols, b is
// aCols×bCols). When zero is set the destination rows are cleared first;
// otherwise they are accumulated into (the fresh-allocation and fused-add
// paths). Loop order: k-tile → j-tile → output row → 4-wide k → j, so a
// kernelKC×kernelJC block of b is reused across every output row of the
// range while each element still accumulates in ascending-k order.
func matMulKernel[F Float](c, a, b []F, aCols, bCols int, zero bool, lo, hi int) {
	if zero {
		for i := lo; i < hi; i++ {
			crow := c[i*bCols : (i+1)*bCols]
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	if bCols == 0 {
		return
	}
	for kb := 0; kb < aCols; kb += kernelKC {
		kEnd := kb + kernelKC
		if kEnd > aCols {
			kEnd = aCols
		}
		for jb := 0; jb < bCols; jb += kernelJC {
			jEnd := jb + kernelJC
			if jEnd > bCols {
				jEnd = bCols
			}
			for i := lo; i < hi; i++ {
				arow := a[i*aCols : (i+1)*aCols]
				crow := c[i*bCols+jb : i*bCols+jEnd]
				k := kb
				for ; k+4 <= kEnd; k += 4 {
					mulAddRow4(crow,
						b[k*bCols+jb:k*bCols+jEnd],
						b[(k+1)*bCols+jb:(k+1)*bCols+jEnd],
						b[(k+2)*bCols+jb:(k+2)*bCols+jEnd],
						b[(k+3)*bCols+jb:(k+3)*bCols+jEnd],
						arow[k], arow[k+1], arow[k+2], arow[k+3])
				}
				for ; k < kEnd; k++ {
					mulAddRow1(crow, b[k*bCols+jb:k*bCols+jEnd], arow[k])
				}
			}
		}
	}
}

// matMulT1Kernel computes rows [lo, hi) of c = aᵀ × b (a is aRows×aCols, b
// is aRows×bCols, c is aCols×bCols): c[i][j] = Σ_k a[k][i]·b[k][j]. Same
// tiling as matMulKernel; the a operand is read down a column (stride
// aCols), four taps per quad, amortised over a full b-row segment.
func matMulT1Kernel[F Float](c, a, b []F, aRows, aCols, bCols int, zero bool, lo, hi int) {
	if zero {
		for i := lo; i < hi; i++ {
			crow := c[i*bCols : (i+1)*bCols]
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	if bCols == 0 {
		return
	}
	for kb := 0; kb < aRows; kb += kernelKC {
		kEnd := kb + kernelKC
		if kEnd > aRows {
			kEnd = aRows
		}
		for jb := 0; jb < bCols; jb += kernelJC {
			jEnd := jb + kernelJC
			if jEnd > bCols {
				jEnd = bCols
			}
			for i := lo; i < hi; i++ {
				crow := c[i*bCols+jb : i*bCols+jEnd]
				k := kb
				for ; k+4 <= kEnd; k += 4 {
					mulAddRow4(crow,
						b[k*bCols+jb:k*bCols+jEnd],
						b[(k+1)*bCols+jb:(k+1)*bCols+jEnd],
						b[(k+2)*bCols+jb:(k+2)*bCols+jEnd],
						b[(k+3)*bCols+jb:(k+3)*bCols+jEnd],
						a[k*aCols+i], a[(k+1)*aCols+i], a[(k+2)*aCols+i], a[(k+3)*aCols+i])
				}
				for ; k < kEnd; k++ {
					mulAddRow1(crow, b[k*bCols+jb:k*bCols+jEnd], a[k*aCols+i])
				}
			}
		}
	}
}

// matMulT2Kernel computes rows [lo, hi) of c = a × bᵀ (a is rows×aCols, b
// is bRows×aCols): every element is a full ascending-k dot product written
// once. Rows of b are consumed four at a time through a packed panel:
// panel[4k+m] = b[j+m][k], so the inner loop feeds four independent
// accumulators from one contiguous stream and reads each a-row once per
// quad. The packing cost is amortised over the whole [lo, hi) row range.
// panel must have length ≥ 4·aCols.
func matMulT2Kernel[F Float](c, a, b []F, aCols, bRows int, lo, hi int, panel []F) {
	j := 0
	for ; j+4 <= bRows; j += 4 {
		b0 := b[j*aCols : (j+1)*aCols]
		b1 := b[(j+1)*aCols : (j+2)*aCols]
		b2 := b[(j+2)*aCols : (j+3)*aCols]
		b3 := b[(j+3)*aCols : (j+4)*aCols]
		p := panel[: 4*aCols : 4*aCols]
		for k, bv := range b0 {
			p[4*k] = bv
			p[4*k+1] = b1[k]
			p[4*k+2] = b2[k]
			p[4*k+3] = b3[k]
		}
		for i := lo; i < hi; i++ {
			arow := a[i*aCols : (i+1)*aCols]
			var s0, s1, s2, s3 F
			for k, av := range arow {
				q := p[4*k : 4*k+4 : 4*k+4]
				s0 += av * q[0]
				s1 += av * q[1]
				s2 += av * q[2]
				s3 += av * q[3]
			}
			crow := c[i*bRows+j : i*bRows+j+4 : i*bRows+j+4]
			crow[0] = s0
			crow[1] = s1
			crow[2] = s2
			crow[3] = s3
		}
	}
	for ; j < bRows; j++ {
		brow := b[j*aCols : (j+1)*aCols]
		for i := lo; i < hi; i++ {
			arow := a[i*aCols : (i+1)*aCols]
			var s F
			for k, av := range arow {
				s += av * brow[k]
			}
			c[i*bRows+j] = s
		}
	}
}

// sliceRange returns the backing address range [lo, hi) of d, or (0, 0)
// for an empty slice.
func sliceRange[F Float](d []F) (uintptr, uintptr) {
	if len(d) == 0 {
		return 0, 0
	}
	lo := uintptr(unsafe.Pointer(unsafe.SliceData(d)))
	return lo, lo + uintptr(len(d))*unsafe.Sizeof(d[0])
}

// slicesOverlap reports whether two slices share any backing element —
// including partially overlapping FromSlice views of one array, which the
// old first-element identity check missed.
func slicesOverlap[F Float](a, b []F) bool {
	aLo, aHi := sliceRange(a)
	bLo, bHi := sliceRange(b)
	return aLo < bHi && bLo < aHi
}
