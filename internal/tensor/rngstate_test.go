package tensor

import "testing"

func TestRNGMarshalResumesStream(t *testing.T) {
	r := NewRNG(77)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	r.NormFloat64() // leave a cached gaussian pending
	state, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.NormFloat64()
	}
	restored := NewRNG(0)
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := restored.NormFloat64(); got != want[i] {
			t.Fatalf("restored stream diverges at %d: %v vs %v", i, got, want[i])
		}
	}
}

func TestRNGUnmarshalRejectsBadState(t *testing.T) {
	r := NewRNG(1)
	if err := r.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short state accepted")
	}
	zero := make([]byte, rngStateLen)
	if err := r.UnmarshalBinary(zero); err == nil {
		t.Fatal("all-zero xoshiro state accepted")
	}
}

func TestRNGMarshalDoesNotAdvance(t *testing.T) {
	r := NewRNG(5)
	if _, err := r.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	other := NewRNG(5)
	for i := 0; i < 10; i++ {
		if r.Uint64() != other.Uint64() {
			t.Fatal("MarshalBinary advanced the stream")
		}
	}
}
