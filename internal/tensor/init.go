package tensor

import "math"

// XavierUniform fills m with samples from U(-a, a) where
// a = sqrt(6 / (fanIn + fanOut)), the Glorot/Xavier initialisation used by
// the original Lipizzaner MLP networks.
func XavierUniform(m *Mat, fanIn, fanOut int, rng *RNG) {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * a
	}
}

// HeNormal fills m with samples from N(0, 2/fanIn), appropriate for
// rectifier activations.
func HeNormal(m *Mat, fanIn int, rng *RNG) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// GaussianFill fills m with samples from N(mean, std²).
func GaussianFill(m *Mat, mean, std float64, rng *RNG) {
	for i := range m.Data {
		m.Data[i] = mean + rng.NormFloat64()*std
	}
}

// UniformFill fills m with samples from U(lo, hi).
func UniformFill(m *Mat, lo, hi float64, rng *RNG) {
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*span
	}
}
