package gateway

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/serve"
)

// deployVariant derives an artifact with a different content hash than
// the base (half the mixture members, renormalized).
func deployVariant(tb testing.TB) *checkpoint.MixtureArtifact {
	tb.Helper()
	a := trainedArtifact(tb)
	if len(a.Ranks) < 2 {
		tb.Skip("need >= 2 mixture members to derive a distinct artifact")
	}
	sh, err := checkpoint.ShardMixture(a, 0, 2)
	if err != nil {
		tb.Fatalf("ShardMixture: %v", err)
	}
	return sh
}

func newDeployer(tb testing.TB, g *Gateway, path string) *Deployer {
	tb.Helper()
	d, err := NewDeployer(DeployOptions{
		Path:           path,
		Model:          "digits",
		ConfirmTimeout: 5 * time.Second,
	}, g.Table(), g.Metrics())
	if err != nil {
		tb.Fatalf("NewDeployer: %v", err)
	}
	return d
}

func TestDeployerRollsOutNewArtifact(t *testing.T) {
	reps := startReplicas(t, 2)
	g, ts := newTestGateway(t, reps, Options{})
	variant := deployVariant(t)
	wantHash := artifactHash(t, variant)

	path := filepath.Join(t.TempDir(), "mixture.bin")
	d := newDeployer(t, g, path)

	// Nothing exported yet: a missing artifact is not an error.
	if n, err := d.CheckOnce(context.Background()); n != 0 || err != nil {
		t.Fatalf("CheckOnce on missing file = (%d, %v), want (0, nil)", n, err)
	}

	if err := checkpoint.SaveMixtureFile(path, variant); err != nil {
		t.Fatalf("SaveMixtureFile: %v", err)
	}
	n, err := d.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if n != len(reps) {
		t.Fatalf("CheckOnce updated %d replicas, want %d", n, len(reps))
	}

	// Every replica now serves the pushed hash, and the deployer only
	// counted the flip after the replica's own health report carried it.
	for i, rep := range reps {
		sts := rep.Registry().Statuses()
		if len(sts) != 1 || sts[0].Hash != wantHash {
			t.Fatalf("replica %d registry hash = %+v, want %s", i, sts, wantHash)
		}
		st, ok := g.Table().Replicas()[i].ModelStatus("digits")
		if !ok || st.Hash != wantHash {
			t.Fatalf("replica %d health-confirmed hash = %q, want %s", i, st.Hash, wantHash)
		}
	}
	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, "gateway_reloads_total"); got != float64(len(reps)) {
		t.Fatalf("gateway_reloads_total = %g, want %d", got, len(reps))
	}

	// Idempotent: the same artifact is not pushed twice.
	if n, err := d.CheckOnce(context.Background()); n != 0 || err != nil {
		t.Fatalf("repeat CheckOnce = (%d, %v), want (0, nil)", n, err)
	}

	// The new model serves traffic through the gateway.
	code, out := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, "")
	if code != http.StatusOK || out.Hash != wantHash {
		t.Fatalf("post-rollout generate = %d hash %q, want 200 %s", code, out.Hash, wantHash)
	}
}

// TestDeployerCatchesUpDownReplica: a replica that is dead during a
// rollout is not silently skipped forever — the push fails, the failure
// is counted, and a later sweep catches the replica up once it returns.
func TestDeployerCatchesUpDownReplica(t *testing.T) {
	reps := startReplicas(t, 2)
	g, ts := newTestGateway(t, reps, Options{})
	variant := deployVariant(t)
	wantHash := artifactHash(t, variant)

	path := filepath.Join(t.TempDir(), "mixture.bin")
	if err := checkpoint.SaveMixtureFile(path, variant); err != nil {
		t.Fatalf("SaveMixtureFile: %v", err)
	}
	d := newDeployer(t, g, path)

	reps[1].Kill()
	n, err := d.CheckOnce(context.Background())
	if n != 1 {
		t.Fatalf("CheckOnce with one dead replica updated %d, want 1", n)
	}
	if err == nil {
		t.Fatal("CheckOnce with one dead replica returned nil error")
	}
	if got := metricValue(t, scrapeMetrics(t, ts.URL), "gateway_reload_failures_total"); got < 1 {
		t.Fatalf("gateway_reload_failures_total = %g, want >= 1", got)
	}

	reps[1].Revive()
	if n, err := d.CheckOnce(context.Background()); n != 1 || err != nil {
		t.Fatalf("catch-up CheckOnce = (%d, %v), want (1, nil)", n, err)
	}
	sts := reps[1].Registry().Statuses()
	if len(sts) != 1 || sts[0].Hash != wantHash {
		t.Fatalf("revived replica hash = %+v, want %s", sts, wantHash)
	}
}

// TestDeployerSkipsTornArtifact: an undecodable (torn) artifact on disk
// must never reach a replica and must not kill the watch loop — the
// deployer counts it, logs it once per distinct bad content, and picks
// up the valid rewrite on a later check.
func TestDeployerSkipsTornArtifact(t *testing.T) {
	reps := startReplicas(t, 2)
	g, ts := newTestGateway(t, reps, Options{})
	variant := deployVariant(t)
	wantHash := artifactHash(t, variant)

	path := filepath.Join(t.TempDir(), "mixture.bin")
	var buf bytes.Buffer
	if err := checkpoint.WriteMixture(&buf, variant); err != nil {
		t.Fatalf("WriteMixture: %v", err)
	}
	torn := buf.Bytes()[:buf.Len()-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatalf("writing torn artifact: %v", err)
	}

	var logLines atomic.Int64
	d, err := NewDeployer(DeployOptions{
		Path:           path,
		Model:          "digits",
		ConfirmTimeout: 5 * time.Second,
		Logf:           func(string, ...interface{}) { logLines.Add(1) },
	}, g.Table(), g.Metrics())
	if err != nil {
		t.Fatalf("NewDeployer: %v", err)
	}

	// Three polls over the same torn content: skipped without error every
	// time, counted every time, logged once.
	for i := 0; i < 3; i++ {
		if n, err := d.CheckOnce(context.Background()); n != 0 || err != nil {
			t.Fatalf("CheckOnce %d on torn artifact = (%d, %v), want (0, nil)", i, n, err)
		}
	}
	if got := metricValue(t, scrapeMetrics(t, ts.URL), "gateway_bad_artifacts_total"); got != 3 {
		t.Fatalf("gateway_bad_artifacts_total = %g, want 3", got)
	}
	if got := logLines.Load(); got != 1 {
		t.Fatalf("torn artifact logged %d times, want once per distinct content", got)
	}
	for i, rep := range reps {
		for _, st := range rep.Registry().Statuses() {
			if st.Hash == wantHash {
				t.Fatalf("replica %d received the variant hash from a torn artifact", i)
			}
		}
	}

	// A valid rewrite recovers on the next poll, no restart needed.
	if err := checkpoint.SaveMixtureFile(path, variant); err != nil {
		t.Fatalf("SaveMixtureFile: %v", err)
	}
	if n, err := d.CheckOnce(context.Background()); n != len(reps) || err != nil {
		t.Fatalf("CheckOnce after rewrite = (%d, %v), want (%d, nil)", n, err, len(reps))
	}
	sts := reps[0].Registry().Statuses()
	if len(sts) != 1 || sts[0].Hash != wantHash {
		t.Fatalf("post-recovery replica hash = %+v, want %s", sts, wantHash)
	}
}

// TestDeployRolloutUnderTraffic is the hot-reload half of the e2e
// acceptance: a new mixture rolls across the fleet while clients hammer
// the gateway, with zero client-visible failures, and afterwards the new
// hash is what serves.
func TestDeployRolloutUnderTraffic(t *testing.T) {
	reps := startReplicas(t, 3)
	g, ts := newTestGateway(t, reps, Options{})
	variant := deployVariant(t)
	wantHash := artifactHash(t, variant)
	baseHash := artifactHash(t, trainedArtifact(t))
	if wantHash == baseHash {
		t.Fatal("variant artifact hash equals base hash; rollout would be a no-op")
	}

	path := filepath.Join(t.TempDir(), "mixture.bin")
	if err := checkpoint.SaveMixtureFile(path, variant); err != nil {
		t.Fatalf("SaveMixtureFile: %v", err)
	}
	d := newDeployer(t, g, path)

	stop := make(chan struct{})
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures int
		served   = map[string]int{}
	)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, out := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, "")
				mu.Lock()
				if code != http.StatusOK {
					failures++
				} else {
					served[out.Hash]++
				}
				mu.Unlock()
			}
		}()
	}

	n, err := d.CheckOnce(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("CheckOnce under traffic: %v", err)
	}
	if n != len(reps) {
		t.Fatalf("CheckOnce updated %d replicas, want %d", n, len(reps))
	}
	if failures != 0 {
		t.Fatalf("%d client-visible failures during rollout", failures)
	}
	mu.Lock()
	defer mu.Unlock()
	for h := range served {
		if h != baseHash && h != wantHash {
			t.Fatalf("served unknown hash %q during rollout", h)
		}
	}

	// Post-rollout traffic serves only the new hash.
	for i := 0; i < 10; i++ {
		code, out := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, "")
		if code != http.StatusOK || out.Hash != wantHash {
			t.Fatalf("post-rollout generate = %d hash %q, want 200 %s", code, out.Hash, wantHash)
		}
	}
}
