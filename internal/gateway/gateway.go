// Package gateway is the multi-node serving frontend: it consistent-hash
// routes /v1/generate requests across a table of backend serve replicas,
// ejects replicas that fail health probes (and readmits them when they
// recover), hedges slow requests against a second replica under a capped
// budget, retries connection errors with bounded backoff, and keeps the
// fleet's models fresh by watching for new training artifacts and
// hot-reloading them replica by replica. It is the serving analogue of
// distributing the cellular grid across training nodes: the trained
// ensemble, spread over a serving tier, behind one endpoint.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxProxyBody bounds a client /v1/generate request body, mirroring the
// replica-side limit.
const maxProxyBody = 1 << 20

// Options configures a Gateway.
type Options struct {
	// Replicas are the backend base URLs (http://host:port). Required.
	Replicas []string
	// VirtualNodes per replica on the hash ring (default 64).
	VirtualNodes int
	// Table tunes health probing, ejection and readmission.
	Table TableOptions
	// RequestTimeout bounds one client request end to end across all
	// attempts (default 30 s).
	RequestTimeout time.Duration
	// MaxAttempts caps the sequential attempts per request — the first
	// try plus retries on retryable failures (default 3, bounded by the
	// replica count).
	MaxAttempts int
	// RetryBackoff is the initial delay before a retry; it doubles per
	// retry, capped at 8× (default 10 ms).
	RetryBackoff time.Duration
	// HedgeQuantile is the tracked latency quantile that arms the hedge
	// timer (default 0.99).
	HedgeQuantile float64
	// HedgeMin/HedgeMax clamp the hedge delay; before enough latency
	// samples exist, HedgeMax is used (defaults 1 ms / 250 ms).
	HedgeMin, HedgeMax time.Duration
	// HedgeBudgetPercent caps launched hedges at this percentage of
	// routed requests; 0 (the zero value) disables hedging. cmd/gateway
	// enables a 10% budget by default.
	HedgeBudgetPercent int
	// hedgeWarmup is the latency sample count required before the
	// tracked quantile is trusted.
}

// hedgeWarmupSamples is the latency observation count below which the
// hedge delay stays at HedgeMax (the tracked p99 is noise until then).
const hedgeWarmupSamples = 32

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.MaxAttempts > len(o.Replicas) && len(o.Replicas) > 0 {
		o.MaxAttempts = len(o.Replicas)
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.99
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 250 * time.Millisecond
	}
	if o.HedgeBudgetPercent < 0 {
		o.HedgeBudgetPercent = 0
	}
	return o
}

// Gateway routes client requests across the replica table.
type Gateway struct {
	opts    Options
	ring    *Ring
	table   *Table
	metrics *Metrics
	client  *http.Client
	mux     *http.ServeMux

	counter  atomic.Uint64 // spreads keyless requests over the ring
	draining atomic.Bool

	// seqPool recycles ring-walk scratch slices on the request path.
	seqPool sync.Pool
}

// New builds a gateway over the configured replicas. Call Start to begin
// health probing and Stop to halt it.
func New(opts Options) (*Gateway, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: at least one replica URL required")
	}
	opts = opts.withDefaults()
	metrics := NewMetrics(len(opts.Replicas))
	g := &Gateway{
		opts:    opts,
		ring:    NewRing(len(opts.Replicas), opts.VirtualNodes),
		table:   NewTable(opts.Replicas, opts.Table, metrics),
		metrics: metrics,
		client: &http.Client{
			Timeout: opts.RequestTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		mux: http.NewServeMux(),
	}
	g.seqPool.New = func() any { s := make([]int, 0, len(opts.Replicas)); return &s }
	g.mux.HandleFunc("/v1/generate", g.handleGenerate)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/replicaz", g.handleReplicaz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	return g, nil
}

// Start launches the background health prober (after one synchronous
// sweep, so routing starts with fresh replica state).
func (g *Gateway) Start() {
	g.table.ProbeAll()
	g.table.Start()
}

// Stop halts background probing.
func (g *Gateway) Stop() { g.table.Stop() }

// Table exposes the replica table (deployer, tests, /replicaz).
func (g *Gateway) Table() *Table { return g.table }

// Metrics exposes the gateway metrics set.
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// SetDraining flips /healthz to 503 ahead of shutdown.
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// RouteKeyHeader lets clients pin a request to a ring position (session
// affinity); without it the gateway spreads requests uniformly.
const RouteKeyHeader = "X-Route-Key"

// handleGenerate is the routed data path: pick candidates by consistent
// hash, forward with bounded retry and a hedged second attempt, stream
// the winning replica response back to the client.
func (g *Gateway) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if g.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	// The model name shards candidate selection; tolerate an empty body
	// (replicas default it) but reject JSON that does not even parse, so
	// garbage fails fast here instead of fanning out to replicas.
	var req struct {
		Model string `json:"model"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	} else {
		body = []byte("{}")
	}
	key := r.Header.Get(RouteKeyHeader)
	if key == "" {
		// No affinity requested: spread over the ring by request count.
		key = req.Model + "#" + strconv.FormatUint(g.counter.Add(1), 10)
	} else {
		key = req.Model + "#" + key
	}

	g.metrics.requests.Inc()
	started := time.Now()
	res := g.route(r.Context(), key, req.Model, body)
	g.metrics.ObserveRoute(time.Since(started), res.err != nil)
	if res.err != nil {
		httpError(w, http.StatusBadGateway, "all replicas failed: %v", res.err)
		return
	}
	if ct := res.contentType; ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// fwdResult is one replica attempt's outcome.
type fwdResult struct {
	replica     *Replica
	status      int
	contentType string
	body        []byte
	err         error
	hedged      bool // launched by the hedge timer
}

// retryable reports whether the attempt should be retried on another
// replica: transport errors and replica-unavailable statuses. 429 is
// retried too — another replica may have queue headroom — but without
// striking the shedding replica (load is not failure).
func (r fwdResult) retryable() bool {
	if r.err != nil {
		return true
	}
	switch r.status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// strikeWorthy reports whether the failure should count toward ejection.
func (r fwdResult) strikeWorthy() bool {
	return r.err != nil || r.status == http.StatusBadGateway ||
		r.status == http.StatusServiceUnavailable || r.status == http.StatusGatewayTimeout
}

// candidates assembles the attempt order for key: routable replicas that
// host the model, in ring order, with ejected hosts appended as a last
// resort so a fully-ejected table still tries rather than blackholing.
func (g *Gateway) candidates(dst []*Replica, key, model string) []*Replica {
	seqp := g.seqPool.Get().(*[]int)
	seq := g.ring.Sequence((*seqp)[:0], key)
	replicas := g.table.Replicas()
	for _, i := range seq {
		r := replicas[i]
		if r.Routable() && r.HostsModel(model) {
			dst = append(dst, r)
		}
	}
	for _, i := range seq {
		r := replicas[i]
		if !r.Routable() && r.HostsModel(model) {
			dst = append(dst, r)
		}
	}
	if len(dst) == 0 {
		// Model filter excluded everything (e.g. stale health reports):
		// fall back to plain ring order.
		for _, i := range seq {
			dst = append(dst, replicas[i])
		}
	}
	*seqp = seq
	g.seqPool.Put(seqp)
	return dst
}

// hedgeDelay returns how long the primary attempt may run before a hedge
// is launched: the tracked HedgeQuantile of route latency, clamped to
// [HedgeMin, HedgeMax], or HedgeMax until enough samples exist.
func (g *Gateway) hedgeDelay() time.Duration {
	q, n := g.metrics.LatencyQuantile(g.opts.HedgeQuantile)
	if n < hedgeWarmupSamples {
		return g.opts.HedgeMax
	}
	d := time.Duration(q * float64(time.Second))
	if d < g.opts.HedgeMin {
		return g.opts.HedgeMin
	}
	if d > g.opts.HedgeMax {
		return g.opts.HedgeMax
	}
	return d
}

// hedgeAllowed enforces the hedge budget: launched hedges must stay
// under HedgeBudgetPercent of routed requests (with a small floor so the
// first requests can hedge at all).
func (g *Gateway) hedgeAllowed() bool {
	if g.opts.HedgeBudgetPercent <= 0 {
		return false
	}
	hedges := g.metrics.Hedges()
	requests := g.metrics.Requests()
	return hedges*100 < requests*uint64(g.opts.HedgeBudgetPercent)+100
}

// route runs the attempt loop for one client request: sequential retries
// with exponential backoff over the candidate list, plus at most one
// hedged parallel attempt when the primary exceeds the tracked tail
// latency. The first acceptable response wins; losers are cancelled via
// the shared context when route returns.
func (g *Gateway) route(ctx context.Context, key, model string, body []byte) fwdResult {
	var cands []*Replica
	cands = g.candidates(cands, key, model)
	if len(cands) == 0 {
		return fwdResult{err: errors.New("no replicas available")}
	}
	maxAttempts := g.opts.MaxAttempts
	if maxAttempts > len(cands) {
		maxAttempts = len(cands)
	}

	ctx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()

	// results is buffered for every candidate so late finishers (a lost
	// hedge race, a cancelled straggler) never block their goroutine.
	results := make(chan fwdResult, len(cands))
	next, inFlight, attempts := 0, 0, 0
	launch := func(hedged bool) {
		rep := cands[next]
		next++
		inFlight++
		if !hedged {
			attempts++
		}
		go func() {
			res := g.forward(ctx, rep, body)
			res.hedged = hedged
			results <- res
		}()
	}
	launch(false)

	// The hedge timer races the primary attempt; it fires at most once
	// per request (one speculative duplicate, never a fan-out).
	var hedgeC <-chan time.Time
	if next < len(cands) && g.hedgeAllowed() {
		timer := time.NewTimer(g.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}

	backoff := g.opts.RetryBackoff
	var lastFail fwdResult
	for {
		select {
		case res := <-results:
			inFlight--
			if !res.retryable() {
				// First acceptable answer wins; any other attempt still in
				// flight is cancelled by the deferred ctx cancel.
				g.table.RecordForwardSuccess(res.replica)
				if res.hedged {
					g.metrics.hedgeWin.Inc()
				}
				return res
			}
			if res.strikeWorthy() {
				reason := "HTTP " + strconv.Itoa(res.status)
				if res.err != nil {
					reason = res.err.Error()
				}
				g.table.RecordFailure(res.replica, reason)
			}
			lastFail = res
			if next < len(cands) && attempts < maxAttempts && ctx.Err() == nil {
				g.metrics.retries.Inc()
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
				}
				if backoff < 8*g.opts.RetryBackoff {
					backoff *= 2
				}
				launch(false)
			} else if inFlight == 0 {
				// Nothing in flight and nothing left to try. A transport
				// error surfaces as 502; a retryable HTTP status (e.g.
				// unanimous 429) passes through so the client sees the
				// real backpressure.
				return lastFail
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				g.metrics.hedges.Inc()
				launch(true)
			}
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}
		}
	}
}

// forward sends the buffered request to one replica and buffers its
// response (hedging requires both sides buffered).
func (g *Gateway) forward(ctx context.Context, rep *Replica, body []byte) fwdResult {
	g.metrics.forwards[rep.index].Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.URL+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return fwdResult{replica: rep, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		g.metrics.forwardErrs[rep.index].Inc()
		return fwdResult{replica: rep, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		g.metrics.forwardErrs[rep.index].Inc()
		return fwdResult{replica: rep, err: err}
	}
	res := fwdResult{
		replica:     rep,
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data,
	}
	if res.strikeWorthy() {
		g.metrics.forwardErrs[rep.index].Inc()
	}
	return res
}

// handleHealthz reports gateway liveness: ok while at least one replica
// is routable.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	routable := g.table.RoutableCount()
	st := map[string]any{
		"status":   "ok",
		"replicas": len(g.table.Replicas()),
		"routable": routable,
	}
	w.Header().Set("Content-Type", "application/json")
	if g.draining.Load() || routable == 0 {
		st["status"] = "unavailable"
		if g.draining.Load() {
			st["status"] = "draining"
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

func (g *Gateway) handleReplicaz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"replicas": g.table.Info()})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.metrics.WriteText(w)
}
