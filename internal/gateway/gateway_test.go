package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/serve"
)

// trainedArtifact trains a small 2×2 grid once per test binary and
// returns the exported best-cell mixture artifact.
var artifactOnce struct {
	sync.Once
	a   *checkpoint.MixtureArtifact
	err error
}

func trainedArtifact(tb testing.TB) *checkpoint.MixtureArtifact {
	tb.Helper()
	artifactOnce.Do(func() {
		cfg := config.Default().Scaled(2, 8, 100)
		res, err := core.RunSequential(cfg, core.RunOptions{})
		if err != nil {
			artifactOnce.err = err
			return
		}
		artifactOnce.a, artifactOnce.err = checkpoint.ExportMixture(res, res.BestRank)
	})
	if artifactOnce.err != nil {
		tb.Fatal(artifactOnce.err)
	}
	return artifactOnce.a
}

func artifactHash(tb testing.TB, a *checkpoint.MixtureArtifact) string {
	tb.Helper()
	h, err := checkpoint.HashMixture(a)
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

// chaosReplica is one in-process serve replica whose failure modes the
// tests control deterministically: Kill makes every connection die
// mid-request (the client sees a transport error, exactly like a crashed
// process), Revive restores it, and Delay slows /v1/generate to trigger
// hedging.
type chaosReplica struct {
	reg     *serve.Registry
	handler http.Handler
	srv     *httptest.Server
	down    atomic.Bool
	delay   atomic.Int64 // nanoseconds added to generate requests
}

func (c *chaosReplica) Kill()                     { c.down.Store(true) }
func (c *chaosReplica) Revive()                   { c.down.Store(false) }
func (c *chaosReplica) Delay(d time.Duration)     { c.delay.Store(int64(d)) }
func (c *chaosReplica) URL() string               { return c.srv.URL }
func (c *chaosReplica) Registry() *serve.Registry { return c.reg }

func (c *chaosReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.down.Load() {
		// Abort the connection without a response: the client observes a
		// transport-level failure, indistinguishable from a dead process.
		panic(http.ErrAbortHandler)
	}
	if d := c.delay.Load(); d > 0 && r.URL.Path == "/v1/generate" {
		time.Sleep(time.Duration(d))
	}
	c.handler.ServeHTTP(w, r)
}

// startReplicas stands up n chaos replicas all serving the trained
// artifact as "digits".
func startReplicas(tb testing.TB, n int) []*chaosReplica {
	tb.Helper()
	a := trainedArtifact(tb)
	reps := make([]*chaosReplica, n)
	for i := range reps {
		reg := serve.NewRegistry(serve.EngineConfig{Workers: 2, QueueSize: 1024, Seed: uint64(i + 1)}, nil)
		if err := reg.Load("digits", a); err != nil {
			tb.Fatal(err)
		}
		c := &chaosReplica{reg: reg, handler: serve.NewServer(reg, 30*time.Second)}
		c.srv = httptest.NewServer(c)
		reps[i] = c
		tb.Cleanup(func() {
			c.srv.Close()
			reg.Close()
		})
	}
	return reps
}

func replicaURLs(reps []*chaosReplica) []string {
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.URL()
	}
	return urls
}

// newTestGateway builds a gateway over the replicas and serves it on
// loopback. The background prober is NOT started: tests drive probes
// explicitly via Table().ProbeAll() for determinism.
func newTestGateway(tb testing.TB, reps []*chaosReplica, opts Options) (*Gateway, *httptest.Server) {
	tb.Helper()
	opts.Replicas = replicaURLs(reps)
	g, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(g)
	tb.Cleanup(func() {
		ts.Close()
		g.Stop()
	})
	g.Table().ProbeAll()
	return g, ts
}

// postGenerate sends one generate request through url and decodes it.
func postGenerate(tb testing.TB, url string, req serve.GenerateRequest, routeKey string) (int, *serve.GenerateResponse) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if routeKey != "" {
		hreq.Header.Set(RouteKeyHeader, routeKey)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var out serve.GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, &out
}

// metricValue extracts one scalar series from a /metrics exposition.
func metricValue(tb testing.TB, text, series string) float64 {
	tb.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		tb.Fatalf("series %s not found in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func scrapeMetrics(tb testing.TB, url string) string {
	tb.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return string(text)
}

// sumReplicaSeries totals a per-replica labelled counter across indices.
func sumReplicaSeries(tb testing.TB, text, name string, n int) float64 {
	tb.Helper()
	total := 0.0
	for i := 0; i < n; i++ {
		series := name + `{replica="` + strconv.Itoa(i) + `"}`
		total += metricValue(tb, text, series)
	}
	return total
}

func TestGatewayRoutesAcrossReplicas(t *testing.T) {
	reps := startReplicas(t, 3)
	g, ts := newTestGateway(t, reps, Options{})

	const requests = 30
	for i := 0; i < requests; i++ {
		code, out := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 2}, "")
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if out.Dim != 784 || len(out.Samples) != 2 {
			t.Fatalf("request %d: bad shape %d×%d", i, out.N, out.Dim)
		}
	}

	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, "gateway_requests_total"); got != requests {
		t.Fatalf("gateway_requests_total = %g, want %d", got, requests)
	}
	if got := metricValue(t, text, "gateway_request_errors_total"); got != 0 {
		t.Fatalf("gateway_request_errors_total = %g", got)
	}
	// Keyless requests must spread: every replica sees traffic.
	for i := range reps {
		series := `gateway_replica_forwards_total{replica="` + strconv.Itoa(i) + `"}`
		if got := metricValue(t, text, series); got == 0 {
			t.Fatalf("replica %d received no forwards:\n%s", i, text)
		}
	}
	if got := metricValue(t, text, "gateway_healthy_replicas"); got != 3 {
		t.Fatalf("gateway_healthy_replicas = %g", got)
	}
	_ = g
}

func TestRouteKeyAffinity(t *testing.T) {
	reps := startReplicas(t, 3)
	_, ts := newTestGateway(t, reps, Options{})

	// All requests under one route key must land on a single replica:
	// exactly one per-replica forward counter moves.
	before := scrapeMetrics(t, ts.URL)
	const requests = 10
	for i := 0; i < requests; i++ {
		if code, _ := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, "alice"); code != http.StatusOK {
			t.Fatalf("request %d failed: %d", i, code)
		}
	}
	after := scrapeMetrics(t, ts.URL)
	moved := 0
	for i := range reps {
		series := `gateway_replica_forwards_total{replica="` + strconv.Itoa(i) + `"}`
		delta := metricValue(t, after, series) - metricValue(t, before, series)
		switch delta {
		case 0:
		case requests:
			moved++
		default:
			t.Fatalf("replica %d saw %g forwards for one key, want 0 or %d", i, delta, requests)
		}
	}
	if moved != 1 {
		t.Fatalf("%d replicas saw the pinned key's traffic, want exactly 1", moved)
	}
}

func TestRingProperties(t *testing.T) {
	r := NewRing(5, 64)
	// Sequence covers every replica exactly once, deterministically.
	seq1 := r.Sequence(nil, "some-key")
	seq2 := r.Sequence(nil, "some-key")
	if len(seq1) != 5 {
		t.Fatalf("sequence length %d, want 5", len(seq1))
	}
	seen := make(map[int]bool)
	for i, v := range seq1 {
		if seq2[i] != v {
			t.Fatal("sequence not deterministic")
		}
		if seen[v] {
			t.Fatalf("replica %d repeated in sequence", v)
		}
		seen[v] = true
	}
	// Different keys spread primaries across replicas.
	counts := make([]int, 5)
	for i := 0; i < 1000; i++ {
		seq := r.Sequence(nil, "key-"+strconv.Itoa(i))
		counts[seq[0]]++
	}
	for i, c := range counts {
		if c < 50 {
			t.Fatalf("replica %d owns only %d/1000 keys — ring is unbalanced: %v", i, c, counts)
		}
	}
	// One replica ring still works.
	if seq := NewRing(1, 8).Sequence(nil, "x"); len(seq) != 1 || seq[0] != 0 {
		t.Fatalf("1-ring sequence %v", seq)
	}
}

// TestHedgingFiresOnSlowPrimary pins a request to a deliberately slow
// replica and checks the gateway launches a hedge to the next replica,
// the hedge wins, and the client still gets a fast, correct answer.
func TestHedgingFiresOnSlowPrimary(t *testing.T) {
	reps := startReplicas(t, 2)
	g, ts := newTestGateway(t, reps, Options{
		HedgeMax:           25 * time.Millisecond,
		HedgeBudgetPercent: 100, // the budget itself is tested separately
		MaxAttempts:        1,   // isolate hedging from the retry path
	})

	// Find a route key whose primary is replica 0 (the gateway's ring is
	// reproducible: same replica count and virtual-node count).
	ring := NewRing(2, g.opts.VirtualNodes)
	key := ""
	for i := 0; ; i++ {
		k := "hedge-key-" + strconv.Itoa(i)
		if seq := ring.Sequence(nil, "digits#"+k); seq[0] == 0 {
			key = k
			break
		}
	}
	reps[0].Delay(300 * time.Millisecond)

	start := time.Now()
	code, out := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, key)
	elapsed := time.Since(start)
	if code != http.StatusOK || len(out.Samples) != 1 {
		t.Fatalf("hedged request failed: %d", code)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedge did not rescue the request: took %v", elapsed)
	}
	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, "gateway_hedges_total"); got != 1 {
		t.Fatalf("gateway_hedges_total = %g, want 1", got)
	}
	if got := metricValue(t, text, "gateway_hedge_wins_total"); got != 1 {
		t.Fatalf("gateway_hedge_wins_total = %g, want 1", got)
	}
}

// TestHedgeBudgetCapsSpeculation: with every request slow, launched
// hedges must stay within the configured fraction of requests instead of
// doubling the fleet's load.
func TestHedgeBudgetCapsSpeculation(t *testing.T) {
	reps := startReplicas(t, 2)
	for _, r := range reps {
		r.Delay(30 * time.Millisecond)
	}
	_, ts := newTestGateway(t, reps, Options{
		HedgeMax:           5 * time.Millisecond,
		HedgeBudgetPercent: 10,
		MaxAttempts:        1,
	})

	const requests = 60
	for i := 0; i < requests; i++ {
		if code, _ := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, ""); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	text := scrapeMetrics(t, ts.URL)
	hedges := metricValue(t, text, "gateway_hedges_total")
	// Budget: hedges*100 < requests*10 + 100 ⇒ at most ~1/10 of traffic
	// plus the floor of one.
	if limit := float64(requests)/10 + 1; hedges > limit {
		t.Fatalf("hedges %g exceed 10%% budget (limit %g)", hedges, limit)
	}
	if hedges == 0 {
		t.Fatal("no hedges launched despite uniformly slow replicas")
	}
}

func TestGatewayHealthzAndReplicaz(t *testing.T) {
	reps := startReplicas(t, 2)
	g, ts := newTestGateway(t, reps, Options{Table: TableOptions{StrikeLimit: 1}})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	rresp, err := http.Get(ts.URL + "/replicaz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var rz struct {
		Replicas []ReplicaInfo `json:"replicas"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if len(rz.Replicas) != 2 {
		t.Fatalf("replicaz: %+v", rz)
	}
	for _, ri := range rz.Replicas {
		if ri.State != "healthy" {
			t.Fatalf("replica %d state %q after probe", ri.Index, ri.State)
		}
		if len(ri.Models) != 1 || ri.Models[0].Name != "digits" {
			t.Fatalf("replica %d models %+v", ri.Index, ri.Models)
		}
	}

	// With every replica dead, the gateway itself must report
	// unavailable.
	for _, r := range reps {
		r.Kill()
	}
	g.Table().ProbeAll()
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: %d", resp2.StatusCode)
	}
}

func TestGatewayRejectsBadRequests(t *testing.T) {
	reps := startReplicas(t, 1)
	_, ts := newTestGateway(t, reps, Options{})

	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET accepted: %d", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body accepted: %d", resp2.StatusCode)
	}
	// Replica-side validation errors pass through untouched.
	code, _ := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "nope", N: 1}, "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown model: %d, want 404", code)
	}
}
