package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over replica indices. Each replica owns
// VirtualNodes points on the ring, so load spreads evenly even with a
// handful of replicas, and removing (ejecting) one replica only remaps
// the keys it owned — the other replicas' assignments are untouched.
// The ring is immutable after construction; health is filtered at lookup
// time by the caller walking the Sequence.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// hashKey is the ring's position function: FNV-1a folded through a
// murmur3-style finaliser. Bare FNV-1a lacks final avalanche — the
// near-identical short keys ring positions are derived from ("replica-0#1",
// "replica-0#2", ...) come out as near-sequential hashes and the ring
// collapses into a few giant arcs; the finaliser decorrelates them.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// NewRing builds a ring over replicas 0..n-1 with the given number of
// virtual nodes per replica (minimum 1).
func NewRing(n, virtualNodes int) *Ring {
	if virtualNodes < 1 {
		virtualNodes = 1
	}
	r := &Ring{points: make([]ringPoint, 0, n*virtualNodes), n: n}
	for i := 0; i < n; i++ {
		for v := 0; v < virtualNodes; v++ {
			key := "replica-" + strconv.Itoa(i) + "#" + strconv.Itoa(v)
			r.points = append(r.points, ringPoint{hash: hashKey(key), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int { return r.n }

// Sequence returns every replica exactly once, ordered by ring position
// starting at key's successor: element 0 is the primary owner of key,
// element 1 the hedge/failover target, and so on. Appended to dst so the
// request path can reuse a scratch slice.
func (r *Ring) Sequence(dst []int, key string) []int {
	if r.n == 0 {
		return dst
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := 0
	var mask uint64 // replica sets are small; a bitmask dedups without allocating
	for i := 0; i < len(r.points) && seen < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.replica < 64 {
			if mask&(1<<uint(p.replica)) != 0 {
				continue
			}
			mask |= 1 << uint(p.replica)
		} else {
			dup := false
			for _, d := range dst {
				if d == p.replica {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		dst = append(dst, p.replica)
		seen++
	}
	return dst
}
