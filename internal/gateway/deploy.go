package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/serve"
)

// DeployOptions configures the continuous train→serve deployment loop.
type DeployOptions struct {
	// Path is the mixture artifact file to watch (e.g. the target of
	// trainer -export-mixture, rewritten at checkpoint boundaries).
	Path string
	// Model is the registry name the artifact is served under. Required.
	Model string
	// Interval is the file poll period (default 1 s).
	Interval time.Duration
	// ConfirmTimeout bounds how long the deployer waits for a replica to
	// report the new artifact healthy before counting the push failed
	// (default 10 s).
	ConfirmTimeout time.Duration
	// PushTimeout bounds the /v1/reload POST itself (default 30 s).
	PushTimeout time.Duration
	// Logf, when non-nil, receives deployer diagnostics (e.g. a torn
	// artifact being skipped).
	Logf func(format string, args ...interface{})
}

func (o DeployOptions) withDefaults() DeployOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.ConfirmTimeout <= 0 {
		o.ConfirmTimeout = 10 * time.Second
	}
	if o.PushTimeout <= 0 {
		o.PushTimeout = 30 * time.Second
	}
	return o
}

// Deployer watches a mixture artifact file and rolls it out across the
// replica table: each replica gets the artifact pushed over /v1/reload,
// then must report the new content hash healthy on /healthz before the
// deployer moves on — traffic only ever flips to a model a replica has
// proven it serves. Replicas are updated one at a time, so the rest of
// the fleet keeps serving the previous version throughout; a replica
// that is down during a rollout is caught up automatically on a later
// poll once it returns.
type Deployer struct {
	opts    DeployOptions
	table   *Table
	metrics *Metrics
	client  *http.Client

	mu      sync.Mutex
	applied map[int]string // replica index → last confirmed artifact hash
	lastBad string         // hash of the last undecodable artifact content logged

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewDeployer builds a deployer over the gateway's replica table.
func NewDeployer(opts DeployOptions, table *Table, metrics *Metrics) (*Deployer, error) {
	if opts.Path == "" || opts.Model == "" {
		return nil, fmt.Errorf("gateway: deployer needs an artifact path and a model name")
	}
	opts = opts.withDefaults()
	return &Deployer{
		opts:    opts,
		table:   table,
		metrics: metrics,
		client:  &http.Client{Timeout: opts.PushTimeout},
		applied: make(map[int]string),
		stop:    make(chan struct{}),
	}, nil
}

// Start launches the background watch loop.
func (d *Deployer) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ticker := time.NewTicker(d.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), d.opts.ConfirmTimeout+d.opts.PushTimeout)
				d.CheckOnce(ctx)
				cancel()
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop halts the watch loop.
func (d *Deployer) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// CheckOnce reads the watched artifact and pushes it to every replica
// whose confirmed hash differs. Returns the number of replicas updated
// and the first error encountered (later replicas are still attempted).
// Exposed so tests and the CLI can drive deterministic rollouts.
func (d *Deployer) CheckOnce(ctx context.Context) (updated int, err error) {
	data, readErr := os.ReadFile(d.opts.Path)
	if readErr != nil {
		if os.IsNotExist(readErr) {
			return 0, nil // nothing exported yet; keep watching
		}
		return 0, readErr
	}
	// Refuse to push bytes that do not decode — a torn write (the
	// exporter writes temp+rename, but guard anyway) must not take down
	// the fleet's reload path. The bad file is skipped, not fatal: the
	// exporter's next rewrite replaces it and the next poll picks it up.
	// Logged once per distinct bad content so a stuck torn file does not
	// emit a line every tick.
	hash := checkpoint.HashMixtureBytes(data)
	if _, decErr := checkpoint.ReadMixture(bytes.NewReader(data)); decErr != nil {
		d.metrics.badArtifacts.Inc()
		d.mu.Lock()
		firstSighting := d.lastBad != hash
		d.lastBad = hash
		d.mu.Unlock()
		if firstSighting && d.opts.Logf != nil {
			d.opts.Logf("deployer: artifact %s does not decode, skipping until rewritten: %v", d.opts.Path, decErr)
		}
		return 0, nil
	}

	for _, rep := range d.table.Replicas() {
		if d.appliedHash(rep.index) == hash {
			continue
		}
		if pushErr := d.pushAndConfirm(ctx, rep, data, hash); pushErr != nil {
			d.metrics.reloadFails.Inc()
			if err == nil {
				err = fmt.Errorf("replica %s: %w", rep.URL, pushErr)
			}
			continue
		}
		d.setApplied(rep.index, hash)
		d.metrics.reloads.Inc()
		updated++
	}
	return updated, err
}

func (d *Deployer) appliedHash(idx int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied[idx]
}

func (d *Deployer) setApplied(idx int, hash string) {
	d.mu.Lock()
	d.applied[idx] = hash
	d.mu.Unlock()
}

// pushAndConfirm POSTs the artifact to one replica's /v1/reload and then
// polls its /healthz until the replica reports the new hash healthy.
func (d *Deployer) pushAndConfirm(ctx context.Context, rep *Replica, data []byte, hash string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		rep.URL+"/v1/reload?model="+d.opts.Model, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload returned HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var rr serve.ReloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		return fmt.Errorf("decoding reload response: %w", err)
	}
	if rr.Hash != hash {
		return fmt.Errorf("replica loaded hash %.12s, pushed %.12s", rr.Hash, hash)
	}

	// The flip is only counted once the replica's own health report
	// carries the new identity — "the model is loaded" is claimed by the
	// reload response, "the model is healthy and serving" only by
	// /healthz.
	deadline := time.Now().Add(d.opts.ConfirmTimeout)
	for {
		d.table.Probe(rep)
		if st, ok := rep.ModelStatus(d.opts.Model); ok && st.Hash == hash && rep.Routable() {
			return nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return fmt.Errorf("replica never reported hash %.12s healthy", hash)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}
