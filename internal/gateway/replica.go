package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cellgan/internal/serve"
)

// Replica states. A replica starts Unknown (routable, never probed),
// becomes Healthy on a successful probe, and is Ejected after StrikeLimit
// consecutive failures. Ejected replicas keep being probed and are
// readmitted after ReadmitSuccesses consecutive successful probes — the
// strike/eviction discipline of the resilient cluster runtime, applied
// to the serving tier.
const (
	stateUnknown int32 = iota
	stateHealthy
	stateEjected
)

// Replica is one backend serve process in the table.
type Replica struct {
	// URL is the replica's base URL, e.g. http://127.0.0.1:8081.
	URL string

	index int
	state atomic.Int32
	// strikes counts consecutive failures (probes and forwards);
	// successes counts consecutive probe successes while ejected.
	strikes   atomic.Int32
	successes atomic.Int32

	mu      sync.Mutex
	models  map[string]serve.ModelStatus // last reported by /healthz
	lastErr string
	queue   int
}

// Routable reports whether the routing path may send traffic here.
func (r *Replica) Routable() bool { return r.state.Load() != stateEjected }

// HostsModel reports whether the replica serves the named model, per its
// last health report. Unprobed replicas (no report yet) and empty names
// pass: routing falls back to trying rather than blackholing.
func (r *Replica) HostsModel(name string) bool {
	if name == "" {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.models) == 0 {
		return true
	}
	_, ok := r.models[name]
	return ok
}

// ModelStatus returns the replica's last-reported status for a model.
func (r *Replica) ModelStatus(name string) (serve.ModelStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.models[name]
	return st, ok
}

// TableOptions tunes the replica table and its prober.
type TableOptions struct {
	// ProbeInterval is the health-probe period (default 1 s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 500 ms).
	ProbeTimeout time.Duration
	// StrikeLimit is the consecutive failures that eject a replica
	// (default 3).
	StrikeLimit int
	// ReadmitSuccesses is the consecutive successful probes that readmit
	// an ejected replica (default 2).
	ReadmitSuccesses int
}

func (o TableOptions) withDefaults() TableOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.StrikeLimit <= 0 {
		o.StrikeLimit = 3
	}
	if o.ReadmitSuccesses <= 0 {
		o.ReadmitSuccesses = 2
	}
	return o
}

// Table is the gateway's replica set: a fixed membership list whose
// health states are driven by periodic /healthz probes plus data-path
// strike feedback.
type Table struct {
	opts     TableOptions
	replicas []*Replica
	metrics  *Metrics
	client   *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewTable builds a table over the replica base URLs. metrics may not be
// nil; its per-replica series must have been sized for len(urls).
func NewTable(urls []string, opts TableOptions, metrics *Metrics) *Table {
	opts = opts.withDefaults()
	t := &Table{
		opts:    opts,
		metrics: metrics,
		client:  &http.Client{Timeout: opts.ProbeTimeout},
		stop:    make(chan struct{}),
	}
	for i, u := range urls {
		t.replicas = append(t.replicas, &Replica{URL: u, index: i, models: map[string]serve.ModelStatus{}})
	}
	metrics.reg.GaugeFunc("gateway_healthy_replicas", "Replicas currently routable.",
		func() float64 { return float64(t.RoutableCount()) })
	return t
}

// Replicas returns the table's replicas (fixed membership, index-stable).
func (t *Table) Replicas() []*Replica { return t.replicas }

// RoutableCount returns how many replicas are currently routable.
func (t *Table) RoutableCount() int {
	n := 0
	for _, r := range t.replicas {
		if r.Routable() {
			n++
		}
	}
	return n
}

// Start launches the background probe loop.
func (t *Table) Start() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := time.NewTicker(t.opts.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				t.ProbeAll()
			case <-t.stop:
				return
			}
		}
	}()
}

// Stop halts the probe loop.
func (t *Table) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.wg.Wait()
}

// ProbeAll probes every replica once, concurrently, and returns when all
// probes have completed. Exposed so tests and the deployer can force a
// deterministic sweep instead of waiting on the ticker.
func (t *Table) ProbeAll() {
	var wg sync.WaitGroup
	for _, r := range t.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			t.Probe(r)
		}(r)
	}
	wg.Wait()
}

// Probe runs one health check against r and updates its state.
func (t *Table) Probe(r *Replica) {
	st, err := t.fetchHealth(r)
	if err != nil {
		t.RecordFailure(r, err.Error())
		return
	}
	r.mu.Lock()
	models := make(map[string]serve.ModelStatus, len(st.Models))
	for _, m := range st.Models {
		models[m.Name] = m
	}
	r.models = models
	r.queue = st.QueueDepth
	r.lastErr = ""
	r.mu.Unlock()
	t.recordProbeSuccess(r)
}

// fetchHealth GETs the replica's /healthz and requires an "ok" report.
func (t *Table) fetchHealth(r *Replica) (*serve.HealthStatus, error) {
	resp, err := t.client.Get(r.URL + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding health report: %w", err)
	}
	if resp.StatusCode != http.StatusOK || st.Status != "ok" {
		return nil, fmt.Errorf("unhealthy: HTTP %d, status %q", resp.StatusCode, st.Status)
	}
	return &st, nil
}

// RecordFailure registers one failed probe or forward against r: a
// strike. Reaching the strike limit ejects the replica. Also resets the
// readmission success streak.
func (t *Table) RecordFailure(r *Replica, reason string) {
	r.mu.Lock()
	r.lastErr = reason
	r.mu.Unlock()
	r.successes.Store(0)
	strikes := r.strikes.Add(1)
	if int(strikes) >= t.opts.StrikeLimit {
		if r.state.Swap(stateEjected) != stateEjected {
			t.metrics.ejections[r.index].Inc()
		}
	}
}

// RecordForwardSuccess clears the strike streak of a routable replica
// after a successful data-path forward. Readmission of ejected replicas
// stays probe-driven: a lucky forward does not readmit.
func (t *Table) RecordForwardSuccess(r *Replica) {
	if r.state.Load() != stateEjected {
		r.strikes.Store(0)
	}
}

// recordProbeSuccess clears strikes and, for ejected replicas, advances
// the readmission streak.
func (t *Table) recordProbeSuccess(r *Replica) {
	r.strikes.Store(0)
	switch r.state.Load() {
	case stateEjected:
		if int(r.successes.Add(1)) >= t.opts.ReadmitSuccesses {
			if r.state.Swap(stateHealthy) == stateEjected {
				t.metrics.readmits[r.index].Inc()
			}
			r.successes.Store(0)
		}
	default:
		r.state.Store(stateHealthy)
		r.successes.Store(0)
	}
}

// ReplicaInfo is one /replicaz entry.
type ReplicaInfo struct {
	Index   int                 `json:"index"`
	URL     string              `json:"url"`
	State   string              `json:"state"`
	Strikes int32               `json:"strikes"`
	Queue   int                 `json:"queue_depth"`
	LastErr string              `json:"last_error,omitempty"`
	Models  []serve.ModelStatus `json:"models,omitempty"`
}

// Info snapshots the table for the /replicaz endpoint.
func (t *Table) Info() []ReplicaInfo {
	infos := make([]ReplicaInfo, 0, len(t.replicas))
	for _, r := range t.replicas {
		name := "unknown"
		switch r.state.Load() {
		case stateHealthy:
			name = "healthy"
		case stateEjected:
			name = "ejected"
		}
		r.mu.Lock()
		models := make([]serve.ModelStatus, 0, len(r.models))
		for _, m := range r.models {
			models = append(models, m)
		}
		info := ReplicaInfo{
			Index:   r.index,
			URL:     r.URL,
			State:   name,
			Strikes: r.strikes.Load(),
			Queue:   r.queue,
			LastErr: r.lastErr,
			Models:  models,
		}
		r.mu.Unlock()
		infos = append(infos, info)
	}
	return infos
}
