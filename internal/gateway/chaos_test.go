package gateway

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"cellgan/internal/serve"
)

// TestChaosKillAndReadmitUnderLoad is the gateway acceptance test, in
// the FaultyComm tradition: a seeded schedule decides which replica dies
// and when. One gateway fronts three replicas under a concurrent load
// burst; mid-burst the victim is killed. The client must see zero failed
// requests (retries route around the corpse), the victim must be ejected
// by strikes, and once revived it must be readmitted after the
// configured number of clean probes and serve traffic again.
func TestChaosKillAndReadmitUnderLoad(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			reps := startReplicas(t, 3)
			g, ts := newTestGateway(t, reps, Options{
				Table:              TableOptions{StrikeLimit: 2, ReadmitSuccesses: 2},
				HedgeBudgetPercent: 0, // isolate the retry/eject path
				RetryBackoff:       2 * time.Millisecond,
			})

			victim := rng.Intn(len(reps))
			killAfter := 50 + rng.Intn(100) // kill point, in completed requests

			const (
				clients  = 6
				requests = 300
			)
			var (
				wg        sync.WaitGroup
				completed int
				failures  int
				mu        sync.Mutex
			)
			next := make(chan int, requests)
			for i := 0; i < requests; i++ {
				next <- i
			}
			close(next)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range next {
						code, out := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, "")
						mu.Lock()
						if code != http.StatusOK || len(out.Samples) != 1 {
							failures++
						}
						completed++
						if completed == killAfter {
							reps[victim].Kill()
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()

			if failures != 0 {
				t.Fatalf("%d client-visible failures during the kill (victim %d, killAfter %d)",
					failures, victim, killAfter)
			}

			// Drive probes until the strike limit ejects the victim.
			for i := 0; i < 3; i++ {
				g.Table().ProbeAll()
			}
			if reps[victim].down.Load() && g.Table().Replicas()[victim].Routable() {
				t.Fatal("dead victim still routable after probes")
			}
			text := scrapeMetrics(t, ts.URL)
			ejectSeries := `gateway_replica_ejections_total{replica="` + strconv.Itoa(victim) + `"}`
			if got := metricValue(t, text, ejectSeries); got < 1 {
				t.Fatalf("%s = %g, want >= 1", ejectSeries, got)
			}
			if got := metricValue(t, text, "gateway_request_errors_total"); got != 0 {
				t.Fatalf("gateway_request_errors_total = %g", got)
			}
			if got := metricValue(t, text, "gateway_retries_total"); got < 1 {
				t.Fatalf("gateway_retries_total = %g, want >= 1 (the kill must have been routed around)", got)
			}

			// Traffic keeps flowing with the victim ejected.
			for i := 0; i < 20; i++ {
				if code, _ := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, ""); code != http.StatusOK {
					t.Fatalf("request with ejected replica failed: %d", code)
				}
			}

			// Revive; after ReadmitSuccesses clean probes the victim is
			// routable again and the readmission counter moves.
			reps[victim].Revive()
			g.Table().ProbeAll()
			if g.Table().Replicas()[victim].Routable() {
				t.Fatal("victim readmitted after a single clean probe, want 2")
			}
			g.Table().ProbeAll()
			if !g.Table().Replicas()[victim].Routable() {
				t.Fatal("victim not readmitted after clean probes")
			}
			text = scrapeMetrics(t, ts.URL)
			readmitSeries := `gateway_replica_readmissions_total{replica="` + strconv.Itoa(victim) + `"}`
			if got := metricValue(t, text, readmitSeries); got < 1 {
				t.Fatalf("%s = %g, want >= 1", readmitSeries, got)
			}

			// The readmitted replica serves traffic again: pin a key whose
			// primary is the victim and confirm its forward counter moves.
			ring := NewRing(len(reps), g.opts.VirtualNodes)
			key := ""
			for i := 0; ; i++ {
				k := "readmit-" + strconv.Itoa(i)
				if seq := ring.Sequence(nil, "digits#"+k); seq[0] == victim {
					key = k
					break
				}
			}
			before := metricValue(t, text, `gateway_replica_forwards_total{replica="`+strconv.Itoa(victim)+`"}`)
			if code, _ := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, key); code != http.StatusOK {
				t.Fatalf("post-readmission request failed: %d", code)
			}
			after := metricValue(t, scrapeMetrics(t, ts.URL),
				`gateway_replica_forwards_total{replica="`+strconv.Itoa(victim)+`"}`)
			if after != before+1 {
				t.Fatalf("readmitted replica got no traffic: forwards %g → %g", before, after)
			}
		})
	}
}

// TestAllReplicasDeadSurfacesError: when the whole fleet is gone the
// gateway reports 502 (after exhausting retries) rather than hanging.
func TestAllReplicasDeadSurfacesError(t *testing.T) {
	reps := startReplicas(t, 2)
	_, ts := newTestGateway(t, reps, Options{
		RetryBackoff:       time.Millisecond,
		RequestTimeout:     5 * time.Second,
		HedgeBudgetPercent: 0,
	})
	for _, r := range reps {
		r.Kill()
	}
	code, _ := postGenerate(t, ts.URL, serve.GenerateRequest{Model: "digits", N: 1}, "")
	if code != http.StatusBadGateway {
		t.Fatalf("dead fleet returned %d, want 502", code)
	}
}
