package gateway

import (
	"io"
	"strconv"
	"time"

	"cellgan/internal/telemetry"
)

// routeLatencyBuckets span 100 µs to ~100 s, matching the serving-side
// request histogram so gateway and replica latency are comparable.
var routeLatencyBuckets = telemetry.ExponentialBuckets(1e-4, 2, 21)

// Metrics is the gateway's telemetry: client-facing request counters,
// hedge/retry accounting, per-replica forward and ejection counters, and
// the route latency histogram whose tracked p99 drives the hedging
// policy.
type Metrics struct {
	reg *telemetry.Registry

	requests     *telemetry.Counter // client requests accepted for routing
	errors       *telemetry.Counter // client-visible failures (all routes exhausted)
	retries      *telemetry.Counter // extra attempts after a retryable failure
	hedges       *telemetry.Counter // speculative second requests launched
	hedgeWin     *telemetry.Counter // hedged requests where the hedge answered first
	reloads      *telemetry.Counter // successful replica artifact reloads
	reloadFails  *telemetry.Counter
	badArtifacts *telemetry.Counter // watched artifacts that failed to decode

	latency *telemetry.Histogram

	// Per-replica series, indexed like the replica table.
	forwards    []*telemetry.Counter
	forwardErrs []*telemetry.Counter
	ejections   []*telemetry.Counter
	readmits    []*telemetry.Counter
}

// NewMetrics returns a metrics set for n replicas on a private registry.
func NewMetrics(n int) *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		reg:          reg,
		requests:     reg.Counter("gateway_requests_total", "Client generate requests accepted for routing."),
		errors:       reg.Counter("gateway_request_errors_total", "Client requests that failed after all routes were exhausted."),
		retries:      reg.Counter("gateway_retries_total", "Retry attempts after retryable replica failures."),
		hedges:       reg.Counter("gateway_hedges_total", "Speculative hedge requests launched against a second replica."),
		hedgeWin:     reg.Counter("gateway_hedge_wins_total", "Hedged requests won by the hedge replica."),
		reloads:      reg.Counter("gateway_reloads_total", "Artifact hot-reloads confirmed healthy on a replica."),
		reloadFails:  reg.Counter("gateway_reload_failures_total", "Artifact hot-reload pushes that failed or never confirmed."),
		badArtifacts: reg.Counter("gateway_bad_artifacts_total", "Watched artifact reads that failed to decode (torn or corrupt file skipped)."),
		latency:      reg.Histogram("gateway_route_latency_seconds", "Client-observed latency of routed generate requests.", routeLatencyBuckets),
	}
	m.forwards = make([]*telemetry.Counter, n)
	m.forwardErrs = make([]*telemetry.Counter, n)
	m.ejections = make([]*telemetry.Counter, n)
	m.readmits = make([]*telemetry.Counter, n)
	for i := 0; i < n; i++ {
		l := `replica="` + strconv.Itoa(i) + `"`
		m.forwards[i] = reg.CounterL("gateway_replica_forwards_total", l, "Requests forwarded to each replica.")
		m.forwardErrs[i] = reg.CounterL("gateway_replica_forward_errors_total", l, "Forward attempts that failed per replica.")
		m.ejections[i] = reg.CounterL("gateway_replica_ejections_total", l, "Times each replica was ejected from routing.")
		m.readmits[i] = reg.CounterL("gateway_replica_readmissions_total", l, "Times each replica was readmitted to routing.")
	}
	return m
}

// Registry exposes the underlying telemetry registry (for GaugeFunc
// attachment and the debug server).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// ObserveRoute records one completed client request.
func (m *Metrics) ObserveRoute(d time.Duration, err bool) {
	if err {
		m.errors.Inc()
		return
	}
	m.latency.Observe(d.Seconds())
}

// LatencyQuantile returns an upper-bound estimate of the q-quantile of
// routed request latency in seconds, and the observation count it is
// based on.
func (m *Metrics) LatencyQuantile(q float64) (float64, uint64) {
	return m.latency.Quantile(q), m.latency.Count()
}

// Hedges and Requests expose the counters the hedge budget is computed
// from.
func (m *Metrics) Hedges() uint64   { return m.hedges.Value() }
func (m *Metrics) Requests() uint64 { return m.requests.Value() }

// WriteText renders the exposition (the gateway /metrics endpoint).
func (m *Metrics) WriteText(w io.Writer) { m.reg.WriteText(w) }
