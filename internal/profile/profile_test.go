package profile

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	p := New()
	p.Add(RoutineTrain, 2*time.Second)
	p.Add(RoutineTrain, 3*time.Second)
	s := p.Get(RoutineTrain)
	if s.Count != 2 || s.Total != 5*time.Second {
		t.Fatalf("stat %+v", s)
	}
	if s.Mean() != 2500*time.Millisecond {
		t.Fatalf("mean %v", s.Mean())
	}
	if got := p.Get("missing"); got.Count != 0 || got.Total != 0 {
		t.Fatalf("missing stat %+v", got)
	}
	if (Stat{}).Mean() != 0 {
		t.Fatal("zero stat mean")
	}
}

func TestStartStopFakeClock(t *testing.T) {
	p := New()
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }
	stop := p.Start(RoutineMutate)
	now = now.Add(42 * time.Millisecond)
	stop()
	s := p.Get(RoutineMutate)
	if s.Count != 1 || s.Total != 42*time.Millisecond {
		t.Fatalf("stat %+v", s)
	}
}

func TestTimeWrapper(t *testing.T) {
	p := New()
	ran := false
	p.Time(RoutineGather, func() { ran = true })
	if !ran {
		t.Fatal("fn not invoked")
	}
	if p.Get(RoutineGather).Count != 1 {
		t.Fatal("not recorded")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	p := New()
	p.Add("a", time.Second)
	snap := p.Snapshot()
	snap["a"] = Stat{Count: 99, Total: 99}
	if p.Get("a").Count != 1 {
		t.Fatal("snapshot aliased internal state")
	}
}

func TestMerge(t *testing.T) {
	p := New()
	p.Add("a", time.Second)
	p.Merge(map[string]Stat{
		"a": {Count: 2, Total: 3 * time.Second},
		"b": {Count: 1, Total: time.Second},
	})
	if s := p.Get("a"); s.Count != 3 || s.Total != 4*time.Second {
		t.Fatalf("merged a: %+v", s)
	}
	if s := p.Get("b"); s.Count != 1 {
		t.Fatalf("merged b: %+v", s)
	}
	if p.Overall() != 5*time.Second {
		t.Fatalf("overall %v", p.Overall())
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Add("a", time.Second)
	p.Reset()
	if p.Overall() != 0 || len(p.Snapshot()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestEncodeDecodeSnapshot(t *testing.T) {
	snap := map[string]Stat{
		RoutineTrain:  {Count: 10, Total: 123456789},
		RoutineGather: {Count: 3, Total: 42},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d entries", len(got))
	}
	for k, v := range snap {
		if got[k] != v {
			t.Fatalf("entry %q: %+v want %+v", k, got[k], v)
		}
	}
	empty, err := DecodeSnapshot(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty decode: %v %v", empty, err)
	}
	if _, err := DecodeSnapshot([]byte("bad line\n")); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
	if _, err := DecodeSnapshot([]byte("a\x00x\x001\n")); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestConcurrentAdds(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Add(RoutineTrain, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := p.Get(RoutineTrain); s.Count != 8000 {
		t.Fatalf("count %d", s.Count)
	}
}

func TestReportFormat(t *testing.T) {
	p := New()
	p.Add(RoutineTrain, 10*time.Second)
	p.Add(RoutineMutate, time.Second)
	rep := p.Report()
	lines := strings.Split(strings.TrimRight(rep, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("report lines %d:\n%s", len(lines), rep)
	}
	if !strings.Contains(lines[0], "routine") {
		t.Fatal("missing header")
	}
	// Sorted by descending total: train first.
	if !strings.Contains(lines[1], RoutineTrain) {
		t.Fatalf("wrong order:\n%s", rep)
	}
}
