// Package profile provides the routine-level timing instrumentation behind
// the paper's Table IV: per-routine accumulated wall-clock time for the
// four dominant GAN-training routines (train, update genomes, mutate,
// gather), collected concurrently across cells and mergeable across
// processes.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Routine names matching the paper's profile rows.
const (
	RoutineTrain         = "train"
	RoutineUpdateGenomes = "update genomes"
	RoutineMutate        = "mutate"
	RoutineGather        = "gather"
)

// Stat is the accumulated timing of one routine.
type Stat struct {
	// Count is the number of recorded invocations.
	Count int64
	// Total is the accumulated wall-clock time.
	Total time.Duration
}

// Mean returns the average duration per invocation (0 when unused).
func (s Stat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Profiler accumulates per-routine timings. The zero value is unusable;
// call New. All methods are safe for concurrent use.
type Profiler struct {
	mu    sync.Mutex
	stats map[string]*Stat
	// now allows tests to substitute a fake clock.
	now func() time.Time
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{stats: make(map[string]*Stat), now: time.Now}
}

// Add records a completed invocation of routine with duration d.
func (p *Profiler) Add(routine string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats[routine]
	if s == nil {
		s = &Stat{}
		p.stats[routine] = s
	}
	s.Count++
	s.Total += d
}

// Start begins timing routine and returns a stop function that records the
// elapsed time. Typical use: defer p.Start(profile.RoutineTrain)().
func (p *Profiler) Start(routine string) func() {
	t0 := p.now()
	return func() {
		p.Add(routine, p.now().Sub(t0))
	}
}

// Time runs fn under the timer for routine.
func (p *Profiler) Time(routine string, fn func()) {
	defer p.Start(routine)()
	fn()
}

// Get returns the stat for routine (zero Stat when never recorded).
func (p *Profiler) Get(routine string) Stat {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.stats[routine]; s != nil {
		return *s
	}
	return Stat{}
}

// Snapshot returns a copy of all routine stats.
func (p *Profiler) Snapshot() map[string]Stat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]Stat, len(p.stats))
	for k, v := range p.stats {
		out[k] = *v
	}
	return out
}

// Merge folds a snapshot (e.g. gathered from another process) into p.
func (p *Profiler) Merge(snap map[string]Stat) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range snap {
		s := p.stats[k]
		if s == nil {
			s = &Stat{}
			p.stats[k] = s
		}
		s.Count += v.Count
		s.Total += v.Total
	}
}

// Reset clears all accumulated stats.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = make(map[string]*Stat)
}

// Overall returns the sum of Total across all routines.
func (p *Profiler) Overall() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total time.Duration
	for _, s := range p.stats {
		total += s.Total
	}
	return total
}

// EncodeSnapshot serialises a snapshot for transport between processes.
func EncodeSnapshot(snap map[string]Stat) []byte {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		s := snap[k]
		fmt.Fprintf(&b, "%s\x00%d\x00%d\n", k, s.Count, int64(s.Total))
	}
	return []byte(b.String())
}

// DecodeSnapshot reverses EncodeSnapshot.
func DecodeSnapshot(data []byte) (map[string]Stat, error) {
	out := make(map[string]Stat)
	if len(data) == 0 {
		return out, nil
	}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		parts := strings.Split(line, "\x00")
		if len(parts) != 3 {
			return nil, fmt.Errorf("profile: malformed snapshot line %q", line)
		}
		var count, total int64
		if _, err := fmt.Sscanf(parts[1], "%d", &count); err != nil {
			return nil, fmt.Errorf("profile: bad count in %q: %w", line, err)
		}
		if _, err := fmt.Sscanf(parts[2], "%d", &total); err != nil {
			return nil, fmt.Errorf("profile: bad total in %q: %w", line, err)
		}
		out[parts[0]] = Stat{Count: count, Total: time.Duration(total)}
	}
	return out, nil
}

// Report renders the profiler state as aligned text rows sorted by
// descending total time.
func (p *Profiler) Report() string {
	snap := p.Snapshot()
	type row struct {
		name string
		s    Stat
	}
	rows := make([]row, 0, len(snap))
	for k, v := range snap {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s.Total > rows[j].s.Total })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %14s %14s\n", "routine", "calls", "total", "mean")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %10d %14s %14s\n", r.name, r.s.Count, r.s.Total, r.s.Mean())
	}
	return b.String()
}
