package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// MixtureArtifact is a generator-only export of a trained mixture — the
// deployable end-product of a run. Unlike a full Checkpoint it carries no
// optimizer moments, RNG streams or discriminators: just the run
// configuration (to rebuild the generator architecture), the mixture
// composition and each member's parameters. It is the input format of the
// serving model registry (internal/serve) and small enough to ship.
type MixtureArtifact struct {
	// Cfg is the training configuration; serving needs the generator
	// topology and latent dimension from it.
	Cfg config.Config
	// Ranks lists the mixture members in ascending rank order.
	Ranks []int
	// Weights are the mixture coefficients, aligned with Ranks.
	Weights []float64
	// GenParams holds each member generator's encoded parameters,
	// aligned with Ranks.
	GenParams [][]byte
}

const (
	mixtureMagic = uint64(0x43474d495830) // "CGMIX0"
	// mixtureVersion 2 added the whole-file checksum footer; version 1
	// files (no footer) are rejected rather than trusted unchecked.
	mixtureVersion = uint64(2)
)

// ExportMixture extracts the generator mixture of one cell from a finished
// run as a deployable artifact. Use res.BestRank for the mixture the
// method returns.
func ExportMixture(res *core.Result, rank int) (*MixtureArtifact, error) {
	if rank < 0 || rank >= len(res.Cells) {
		return nil, fmt.Errorf("checkpoint: rank %d out of range for %d cells", rank, len(res.Cells))
	}
	cr := res.Cells[rank]
	if len(cr.MixtureRanks) == 0 {
		return nil, fmt.Errorf("checkpoint: cell %d has an empty mixture", rank)
	}
	if len(cr.MixtureRanks) != len(cr.MixtureWeights) {
		return nil, fmt.Errorf("checkpoint: cell %d mixture ranks/weights length mismatch %d/%d",
			rank, len(cr.MixtureRanks), len(cr.MixtureWeights))
	}
	a := &MixtureArtifact{
		Cfg:       res.Cfg,
		Ranks:     append([]int(nil), cr.MixtureRanks...),
		Weights:   append([]float64(nil), cr.MixtureWeights...),
		GenParams: make([][]byte, len(cr.MixtureRanks)),
	}
	for i, mr := range cr.MixtureRanks {
		if mr < 0 || mr >= len(res.Cells) {
			return nil, fmt.Errorf("checkpoint: mixture member %d out of range", mr)
		}
		a.GenParams[i] = append([]byte(nil), res.Cells[mr].State.GenParams...)
	}
	return a, nil
}

// validate reports the first structural error in the artifact.
func (a *MixtureArtifact) validate() error {
	if err := a.Cfg.Validate(); err != nil {
		return err
	}
	if len(a.Ranks) == 0 {
		return fmt.Errorf("checkpoint: mixture artifact has no members")
	}
	if len(a.Weights) != len(a.Ranks) || len(a.GenParams) != len(a.Ranks) {
		return fmt.Errorf("checkpoint: mixture artifact sections misaligned: %d ranks, %d weights, %d param blobs",
			len(a.Ranks), len(a.Weights), len(a.GenParams))
	}
	for _, w := range a.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("checkpoint: mixture weight %g is not a probability", w)
		}
	}
	return nil
}

// Mixture reconstructs the sampleable generator mixture: one generator
// network per member, rebuilt from Cfg and overwritten with the stored
// parameters.
func (a *MixtureArtifact) Mixture() (*core.Mixture, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	gens := make(map[int]*nn.Network, len(a.Ranks))
	for i, r := range a.Ranks {
		// Seed is irrelevant: parameters are overwritten by the decode.
		net := core.BuildGenerator(a.Cfg, tensor.NewRNG(0))
		if err := net.DecodeParams(a.GenParams[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: decoding generator of rank %d: %w", r, err)
		}
		gens[r] = net
	}
	m, err := core.NewMixture(gens)
	if err != nil {
		return nil, err
	}
	copy(m.Weights, a.Weights)
	return m, nil
}

// LatentDim returns the generator latent dimension serving callers must
// sample from.
func (a *MixtureArtifact) LatentDim() int { return a.Cfg.InputNeurons }

// HashMixture returns the hex sha256 of the artifact's serialised form.
// The wire format is deterministic, so the hash of an artifact loaded
// from a file equals the hash of the raw file bytes (HashMixtureBytes) —
// serving replicas and the deploying gateway can compare model identity
// across processes by this string alone.
func HashMixture(a *MixtureArtifact) (string, error) {
	h := sha256.New()
	if err := WriteMixture(h, a); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashMixtureBytes hashes an already-serialised artifact (e.g. a .mix
// file's contents) to the same string HashMixture produces for the
// decoded form.
func HashMixtureBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ShardMixture slices the artifact into sub-mixture `shard` of `of`:
// member i is assigned to shard i%of, and the surviving weights are
// renormalised to sum to one. Replicas behind the serving gateway each
// load one shard, so the trained ensemble is distributed across the
// serving tier the way the cells were distributed across the training
// grid. of=1 returns a full copy.
func ShardMixture(a *MixtureArtifact, shard, of int) (*MixtureArtifact, error) {
	if of <= 0 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("checkpoint: shard %d/%d out of range", shard, of)
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	if of > len(a.Ranks) {
		return nil, fmt.Errorf("checkpoint: cannot cut %d shards from a %d-member mixture", of, len(a.Ranks))
	}
	out := &MixtureArtifact{Cfg: a.Cfg}
	total := 0.0
	for i := range a.Ranks {
		if i%of != shard {
			continue
		}
		out.Ranks = append(out.Ranks, a.Ranks[i])
		out.Weights = append(out.Weights, a.Weights[i])
		out.GenParams = append(out.GenParams, append([]byte(nil), a.GenParams[i]...))
		total += a.Weights[i]
	}
	if total > 0 {
		for i := range out.Weights {
			out.Weights[i] /= total
		}
	} else {
		// Degenerate zero-weight shard: serve the members uniformly.
		for i := range out.Weights {
			out.Weights[i] = 1 / float64(len(out.Weights))
		}
	}
	return out, nil
}

// WriteMixture serialises the artifact, ending with the whole-file
// checksum footer. The footer is part of the serialised form, so
// HashMixture (which hashes WriteMixture's output) still equals
// HashMixtureBytes of the file contents.
func WriteMixture(w io.Writer, a *MixtureArtifact) error {
	if err := a.validate(); err != nil {
		return err
	}
	return writeWithFooter(w, func(w io.Writer) error { return writeMixtureBody(w, a) })
}

func writeMixtureBody(w io.Writer, a *MixtureArtifact) error {
	bw := bufio.NewWriter(w)
	wU64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	wBlob := func(b []byte) error {
		if err := wU64(uint64(len(b))); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	if err := wU64(mixtureMagic); err != nil {
		return err
	}
	if err := wU64(mixtureVersion); err != nil {
		return err
	}
	cfgJSON, err := a.Cfg.Marshal()
	if err != nil {
		return err
	}
	if err := wBlob(cfgJSON); err != nil {
		return err
	}
	if err := wU64(uint64(len(a.Ranks))); err != nil {
		return err
	}
	for _, r := range a.Ranks {
		if err := wU64(uint64(int64(r))); err != nil {
			return err
		}
	}
	for _, wt := range a.Weights {
		if err := wU64(math.Float64bits(wt)); err != nil {
			return err
		}
	}
	for _, p := range a.GenParams {
		if err := wBlob(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMixture deserialises an artifact written by WriteMixture. The
// checksum footer is verified over the complete stream before any
// section is decoded.
func ReadMixture(r io.Reader) (*MixtureArtifact, error) {
	body, err := readVerified(r, "mixture artifact")
	if err != nil {
		return nil, err
	}
	return readMixtureBody(body)
}

func readMixtureBody(body []byte) (*MixtureArtifact, error) {
	br := bytes.NewReader(body)
	rU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	rBlob := func() ([]byte, error) { return readSection(br, rU64) }
	magic, err := rU64()
	if err != nil || magic != mixtureMagic {
		return nil, fmt.Errorf("checkpoint: not a mixture artifact stream")
	}
	version, err := rU64()
	if err != nil {
		return nil, err
	}
	if version != mixtureVersion {
		return nil, fmt.Errorf("checkpoint: unsupported mixture artifact version %d", version)
	}
	cfgJSON, err := rBlob()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: mixture config section: %w", err)
	}
	cfg, err := config.Unmarshal(cfgJSON)
	if err != nil {
		return nil, err
	}
	// Validate before NumCells is trusted: a hostile config could
	// otherwise declare an enormous grid and drive the allocations below.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nMembers, err := rU64()
	if err != nil {
		return nil, err
	}
	if nMembers == 0 || nMembers > uint64(cfg.NumCells()) {
		return nil, fmt.Errorf("checkpoint: implausible mixture size %d for a %d-cell grid",
			nMembers, cfg.NumCells())
	}
	a := &MixtureArtifact{
		Cfg:       cfg,
		Ranks:     make([]int, nMembers),
		Weights:   make([]float64, nMembers),
		GenParams: make([][]byte, nMembers),
	}
	for i := range a.Ranks {
		v, err := rU64()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: mixture ranks: %w", err)
		}
		a.Ranks[i] = int(int64(v))
	}
	for i := range a.Weights {
		v, err := rU64()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: mixture weights: %w", err)
		}
		a.Weights[i] = math.Float64frombits(v)
	}
	for i := range a.GenParams {
		if a.GenParams[i], err = rBlob(); err != nil {
			return nil, fmt.Errorf("checkpoint: mixture member %d params: %w", i, err)
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after last mixture member", br.Len())
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// SaveMixtureFile writes the artifact crash-consistently: temp file,
// fsync, rename, parent-directory fsync (atomic.go).
func SaveMixtureFile(path string, a *MixtureArtifact) error {
	return atomicWriteFile(OS{}, path, func(f File) error { return WriteMixture(f, a) })
}

// LoadMixtureFile reads a mixture artifact from disk.
func LoadMixtureFile(path string) (*MixtureArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return ReadMixture(f)
}
