package checkpoint

import "fmt"

// atomicWriteFile writes a file crash-consistently: the payload goes to
// path+".tmp", is fsynced, and only then renamed over path, followed by
// an fsync of the parent directory. Every step that can leave a torn or
// rolled-back file on a power cut is made durable before the next step
// depends on it:
//
//	create tmp → write → File.Sync → close → rename(tmp, path) → SyncDir
//
// On any error the temp file is removed (best effort) and the previous
// contents of path are untouched — a reader never observes a partial
// file at path through this writer. The write callback receives the
// open temp file; returned bytes counts what the callback wrote.
func atomicWriteFile(fs FS, path string, write func(f File) error) (err error) {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fs.SyncDir(dirOf(path)); err != nil {
		return fmt.Errorf("checkpoint: sync dir of %s: %w", path, err)
	}
	return nil
}
