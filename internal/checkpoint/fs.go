package checkpoint

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem surface the checkpoint writer needs. It
// exists so the disk can be replaced the way the network already can:
// OS{} is the real disk, FaultFS (faultfs.go) is the seeded chaos
// middleware that injects short writes, failed syncs, ENOSPC and
// crash-points between the write/sync/rename steps. Everything that
// matters for crash consistency — data sync, directory sync, atomic
// rename — is an explicit method, so a fault plan can fail each step
// independently.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the names (not paths) of the entries in dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making a preceding rename
	// durable. Without it a crash can roll the directory entry back to
	// the old file even though the rename "succeeded".
	SyncDir(dir string) error
}

// File is a writable file handle with explicit durability.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle; it does not imply Sync.
	Close() error
}

// OS is the real filesystem.
type OS struct{}

func (OS) Create(path string) (File, error) { return os.Create(path) }

func (OS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is unsupported on some filesystems; surface real
	// errors but tolerate EINVAL-style refusals the way databases do.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// dirOf returns the directory containing path, for SyncDir.
func dirOf(path string) string { return filepath.Dir(path) }
