package checkpoint

import (
	"strings"
	"testing"

	"cellgan/internal/telemetry"
)

// TestCheckpointMetricsZeroAlloc pins the observation hot paths at zero
// allocations, so periodic checkpointing can be instrumented from inside
// the training loop without moving the compute-core alloc tripwires.
func TestCheckpointMetricsZeroAlloc(t *testing.T) {
	m := NewMetrics(telemetry.NewRegistry())
	cases := []struct {
		name string
		f    func()
	}{
		{"ObserveWrite", func() { m.ObserveWrite(1 << 20) }},
		{"ObserveWriteError", m.ObserveWriteError},
		{"ObserveResume", m.ObserveResume},
	}
	for _, tc := range cases {
		tc.f()
		if allocs := testing.AllocsPerRun(100, tc.f); allocs != 0 {
			t.Errorf("%s: %.0f allocs per run, want 0", tc.name, allocs)
		}
	}
}

// TestCheckpointMetricsNilSafe: a nil *Metrics observes nothing, so
// un-instrumented callers (tests, tools) can pass nil everywhere.
func TestCheckpointMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.ObserveWrite(1)
	m.ObserveWriteError()
	m.ObserveResume()
}

// TestCheckpointMetricsExposition: the registered series appear in the
// text exposition with the expected names, and the freshness gauge reads
// -1 before any write and a small non-negative age after one.
func TestCheckpointMetricsExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, series := range []string{
		"checkpoint_writes_total", "checkpoint_write_errors_total",
		"recovery_resumes_total", "checkpoint_bytes",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if !strings.Contains(text, "checkpoint_last_age_seconds -1") {
		t.Errorf("freshness gauge before first write should read -1:\n%s", text)
	}

	m.ObserveWrite(123)
	sb.Reset()
	reg.WriteText(&sb)
	text = sb.String()
	if !strings.Contains(text, "checkpoint_bytes 123") {
		t.Errorf("checkpoint_bytes not updated:\n%s", text)
	}
	if strings.Contains(text, "checkpoint_last_age_seconds -1") {
		t.Errorf("freshness gauge still -1 after a write:\n%s", text)
	}
}
