package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"cellgan/internal/core"
)

// buildCheckpoint runs a short sequential job and captures it.
func buildCheckpoint(t *testing.T, iters int) *Checkpoint {
	t.Helper()
	res, err := core.RunSequential(tinyCfg(iters), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// digestDir fingerprints the durable state of a directory: sorted file
// names with a hash of each file's content.
func digestDir(t *testing.T, fs FS, dir string) string {
	t.Helper()
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		f, err := fs.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s\n", name)
		if _, err := io.Copy(h, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestFaultFSDeterministic: the same (seed, plan) over the same operation
// sequence injects exactly the same faults — the durable bytes on disk
// and the error sequence reproduce bit-for-bit, which is what makes a
// disk-chaos scenario debuggable.
func TestFaultFSDeterministic(t *testing.T) {
	cp := buildCheckpoint(t, 1)
	run := func(seed uint64) (string, string) {
		dir := t.TempDir()
		stats := &FSFaultStats{}
		ffs := NewFaultFS(OS{}, FSFaultPlan{
			Seed:           seed,
			WriteErrProb:   0.002,
			ShortWriteProb: 0.002,
			SyncErrProb:    0.01,
			Stats:          stats,
		})
		saver, err := NewSaver(ffs, filepath.Join(dir, "run.ckpt"), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		var errLog bytes.Buffer
		for i := 0; i < 5; i++ {
			gen, err := saver.Save(cp)
			fmt.Fprintf(&errLog, "save %d: gen %d err %v\n", i, gen, err)
		}
		fmt.Fprintf(&errLog, "faults: w=%d s=%d y=%d c=%d\n",
			stats.WriteErrors.Load(), stats.ShortWrites.Load(),
			stats.SyncErrors.Load(), stats.Crashes.Load())
		return digestDir(t, OS{}, dir), errLog.String()
	}
	d1, e1 := run(7)
	d2, e2 := run(7)
	if e1 != e2 {
		t.Fatalf("same seed produced different fault sequences:\n%s\nvs\n%s", e1, e2)
	}
	if d1 != d2 {
		t.Fatalf("same seed produced different durable bytes: %s vs %s", d1, d2)
	}
}

// countingFS counts mutating operations, to find the crash-sweep bounds.
type countingFS struct {
	inner FS
	ops   int
}

func (c *countingFS) Create(path string) (File, error) {
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	c.ops++
	return countingFile{c, f}, nil
}
func (c *countingFS) Open(path string) (io.ReadCloser, error) { return c.inner.Open(path) }
func (c *countingFS) ReadDir(dir string) ([]string, error)    { return c.inner.ReadDir(dir) }
func (c *countingFS) Rename(o, n string) error                { c.ops++; return c.inner.Rename(o, n) }
func (c *countingFS) Remove(path string) error                { c.ops++; return c.inner.Remove(path) }
func (c *countingFS) SyncDir(dir string) error                { c.ops++; return c.inner.SyncDir(dir) }

type countingFile struct {
	fs    *countingFS
	inner File
}

func (f countingFile) Write(p []byte) (int, error) { f.fs.ops++; return f.inner.Write(p) }
func (f countingFile) Sync() error                 { f.fs.ops++; return f.inner.Sync() }
func (f countingFile) Close() error                { return f.inner.Close() }

// TestCrashPointSweepNeverSurfacesGarbage: with a valid generation on
// disk, a crash injected at every step of a subsequent save — create,
// each write, sync, rename, directory sync — must leave the store
// loadable: LoadLatest returns either the old generation or the new one,
// never an error and never torn state. If the save reported success, the
// new generation must be what loads (no silent rollback).
func TestCrashPointSweepNeverSurfacesGarbage(t *testing.T) {
	cp := buildCheckpoint(t, 1)
	cpOld := cloneAtIteration(t, cp, 1)
	cpNew := cloneAtIteration(t, cp, 2)

	// Count the ops of one clean save to place the sweep points.
	probeDir := t.TempDir()
	cfs := &countingFS{inner: OS{}}
	saver, err := NewSaver(cfs, filepath.Join(probeDir, "run.ckpt"), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := saver.Save(cpNew); err != nil {
		t.Fatal(err)
	}
	totalOps := cfs.ops
	if totalOps < 5 {
		t.Fatalf("clean save took %d ops; the protocol has at least 5 steps", totalOps)
	}

	// Sweep every protocol-step boundary (the first and last few ops) and
	// stride through the bulk writes in between.
	var crashPoints []int
	for k := 1; k <= 6 && k <= totalOps; k++ {
		crashPoints = append(crashPoints, k)
	}
	for k := 7; k <= totalOps-6; k += 37 {
		crashPoints = append(crashPoints, k)
	}
	for k := totalOps - 5; k <= totalOps+1; k++ {
		if k > 6 {
			crashPoints = append(crashPoints, k)
		}
	}

	for _, k := range crashPoints {
		dir := t.TempDir()
		base := filepath.Join(dir, "run.ckpt")
		// A valid generation is already durable before the faulty save.
		pre, err := NewSaver(OS{}, base, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pre.Save(cpOld); err != nil {
			t.Fatal(err)
		}

		stats := &FSFaultStats{}
		ffs := NewFaultFS(OS{}, FSFaultPlan{Seed: uint64(k), CrashAfterOps: k, Stats: stats})
		s, err := NewSaver(ffs, base, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, saveErr := s.Save(cpNew)

		// The durable state is what OS{} holds now (FaultFS buffers
		// unsynced bytes away). It must load, whatever happened.
		got, gen, loadErr := LoadLatest(OS{}, base)
		if loadErr != nil {
			t.Fatalf("crash after %d/%d ops: LoadLatest failed: %v (save err: %v)", k, totalOps, loadErr, saveErr)
		}
		iter := got.Iteration()
		if iter != 1 && iter != 2 {
			t.Fatalf("crash after %d ops: loaded iteration %d, want 1 or 2", k, iter)
		}
		if saveErr == nil && iter != 2 {
			t.Fatalf("crash after %d ops: save reported success but generation %d (iteration %d) loads", k, gen, iter)
		}
	}
}

// snapRecorder collects periodic snapshots from a CheckpointSink.
type snapRecorder struct {
	mu     sync.Mutex
	iters  []int
	states [][]*core.FullState
}

func (r *snapRecorder) sink(iter int, states []*core.FullState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.iters = append(r.iters, iter)
	r.states = append(r.states, states)
	return nil
}

// assertSameFull fails unless the two full-state sets are bit-identical.
func assertSameFull(t *testing.T, label string, got, want []*core.FullState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d states, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Marshal(), want[i].Marshal()) {
			t.Fatalf("%s: state %d differs", label, i)
		}
	}
}

// testPeriodicResumeBitExact is the lockstep-mode acceptance check: a
// run with periodic capture is bit-identical to one without, its
// mid-run snapshot resumes to a bit-identical final state, and the final
// snapshot equals the final state exactly.
func testPeriodicResumeBitExact(t *testing.T, mode string) {
	run := func(opts core.RunOptions) *core.Result {
		res, err := core.Run(mode, tinyCfg(4), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	golden := run(core.RunOptions{})
	rec := &snapRecorder{}
	periodic := run(core.RunOptions{CheckpointEvery: 2, CheckpointSink: rec.sink})

	// Capture must not perturb training.
	assertSameFull(t, "periodic vs plain final state", periodic.Full, golden.Full)
	if len(rec.iters) != 2 || rec.iters[0] != 2 || rec.iters[1] != 4 {
		t.Fatalf("snapshot iterations %v, want [2 4]", rec.iters)
	}
	for _, states := range rec.states {
		for i, s := range states {
			if s == nil || s.Cell.Rank != i {
				t.Fatalf("snapshot has bad state at %d", i)
			}
		}
	}
	// The final snapshot IS the final state.
	assertSameFull(t, "final snapshot vs final state", rec.states[1], golden.Full)

	// The mid-run snapshot resumes bit-exactly to the uninterrupted end.
	cp, err := New(tinyCfg(4), rec.states[0])
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iteration() != 2 {
		t.Fatalf("mid-run snapshot at iteration %d, want 2", cp.Iteration())
	}
	resumed, err := Resume(cp, mode, 4, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameFull(t, "resumed vs uninterrupted", resumed.Full, golden.Full)
}

func TestSeqPeriodicResumeBitExact(t *testing.T) { testPeriodicResumeBitExact(t, "seq") }

func TestParPeriodicResumeBitExact(t *testing.T) { testPeriodicResumeBitExact(t, "par") }

// TestAsyncPeriodicSnapshotsMonotonicAndResumable: the asynchronous mode
// has no shared boundary, so the guarantees are weaker but still firm:
// snapshots are complete, per-cell iterations never move backwards
// across successive snapshots, each snapshot's key is the minimum
// iteration present, and the newest snapshot resumes in async mode to a
// completed run.
func TestAsyncPeriodicSnapshotsMonotonicAndResumable(t *testing.T) {
	cfg := tinyCfg(6)
	rec := &snapRecorder{}
	if _, err := core.Run("async", cfg, core.RunOptions{CheckpointEvery: 2, CheckpointSink: rec.sink}); err != nil {
		t.Fatal(err)
	}
	if len(rec.iters) == 0 {
		t.Fatal("async run emitted no snapshots")
	}
	n := cfg.NumCells()
	prev := make([]int, n)
	for si, states := range rec.states {
		if len(states) != n {
			t.Fatalf("snapshot %d has %d states, want %d", si, len(states), n)
		}
		min := -1
		for i, s := range states {
			if s == nil || s.Cell.Rank != i {
				t.Fatalf("snapshot %d: bad state at %d", si, i)
			}
			if s.Cell.Iteration < prev[i] {
				t.Fatalf("snapshot %d: cell %d went backwards %d -> %d", si, i, prev[i], s.Cell.Iteration)
			}
			prev[i] = s.Cell.Iteration
			if min < 0 || s.Cell.Iteration < min {
				min = s.Cell.Iteration
			}
		}
		if rec.iters[si] != min {
			t.Fatalf("snapshot %d keyed %d, min iteration is %d", si, rec.iters[si], min)
		}
		if si > 0 && rec.iters[si] <= rec.iters[si-1] {
			t.Fatalf("snapshot keys not increasing: %v", rec.iters)
		}
	}

	last := rec.states[len(rec.states)-1]
	cp, err := New(cfg, last)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cp, "async", 8, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range resumed.Full {
		if f.Cell.Iteration != 8 {
			t.Fatalf("resumed async cell %d at iteration %d, want 8", i, f.Cell.Iteration)
		}
	}
}
