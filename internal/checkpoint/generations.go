package checkpoint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Generation scheme: periodic checkpoints of one run are written as
// base+".1", base+".2", ... — each file complete and crash-consistent on
// its own, never overwritten in place. The Saver keeps the last K
// generations; LoadLatest walks them newest-first and falls back past
// any torn or corrupt file, so a crash mid-write (which can only damage
// the newest generation) costs at most one cadence of progress.

// generationPath returns the path of generation gen (gen >= 1).
func generationPath(base string, gen int) string {
	return base + "." + strconv.Itoa(gen)
}

// ListGenerations returns the generation numbers present for base, in
// ascending order. Files that merely share the prefix (base.tmp,
// base.3.tmp) are ignored.
func ListGenerations(fs FS, base string) ([]int, error) {
	dir := dirOf(base)
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing generations: %w", err)
	}
	prefix := filepath.Base(base) + "."
	var gens []int
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		n, err := strconv.Atoi(name[len(prefix):])
		if err != nil || n < 1 {
			continue
		}
		gens = append(gens, n)
	}
	sort.Ints(gens)
	return gens, nil
}

// DefaultKeepGenerations is how many generations a Saver retains when
// the caller does not say otherwise.
const DefaultKeepGenerations = 3

// Saver writes successive checkpoint generations for one run and prunes
// old ones. Safe for use from one goroutine at a time per method; the
// mutex makes concurrent Save calls (e.g. a final save racing a periodic
// one) serialise rather than corrupt the numbering.
type Saver struct {
	fs      FS
	base    string
	keep    int
	metrics *Metrics

	mu      sync.Mutex
	lastGen int
}

// NewSaver creates a Saver writing generations of base. keep <= 0 uses
// DefaultKeepGenerations. Existing generations on disk (a restart after
// a crash) are continued, not overwritten.
func NewSaver(fs FS, base string, keep int, m *Metrics) (*Saver, error) {
	if keep <= 0 {
		keep = DefaultKeepGenerations
	}
	s := &Saver{fs: fs, base: base, keep: keep, metrics: m}
	gens, err := ListGenerations(fs, base)
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		s.lastGen = gens[len(gens)-1]
	}
	return s, nil
}

// Save writes cp as the next generation and prunes generations older
// than the keep window, returning the generation number written. A
// failed write counts in the metrics and leaves the previous generations
// untouched — callers may treat the error as non-fatal and try again at
// the next cadence.
func (s *Saver) Save(cp *Checkpoint) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.lastGen + 1
	var written int64
	err := atomicWriteFile(s.fs, generationPath(s.base, gen), func(f File) error {
		cw := &countingWriter{w: f}
		if err := Write(cw, cp); err != nil {
			return err
		}
		written = cw.n
		return nil
	})
	if err != nil {
		s.metrics.ObserveWriteError()
		return 0, err
	}
	s.metrics.ObserveWrite(written)
	s.lastGen = gen
	for g := gen - s.keep; g >= 1; g-- {
		// Best effort: a missing or busy old generation is not an error,
		// and once one removal target is absent the older ones were
		// pruned by a previous pass.
		if s.fs.Remove(generationPath(s.base, g)) != nil {
			break
		}
	}
	return gen, nil
}

// countingWriter counts bytes for the checkpoint_bytes gauge.
type countingWriter struct {
	w File
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// LoadLatest loads the most advanced valid checkpoint for base: every
// generation plus base itself (the final-checkpoint path) is considered,
// and the loadable candidate with the highest iteration wins — ties go
// to the newest generation. Torn or corrupt files are skipped with their
// errors collected; only if nothing loads does it fail. Returns the
// checkpoint and the generation it came from (0 = base itself).
//
// Picking by iteration rather than generation number matters after a
// completed run: the final checkpoint lands at base, ahead of every
// surviving generation, and a resume to a higher target must start from
// it, not from the last periodic snapshot.
func LoadLatest(fs FS, base string) (*Checkpoint, int, error) {
	gens, err := ListGenerations(fs, base)
	if err != nil {
		return nil, 0, err
	}
	var (
		best    *Checkpoint
		bestGen int
		errs    []string
	)
	consider := func(path string, gen int) {
		cp, err := LoadFileFS(fs, path)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", path, err))
			return
		}
		// Strict >: candidates are visited newest-generation-first, so on
		// equal iterations the newer generation is kept.
		if best == nil || cp.Iteration() > best.Iteration() {
			best, bestGen = cp, gen
		}
	}
	for i := len(gens) - 1; i >= 0; i-- {
		consider(generationPath(base, gens[i]), gens[i])
	}
	consider(base, 0)
	if best == nil {
		return nil, 0, fmt.Errorf("checkpoint: no valid checkpoint for %s: %s", base, strings.Join(errs, "; "))
	}
	return best, bestGen, nil
}
