package checkpoint

import (
	"sync/atomic"
	"time"

	"cellgan/internal/telemetry"
)

// Metrics instruments the durable-state subsystem. Observations are
// plain atomic operations — zero allocations each (tripwire-tested) —
// so checkpointing can be instrumented inside the training loop. The
// freshness gauge (checkpoint_last_age_seconds) is computed at scrape
// time from an atomic timestamp, which is what an operator alerts on:
// "the newest durable checkpoint is older than N cadences".
//
// A nil *Metrics is valid and observes nothing, matching the rest of
// the telemetry layer.
type Metrics struct {
	writes      *telemetry.Counter
	writeErrors *telemetry.Counter
	resumes     *telemetry.Counter
	bytes       *telemetry.Gauge

	// lastWriteUnixNano is 0 until the first successful write.
	lastWriteUnixNano atomic.Int64
}

// NewMetrics registers the checkpoint instruments on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		writes:      reg.Counter("checkpoint_writes_total", "Checkpoint generations written successfully."),
		writeErrors: reg.Counter("checkpoint_write_errors_total", "Checkpoint writes that failed (torn, ENOSPC, sync error)."),
		resumes:     reg.Counter("recovery_resumes_total", "Whole-job resumes from a checkpoint."),
		bytes:       reg.Gauge("checkpoint_bytes", "Size of the last checkpoint written."),
	}
	reg.GaugeFunc("checkpoint_last_age_seconds", "Seconds since the last successful checkpoint write (-1 before the first).",
		func() float64 {
			ns := m.lastWriteUnixNano.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	return m
}

// ObserveWrite records one successful checkpoint write of n bytes.
func (m *Metrics) ObserveWrite(n int64) {
	if m == nil {
		return
	}
	m.writes.Inc()
	m.bytes.Set(float64(n))
	m.lastWriteUnixNano.Store(time.Now().UnixNano())
}

// ObserveWriteError records one failed checkpoint write.
func (m *Metrics) ObserveWriteError() {
	if m == nil {
		return
	}
	m.writeErrors.Inc()
}

// ObserveResume records one whole-job resume from a checkpoint.
func (m *Metrics) ObserveResume() {
	if m == nil {
		return
	}
	m.resumes.Inc()
}
