package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Whole-file checksum footer. Every checkpoint and mixture artifact ends
// with 40 bytes: a footer magic followed by the sha256 of everything
// before it. The footer is verified before a single byte of the body is
// decoded, so a torn write, a bit flip, or a truncated copy fails fast
// with a clean error instead of feeding garbage to the decoders. A file
// missing its footer (short by even one byte) fails the same way — that
// is what makes the generation loader's fallback sound.
const (
	footerMagic = uint64(0x434753554d5631) // "CGSUMV1"
	footerLen   = 8 + sha256.Size
)

// writeWithFooter streams body through a sha256 tee into w, then appends
// the checksum footer. The body callback must write the complete payload
// (including flushing any buffering it adds) before returning.
func writeWithFooter(w io.Writer, body func(io.Writer) error) error {
	h := sha256.New()
	if err := body(io.MultiWriter(w, h)); err != nil {
		return err
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[:8], footerMagic)
	h.Sum(foot[8:8])
	if _, err := w.Write(foot[:]); err != nil {
		return err
	}
	return nil
}

// readVerified consumes r entirely, verifies the checksum footer, and
// returns the body bytes (footer stripped). Any mismatch — missing
// footer, wrong magic, checksum failure — is an error; callers never see
// unverified bytes.
func readVerified(r io.Reader, kind string) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", kind, err)
	}
	return verifyFooter(data, kind)
}

// verifyFooter checks data's checksum footer and returns the body.
func verifyFooter(data []byte, kind string) ([]byte, error) {
	if len(data) < footerLen {
		return nil, fmt.Errorf("checkpoint: %s truncated before checksum footer (%d bytes): %w",
			kind, len(data), io.ErrUnexpectedEOF)
	}
	body, foot := data[:len(data)-footerLen], data[len(data)-footerLen:]
	if binary.LittleEndian.Uint64(foot[:8]) != footerMagic {
		return nil, fmt.Errorf("checkpoint: %s has no checksum footer (torn or pre-v2 file)", kind)
	}
	sum := sha256.Sum256(body)
	var want [sha256.Size]byte
	copy(want[:], foot[8:])
	if sum != want {
		return nil, fmt.Errorf("checkpoint: %s checksum mismatch (torn or corrupt file)", kind)
	}
	return body, nil
}
