package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellgan/internal/core"
)

// truncationPrefixes picks the prefix lengths to test for a stream of n
// bytes: every length near the ends (where the header and the footer
// live) and an even stride through the middle, so the matrix stays
// O(hundreds) of decode attempts regardless of stream size.
func truncationPrefixes(n int) []int {
	edge := 256
	if n <= 2*edge {
		out := make([]int, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	var out []int
	for i := 0; i < edge; i++ {
		out = append(out, i)
	}
	stride := (n - 2*edge) / 256
	if stride < 1 {
		stride = 1
	}
	for i := edge; i < n-edge; i += stride {
		out = append(out, i)
	}
	for i := n - edge; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// TestTruncationMatrixCheckpoint: every strict prefix of a checkpoint
// stream must fail with a clean error — the footer is verified over the
// whole file before any section is decoded, so no truncation point can
// surface partial state.
func TestTruncationMatrixCheckpoint(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	t.Logf("checkpoint stream: %d bytes, %d prefixes tested", len(full), len(truncationPrefixes(len(full))))
	for _, n := range truncationPrefixes(len(full)) {
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(full))
		}
	}
	if _, err := Read(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream failed to decode: %v", err)
	}
}

// TestTruncationMatrixMixture is the same matrix for the serving-side
// mixture artifact.
func TestTruncationMatrixMixture(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportMixture(res, res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range truncationPrefixes(len(full)) {
		if _, err := ReadMixture(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("mixture prefix of %d/%d bytes decoded without error", n, len(full))
		}
	}
	if _, err := ReadMixture(bytes.NewReader(full)); err != nil {
		t.Fatalf("full mixture stream failed to decode: %v", err)
	}
}

// cloneAtIteration deep-copies cp with every cell's iteration forced to
// iter, giving the generation tests distinguishable checkpoints without
// running real training between saves.
func cloneAtIteration(t *testing.T, cp *Checkpoint, iter int) *Checkpoint {
	t.Helper()
	states := make([]*core.FullState, len(cp.States))
	for i, s := range cp.States {
		f, err := core.UnmarshalFullState(s.Marshal())
		if err != nil {
			t.Fatalf("cloning state %d: %v", i, err)
		}
		f.Cell.Iteration = iter
		states[i] = f
	}
	out, err := New(cp.Cfg, states)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoadLatestFallsBackPastTornGenerations: LoadLatest must skip a
// truncated newest generation, skip a bit-flipped one below it, and load
// the newest generation that still verifies.
func TestLoadLatestFallsBackPastTornGenerations(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "run.ckpt")
	saver, err := NewSaver(OS{}, base, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 1; iter <= 3; iter++ {
		if gen, err := saver.Save(cloneAtIteration(t, cp, iter)); err != nil || gen != iter {
			t.Fatalf("Save iter %d = (gen %d, %v)", iter, gen, err)
		}
	}

	// Intact: the newest generation wins.
	got, gen, err := LoadLatest(OS{}, base)
	if err != nil {
		t.Fatalf("LoadLatest intact: %v", err)
	}
	if gen != 3 || got.Iteration() != 3 {
		t.Fatalf("LoadLatest intact = (iter %d, gen %d), want (3, 3)", got.Iteration(), gen)
	}

	// Truncate generation 3 (a crash mid-write), bit-flip generation 2
	// (media corruption): generation 1 must load.
	g3, g2 := generationPath(base, 3), generationPath(base, 2)
	if err := os.Truncate(g3, fileSize(t, g3)/2); err != nil {
		t.Fatal(err)
	}
	flipByte(t, g2, fileSize(t, g2)/3)
	got, gen, err = LoadLatest(OS{}, base)
	if err != nil {
		t.Fatalf("LoadLatest after damage: %v", err)
	}
	if gen != 1 || got.Iteration() != 1 {
		t.Fatalf("LoadLatest after damage = (iter %d, gen %d), want (1, 1)", got.Iteration(), gen)
	}

	// A final checkpoint at base that is ahead of every generation wins
	// even though its "generation" is 0.
	if err := SaveFile(base, cloneAtIteration(t, cp, 5)); err != nil {
		t.Fatal(err)
	}
	got, gen, err = LoadLatest(OS{}, base)
	if err != nil {
		t.Fatalf("LoadLatest with final: %v", err)
	}
	if gen != 0 || got.Iteration() != 5 {
		t.Fatalf("LoadLatest with final = (iter %d, gen %d), want (5, 0)", got.Iteration(), gen)
	}

	// Nothing valid at all: the error names every candidate it rejected.
	if err := os.Remove(generationPath(base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(base, 10); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadLatest(OS{}, base)
	if err == nil {
		t.Fatal("LoadLatest with no valid candidate returned nil error")
	}
	for _, path := range []string{base, g3, g2} {
		if !strings.Contains(err.Error(), filepath.Base(path)) {
			t.Fatalf("error does not mention rejected candidate %s: %v", path, err)
		}
	}
}

// TestSaverContinuesNumberingAndPrunes: a Saver restarted over existing
// generations continues the numbering (never overwriting a durable file)
// and keeps only the configured window.
func TestSaverContinuesNumberingAndPrunes(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "run.ckpt")
	saver, err := NewSaver(OS{}, base, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := saver.Save(cp); err != nil {
			t.Fatal(err)
		}
	}
	// keep=2: generations 2 and 3 survive, 1 is pruned.
	gens, err := ListGenerations(OS{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 2 || gens[1] != 3 {
		t.Fatalf("generations after 3 saves with keep=2: %v, want [2 3]", gens)
	}

	// A new Saver (the restarted process) picks up at 4.
	saver2, err := NewSaver(OS{}, base, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen, err := saver2.Save(cp); err != nil || gen != 4 {
		t.Fatalf("restarted Save = (gen %d, %v), want (4, nil)", gen, err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
