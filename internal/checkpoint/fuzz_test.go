package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"

	"cellgan/internal/core"
)

// seedCheckpointBytes builds a small valid checkpoint stream for the fuzz
// corpus (one short sequential run, round-tripped through Write).
func seedCheckpointBytes(f *testing.F) []byte {
	f.Helper()
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		f.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadCheckpoint asserts the checkpoint decoder never panics and never
// trusts hostile headers: every input either parses into a structurally
// valid checkpoint (which must re-encode) or returns an error.
func FuzzReadCheckpoint(f *testing.F) {
	seed := seedCheckpointBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])          // truncated mid-state
	f.Add(seed[:24])                   // truncated inside the config blob
	f.Add([]byte{})                    // empty
	f.Add(bytes.Repeat([]byte{0}, 64)) // zero garbage
	// Regression: a header declaring a huge config section over a tiny
	// stream must fail without attempting the allocation.
	huge := append([]byte(nil), seed[:24]...)
	binary.LittleEndian.PutUint64(huge[16:24], maxSection)
	f.Add(huge)
	// A valid body whose checksum footer is damaged by one bit: the
	// whole-file verification must reject it before any decoding.
	badFooter := append([]byte(nil), seed...)
	badFooter[len(badFooter)-1] ^= 0x01
	f.Add(badFooter)
	// A bit flip in the body with the stale footer left in place.
	badBody := append([]byte(nil), seed...)
	badBody[len(badBody)/3] ^= 0x01
	f.Add(badBody)
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(cp.States) != cp.Cfg.NumCells() {
			t.Fatalf("decoded checkpoint has %d states for %d cells", len(cp.States), cp.Cfg.NumCells())
		}
		var buf bytes.Buffer
		if err := Write(&buf, cp); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
	})
}

// FuzzReadMixture does the same for the deployable mixture artifact.
func FuzzReadMixture(f *testing.F) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		f.Fatal(err)
	}
	a, err := ExportMixture(res, res.BestRank)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:17])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 48))
	badFooter := append([]byte(nil), seed...)
	badFooter[len(badFooter)-1] ^= 0x01
	f.Add(badFooter)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadMixture(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(a.Ranks) == 0 || len(a.Ranks) != len(a.Weights) || len(a.Ranks) != len(a.GenParams) {
			t.Fatalf("accepted artifact is misaligned: %d ranks, %d weights, %d params",
				len(a.Ranks), len(a.Weights), len(a.GenParams))
		}
		var out bytes.Buffer
		if err := WriteMixture(&out, a); err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
	})
}
