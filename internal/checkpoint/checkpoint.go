// Package checkpoint persists and restores complete training runs. The
// paper's jobs run under a 96-hour limit on a best-effort queue, where
// preemption is routine; checkpointing turns the limit into a pause:
// a saved run resumes bit-for-bit (asserted by tests) because every
// stochastic component's state — network parameters, optimizer moments,
// random streams, data-loader positions, mixture weights — is captured.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"cellgan/internal/config"
	"cellgan/internal/core"
)

// Checkpoint is a complete resumable training run.
type Checkpoint struct {
	// Cfg is the run configuration; a resume must use a config that
	// differs at most in the iteration target.
	Cfg config.Config
	// States holds one full cell state per grid rank, in rank order.
	States []*core.FullState
}

// FromResult captures a checkpoint from a finished (or partially
// finished) run.
func FromResult(res *core.Result) (*Checkpoint, error) {
	return New(res.Cfg, res.Full)
}

// New builds a checkpoint from per-rank full states, validating that
// every grid cell is present and in rank order. Async snapshots are
// allowed to mix iterations; the states just have to be complete.
func New(cfg config.Config, states []*core.FullState) (*Checkpoint, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("checkpoint: no full states to checkpoint")
	}
	if len(states) != cfg.NumCells() {
		return nil, fmt.Errorf("checkpoint: %d states for a %d-cell grid", len(states), cfg.NumCells())
	}
	for i, f := range states {
		if f == nil {
			return nil, fmt.Errorf("checkpoint: missing full state for cell %d", i)
		}
		if f.Cell.Rank != i {
			return nil, fmt.Errorf("checkpoint: state %d is for rank %d", i, f.Cell.Rank)
		}
	}
	return &Checkpoint{Cfg: cfg, States: states}, nil
}

const (
	fileMagic = uint64(0x43474b505430) // "CGKPT0"
	// fileVersion 2 added the whole-file checksum footer; version 1
	// files (no footer) are rejected rather than trusted unchecked.
	fileVersion = uint64(2)
	// maxSection bounds one serialised section (256 MiB).
	maxSection = 256 << 20
)

// readSection reads one length-prefixed section. The buffer grows with the
// bytes actually read instead of trusting the declared length, so a
// corrupt or hostile header cannot force a huge allocation.
func readSection(r io.Reader, rU64 func() (uint64, error)) ([]byte, error) {
	n, err := rU64()
	if err != nil {
		return nil, err
	}
	if n > maxSection {
		return nil, fmt.Errorf("checkpoint: section of %d bytes exceeds limit", n)
	}
	b, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != n {
		return nil, fmt.Errorf("checkpoint: section truncated at %d of %d bytes: %w", len(b), n, io.ErrUnexpectedEOF)
	}
	return b, nil
}

// Write serialises the checkpoint, ending with the whole-file checksum
// footer (footer.go) that Read verifies before decoding anything.
func Write(w io.Writer, cp *Checkpoint) error {
	if len(cp.States) != cp.Cfg.NumCells() {
		return fmt.Errorf("checkpoint: %d states for a %d-cell grid", len(cp.States), cp.Cfg.NumCells())
	}
	return writeWithFooter(w, func(w io.Writer) error { return writeBody(w, cp) })
}

func writeBody(w io.Writer, cp *Checkpoint) error {
	bw := bufio.NewWriter(w)
	wU64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	wBlob := func(b []byte) error {
		if err := wU64(uint64(len(b))); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	if err := wU64(fileMagic); err != nil {
		return err
	}
	if err := wU64(fileVersion); err != nil {
		return err
	}
	cfgJSON, err := cp.Cfg.Marshal()
	if err != nil {
		return err
	}
	if err := wBlob(cfgJSON); err != nil {
		return err
	}
	if err := wU64(uint64(len(cp.States))); err != nil {
		return err
	}
	for _, s := range cp.States {
		if err := wBlob(s.Marshal()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a checkpoint written by Write. The checksum footer
// is verified over the complete stream before any section is decoded, so
// torn or corrupt files fail with a clean error and never surface
// partial state.
func Read(r io.Reader) (*Checkpoint, error) {
	body, err := readVerified(r, "checkpoint")
	if err != nil {
		return nil, err
	}
	return readBody(body)
}

func readBody(body []byte) (*Checkpoint, error) {
	br := bytes.NewReader(body)
	rU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	rBlob := func() ([]byte, error) { return readSection(br, rU64) }
	magic, err := rU64()
	if err != nil || magic != fileMagic {
		return nil, fmt.Errorf("checkpoint: not a checkpoint stream")
	}
	version, err := rU64()
	if err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", version)
	}
	cfgJSON, err := rBlob()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: config section: %w", err)
	}
	cfg, err := config.Unmarshal(cfgJSON)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nStates, err := rU64()
	if err != nil {
		return nil, err
	}
	if int(nStates) != cfg.NumCells() {
		return nil, fmt.Errorf("checkpoint: %d states for a %d-cell grid", nStates, cfg.NumCells())
	}
	cp := &Checkpoint{Cfg: cfg, States: make([]*core.FullState, nStates)}
	for i := range cp.States {
		blob, err := rBlob()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: state %d: %w", i, err)
		}
		if cp.States[i], err = core.UnmarshalFullState(blob); err != nil {
			return nil, fmt.Errorf("checkpoint: state %d: %w", i, err)
		}
		if cp.States[i].Cell.Rank != i {
			return nil, fmt.Errorf("checkpoint: state %d is for rank %d", i, cp.States[i].Cell.Rank)
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after last state", br.Len())
	}
	return cp, nil
}

// SaveFile writes the checkpoint crash-consistently: temp file, fsync,
// rename, parent-directory fsync (atomic.go).
func SaveFile(path string, cp *Checkpoint) error {
	return SaveFileFS(OS{}, path, cp)
}

// SaveFileFS is SaveFile through an injectable filesystem.
func SaveFileFS(fs FS, path string, cp *Checkpoint) error {
	return atomicWriteFile(fs, path, func(f File) error { return Write(f, cp) })
}

// LoadFile reads a checkpoint from disk.
func LoadFile(path string) (*Checkpoint, error) {
	return LoadFileFS(OS{}, path)
}

// LoadFileFS is LoadFile through an injectable filesystem.
func LoadFileFS(fs FS, path string) (*Checkpoint, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Resume continues a checkpointed run with mode ("seq", "par" or
// "async") until targetIterations, returning the new result. The stored
// configuration is reused with only the iteration target changed.
func Resume(cp *Checkpoint, mode string, targetIterations int, opts core.RunOptions) (*core.Result, error) {
	if cp.Iteration() >= targetIterations {
		return nil, fmt.Errorf("checkpoint: already at iteration %d, nothing to resume for a target of %d",
			cp.Iteration(), targetIterations)
	}
	cfg := cp.Cfg
	cfg.Iterations = targetIterations
	opts.Resume = cp.States
	return core.Run(mode, cfg, opts)
}

// Iteration returns the iteration the checkpoint was taken at: the
// minimum across cells, because an async snapshot may mix iterations
// and a resume must not skip work any cell still owes.
func (cp *Checkpoint) Iteration() int {
	if len(cp.States) == 0 {
		return 0
	}
	min := cp.States[0].Cell.Iteration
	for _, s := range cp.States[1:] {
		if s.Cell.Iteration < min {
			min = s.Cell.Iteration
		}
	}
	return min
}
