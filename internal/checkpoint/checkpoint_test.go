package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cellgan/internal/config"
	"cellgan/internal/core"
)

func tinyCfg(iters int) config.Config {
	cfg := config.Default().Scaled(iters, 8, 100)
	return cfg
}

func TestRoundTripInMemory(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(2), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != cp.Cfg {
		t.Fatal("config changed in transit")
	}
	if len(got.States) != len(cp.States) {
		t.Fatalf("states %d want %d", len(got.States), len(cp.States))
	}
	for i := range got.States {
		if !bytes.Equal(got.States[i].Marshal(), cp.States[i].Marshal()) {
			t.Fatalf("state %d changed in transit", i)
		}
	}
	if got.Iteration() != 2 {
		t.Fatalf("iteration %d", got.Iteration())
	}
}

func TestResumeBitExactSequential(t *testing.T) {
	// The headline property: 2 iterations + checkpoint + 2 more must be
	// bit-identical to 4 uninterrupted iterations.
	full, err := core.RunSequential(tinyCfg(4), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := core.RunSequential(tinyCfg(2), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(half)
	if err != nil {
		t.Fatal(err)
	}
	// Serialise through the file format to prove the on-disk round trip
	// preserves resumability too.
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(loaded, "seq", 4, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range full.Cells {
		if !bytes.Equal(full.Cells[r].State.GenParams, resumed.Cells[r].State.GenParams) {
			t.Fatalf("rank %d generator params differ after resume", r)
		}
		if !bytes.Equal(full.Cells[r].State.DiscParams, resumed.Cells[r].State.DiscParams) {
			t.Fatalf("rank %d discriminator params differ after resume", r)
		}
		if full.Cells[r].MixtureFitness != resumed.Cells[r].MixtureFitness {
			t.Fatalf("rank %d mixture fitness %v vs %v",
				r, full.Cells[r].MixtureFitness, resumed.Cells[r].MixtureFitness)
		}
		fw, rw := full.Cells[r].MixtureWeights, resumed.Cells[r].MixtureWeights
		if len(fw) != len(rw) {
			t.Fatalf("rank %d mixture sizes differ", r)
		}
		for i := range fw {
			if fw[i] != rw[i] {
				t.Fatalf("rank %d mixture weight %d: %v vs %v", r, i, fw[i], rw[i])
			}
		}
	}
	if full.BestRank != resumed.BestRank {
		t.Fatalf("best rank %d vs %d", full.BestRank, resumed.BestRank)
	}
}

func TestResumeBitExactParallel(t *testing.T) {
	full, err := core.RunParallel(tinyCfg(3), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := core.RunParallel(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(half)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cp, "par", 3, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range full.Cells {
		if !bytes.Equal(full.Cells[r].State.GenParams, resumed.Cells[r].State.GenParams) {
			t.Fatalf("rank %d generator params differ after parallel resume", r)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	half, err := core.RunSequential(tinyCfg(2), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(half)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cp, "seq", 2, core.RunOptions{}); err == nil {
		t.Fatal("resume to already-reached target accepted")
	}
	if _, err := Resume(cp, "warp", 4, core.RunOptions{}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestFromResultValidation(t *testing.T) {
	if _, err := FromResult(&core.Result{}); err == nil {
		t.Fatal("empty result accepted")
	}
	// Async mode now produces resumable full states too (PR 9 lifted the
	// restriction); the checkpoint must round-trip like any other.
	res, err := core.RunAsync(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatalf("async result rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration() != 1 {
		t.Fatalf("iteration %d", got.Iteration())
	}
}

func TestSaveLoadFile(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration() != 1 {
		t.Fatalf("iteration %d", got.Iteration())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadRejectsCorruptStreams(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cp); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte{9}, good[1:]...),
		"truncated": good[:len(good)/2],
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Version bump.
	bad := append([]byte(nil), good...)
	bad[8] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("future version accepted")
	}
}

func TestWriteRejectsWrongStateCount(t *testing.T) {
	res, err := core.RunSequential(tinyCfg(1), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	cp.States = cp.States[:1]
	var buf bytes.Buffer
	if err := Write(&buf, cp); err == nil {
		t.Fatal("state/grid mismatch accepted")
	}
}
