package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"cellgan/internal/core"
	"cellgan/internal/tensor"
)

func trainedArtifact(t *testing.T) (*core.Result, *MixtureArtifact) {
	t.Helper()
	res, err := core.RunSequential(tinyCfg(2), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportMixture(res, res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func TestMixtureRoundTripBitExact(t *testing.T) {
	_, a := trainedArtifact(t)
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := ReadMixture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != a.Cfg {
		t.Fatal("config changed in transit")
	}
	if len(got.Ranks) != len(a.Ranks) {
		t.Fatalf("ranks %d want %d", len(got.Ranks), len(a.Ranks))
	}
	for i := range a.Ranks {
		if got.Ranks[i] != a.Ranks[i] {
			t.Fatalf("rank %d changed in transit", i)
		}
		if math.Float64bits(got.Weights[i]) != math.Float64bits(a.Weights[i]) {
			t.Fatalf("weight %d changed in transit", i)
		}
		if !bytes.Equal(got.GenParams[i], a.GenParams[i]) {
			t.Fatalf("generator params %d changed in transit", i)
		}
	}
	// Re-serialising the decoded artifact must reproduce the stream
	// bit-for-bit.
	var buf2 bytes.Buffer
	if err := WriteMixture(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("serialisation is not bit-stable across a round trip")
	}
}

func TestMixtureArtifactSamplesMatchResult(t *testing.T) {
	// The artifact's rebuilt mixture must be the same generative model as
	// the one reconstructed directly from the run result: identical
	// samples under identical RNG streams.
	res, a := trainedArtifact(t)
	direct, err := res.MixtureFor(res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := a.Mixture()
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Sample(16, a.LatentDim(), tensor.NewRNG(7))
	got := loaded.Sample(16, a.LatentDim(), tensor.NewRNG(7))
	if !got.Equal(want) {
		t.Fatal("artifact mixture samples diverge from the run's mixture")
	}
}

func TestMixtureSaveLoadFile(t *testing.T) {
	_, a := trainedArtifact(t)
	path := filepath.Join(t.TempDir(), "best.mix")
	if err := SaveMixtureFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMixtureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != a.Cfg || len(got.Ranks) != len(a.Ranks) {
		t.Fatal("artifact changed across file round trip")
	}
	if _, err := got.Mixture(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMixtureRejectsCorruptStreams(t *testing.T) {
	_, a := trainedArtifact(t)
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadMixture(bytes.NewReader(good[:8])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadMixture(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHashMixtureMatchesBytesAndIsStable(t *testing.T) {
	_, a := trainedArtifact(t)
	h1, err := HashMixture(a)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashMixture(a)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		t.Fatal(err)
	}
	if hb := HashMixtureBytes(buf.Bytes()); hb != h1 {
		t.Fatalf("byte hash %s != artifact hash %s", hb, h1)
	}
	// Any parameter perturbation must change the hash.
	b := *a
	b.GenParams = append([][]byte(nil), a.GenParams...)
	b.GenParams[0] = append([]byte(nil), a.GenParams[0]...)
	b.GenParams[0][0] ^= 0x01
	hm, err := HashMixture(&b)
	if err != nil {
		t.Fatal(err)
	}
	if hm == h1 {
		t.Fatal("hash insensitive to parameter change")
	}
}

func TestShardMixture(t *testing.T) {
	_, a := trainedArtifact(t)
	if len(a.Ranks) < 2 {
		t.Skipf("mixture too small to shard: %d members", len(a.Ranks))
	}
	of := 2
	seen := make(map[int]bool)
	totalMembers := 0
	for s := 0; s < of; s++ {
		sh, err := ShardMixture(a, s, of)
		if err != nil {
			t.Fatal(err)
		}
		if len(sh.Ranks) == 0 {
			t.Fatalf("shard %d is empty", s)
		}
		sum := 0.0
		for _, w := range sh.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shard %d weights sum %g, want 1", s, sum)
		}
		for _, r := range sh.Ranks {
			if seen[r] {
				t.Fatalf("rank %d appears in two shards", r)
			}
			seen[r] = true
		}
		totalMembers += len(sh.Ranks)
		// A shard must itself be a loadable, sampleable artifact.
		if _, err := sh.Mixture(); err != nil {
			t.Fatalf("shard %d does not rebuild: %v", s, err)
		}
	}
	if totalMembers != len(a.Ranks) {
		t.Fatalf("shards cover %d members, mixture has %d", totalMembers, len(a.Ranks))
	}

	if _, err := ShardMixture(a, 2, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := ShardMixture(a, 0, 0); err == nil {
		t.Fatal("zero shard count accepted")
	}
	if _, err := ShardMixture(a, 0, len(a.Ranks)+1); err == nil {
		t.Fatal("more shards than members accepted")
	}
	full, err := ShardMixture(a, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Ranks) != len(a.Ranks) {
		t.Fatalf("1-shard copy has %d members, want %d", len(full.Ranks), len(a.Ranks))
	}
}

func TestExportMixtureValidation(t *testing.T) {
	res, _ := trainedArtifact(t)
	if _, err := ExportMixture(res, -1); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := ExportMixture(res, len(res.Cells)); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}
