package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"cellgan/internal/core"
	"cellgan/internal/tensor"
)

func trainedArtifact(t *testing.T) (*core.Result, *MixtureArtifact) {
	t.Helper()
	res, err := core.RunSequential(tinyCfg(2), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportMixture(res, res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func TestMixtureRoundTripBitExact(t *testing.T) {
	_, a := trainedArtifact(t)
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := ReadMixture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != a.Cfg {
		t.Fatal("config changed in transit")
	}
	if len(got.Ranks) != len(a.Ranks) {
		t.Fatalf("ranks %d want %d", len(got.Ranks), len(a.Ranks))
	}
	for i := range a.Ranks {
		if got.Ranks[i] != a.Ranks[i] {
			t.Fatalf("rank %d changed in transit", i)
		}
		if math.Float64bits(got.Weights[i]) != math.Float64bits(a.Weights[i]) {
			t.Fatalf("weight %d changed in transit", i)
		}
		if !bytes.Equal(got.GenParams[i], a.GenParams[i]) {
			t.Fatalf("generator params %d changed in transit", i)
		}
	}
	// Re-serialising the decoded artifact must reproduce the stream
	// bit-for-bit.
	var buf2 bytes.Buffer
	if err := WriteMixture(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("serialisation is not bit-stable across a round trip")
	}
}

func TestMixtureArtifactSamplesMatchResult(t *testing.T) {
	// The artifact's rebuilt mixture must be the same generative model as
	// the one reconstructed directly from the run result: identical
	// samples under identical RNG streams.
	res, a := trainedArtifact(t)
	direct, err := res.MixtureFor(res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := a.Mixture()
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Sample(16, a.LatentDim(), tensor.NewRNG(7))
	got := loaded.Sample(16, a.LatentDim(), tensor.NewRNG(7))
	if !got.Equal(want) {
		t.Fatal("artifact mixture samples diverge from the run's mixture")
	}
}

func TestMixtureSaveLoadFile(t *testing.T) {
	_, a := trainedArtifact(t)
	path := filepath.Join(t.TempDir(), "best.mix")
	if err := SaveMixtureFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMixtureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != a.Cfg || len(got.Ranks) != len(a.Ranks) {
		t.Fatal("artifact changed across file round trip")
	}
	if _, err := got.Mixture(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMixtureRejectsCorruptStreams(t *testing.T) {
	_, a := trainedArtifact(t)
	var buf bytes.Buffer
	if err := WriteMixture(&buf, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadMixture(bytes.NewReader(good[:8])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadMixture(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestExportMixtureValidation(t *testing.T) {
	res, _ := trainedArtifact(t)
	if _, err := ExportMixture(res, -1); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := ExportMixture(res, len(res.Cells)); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}
