package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// FaultFS is the FaultyComm of storage: a deterministic disk-fault
// middleware between the checkpoint writer and the real filesystem.
// Given the same (seed, plan) and the same sequence of operations it
// injects exactly the same faults on every run, so a chaos scenario
// that tears a checkpoint reproduces bit-for-bit.
//
// Its durability model is the page cache: written bytes live in a
// buffer until a successful Sync flushes them to the inner filesystem.
// What the inner filesystem holds IS the disk after a power cut — an
// injected crash simply fails every subsequent mutating operation, and
// whatever was never synced was never on disk. This makes the torn
// states the middleware produces exactly the ones a real crash can:
// empty temp files, prefix-only temp files, missing renames.
//
// Faults injected:
//   - write errors (ENOSPC: the write persists nothing and fails)
//   - short writes (a prefix persists, then the write fails)
//   - sync failures (EIO: unsynced bytes are lost, the file is poisoned)
//   - crash-points (after N mutating operations the filesystem is dead)
//
// Reads are never failed: a crashed FaultFS keeps serving the durable
// state, which is what a rebooted process would see on the real disk.

// Injected error values, distinguishable from real filesystem errors.
var (
	ErrInjectedCrash  = errors.New("checkpoint: filesystem crashed (injected fault)")
	ErrInjectedENOSPC = errors.New("checkpoint: no space left on device (injected fault)")
	ErrInjectedSync   = errors.New("checkpoint: sync failed, unsynced data lost (injected fault)")
)

// FSFaultPlan is a deterministic disk-fault schedule.
type FSFaultPlan struct {
	// Seed drives every fault decision; the same seed and operation
	// sequence reproduce the same faults.
	Seed uint64
	// WriteErrProb is the probability a Write fails persisting nothing.
	WriteErrProb float64
	// ShortWriteProb is the probability a Write persists only a
	// deterministic prefix before failing.
	ShortWriteProb float64
	// SyncErrProb is the probability a Sync fails, dropping all bytes
	// written since the last successful Sync and poisoning the file.
	SyncErrProb float64
	// CrashAfterOps kills the filesystem after that many mutating
	// operations (create/write/sync/rename/remove/syncdir) have
	// completed; every later mutating operation fails with
	// ErrInjectedCrash. 0 disables the crash-point. Sweeping it across
	// 1..N lands a crash between every pair of steps of the
	// write→sync→rename→syncdir protocol.
	CrashAfterOps int
	// Stats, when set, counts the injected faults.
	Stats *FSFaultStats
}

// FSFaultStats counts faults a FaultFS injected.
type FSFaultStats struct {
	WriteErrors atomic.Int64
	ShortWrites atomic.Int64
	SyncErrors  atomic.Int64
	Crashes     atomic.Int64
}

// NewFaultFS wraps inner with the fault plan.
func NewFaultFS(inner FS, plan FSFaultPlan) *FaultFSImpl {
	return &FaultFSImpl{inner: inner, plan: plan}
}

// FaultFSImpl implements FS with injected faults. Safe for concurrent
// use; the operation order under concurrency is whatever the scheduler
// makes it, so deterministic scenarios should drive it from one
// goroutine (the checkpoint Saver already serialises saves).
type FaultFSImpl struct {
	inner FS
	plan  FSFaultPlan

	mu      sync.Mutex
	opsDone int
	crashed bool
	open    map[*faultFile]struct{}
}

// Crashed reports whether the crash-point has fired.
func (f *FaultFSImpl) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// beginOp admits one mutating operation, returning its index, or fails
// if the filesystem is (or just became) dead.
func (f *FaultFSImpl) beginOp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrInjectedCrash
	}
	if f.plan.CrashAfterOps > 0 && f.opsDone >= f.plan.CrashAfterOps {
		f.crashed = true
		if f.plan.Stats != nil {
			f.plan.Stats.Crashes.Add(1)
		}
		// Background writeback had gotten partway: a deterministic
		// prefix of each open file's unsynced tail reaches the disk,
		// leaving exactly the torn files a power cut leaves.
		for ff := range f.open {
			ff.tearOnCrash(f.opsDone)
		}
		return 0, ErrInjectedCrash
	}
	f.opsDone++
	return f.opsDone, nil
}

const (
	saltFSWriteErr   = 0x7f4a7c159e3779b9
	saltFSShortWrite = 0x27d4eb4fc2b2ae3d
	saltFSSyncErr    = 0x9e3779f916566781
	saltFSShortLen   = 0x133111eb94d049bb
	saltFSTear       = 0x4a39b70da3b19535
)

// decide maps (seed, op index, salt) to a deterministic value.
func (f *FaultFSImpl) decide(op int, salt uint64) uint64 {
	h := fsMix(f.plan.Seed ^ salt)
	return fsMix(h ^ uint64(int64(op)))
}

// fsMix is the SplitMix64 finalizer, the repo's standard seeding hash.
func fsMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fsUnit maps a hash to [0, 1).
func fsUnit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

func (f *FaultFSImpl) Create(path string) (File, error) {
	if _, err := f.beginOp(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, inner: inner}
	f.mu.Lock()
	if f.open == nil {
		f.open = make(map[*faultFile]struct{})
	}
	f.open[ff] = struct{}{}
	f.mu.Unlock()
	return ff, nil
}

func (f *FaultFSImpl) Open(path string) (io.ReadCloser, error) { return f.inner.Open(path) }

func (f *FaultFSImpl) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFSImpl) Rename(oldpath, newpath string) error {
	if _, err := f.beginOp(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFSImpl) Remove(path string) error {
	if _, err := f.beginOp(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFSImpl) SyncDir(dir string) error {
	if _, err := f.beginOp(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile buffers writes like a page cache: bytes reach the inner
// file only on a successful Sync. A crash or a failed sync therefore
// loses exactly the unsynced tail, like the real thing.
type faultFile struct {
	fs    *FaultFSImpl
	inner File

	mu       sync.Mutex
	buf      []byte
	poisoned bool
}

// tearOnCrash flushes a deterministic prefix of the unsynced tail to the
// inner file — the partial background writeback a power cut freezes in
// place. Called with the filesystem lock held, once, at the crash
// transition.
func (ff *faultFile) tearOnCrash(op int) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if len(ff.buf) == 0 {
		return
	}
	n := int(ff.fs.decide(op, saltFSTear) % uint64(len(ff.buf)+1))
	if n > 0 {
		ff.inner.Write(ff.buf[:n])
	}
	ff.buf = nil
	ff.poisoned = true
}

func (ff *faultFile) Write(p []byte) (int, error) {
	op, err := ff.fs.beginOp()
	if err != nil {
		return 0, err
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.poisoned {
		return 0, ErrInjectedSync
	}
	plan := &ff.fs.plan
	if plan.WriteErrProb > 0 && fsUnit(ff.fs.decide(op, saltFSWriteErr)) < plan.WriteErrProb {
		if plan.Stats != nil {
			plan.Stats.WriteErrors.Add(1)
		}
		return 0, fmt.Errorf("write: %w", ErrInjectedENOSPC)
	}
	if plan.ShortWriteProb > 0 && len(p) > 1 &&
		fsUnit(ff.fs.decide(op, saltFSShortWrite)) < plan.ShortWriteProb {
		// Persist a deterministic strict prefix, then fail the call.
		n := 1 + int(ff.fs.decide(op, saltFSShortLen)%uint64(len(p)-1))
		ff.buf = append(ff.buf, p[:n]...)
		if plan.Stats != nil {
			plan.Stats.ShortWrites.Add(1)
		}
		return n, fmt.Errorf("short write of %d/%d bytes: %w", n, len(p), ErrInjectedENOSPC)
	}
	ff.buf = append(ff.buf, p...)
	return len(p), nil
}

func (ff *faultFile) Sync() error {
	op, err := ff.fs.beginOp()
	if err != nil {
		return err
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.poisoned {
		return ErrInjectedSync
	}
	plan := &ff.fs.plan
	if plan.SyncErrProb > 0 && fsUnit(ff.fs.decide(op, saltFSSyncErr)) < plan.SyncErrProb {
		// The unsynced tail is gone and the file can no longer be
		// trusted — exactly the contract fsync gives after EIO.
		ff.buf = nil
		ff.poisoned = true
		if plan.Stats != nil {
			plan.Stats.SyncErrors.Add(1)
		}
		return ErrInjectedSync
	}
	if len(ff.buf) > 0 {
		if _, err := ff.inner.Write(ff.buf); err != nil {
			return err
		}
		ff.buf = nil
	}
	return ff.inner.Sync()
}

// Close discards unsynced bytes (they were never durable) and closes the
// inner file. Close itself is not a fault point: the interesting
// failures all live in write/sync/rename.
func (ff *faultFile) Close() error {
	ff.fs.mu.Lock()
	delete(ff.fs.open, ff)
	ff.fs.mu.Unlock()
	ff.mu.Lock()
	ff.buf = nil
	ff.mu.Unlock()
	return ff.inner.Close()
}
