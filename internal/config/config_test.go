package config

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  interface{}
		want interface{}
	}{
		{"network type", c.NetworkType, "MLP"},
		{"input neurons", c.InputNeurons, 64},
		{"hidden layers", c.HiddenLayers, 2},
		{"neurons per hidden", c.NeuronsPerHidden, 256},
		{"output neurons", c.OutputNeurons, 784},
		{"activation", c.Activation, "tanh"},
		{"iterations", c.Iterations, 200},
		{"population size", c.PopulationSize, 1},
		{"tournament size", c.TournamentSize, 2},
		{"mixture scale", c.MixtureMutationScale, 0.01},
		{"optimizer", c.Optimizer, "adam"},
		{"lr", c.InitialLearningRate, 0.0002},
		{"mutation rate", c.MutationRate, 0.0001},
		{"mutation prob", c.MutationProbability, 0.5},
		{"batch size", c.BatchSize, 100},
		{"skip disc", c.SkipNDiscSteps, 1},
		{"time limit", c.TimeLimit, 96 * time.Hour},
		{"temp storage", c.TempStorageGB, 40},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
}

func TestNumTasksMatchesTableII(t *testing.T) {
	for _, tc := range []struct{ m, tasks int }{{2, 5}, {3, 10}, {4, 17}} {
		c := Default().WithGrid(tc.m, tc.m)
		if got := c.NumTasks(); got != tc.tasks {
			t.Errorf("%d×%d: tasks %d want %d", tc.m, tc.m, got, tc.tasks)
		}
	}
}

func TestMemoryMBMatchesTableII(t *testing.T) {
	// Table II: 9216, 18432 and 32768 MB for the three grids.
	for _, tc := range []struct{ m, mb int }{{2, 9216}, {3, 18432}, {4, 32768}} {
		if got := Default().WithGrid(tc.m, tc.m).MemoryMB(); got != tc.mb {
			t.Errorf("%d×%d memory %d want %d", tc.m, tc.m, got, tc.mb)
		}
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	mutations := map[string]func(*Config){
		"net type":      func(c *Config) { c.NetworkType = "RNN" },
		"cnn outputs":   func(c *Config) { c.NetworkType = "CNN"; c.OutputNeurons = 100 },
		"neighbourhood": func(c *Config) { c.Neighborhood = "hex" },
		"loss set":      func(c *Config) { c.LossSet = "bce,hinge" },
		"loss mut prob": func(c *Config) { c.LossMutationProbability = -0.1 },
		"input":         func(c *Config) { c.InputNeurons = 0 },
		"hidden layers": func(c *Config) { c.HiddenLayers = -1 },
		"hidden width":  func(c *Config) { c.NeuronsPerHidden = 0 },
		"output":        func(c *Config) { c.OutputNeurons = -1 },
		"activation":    func(c *Config) { c.Activation = "swish" },
		"iterations":    func(c *Config) { c.Iterations = 0 },
		"population":    func(c *Config) { c.PopulationSize = 2 },
		"tournament":    func(c *Config) { c.TournamentSize = 0 },
		"grid":          func(c *Config) { c.GridRows = 0 },
		"mixture scale": func(c *Config) { c.MixtureMutationScale = -1 },
		"optimizer":     func(c *Config) { c.Optimizer = "rmsprop" },
		"lr":            func(c *Config) { c.InitialLearningRate = 0 },
		"mutation rate": func(c *Config) { c.MutationRate = -0.1 },
		"mutation prob": func(c *Config) { c.MutationProbability = 1.5 },
		"batch":         func(c *Config) { c.BatchSize = 0 },
		"skip disc":     func(c *Config) { c.SkipNDiscSteps = 0 },
		"dataset":       func(c *Config) { c.DatasetSize = -5 },
		"batches/iter":  func(c *Config) { c.BatchesPerIteration = -1 },
	}
	for name, mutate := range mutations {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := Default().WithGrid(3, 3)
	c.Seed = 12345
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, c)
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	bad := Default()
	bad.BatchSize = 0
	data, err := bad.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNetworkSizes(t *testing.T) {
	c := Default()
	g := c.GeneratorSizes()
	want := []int{64, 256, 256, 784}
	if len(g) != len(want) {
		t.Fatalf("generator sizes %v", g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("generator sizes %v want %v", g, want)
		}
	}
	d := c.DiscriminatorSizes()
	wantD := []int{784, 256, 256, 1}
	for i := range wantD {
		if d[i] != wantD[i] {
			t.Fatalf("discriminator sizes %v want %v", d, wantD)
		}
	}
}

func TestScaled(t *testing.T) {
	c := Default().Scaled(3, 8, 100)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Iterations != 3 || c.BatchSize != 8 || c.DatasetSize != 100 || c.BatchesPerIteration != 1 {
		t.Fatalf("scaled %+v", c)
	}
}

func TestTableIRows(t *testing.T) {
	rows := Default().TableI()
	if len(rows) != 20 {
		t.Fatalf("TableI has %d rows", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += r[0] + "=" + r[1] + ";"
	}
	for _, want := range []string{"Input neurons=64", "Batch size=100", "Grid size=2×2", "Number of tasks=5"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("TableI missing %q:\n%s", want, joined)
		}
	}
}
