// Package config defines the experiment configuration of the reproduction,
// mirroring the paper's Table I ("Parameters settings of the trained
// GANs") plus the execution parameters of Table II. The master process
// broadcasts a Config to every slave at start-up (§III-B), so the type is
// JSON-serialisable.
package config

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Config captures every tunable of a training run.
type Config struct {
	// --- Network topology (Table I) ---

	// NetworkType names the architecture: "MLP" or "CNN" (DCGAN-style
	// conv stacks over 28×28 images).
	NetworkType string `json:"network_type"`
	// InputNeurons is the generator latent dimension (64 in the paper).
	InputNeurons int `json:"input_neurons"`
	// HiddenLayers is the number of hidden layers (2).
	HiddenLayers int `json:"hidden_layers"`
	// NeuronsPerHidden is the width of each hidden layer (256).
	NeuronsPerHidden int `json:"neurons_per_hidden"`
	// OutputNeurons is the image dimension (784 = 28×28).
	OutputNeurons int `json:"output_neurons"`
	// Activation is the hidden activation ("tanh").
	Activation string `json:"activation"`

	// --- Coevolutionary settings (Table I) ---

	// Iterations is the number of training iterations/epochs (200).
	Iterations int `json:"iterations"`
	// PopulationSize is the population size per cell (1).
	PopulationSize int `json:"population_size"`
	// TournamentSize is the selection tournament size (2).
	TournamentSize int `json:"tournament_size"`
	// GridRows and GridCols define the toroidal grid (2×2 to 4×4).
	GridRows int `json:"grid_rows"`
	GridCols int `json:"grid_cols"`
	// Neighborhood selects the cell neighbourhood pattern: "moore5" (the
	// paper's five-cell neighbourhood, default when empty), "moore9"
	// (full 3×3) or "ring4" (cardinals without the center).
	Neighborhood string `json:"neighborhood,omitempty"`
	// MixtureMutationScale is the (1+1)-ES σ for mixture weights (0.01).
	MixtureMutationScale float64 `json:"mixture_mutation_scale"`

	// --- Hyperparameter mutation (Table I) ---

	// Optimizer names the gradient optimizer ("adam").
	Optimizer string `json:"optimizer"`
	// InitialLearningRate is the starting Adam learning rate (0.0002).
	InitialLearningRate float64 `json:"initial_learning_rate"`
	// MutationRate is the σ of the Gaussian learning-rate mutation (0.0001).
	MutationRate float64 `json:"mutation_rate"`
	// MutationProbability is the chance a mutation is applied (0.5).
	MutationProbability float64 `json:"mutation_probability"`
	// LossSet is a comma-separated list of adversarial loss functions the
	// evolution may use ("bce", "minimax", "lsgan"); empty means bce
	// only. A multi-element set enables the Mustangs loss-function
	// evolution on top of Lipizzaner.
	LossSet string `json:"loss_set,omitempty"`
	// LossMutationProbability is the chance per iteration that a center's
	// loss-function gene is redrawn from LossSet (Mustangs mutation).
	LossMutationProbability float64 `json:"loss_mutation_probability"`

	// --- Training settings (Table I) ---

	// BatchSize is the mini-batch size (100).
	BatchSize int `json:"batch_size"`
	// SkipNDiscSteps trains the discriminator only every N-th step (1).
	SkipNDiscSteps int `json:"skip_n_disc_steps"`

	// --- Execution settings (Tables I–II) ---

	// TimeLimit bounds the whole run (96 h in the paper).
	TimeLimit time.Duration `json:"time_limit"`
	// TempStorageGB is the scratch space requested per run (40).
	TempStorageGB int `json:"temp_storage_gb"`
	// MemoryPerTaskMB is the memory requested per MPI task; Table II's
	// totals are NumTasks × this figure rounded to the scheduler grain.
	MemoryPerTaskMB int `json:"memory_per_task_mb"`

	// --- Reproduction-specific knobs (not in the paper) ---

	// Seed keys every random stream of the run.
	Seed uint64 `json:"seed"`
	// DatasetSize optionally truncates the 60k training split so the
	// experiment scales to small machines; 0 means the full split.
	DatasetSize int `json:"dataset_size"`
	// BatchesPerIteration bounds the mini-batches per training iteration;
	// 0 trains on the full epoch as the paper does.
	BatchesPerIteration int `json:"batches_per_iteration"`
	// GradClip bounds the gradient L2 norm (0 disables).
	GradClip float64 `json:"grad_clip"`
	// DataDieting, when set, trains each cell on a disjoint 1/N shard of
	// the training data (N = number of cells), after Toutouh et al.,
	// "Data dieting in GAN training" (the paper's reference [20]).
	DataDieting bool `json:"data_dieting"`
	// AsyncStaleness is the bounded-staleness window S of the asynchronous
	// exchange modes (core.RunAsync and the cluster async runtime): a cell
	// only blocks before an iteration that would leave it more than S
	// versions ahead of a live neighbour's last absorbed snapshot — there
	// is never a global barrier. 0 selects the default window
	// (DefaultAsyncStaleness).
	AsyncStaleness int `json:"async_staleness,omitempty"`
}

// DefaultAsyncStaleness is the staleness window used when AsyncStaleness
// is 0: wide enough that uniform pacing never blocks, tight enough that a
// partitioned neighbour halts its influence set instead of training on
// ever-staler state.
const DefaultAsyncStaleness = 4

// EffectiveAsyncStaleness resolves the configured staleness window,
// applying the default for the zero value.
func (c Config) EffectiveAsyncStaleness() int {
	if c.AsyncStaleness <= 0 {
		return DefaultAsyncStaleness
	}
	return c.AsyncStaleness
}

// Default returns the paper's Table I settings on a 2×2 grid.
func Default() Config {
	return Config{
		NetworkType:          "MLP",
		InputNeurons:         64,
		HiddenLayers:         2,
		NeuronsPerHidden:     256,
		OutputNeurons:        784,
		Activation:           "tanh",
		Iterations:           200,
		PopulationSize:       1,
		TournamentSize:       2,
		GridRows:             2,
		GridCols:             2,
		MixtureMutationScale: 0.01,
		Optimizer:            "adam",
		InitialLearningRate:  0.0002,
		MutationRate:         0.0001,
		MutationProbability:  0.5,
		BatchSize:            100,
		SkipNDiscSteps:       1,
		TimeLimit:            96 * time.Hour,
		TempStorageGB:        40,
		MemoryPerTaskMB:      1843, // ≈ Table II: 9216 MB / 5 tasks
		Seed:                 1,
	}
}

// WithGrid returns a copy of c on a rows×cols grid.
func (c Config) WithGrid(rows, cols int) Config {
	c.GridRows = rows
	c.GridCols = cols
	return c
}

// Scaled returns a copy of c shrunk for fast test/benchmark execution:
// narrow networks, few iterations, a small dataset slice.
func (c Config) Scaled(iterations, batch, datasetSize int) Config {
	c.Iterations = iterations
	c.BatchSize = batch
	c.DatasetSize = datasetSize
	c.BatchesPerIteration = 1
	c.NeuronsPerHidden = 32
	c.InputNeurons = 16
	return c
}

// NumCells returns the number of grid cells (= slave processes).
func (c Config) NumCells() int { return c.GridRows * c.GridCols }

// NumTasks returns the MPI task count: one slave per cell plus the master
// (Table II: 5, 10 and 17 tasks for the three grids).
func (c Config) NumTasks() int { return c.NumCells() + 1 }

// MemoryMB returns the total memory request of the job in MB, following
// Table II's scheduler grain: requests round up to 1 GB, and large jobs
// (over 24 GB) round up to an 8 GB grain — reproducing the paper's 9216,
// 18432 and 32768 MB for the 5-, 10- and 17-task jobs.
func (c Config) MemoryMB() int {
	raw := c.NumTasks() * c.MemoryPerTaskMB
	mb := (raw + 1023) / 1024 * 1024
	if mb > 24*1024 {
		const grain = 8 * 1024
		mb = (mb + grain - 1) / grain * grain
	}
	return mb
}

// Validate reports the first configuration error found.
// maxGridSide bounds GridRows/GridCols in Validate (paper max is 4).
const maxGridSide = 64

func (c Config) Validate() error {
	switch {
	case c.NetworkType != "MLP" && c.NetworkType != "CNN":
		return fmt.Errorf("config: unsupported network type %q (want MLP or CNN)", c.NetworkType)
	case c.NetworkType == "CNN" && c.OutputNeurons != 784:
		return fmt.Errorf("config: CNN topology requires 28×28 images (784 outputs), got %d", c.OutputNeurons)
	case c.InputNeurons <= 0:
		return fmt.Errorf("config: input neurons %d must be positive", c.InputNeurons)
	case c.HiddenLayers < 0:
		return fmt.Errorf("config: hidden layers %d must be non-negative", c.HiddenLayers)
	case c.HiddenLayers > 0 && c.NeuronsPerHidden <= 0:
		return fmt.Errorf("config: neurons per hidden layer %d must be positive", c.NeuronsPerHidden)
	case c.OutputNeurons <= 0:
		return fmt.Errorf("config: output neurons %d must be positive", c.OutputNeurons)
	case c.Activation != "tanh" && c.Activation != "relu" && c.Activation != "leaky_relu":
		return fmt.Errorf("config: unsupported activation %q", c.Activation)
	case !validLossSet(c.LossSet):
		return fmt.Errorf("config: invalid loss set %q (comma-separated bce, minimax, lsgan)", c.LossSet)
	case c.Iterations <= 0:
		return fmt.Errorf("config: iterations %d must be positive", c.Iterations)
	case c.PopulationSize != 1:
		return fmt.Errorf("config: population size per cell must be 1 (paper setting), got %d", c.PopulationSize)
	case c.TournamentSize <= 0:
		return fmt.Errorf("config: tournament size %d must be positive", c.TournamentSize)
	case c.GridRows <= 0 || c.GridCols <= 0:
		return fmt.Errorf("config: grid %d×%d must be positive", c.GridRows, c.GridCols)
	case c.GridRows > maxGridSide || c.GridCols > maxGridSide:
		// The paper's grids top out at 4×4; the cap keeps decoded configs
		// (checkpoints, wire payloads) from driving huge allocations.
		return fmt.Errorf("config: grid %d×%d exceeds the %d×%d limit", c.GridRows, c.GridCols, maxGridSide, maxGridSide)
	case c.MixtureMutationScale < 0:
		return fmt.Errorf("config: mixture mutation scale %g must be non-negative", c.MixtureMutationScale)
	case c.Neighborhood != "" && c.Neighborhood != "moore5" && c.Neighborhood != "moore9" && c.Neighborhood != "ring4":
		return fmt.Errorf("config: unknown neighbourhood %q (want moore5, moore9 or ring4)", c.Neighborhood)
	case c.Optimizer != "adam" && c.Optimizer != "sgd":
		return fmt.Errorf("config: unsupported optimizer %q", c.Optimizer)
	case c.InitialLearningRate <= 0:
		return fmt.Errorf("config: learning rate %g must be positive", c.InitialLearningRate)
	case c.MutationRate < 0:
		return fmt.Errorf("config: mutation rate %g must be non-negative", c.MutationRate)
	case c.MutationProbability < 0 || c.MutationProbability > 1:
		return fmt.Errorf("config: mutation probability %g must be in [0,1]", c.MutationProbability)
	case c.LossMutationProbability < 0 || c.LossMutationProbability > 1:
		return fmt.Errorf("config: loss mutation probability %g must be in [0,1]", c.LossMutationProbability)
	case c.BatchSize <= 0:
		return fmt.Errorf("config: batch size %d must be positive", c.BatchSize)
	case c.SkipNDiscSteps <= 0:
		return fmt.Errorf("config: skip N disc steps %d must be positive", c.SkipNDiscSteps)
	case c.DatasetSize < 0:
		return fmt.Errorf("config: dataset size %d must be non-negative", c.DatasetSize)
	case c.BatchesPerIteration < 0:
		return fmt.Errorf("config: batches per iteration %d must be non-negative", c.BatchesPerIteration)
	case c.AsyncStaleness < 0:
		return fmt.Errorf("config: async staleness %d must be non-negative", c.AsyncStaleness)
	}
	return nil
}

// validLossSet reports whether every comma-separated loss name is known.
func validLossSet(s string) bool {
	if strings.TrimSpace(s) == "" {
		return true
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "bce", "heuristic", "minimax", "lsgan", "least-squares", "wgan", "wasserstein":
		default:
			return false
		}
	}
	return true
}

// Mustangs returns a copy of c with the full Mustangs loss-function
// evolution enabled: all three losses in the set, redrawn with the same
// probability as the hyperparameter mutation.
func (c Config) Mustangs() Config {
	c.LossSet = "bce,minimax,lsgan"
	c.LossMutationProbability = c.MutationProbability
	return c
}

// Marshal serialises c to JSON for broadcast to slaves.
func (c Config) Marshal() ([]byte, error) { return json.Marshal(c) }

// Unmarshal parses a Config previously produced by Marshal and validates it.
func Unmarshal(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// GeneratorSizes returns the layer sizes of the generator MLP:
// latent → hidden^HiddenLayers → image.
func (c Config) GeneratorSizes() []int {
	sizes := []int{c.InputNeurons}
	for i := 0; i < c.HiddenLayers; i++ {
		sizes = append(sizes, c.NeuronsPerHidden)
	}
	return append(sizes, c.OutputNeurons)
}

// DiscriminatorSizes returns the layer sizes of the discriminator MLP:
// image → hidden^HiddenLayers → 1 (logit).
func (c Config) DiscriminatorSizes() []int {
	sizes := []int{c.OutputNeurons}
	for i := 0; i < c.HiddenLayers; i++ {
		sizes = append(sizes, c.NeuronsPerHidden)
	}
	return append(sizes, 1)
}

// TableI renders the configuration as (parameter, value) rows in the order
// of the paper's Table I.
func (c Config) TableI() [][2]string {
	return [][2]string{
		{"Network type", c.NetworkType},
		{"Input neurons", fmt.Sprint(c.InputNeurons)},
		{"Number of hidden layers", fmt.Sprint(c.HiddenLayers)},
		{"Neurons per hidden layer", fmt.Sprint(c.NeuronsPerHidden)},
		{"Output neurons", fmt.Sprint(c.OutputNeurons)},
		{"Activation function", c.Activation},
		{"Iterations", fmt.Sprint(c.Iterations)},
		{"Population size per cell", fmt.Sprint(c.PopulationSize)},
		{"Tournament size", fmt.Sprint(c.TournamentSize)},
		{"Grid size", fmt.Sprintf("%d×%d", c.GridRows, c.GridCols)},
		{"Mixture mutation scale", fmt.Sprint(c.MixtureMutationScale)},
		{"Optimizer", c.Optimizer},
		{"Initial learning rate", fmt.Sprint(c.InitialLearningRate)},
		{"Mutation rate", fmt.Sprint(c.MutationRate)},
		{"Mutation probability", fmt.Sprint(c.MutationProbability)},
		{"Batch size", fmt.Sprint(c.BatchSize)},
		{"Skip N disc. steps", fmt.Sprint(c.SkipNDiscSteps)},
		{"Number of tasks", fmt.Sprint(c.NumTasks())},
		{"Time limit", c.TimeLimit.String()},
		{"Temporary storage", fmt.Sprintf("%dGB", c.TempStorageGB)},
	}
}
