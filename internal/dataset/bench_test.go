package dataset

import (
	"bytes"
	"testing"

	"cellgan/internal/tensor"
)

func BenchmarkRenderSample(b *testing.B) {
	ds := Train(1)
	buf := make([]float64, Pixels)
	b.SetBytes(int64(8 * Pixels))
	for i := 0; i < b.N; i++ {
		ds.Render(i%ds.N, buf)
	}
}

func BenchmarkBatch100(b *testing.B) {
	ds := Train(1)
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	b.SetBytes(int64(8 * Pixels * 100))
	for i := 0; i < b.N; i++ {
		_, _ = ds.Batch(idx)
	}
}

func BenchmarkLoaderNext(b *testing.B) {
	l := NewLoader(Train(1).WithSize(1000), 100, tensor.NewRNG(1))
	for i := 0; i < b.N; i++ {
		_, _ = l.Next()
	}
}

func BenchmarkIDXEncodeDecode(b *testing.B) {
	m := Materialize(Train(1), 100)
	var ref bytes.Buffer
	if err := WriteIDXImages(&ref, m.Images); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(ref.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteIDXImages(&buf, m.Images); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadIDXImages(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardRender(b *testing.B) {
	sh, err := NewShard(Train(1), 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, Pixels)
	for i := 0; i < b.N; i++ {
		sh.Render(i%sh.Len(), buf)
	}
}
