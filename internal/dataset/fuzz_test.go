package dataset

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// idxImageSeed round-trips a tiny valid image set through WriteIDXImages.
func idxImageSeed(f *testing.F, n int) []byte {
	f.Helper()
	images := make([][]float64, n)
	for i := range images {
		img := make([]float64, Pixels)
		for p := range img {
			img[p] = float64((i+p)%256)/255*2 - 1
		}
		images[i] = img
	}
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, images); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadIDXImages asserts the IDX image decoder never panics and that any
// accepted set is structurally sound.
func FuzzReadIDXImages(f *testing.F) {
	seed := idxImageSeed(f, 3)
	f.Add(seed)
	f.Add(seed[:len(seed)-Pixels/2]) // truncated mid-image
	f.Add(seed[:16])                 // header only
	f.Add(seed[:3])                  // truncated inside the header
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b}) // gzip magic, no stream
	// Valid header declaring a million images over an empty body: must
	// error on the first read, not allocate for the declared count.
	var lie bytes.Buffer
	for _, v := range []uint32{idxMagicImages, 1_000_000, Side, Side} {
		binary.Write(&lie, binary.BigEndian, v)
	}
	f.Add(lie.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		images, err := ReadIDXImages(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, img := range images {
			if len(img) != Pixels {
				t.Fatalf("image %d has %d pixels, want %d", i, len(img), Pixels)
			}
			for p, v := range img {
				if v < -1 || v > 1 {
					t.Fatalf("image %d pixel %d out of [-1,1]: %g", i, p, v)
				}
			}
		}
	})
}

// FuzzReadIDXLabels does the same for the label decoder.
func FuzzReadIDXLabels(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, []int{0, 5, 9, 3}); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add(seed[:8])
	f.Add([]byte{})
	var lie bytes.Buffer
	for _, v := range []uint32{idxMagicLabels, 5_000_000} {
		binary.Write(&lie, binary.BigEndian, v)
	}
	f.Add(lie.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		labels, err := ReadIDXLabels(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, l := range labels {
			if l < 0 || l > 255 {
				t.Fatalf("label %d out of byte range: %d", i, l)
			}
		}
	})
}
