package dataset

import (
	"bytes"
	"compress/gzip"
	"math"
	"path/filepath"
	"testing"

	"cellgan/internal/tensor"
)

func TestIDXImagesRoundTrip(t *testing.T) {
	src := Train(5)
	m := Materialize(src, 30)
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, m.Images); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXImages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("decoded %d images", len(got))
	}
	// 8-bit quantisation: within 1/255 of the original scale (≈0.0079).
	for i := range got {
		for p := range got[i] {
			if math.Abs(got[i][p]-m.Images[i][p]) > 2.0/255+1e-9 {
				t.Fatalf("image %d pixel %d: %v vs %v", i, p, got[i][p], m.Images[i][p])
			}
		}
	}
}

func TestIDXLabelsRoundTrip(t *testing.T) {
	labels := []int{0, 1, 9, 5, 3}
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("decoded %d labels", len(got))
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d: %d vs %d", i, got[i], labels[i])
		}
	}
}

func TestIDXGzipTransparent(t *testing.T) {
	// MNIST ships gzipped; the reader must auto-detect.
	labels := []int{7, 2, 1}
	var plain bytes.Buffer
	if err := WriteIDXLabels(&plain, labels); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXLabels(&gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 {
		t.Fatalf("gz labels %v", got)
	}
}

func TestIDXErrors(t *testing.T) {
	if _, err := ReadIDXImages(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := ReadIDXImages(bytes.NewReader([]byte{0, 0, 8, 1, 0, 0, 0, 0})); err == nil {
		t.Fatal("label magic accepted as images")
	}
	if _, err := ReadIDXLabels(bytes.NewReader([]byte{0, 0, 8, 3, 0, 0, 0, 0})); err == nil {
		t.Fatal("image magic accepted as labels")
	}
	// Wrong geometry.
	var buf bytes.Buffer
	for _, v := range []byte{0, 0, 8, 3, 0, 0, 0, 1, 0, 0, 0, 14, 0, 0, 0, 14} {
		buf.WriteByte(v)
	}
	buf.Write(make([]byte, 14*14))
	if _, err := ReadIDXImages(&buf); err == nil {
		t.Fatal("14×14 images accepted")
	}
	// Truncated body.
	m := Materialize(Train(1), 2)
	var img bytes.Buffer
	if err := WriteIDXImages(&img, m.Images); err != nil {
		t.Fatal(err)
	}
	trunc := img.Bytes()[:img.Len()-10]
	if _, err := ReadIDXImages(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated images accepted")
	}
	if err := WriteIDXLabels(&bytes.Buffer{}, []int{-1}); err == nil {
		t.Fatal("negative label accepted")
	}
	if err := WriteIDXImages(&bytes.Buffer{}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestSaveLoadIDXFiles(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "train-images-idx3-ubyte")
	lblPath := filepath.Join(dir, "train-labels-idx1-ubyte")
	if err := SaveIDX(Train(2), 25, imgPath, lblPath); err != nil {
		t.Fatal(err)
	}
	m, err := LoadIDX(imgPath, lblPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 25 {
		t.Fatalf("loaded %d samples", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels survive exactly.
	for i := 0; i < 25; i++ {
		if m.Label(i) != i%NumClasses {
			t.Fatalf("label %d = %d", i, m.Label(i))
		}
	}
	// Source interface: render and check range.
	buf := make([]float64, Pixels)
	m.Render(0, buf)
	for _, v := range buf {
		if v < -1 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
	if _, err := LoadIDX(filepath.Join(dir, "missing"), lblPath); err == nil {
		t.Fatal("missing image file accepted")
	}
	if _, err := LoadIDX(imgPath, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing label file accepted")
	}
}

func TestInMemoryValidate(t *testing.T) {
	bad := &InMemory{Images: [][]float64{make([]float64, Pixels)}, Labels: []int{0, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("misaligned accepted")
	}
	bad = &InMemory{Images: [][]float64{make([]float64, 5)}, Labels: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("short image accepted")
	}
	bad = &InMemory{Images: [][]float64{make([]float64, Pixels)}, Labels: []int{12}}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestInMemoryWorksWithLoader(t *testing.T) {
	m := Materialize(Train(3), 20)
	l := NewLoader(m, 8, tensor.NewRNG(99))
	x, labels := l.Next()
	if x.Rows != 8 || len(labels) != 8 {
		t.Fatalf("batch %d/%d", x.Rows, len(labels))
	}
}

func TestShardPartitionsSource(t *testing.T) {
	src := Train(4).WithSize(23)
	stride := 4
	covered := map[int]bool{}
	total := 0
	for off := 0; off < stride; off++ {
		sh, err := NewShard(src, off, stride)
		if err != nil {
			t.Fatal(err)
		}
		total += sh.Len()
		for i := 0; i < sh.Len(); i++ {
			idx := off + i*stride
			if covered[idx] {
				t.Fatalf("index %d in two shards", idx)
			}
			covered[idx] = true
			if sh.Label(i) != src.Label(idx) {
				t.Fatalf("shard label mismatch at %d", idx)
			}
		}
	}
	if total != src.Len() {
		t.Fatalf("shards cover %d of %d", total, src.Len())
	}
}

func TestShardRenderMatchesSource(t *testing.T) {
	src := Train(4).WithSize(10)
	sh, err := NewShard(src, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, Pixels)
	b := make([]float64, Pixels)
	sh.Render(2, a)  // shard index 2 = source index 1+2*3 = 7
	src.Render(7, b) //
	for p := range a {
		if a[p] != b[p] {
			t.Fatal("shard render differs from source")
		}
	}
}

func TestShardValidation(t *testing.T) {
	src := Train(1).WithSize(5)
	if _, err := NewShard(src, 0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, err := NewShard(src, 3, 3); err == nil {
		t.Fatal("offset == stride accepted")
	}
	sh, err := NewShard(src, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Len() != 1 {
		t.Fatalf("sparse shard len %d", sh.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard index did not panic")
		}
	}()
	sh.Label(1)
}
