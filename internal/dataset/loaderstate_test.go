package dataset

import (
	"testing"

	"cellgan/internal/tensor"
)

func TestLoaderStateResumesBatchStream(t *testing.T) {
	ds := Train(3).WithSize(37)
	a := NewLoader(ds, 10, tensor.NewRNG(9))
	// Consume a few batches, crossing an epoch boundary.
	for i := 0; i < 5; i++ {
		a.Next()
	}
	state, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	// Reference continuation.
	var wantFirst []int
	x, labels := a.Next()
	_ = x
	wantFirst = append(wantFirst, labels...)

	b := NewLoader(ds, 10, tensor.NewRNG(1)) // different rng; Restore overwrites it
	if err := b.Restore(state); err != nil {
		t.Fatal(err)
	}
	_, gotLabels := b.Next()
	if len(gotLabels) != len(wantFirst) {
		t.Fatalf("batch sizes differ: %d vs %d", len(gotLabels), len(wantFirst))
	}
	for i := range gotLabels {
		if gotLabels[i] != wantFirst[i] {
			t.Fatalf("restored stream diverges at %d", i)
		}
	}
	if b.Epoch() != a.Epoch() {
		t.Fatalf("epoch %d vs %d", b.Epoch(), a.Epoch())
	}
}

func TestLoaderRestoreValidation(t *testing.T) {
	ds := Train(3).WithSize(10)
	l := NewLoader(ds, 5, tensor.NewRNG(1))
	good, err := l.State()
	if err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Perm = good.Perm[:5]
	if err := l.Restore(bad); err == nil {
		t.Fatal("short permutation accepted")
	}
	bad = good
	bad.Cursor = 99
	if err := l.Restore(bad); err == nil {
		t.Fatal("bad cursor accepted")
	}
	bad = good
	dup := append([]int(nil), good.Perm...)
	dup[0] = dup[1]
	bad.Perm = dup
	if err := l.Restore(bad); err == nil {
		t.Fatal("non-permutation accepted")
	}
	bad = good
	bad.RNG = []byte{1}
	if err := l.Restore(bad); err == nil {
		t.Fatal("bad rng state accepted")
	}
}
