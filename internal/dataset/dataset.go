package dataset

import (
	"fmt"
	"math"

	"cellgan/internal/tensor"
)

// Image geometry constants matching MNIST.
const (
	// Side is the width and height of every image in pixels.
	Side = 28
	// Pixels is the flattened image length (Side²).
	Pixels = Side * Side
	// NumClasses is the number of digit classes.
	NumClasses = 10
	// DefaultTrainSize matches the MNIST training split.
	DefaultTrainSize = 60000
	// DefaultTestSize matches the MNIST test split.
	DefaultTestSize = 10000
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Source is any indexed, labelled image collection the training loop can
// consume: the procedural Dataset, an in-memory set loaded from IDX files
// (real MNIST), or a shard of either.
type Source interface {
	// Len returns the number of samples.
	Len() int
	// Label returns the class of sample i.
	Label(i int) int
	// Render rasterises sample i into dst (length Pixels, values in
	// [-1, 1]).
	Render(i int, dst []float64)
}

// BatchOf renders the samples of src at the given indices into a
// len(idx)×Pixels matrix with aligned labels.
func BatchOf(src Source, idx []int) (*tensor.Mat, []int) {
	x := tensor.New(len(idx), Pixels)
	labels := make([]int, len(idx))
	for r, i := range idx {
		src.Render(i, x.Row(r))
		labels[r] = src.Label(i)
	}
	return x, labels
}

// Dataset is a virtual, deterministically generated image collection.
// Sample i is a pure function of (Seed, salt, i); two Datasets with the
// same parameters are interchangeable across processes.
type Dataset struct {
	// N is the number of samples.
	N int
	// Seed keys the whole collection.
	Seed uint64
	// salt separates the train and test streams drawn from one seed.
	salt uint64
}

// Train returns the 60 000-sample training split for seed.
func Train(seed uint64) *Dataset { return &Dataset{N: DefaultTrainSize, Seed: seed, salt: 0x7261696e} }

// Test returns the 10 000-sample held-out split for seed.
func Test(seed uint64) *Dataset { return &Dataset{N: DefaultTestSize, Seed: seed, salt: 0x74657374} }

// WithSize returns a copy of d truncated or extended to n samples.
func (d *Dataset) WithSize(n int) *Dataset {
	if n < 0 {
		panic("dataset: negative size")
	}
	c := *d
	c.N = n
	return &c
}

// Len returns the number of samples (Source interface).
func (d *Dataset) Len() int { return d.N }

// Label returns the class of sample i. Classes are balanced by
// construction (round-robin over the ten digits).
func (d *Dataset) Label(i int) int {
	d.check(i)
	return i % NumClasses
}

func (d *Dataset) check(i int) {
	if i < 0 || i >= d.N {
		panic(fmt.Sprintf("dataset: index %d out of range [0,%d)", i, d.N))
	}
}

// deform holds the per-sample augmentation parameters.
type deform struct {
	dx, dy    float64 // translation in glyph space
	scale     float64 // isotropic scale
	shear     float64 // x-shear as a function of y
	rotate    float64 // rotation in radians
	thickness float64 // stroke half-width in glyph space
	noise     float64 // additive pixel noise std
}

// sampleDeform derives the augmentation for sample i from the dataset key.
func (d *Dataset) sampleDeform(i int) deform {
	rng := tensor.NewRNG(d.Seed ^ d.salt*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9)
	return deform{
		dx:        (rng.Float64() - 0.5) * 0.12,
		dy:        (rng.Float64() - 0.5) * 0.12,
		scale:     0.85 + rng.Float64()*0.3,
		shear:     (rng.Float64() - 0.5) * 0.3,
		rotate:    (rng.Float64() - 0.5) * 0.35,
		thickness: 0.045 + rng.Float64()*0.035,
		noise:     0.02 + rng.Float64()*0.03,
	}
}

// Render rasterises sample i into dst, which must have length Pixels.
// Pixel values land in [-1, 1]: -1 is background, +1 a fully inked stroke.
func (d *Dataset) Render(i int, dst []float64) {
	d.check(i)
	if len(dst) != Pixels {
		panic(fmt.Sprintf("dataset: Render needs a %d-element buffer, got %d", Pixels, len(dst)))
	}
	digit := d.Label(i)
	df := d.sampleDeform(i)
	strokes := transformStrokes(glyphStrokes[digit], df)

	noiseRNG := tensor.NewRNG(d.Seed ^ d.salt ^ uint64(i)*0x94d049bb133111eb ^ 0x6e6f697365)
	inv := 1.0 / float64(Side)
	for py := 0; py < Side; py++ {
		fy := (float64(py) + 0.5) * inv
		for px := 0; px < Side; px++ {
			fx := (float64(px) + 0.5) * inv
			best := math.Inf(1)
			for _, s := range strokes {
				if dist := distToSegment(fx, fy, s); dist < best {
					best = dist
				}
			}
			// Soft-edged stroke: fully inked inside the half-width,
			// fading linearly over one pixel of glyph space.
			ink := 1 - (best-df.thickness)/(1.5*inv)
			if ink > 1 {
				ink = 1
			} else if ink < 0 {
				ink = 0
			}
			v := 2*ink - 1 + noiseRNG.NormFloat64()*df.noise
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			dst[py*Side+px] = v
		}
	}
}

// transformStrokes applies the sample deformation to the glyph skeleton.
func transformStrokes(src []segment, df deform) []segment {
	out := make([]segment, len(src))
	sin, cos := math.Sincos(df.rotate)
	tr := func(x, y float64) (float64, float64) {
		// Centre, shear, rotate, scale, translate, un-centre.
		cx, cy := x-0.5, y-0.5
		cx += df.shear * cy
		rx := cx*cos - cy*sin
		ry := cx*sin + cy*cos
		rx *= df.scale
		ry *= df.scale
		return rx + 0.5 + df.dx, ry + 0.5 + df.dy
	}
	for i, s := range src {
		x1, y1 := tr(s.x1, s.y1)
		x2, y2 := tr(s.x2, s.y2)
		out[i] = segment{x1, y1, x2, y2}
	}
	return out
}

// Sample returns a freshly allocated image and its label.
func (d *Dataset) Sample(i int) ([]float64, int) {
	buf := make([]float64, Pixels)
	d.Render(i, buf)
	return buf, d.Label(i)
}

// Batch renders the samples at the given indices into a len(idx)×Pixels
// matrix and returns it with the aligned labels.
func (d *Dataset) Batch(idx []int) (*tensor.Mat, []int) {
	x := tensor.New(len(idx), Pixels)
	labels := make([]int, len(idx))
	for r, i := range idx {
		d.Render(i, x.Row(r))
		labels[r] = d.Label(i)
	}
	return x, labels
}

// Loader iterates over a data source in shuffled mini-batches,
// re-shuffling every epoch. It is the Go analogue of a PyTorch
// DataLoader.
type Loader struct {
	src       Source
	batchSize int
	rng       *tensor.RNG
	perm      []int
	cursor    int
	epoch     int
}

// NewLoader returns a Loader over src with the given batch size; rng
// drives the per-epoch shuffles.
func NewLoader(src Source, batchSize int, rng *tensor.RNG) *Loader {
	if batchSize <= 0 {
		panic("dataset: batch size must be positive")
	}
	l := &Loader{src: src, batchSize: batchSize, rng: rng}
	l.reshuffle()
	return l
}

func (l *Loader) reshuffle() {
	l.perm = l.rng.Perm(l.src.Len())
	l.cursor = 0
}

// Epoch returns how many complete passes the loader has finished.
func (l *Loader) Epoch() int { return l.epoch }

// Next returns the next mini-batch, wrapping to a new shuffled epoch when
// the current one is exhausted. The final partial batch of an epoch is
// returned as-is (it may be smaller than the batch size).
func (l *Loader) Next() (*tensor.Mat, []int) {
	if l.cursor >= len(l.perm) {
		l.epoch++
		l.reshuffle()
	}
	end := l.cursor + l.batchSize
	if end > len(l.perm) {
		end = len(l.perm)
	}
	idx := l.perm[l.cursor:end]
	l.cursor = end
	return BatchOf(l.src, idx)
}

// BatchesPerEpoch returns the number of Next calls per full pass.
func (l *Loader) BatchesPerEpoch() int {
	return (l.src.Len() + l.batchSize - 1) / l.batchSize
}

// LoaderState is the serialisable position of a Loader within its epoch
// stream, for checkpoint/resume.
type LoaderState struct {
	// Perm is the current epoch's sample order.
	Perm []int `json:"perm"`
	// Cursor is the next index into Perm.
	Cursor int `json:"cursor"`
	// Epoch is the completed-epoch count.
	Epoch int `json:"epoch"`
	// RNG is the shuffle generator's serialised state.
	RNG []byte `json:"rng"`
}

// State snapshots the loader so a restored loader continues with the
// exact same batch sequence.
func (l *Loader) State() (LoaderState, error) {
	rngState, err := l.rng.MarshalBinary()
	if err != nil {
		return LoaderState{}, err
	}
	return LoaderState{
		Perm:   append([]int(nil), l.perm...),
		Cursor: l.cursor,
		Epoch:  l.epoch,
		RNG:    rngState,
	}, nil
}

// Restore overwrites the loader position with a snapshot taken from a
// loader over the same dataset and batch size.
func (l *Loader) Restore(s LoaderState) error {
	if len(s.Perm) != l.src.Len() {
		return fmt.Errorf("dataset: loader state permutation has %d entries, dataset has %d", len(s.Perm), l.src.Len())
	}
	if s.Cursor < 0 || s.Cursor > len(s.Perm) {
		return fmt.Errorf("dataset: loader cursor %d out of range", s.Cursor)
	}
	seen := make([]bool, l.src.Len())
	for _, v := range s.Perm {
		if v < 0 || v >= l.src.Len() || seen[v] {
			return fmt.Errorf("dataset: loader state permutation is not a permutation of [0,%d)", l.src.Len())
		}
		seen[v] = true
	}
	if err := l.rng.UnmarshalBinary(s.RNG); err != nil {
		return err
	}
	l.perm = append(l.perm[:0:0], s.Perm...)
	l.cursor = s.Cursor
	l.epoch = s.Epoch
	return nil
}
