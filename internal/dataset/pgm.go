package dataset

import (
	"fmt"
	"io"
	"strings"
)

// WritePGM writes a [-1,1]-normalised image of the given side length to w
// in the plain-text PGM (P2) format, viewable by most image tools.
func WritePGM(w io.Writer, img []float64, side int) error {
	if len(img) != side*side {
		return fmt.Errorf("dataset: image length %d does not match side %d", len(img), side)
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", side, side); err != nil {
		return err
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := (img[y*side+x] + 1) / 2 * 255
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			sep := " "
			if x == side-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%d%s", int(v+0.5), sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// ASCIIArt renders a [-1,1]-normalised image as a string using a density
// ramp, for quick terminal inspection of generated digits.
func ASCIIArt(img []float64, side int) string {
	ramp := " .:-=+*#%@"
	var b strings.Builder
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := (img[y*side+x] + 1) / 2
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
