// Package dataset provides a deterministic, procedurally generated
// substitute for the MNIST handwritten-digit dataset used in the paper's
// evaluation. MNIST itself cannot be fetched in an offline build, so the
// package renders 28×28 grayscale digits 0–9 from stroke-based glyph
// definitions with per-sample random affine deformation, stroke-thickness
// jitter and pixel noise. The result keeps the properties the paper's
// experiments rely on: ten well-separated modes, a fixed 60k/10k
// train/test split, and pixel values normalised to [-1, 1] (matching the
// tanh output of the generator network).
//
// Every sample is a pure function of (dataset seed, split, index), so the
// "dataset" is virtual: no storage is needed, any subset can be generated
// on demand, and distributed workers see bit-identical data without
// shipping files around — mirroring the paper's "download data" step.
package dataset

// A segment is a straight stroke in glyph space. Glyphs are defined on the
// unit square [0,1]² with (0,0) at the top-left; x grows rightwards and y
// downwards.
type segment struct {
	x1, y1, x2, y2 float64
}

// glyphStrokes defines each digit as a polyline set roughly mimicking
// seven-segment-style handwriting skeletons with a few diagonals so the
// classes are visually distinct.
var glyphStrokes = [10][]segment{
	// 0: rounded rectangle outline
	{
		{0.25, 0.15, 0.75, 0.15},
		{0.75, 0.15, 0.80, 0.50},
		{0.80, 0.50, 0.75, 0.85},
		{0.75, 0.85, 0.25, 0.85},
		{0.25, 0.85, 0.20, 0.50},
		{0.20, 0.50, 0.25, 0.15},
	},
	// 1: vertical bar with a small flag
	{
		{0.50, 0.12, 0.50, 0.88},
		{0.50, 0.12, 0.35, 0.28},
		{0.35, 0.88, 0.65, 0.88},
	},
	// 2: top arc, diagonal, base
	{
		{0.22, 0.25, 0.40, 0.12},
		{0.40, 0.12, 0.68, 0.15},
		{0.68, 0.15, 0.78, 0.35},
		{0.78, 0.35, 0.25, 0.85},
		{0.25, 0.85, 0.80, 0.85},
	},
	// 3: two stacked right-open bumps
	{
		{0.22, 0.15, 0.70, 0.15},
		{0.70, 0.15, 0.78, 0.32},
		{0.78, 0.32, 0.50, 0.48},
		{0.50, 0.48, 0.78, 0.65},
		{0.78, 0.65, 0.70, 0.85},
		{0.70, 0.85, 0.22, 0.85},
	},
	// 4: open top, vertical right stroke
	{
		{0.30, 0.12, 0.22, 0.55},
		{0.22, 0.55, 0.80, 0.55},
		{0.65, 0.12, 0.65, 0.88},
	},
	// 5: top bar, left drop, lower bump
	{
		{0.78, 0.12, 0.25, 0.12},
		{0.25, 0.12, 0.24, 0.45},
		{0.24, 0.45, 0.70, 0.45},
		{0.70, 0.45, 0.78, 0.65},
		{0.78, 0.65, 0.68, 0.85},
		{0.68, 0.85, 0.22, 0.82},
	},
	// 6: descending curve with closed lower loop
	{
		{0.70, 0.12, 0.35, 0.30},
		{0.35, 0.30, 0.22, 0.60},
		{0.22, 0.60, 0.30, 0.85},
		{0.30, 0.85, 0.68, 0.85},
		{0.68, 0.85, 0.75, 0.65},
		{0.75, 0.65, 0.60, 0.50},
		{0.60, 0.50, 0.25, 0.55},
	},
	// 7: top bar and long diagonal
	{
		{0.20, 0.15, 0.80, 0.15},
		{0.80, 0.15, 0.42, 0.88},
		{0.35, 0.50, 0.68, 0.50},
	},
	// 8: two stacked loops
	{
		{0.30, 0.12, 0.70, 0.12},
		{0.70, 0.12, 0.75, 0.30},
		{0.75, 0.30, 0.50, 0.48},
		{0.50, 0.48, 0.25, 0.30},
		{0.25, 0.30, 0.30, 0.12},
		{0.50, 0.48, 0.78, 0.68},
		{0.78, 0.68, 0.70, 0.88},
		{0.70, 0.88, 0.30, 0.88},
		{0.30, 0.88, 0.22, 0.68},
		{0.22, 0.68, 0.50, 0.48},
	},
	// 9: upper loop with descending tail
	{
		{0.70, 0.40, 0.40, 0.48},
		{0.40, 0.48, 0.25, 0.30},
		{0.25, 0.30, 0.35, 0.12},
		{0.35, 0.12, 0.68, 0.12},
		{0.68, 0.12, 0.75, 0.30},
		{0.75, 0.30, 0.70, 0.55},
		{0.70, 0.55, 0.55, 0.88},
	},
}

// distToSegment returns the Euclidean distance from point (px, py) to s.
func distToSegment(px, py float64, s segment) float64 {
	dx := s.x2 - s.x1
	dy := s.y2 - s.y1
	l2 := dx*dx + dy*dy
	var t float64
	if l2 > 0 {
		t = ((px-s.x1)*dx + (py-s.y1)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	cx := s.x1 + t*dx
	cy := s.y1 + t*dy
	ex := px - cx
	ey := py - cy
	return sqrt(ex*ex + ey*ey)
}
