package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cellgan/internal/tensor"
)

func TestSplitSizes(t *testing.T) {
	if Train(1).N != 60000 {
		t.Fatalf("train size %d", Train(1).N)
	}
	if Test(1).N != 10000 {
		t.Fatalf("test size %d", Test(1).N)
	}
}

func TestWithSize(t *testing.T) {
	d := Train(1).WithSize(500)
	if d.N != 500 {
		t.Fatalf("N = %d", d.N)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	d.WithSize(-1)
}

func TestLabelsBalanced(t *testing.T) {
	d := Train(7).WithSize(1000)
	counts := make([]int, NumClasses)
	for i := 0; i < d.N; i++ {
		counts[d.Label(i)]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	d1 := Train(42)
	d2 := Train(42)
	a := make([]float64, Pixels)
	b := make([]float64, Pixels)
	for _, i := range []int{0, 1, 9, 573, 59999} {
		d1.Render(i, a)
		d2.Render(i, b)
		for p := range a {
			if a[p] != b[p] {
				t.Fatalf("sample %d differs at pixel %d", i, p)
			}
		}
	}
}

func TestRenderSeedsDiffer(t *testing.T) {
	a, _ := Train(1).Sample(0)
	b, _ := Train(2).Sample(0)
	same := true
	for p := range a {
		if a[p] != b[p] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestTrainTestStreamsDiffer(t *testing.T) {
	a, _ := Train(1).Sample(0)
	b, _ := Test(1).Sample(0)
	same := true
	for p := range a {
		if a[p] != b[p] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test share samples")
	}
}

func TestPixelRangeAndInk(t *testing.T) {
	d := Train(3)
	img := make([]float64, Pixels)
	for i := 0; i < 20; i++ {
		d.Render(i, img)
		inked := 0
		for _, v := range img {
			if v < -1 || v > 1 {
				t.Fatalf("pixel out of range: %v", v)
			}
			if v > 0 {
				inked++
			}
		}
		// A digit should ink a meaningful but minority share of the canvas.
		if inked < 20 || inked > Pixels/2 {
			t.Fatalf("sample %d has implausible ink coverage %d/%d", i, inked, Pixels)
		}
	}
}

func TestRenderBadArgsPanic(t *testing.T) {
	d := Train(1)
	for name, f := range map[string]func(){
		"short buffer": func() { d.Render(0, make([]float64, 10)) },
		"neg index":    func() { d.Render(-1, make([]float64, Pixels)) },
		"past end":     func() { d.Render(d.N, make([]float64, Pixels)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Mean images of different digits should be far apart relative to
	// within-class scatter; this is what makes mode-collapse measurable.
	d := Train(5)
	means := make([][]float64, NumClasses)
	for c := range means {
		means[c] = make([]float64, Pixels)
	}
	perClass := 20
	img := make([]float64, Pixels)
	for c := 0; c < NumClasses; c++ {
		for k := 0; k < perClass; k++ {
			idx := c + k*NumClasses // label(i) = i mod 10
			d.Render(idx, img)
			for p, v := range img {
				means[c][p] += v / float64(perClass)
			}
		}
	}
	for a := 0; a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			dist := 0.0
			for p := range means[a] {
				dd := means[a][p] - means[b][p]
				dist += dd * dd
			}
			if math.Sqrt(dist) < 1.5 {
				t.Fatalf("digits %d and %d have nearly identical means (dist %v)", a, b, math.Sqrt(dist))
			}
		}
	}
}

func TestBatchShapeAndLabels(t *testing.T) {
	d := Train(6)
	x, labels := d.Batch([]int{0, 11, 22})
	if x.Rows != 3 || x.Cols != Pixels {
		t.Fatalf("batch shape %d×%d", x.Rows, x.Cols)
	}
	want := []int{0, 1, 2}
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("labels %v want %v", labels, want)
		}
	}
	single, _ := d.Sample(11)
	for p, v := range single {
		if x.At(1, p) != v {
			t.Fatal("batch row disagrees with Sample")
		}
	}
}

func TestLoaderCoversEpochExactlyOnce(t *testing.T) {
	d := Train(7).WithSize(25)
	l := NewLoader(d, 10, tensor.NewRNG(1))
	if l.BatchesPerEpoch() != 3 {
		t.Fatalf("BatchesPerEpoch = %d", l.BatchesPerEpoch())
	}
	seen := map[int]int{}
	total := 0
	for b := 0; b < 3; b++ {
		x, labels := l.Next()
		total += x.Rows
		for _, lb := range labels {
			seen[lb]++
		}
	}
	if total != 25 {
		t.Fatalf("epoch covered %d samples", total)
	}
	// 25 samples over 10 classes: classes 0-4 appear 3×, 5-9 appear 2×.
	for c := 0; c < 5; c++ {
		if seen[c] != 3 {
			t.Fatalf("class %d seen %d times", c, seen[c])
		}
	}
	if l.Epoch() != 0 {
		t.Fatalf("epoch counter %d before wrap", l.Epoch())
	}
	l.Next() // wraps
	if l.Epoch() != 1 {
		t.Fatalf("epoch counter %d after wrap", l.Epoch())
	}
}

func TestLoaderShufflesBetweenEpochs(t *testing.T) {
	d := Train(8).WithSize(40)
	l := NewLoader(d, 40, tensor.NewRNG(2))
	_, first := l.Next()
	_, second := l.Next()
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two epochs used identical order")
	}
}

func TestLoaderBadBatchSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLoader(Train(1), 0, tensor.NewRNG(1))
}

func TestQuickRenderAlwaysInRange(t *testing.T) {
	d := Train(11)
	img := make([]float64, Pixels)
	f := func(iRaw uint32) bool {
		i := int(iRaw) % d.N
		d.Render(i, img)
		for _, v := range img {
			if v < -1 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePGM(t *testing.T) {
	img, _ := Train(1).Sample(0)
	var buf bytes.Buffer
	if err := WritePGM(&buf, img, Side); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P2\n28 28\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:20])
	}
	if got := strings.Count(s, "\n"); got != 3+Side {
		t.Fatalf("PGM line count %d", got)
	}
	if err := WritePGM(&buf, img, 5); err == nil {
		t.Fatal("bad side accepted")
	}
}

func TestASCIIArt(t *testing.T) {
	img, _ := Train(1).Sample(1)
	art := ASCIIArt(img, Side)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != Side {
		t.Fatalf("art has %d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != Side {
			t.Fatalf("art line width %d", len(l))
		}
	}
	if !strings.ContainsAny(art, "#%@") {
		t.Fatal("art contains no ink")
	}
}

func TestDistToSegment(t *testing.T) {
	s := segment{0, 0, 1, 0}
	cases := []struct {
		x, y, want float64
	}{
		{0.5, 0, 0},
		{0.5, 0.3, 0.3},
		{-1, 0, 1},
		{2, 0, 1},
		{0, 1, 1},
	}
	for _, c := range cases {
		if got := distToSegment(c.x, c.y, s); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("dist(%v,%v) = %v want %v", c.x, c.y, got, c.want)
		}
	}
	// Degenerate zero-length segment behaves as a point.
	p := segment{0.5, 0.5, 0.5, 0.5}
	if got := distToSegment(0.5, 1.0, p); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("point dist = %v", got)
	}
}

func TestAllGlyphsDefined(t *testing.T) {
	for d, strokes := range glyphStrokes {
		if len(strokes) < 2 {
			t.Fatalf("digit %d has only %d strokes", d, len(strokes))
		}
		for _, s := range strokes {
			for _, v := range []float64{s.x1, s.y1, s.x2, s.y2} {
				if v < 0 || v > 1 {
					t.Fatalf("digit %d stroke out of unit box: %+v", d, s)
				}
			}
		}
	}
}
