package dataset

import "fmt"

// Shard is a strided view of a source: samples offset, offset+stride,
// offset+2·stride, … It implements the "data dieting" scheme of Toutouh
// et al. (the paper's reference [20]): each grid cell trains on a
// disjoint subset of the data, cutting per-cell data volume while the
// neighbourhood exchange keeps the population's coverage complete.
type Shard struct {
	src    Source
	offset int
	stride int
}

// NewShard returns the shard of src with the given offset and stride.
func NewShard(src Source, offset, stride int) (*Shard, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("dataset: shard stride %d must be positive", stride)
	}
	if offset < 0 || offset >= stride {
		return nil, fmt.Errorf("dataset: shard offset %d must be in [0,%d)", offset, stride)
	}
	return &Shard{src: src, offset: offset, stride: stride}, nil
}

// Len returns the number of samples in the shard.
func (s *Shard) Len() int {
	n := s.src.Len() - s.offset
	if n <= 0 {
		return 0
	}
	return (n + s.stride - 1) / s.stride
}

func (s *Shard) index(i int) int {
	if i < 0 || i >= s.Len() {
		panic(fmt.Sprintf("dataset: shard index %d out of range [0,%d)", i, s.Len()))
	}
	return s.offset + i*s.stride
}

// Label returns the class of shard sample i.
func (s *Shard) Label(i int) int { return s.src.Label(s.index(i)) }

// Render rasterises shard sample i into dst.
func (s *Shard) Render(i int, dst []float64) { s.src.Render(s.index(i), dst) }
