package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// IDX is the binary format of the original MNIST distribution
// (yann.lecun.com/exdb/mnist): a magic declaring element type and rank,
// big-endian dimension sizes, then raw data. This file implements enough
// of it to round-trip image and label sets, so the reproduction can train
// on the real MNIST files whenever they are available — the bridge back
// to the paper's exact dataset.
const (
	idxMagicImages = 0x00000803 // uint8, rank 3 (n × rows × cols)
	idxMagicLabels = 0x00000801 // uint8, rank 1
	// maxIDXCount bounds plausible set sizes.
	maxIDXCount = 10_000_000
)

// InMemory is a fully materialised image set implementing Source; it is
// what IDX files load into, and what subsampling/sharding operate on.
type InMemory struct {
	// Images holds one flattened [-1,1] image per sample.
	Images [][]float64
	// Labels holds the aligned class labels.
	Labels []int
}

// Len returns the number of samples.
func (m *InMemory) Len() int { return len(m.Images) }

// Label returns the class of sample i.
func (m *InMemory) Label(i int) int { return m.Labels[i] }

// Render copies sample i into dst.
func (m *InMemory) Render(i int, dst []float64) {
	if len(dst) != len(m.Images[i]) {
		panic(fmt.Sprintf("dataset: Render buffer %d, image %d", len(dst), len(m.Images[i])))
	}
	copy(dst, m.Images[i])
}

// Validate checks structural consistency.
func (m *InMemory) Validate() error {
	if len(m.Images) != len(m.Labels) {
		return fmt.Errorf("dataset: %d images but %d labels", len(m.Images), len(m.Labels))
	}
	for i, img := range m.Images {
		if len(img) != Pixels {
			return fmt.Errorf("dataset: image %d has %d pixels, want %d", i, len(img), Pixels)
		}
		if m.Labels[i] < 0 || m.Labels[i] >= NumClasses {
			return fmt.Errorf("dataset: label %d out of range: %d", i, m.Labels[i])
		}
	}
	return nil
}

// Materialize renders n samples of src into an InMemory set.
func Materialize(src Source, n int) *InMemory {
	if n > src.Len() {
		n = src.Len()
	}
	m := &InMemory{Images: make([][]float64, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		img := make([]float64, Pixels)
		src.Render(i, img)
		m.Images[i] = img
		m.Labels[i] = src.Label(i)
	}
	return m
}

// WriteIDXImages writes images in the MNIST image-file format; pixel
// values are mapped from [-1, 1] to bytes 0-255.
func WriteIDXImages(w io.Writer, images [][]float64) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{idxMagicImages, uint32(len(images)), Side, Side}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return err
		}
	}
	row := make([]byte, Pixels)
	for i, img := range images {
		if len(img) != Pixels {
			return fmt.Errorf("dataset: image %d has %d pixels, want %d", i, len(img), Pixels)
		}
		for p, v := range img {
			b := (v + 1) / 2 * 255
			if b < 0 {
				b = 0
			} else if b > 255 {
				b = 255
			}
			row[p] = byte(b + 0.5)
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteIDXLabels writes labels in the MNIST label-file format.
func WriteIDXLabels(w io.Writer, labels []int) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{idxMagicLabels, uint32(len(labels))} {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for i, l := range labels {
		if l < 0 || l > 255 {
			return fmt.Errorf("dataset: label %d out of byte range: %d", i, l)
		}
		if err := bw.WriteByte(byte(l)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maybeGunzip wraps r with a gzip reader when the stream starts with the
// gzip magic — the MNIST site distributes .gz files.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("dataset: empty IDX stream: %w", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		return gzip.NewReader(br)
	}
	return br, nil
}

// ReadIDXImages parses an (optionally gzipped) MNIST image file, mapping
// bytes 0-255 to pixel values in [-1, 1].
func ReadIDXImages(r io.Reader) ([][]float64, error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(rr, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("dataset: IDX image header: %w", err)
		}
	}
	if hdr[0] != idxMagicImages {
		return nil, fmt.Errorf("dataset: bad IDX image magic %#08x", hdr[0])
	}
	n, rows, cols := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if n < 0 || n > maxIDXCount {
		return nil, fmt.Errorf("dataset: implausible IDX image count %d", n)
	}
	if rows != Side || cols != Side {
		return nil, fmt.Errorf("dataset: IDX images are %d×%d, want %d×%d", rows, cols, Side, Side)
	}
	// Grow with the images actually read: a header declaring millions of
	// images backed by a truncated stream must not pre-allocate for them.
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([][]float64, 0, capHint)
	buf := make([]byte, Pixels)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(rr, buf); err != nil {
			return nil, fmt.Errorf("dataset: IDX image %d: %w", i, err)
		}
		img := make([]float64, Pixels)
		for p, b := range buf {
			img[p] = float64(b)/255*2 - 1
		}
		out = append(out, img)
	}
	return out, nil
}

// ReadIDXLabels parses an (optionally gzipped) MNIST label file.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(rr, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("dataset: IDX label header: %w", err)
		}
	}
	if hdr[0] != idxMagicLabels {
		return nil, fmt.Errorf("dataset: bad IDX label magic %#08x", hdr[0])
	}
	n := int(hdr[1])
	if n < 0 || n > maxIDXCount {
		return nil, fmt.Errorf("dataset: implausible IDX label count %d", n)
	}
	// Same growth discipline as images: trust the bytes, not the header.
	buf, err := io.ReadAll(io.LimitReader(rr, int64(n)))
	if err != nil {
		return nil, fmt.Errorf("dataset: IDX labels: %w", err)
	}
	if len(buf) != n {
		return nil, fmt.Errorf("dataset: IDX labels truncated at %d of %d: %w", len(buf), n, io.ErrUnexpectedEOF)
	}
	out := make([]int, n)
	for i, b := range buf {
		out[i] = int(b)
	}
	return out, nil
}

// LoadIDX reads paired MNIST image and label files (plain or gzipped)
// into an InMemory source — the entry point for training on real MNIST.
func LoadIDX(imagesPath, labelsPath string) (*InMemory, error) {
	imgF, err := os.Open(imagesPath)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer imgF.Close()
	images, err := ReadIDXImages(imgF)
	if err != nil {
		return nil, err
	}
	lblF, err := os.Open(labelsPath)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer lblF.Close()
	labels, err := ReadIDXLabels(lblF)
	if err != nil {
		return nil, err
	}
	m := &InMemory{Images: images, Labels: labels}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveIDX writes a source's first n samples as a paired MNIST-format
// image/label file set.
func SaveIDX(src Source, n int, imagesPath, labelsPath string) error {
	m := Materialize(src, n)
	imgF, err := os.Create(imagesPath)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteIDXImages(imgF, m.Images); err != nil {
		imgF.Close()
		return err
	}
	if err := imgF.Close(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	lblF, err := os.Create(labelsPath)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteIDXLabels(lblF, m.Labels); err != nil {
		lblF.Close()
		return err
	}
	if err := lblF.Close(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}
