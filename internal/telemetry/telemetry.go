// Package telemetry is the shared observability layer of the repository:
// a standard-library metrics registry (counters, gauges, fixed-bucket
// histograms) with lock-free reads, Prometheus-style text exposition, an
// optional JSONL event trace keyed by run seed, and a debug HTTP server
// exposing /metrics and net/http/pprof.
//
// Instruments are written with atomic operations only — no observation
// ever takes a lock or allocates — so they are safe to place on tensor-
// adjacent hot paths without disturbing the allocation tripwires of the
// compute core. Every instrument method tolerates a nil receiver (a
// no-op), so call sites can thread optional instrumentation through
// unconditionally.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down, stored as atomic
// bits so reads never block writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v to the gauge. Safe on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Observations and
// reads are both lock-free; a snapshot taken concurrently with
// observations is monotone per field but not a single atomic cut across
// fields (the count may momentarily exceed the bucket sum by in-flight
// observations), which is the standard exposition-format contract.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf bucket at the end
	sum    atomic.Uint64   // float64 bits
	max    atomic.Uint64   // float64 bits
	total  atomic.Uint64
}

// NewHistogram returns a histogram with the given ascending upper bounds
// (the +Inf bucket is implicit). The bounds slice is not copied.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. A value exactly on a bucket bound counts
// into that bucket (le semantics). Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Max:    math.Float64frombits(h.max.Load()),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sum returns the accumulated sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile returns an upper-bound estimate of the q-quantile; see
// HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a copied histogram state.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per bound, +Inf bucket last
	Sum    float64
	Max    float64
	Count  uint64
}

// Quantile returns an upper-bound estimate of the q-quantile from the
// cumulative bucket counts: the bound of the bucket holding the target
// observation, or the observed max for the +Inf bucket. An empty
// histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous — the standard shape for latency histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}
