package telemetry

import (
	"bufio"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
)

// Field is one numeric key/value pair of a trace event.
type Field struct {
	Key string
	Val float64
}

// F builds a Field.
func F(key string, val float64) Field { return Field{Key: key, Val: val} }

// Trace is an optional JSONL event sink: one JSON object per line, every
// line keyed by the run seed so traces from different runs can be
// concatenated and still separated afterwards. Events carry a
// milliseconds-since-start timestamp and arbitrary numeric fields.
//
// All methods are safe for concurrent use and tolerate a nil receiver,
// so call sites emit unconditionally and a disabled trace costs one nil
// check.
type Trace struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	seed   uint64
	start  time.Time
	buf    []byte
}

// NewTrace returns a trace writing to w, keyed by the run seed.
func NewTrace(w io.Writer, seed uint64) *Trace {
	return &Trace{w: bufio.NewWriter(w), seed: seed, start: time.Now()}
}

// OpenTraceFile creates (truncating) a trace file at path.
func OpenTraceFile(path string, seed uint64) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTrace(f, seed)
	t.closer = f
	return t, nil
}

// appendJSONNumber renders v as a JSON number; NaN and infinities (not
// representable in JSON) become null.
func appendJSONNumber(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Event appends one JSONL line: {"seed":…,"ms":…,"event":…,fields…}.
// Safe on a nil receiver (no-op).
func (t *Trace) Event(event string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	b = append(b, `{"seed":`...)
	b = strconv.AppendUint(b, t.seed, 10)
	b = append(b, `,"ms":`...)
	b = appendJSONNumber(b, float64(time.Since(t.start))/1e6)
	b = append(b, `,"event":`...)
	b = strconv.AppendQuote(b, event)
	for _, f := range fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		b = appendJSONNumber(b, f.Val)
	}
	b = append(b, '}', '\n')
	t.buf = b
	t.w.Write(b) //nolint:errcheck // surfaced by Close/Flush
}

// Flush writes buffered events through to the underlying writer.
func (t *Trace) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// Close flushes and, for file-backed traces, closes the file.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
