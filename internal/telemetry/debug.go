package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux returns the debug endpoint mux: /metrics rendering the
// registry, plus the standard net/http/pprof handlers under
// /debug/pprof/. It deliberately avoids http.DefaultServeMux so
// importing this package never publishes profiling endpoints on servers
// that did not ask for them.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr and serves the debug mux in a
// background goroutine, returning the server (Close it to stop) and the
// bound address (useful with a ":0" port). The debug server is advisory
// instrumentation: serve errors after start are dropped, never fatal to
// the training run it observes.
func StartDebugServer(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewDebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	return srv, ln.Addr().String(), nil
}
