package telemetry

import (
	"fmt"
	"io"
	"sort"

	"cellgan/internal/profile"
)

// AttachProfiler registers a scrape-time collector exposing a
// profile.Profiler's per-routine accumulated timings (the paper's
// Table IV rows) as labelled series:
//
//	<prefix>_profile_seconds_total{routine="train"} 1.52
//	<prefix>_profile_calls_total{routine="train"} 200
//
// The profiler keeps its own locking; the snapshot is taken at scrape
// time so mid-run scrapes see live Table-IV numbers instead of waiting
// for the end-of-run report.
func AttachProfiler(r *Registry, prefix string, p *profile.Profiler) {
	if r == nil || p == nil {
		return
	}
	secName := prefix + "_profile_seconds_total"
	callName := prefix + "_profile_calls_total"
	r.AddCollector(func(w io.Writer) {
		snap := p.Snapshot()
		routines := make([]string, 0, len(snap))
		for k := range snap {
			routines = append(routines, k)
		}
		sort.Strings(routines)
		fmt.Fprintf(w, "# HELP %s Accumulated wall-clock seconds per training routine.\n", secName)
		for _, k := range routines {
			writeSeries(w, secName, fmt.Sprintf("routine=%q", k), fmtFloat(snap[k].Total.Seconds()))
		}
		fmt.Fprintf(w, "# HELP %s Recorded invocations per training routine.\n", callName)
		for _, k := range routines {
			writeSeries(w, callName, fmt.Sprintf("routine=%q", k), fmt.Sprintf("%d", snap[k].Count))
		}
	})
}
