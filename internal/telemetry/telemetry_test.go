package telemetry

import (
	"io"
	"math"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := &Counter{}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := &Gauge{}
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Trace
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Event("x", F("a", 1))
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	r.AddCollector(func(io.Writer) {})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketBoundExact(t *testing.T) {
	// A value exactly on a bucket bound counts into that bucket (le
	// semantics), not the next one.
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(2)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("observe(2) landed in %v, want bucket le=2", s.Counts)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("quantile = %g, want 2", got)
	}
}

func TestHistogramInfBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(250)
	s := h.Snapshot()
	if s.Counts[2] != 2 {
		t.Fatalf("values above the last bound must land in +Inf: %v", s.Counts)
	}
	// Quantiles in the +Inf bucket report the observed max, not +Inf.
	if got := h.Quantile(0.99); got != 250 {
		t.Fatalf("quantile in +Inf bucket = %g, want max 250", got)
	}
	if h.Max() != 250 || h.Count() != 2 || h.Sum() != 350 {
		t.Fatalf("max/count/sum = %g/%d/%g", h.Max(), h.Count(), h.Sum())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram quantile(%g) = %g, want 0", q, got)
		}
	}
	if h.Max() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 8))
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("quantile(%g) = %g < previous %g", q, got, prev)
		}
		prev = got
	}
	if math.IsInf(prev, 1) {
		t.Fatal("quantile must never report +Inf")
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1e-4, 2, 4)
	want := []float64{1e-4, 2e-4, 4e-4, 8e-4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

// TestObserveAllocs pins the zero-allocation contract of the hot-path
// instruments: counters, gauges and histograms must be safe to call from
// tensor-adjacent loops without moving the compute-core alloc tripwires.
func TestObserveAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", ExponentialBuckets(1e-6, 2, 20))
	f := func() {
		c.Inc()
		g.Set(3.25)
		h.Observe(0.0017)
	}
	f()
	if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
		t.Errorf("instrument observation: %.0f allocs per run, want 0", allocs)
	}
}
