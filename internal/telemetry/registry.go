package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the registry entry types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered time series.
type metric struct {
	name   string // base metric name
	labels string // rendered label pairs, e.g. `cell="3"`, may be empty
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn atomic.Pointer[func() float64] // latest registration wins
	hist    *Histogram
}

// Registry holds named instruments and renders them in the Prometheus
// text exposition format. Registration (Counter, Gauge, ...) takes a
// short lock; observations on the returned instruments are lock-free,
// and WriteText copies the metric list under the lock but reads values
// and invokes gauge callbacks outside it — a slow scrape reader or a
// re-entrant callback can never stall an observation.
//
// All methods are safe for concurrent use. A nil *Registry is a valid
// no-op sink: every lookup returns a nil instrument, whose methods are
// themselves no-ops.
type Registry struct {
	mu         sync.Mutex
	order      []*metric
	byKey      map[string]*metric
	collectors []func(io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// register returns the existing entry for (name, labels) or inserts m.
func (r *Registry) register(key string, m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different kind", key))
		}
		return prev
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL is Counter with a rendered label set (e.g. `cell="3"`).
func (r *Registry) CounterL(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(seriesKey(name, labels),
		&metric{name: name, labels: labels, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, "", help)
}

// GaugeL is Gauge with a rendered label set.
func (r *Registry) GaugeL(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(seriesKey(name, labels),
		&metric{name: name, labels: labels, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// scrape time. fn is invoked outside every registry and caller lock, so
// it may itself read other metrics. Re-registering the same name swaps
// in the new callback. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(seriesKey(name, ""),
		&metric{name: name, help: help, kind: kindGaugeFunc})
	m.gaugeFn.Store(&fn)
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it with the given upper bounds on first use. Returns nil (a
// no-op histogram) on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, "", help, bounds)
}

// HistogramL is Histogram with a rendered label set.
func (r *Registry) HistogramL(name, labels, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(seriesKey(name, labels),
		&metric{name: name, labels: labels, help: help, kind: kindHistogram, hist: NewHistogram(bounds)})
	return m.hist
}

// AddCollector registers a scrape-time hook that appends raw exposition
// text (derived metrics such as profiler snapshots). Collectors run
// after the registered instruments, outside the registry lock.
func (r *Registry) AddCollector(fn func(io.Writer)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// fmtFloat renders a float like fmt's %g (integers stay bare: 3 not 3.0).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeSeries renders "name{labels} value\n" with optional labels.
func writeSeries(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

// bucketLabels merges a series' labels with the le bucket label.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

// writeHistogramText renders one histogram series in the exposition
// format, including the non-standard _max line the serving metrics have
// always exposed.
func writeHistogramText(w io.Writer, name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		writeSeries(w, name+"_bucket", bucketLabels(labels, fmtFloat(bound)), strconv.FormatUint(cum, 10))
	}
	cum += s.Counts[len(s.Bounds)]
	writeSeries(w, name+"_bucket", bucketLabels(labels, "+Inf"), strconv.FormatUint(cum, 10))
	writeSeries(w, name+"_sum", labels, fmtFloat(s.Sum))
	writeSeries(w, name+"_count", labels, strconv.FormatUint(s.Count, 10))
	writeSeries(w, name+"_max", labels, fmtFloat(s.Max))
}

// WriteText renders every registered metric (registration order, HELP
// emitted once per metric name) followed by the collectors. Values are
// read atomically and gauge callbacks are invoked without holding any
// lock, so scraping never blocks the instrumented hot paths.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	collectors := make([]func(io.Writer), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	lastHelp := ""
	for _, m := range metrics {
		if m.help != "" && m.name != lastHelp {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
			lastHelp = m.name
		}
		switch m.kind {
		case kindCounter:
			writeSeries(w, m.name, m.labels, strconv.FormatUint(m.counter.Value(), 10))
		case kindGauge:
			writeSeries(w, m.name, m.labels, fmtFloat(m.gauge.Value()))
		case kindGaugeFunc:
			writeSeries(w, m.name, m.labels, fmtFloat((*m.gaugeFn.Load())()))
		case kindHistogram:
			writeHistogramText(w, m.name, m.labels, m.hist.Snapshot())
		}
	}
	for _, fn := range collectors {
		fn(w)
	}
}

// Handler returns an http.Handler serving the text exposition — the
// /metrics endpoint of the debug server.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteText(w)
	})
}
