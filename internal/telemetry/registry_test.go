package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cellgan/internal/profile"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	if r.GaugeL("g", `cell="0"`, "") == r.GaugeL("g", `cell="1"`, "") {
		t.Fatal("distinct label sets must be distinct series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "Requests.").Add(7)
	r.Gauge("depth", "Queue depth.").Set(3)
	r.GaugeFunc("models", "Loaded models.", func() float64 { return 2 })
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	var b bytes.Buffer
	r.WriteText(&b)
	got := b.String()
	for _, want := range []string{
		"# HELP req_total Requests.\n",
		"req_total 7\n",
		"depth 3\n",
		"models 2\n",
		`lat_seconds_bucket{le="0.5"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 3\n",
		"lat_seconds_count 3\n",
		"lat_seconds_max 2\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestWriteTextLabeledSeriesShareHelp(t *testing.T) {
	r := NewRegistry()
	r.GaugeL("loss", `cell="0"`, "Per-cell loss.").Set(1)
	r.GaugeL("loss", `cell="1"`, "Per-cell loss.").Set(2)
	var b bytes.Buffer
	r.WriteText(&b)
	got := b.String()
	if strings.Count(got, "# HELP loss") != 1 {
		t.Fatalf("HELP must be emitted once per metric name:\n%s", got)
	}
	if !strings.Contains(got, `loss{cell="0"} 1`) || !strings.Contains(got, `loss{cell="1"} 2`) {
		t.Fatalf("labelled series missing:\n%s", got)
	}
}

// TestConcurrentObserveScrapeSnapshot drives parallel observers, text
// scrapers and snapshot readers through one registry; run under -race
// this is the concurrency contract of the whole package.
func TestConcurrentObserveScrapeSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat", "", ExponentialBuckets(1e-6, 2, 16))
	r.GaugeFunc("derived", "", func() float64 { return float64(c.Value()) })

	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j) * 1e-6)
				// Registration races with observation and scraping.
				r.CounterL("dyn_total", fmt.Sprintf("w=%q", fmt.Sprint(i)), "").Inc()
			}
		}(i)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			var b bytes.Buffer
			r.WriteText(&b)
			_ = h.Snapshot()
			_ = h.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-scrapeDone
	if c.Value() != writers*perWriter {
		t.Fatalf("ops_total = %d, want %d", c.Value(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
}

func TestGaugeFuncRunsOutsideLock(t *testing.T) {
	// A callback that re-enters the registry (registering and scraping)
	// must not deadlock: callbacks run outside the registry lock.
	r := NewRegistry()
	r.GaugeFunc("reentrant", "", func() float64 {
		return float64(r.Counter("inner_total", "").Value())
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var b bytes.Buffer
		r.WriteText(&b)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteText deadlocked on a re-entrant gauge callback")
	}
}

func TestTraceJSONL(t *testing.T) {
	var b bytes.Buffer
	tr := NewTrace(&b, 42)
	tr.Event("iter", F("cell", 0), F("gen_loss", 0.69))
	tr.Event("iter", F("cell", 1), F("gen_loss", 0.5), F("bad", 0))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&b)
	lines := 0
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if ev["seed"] != float64(42) {
			t.Fatalf("line %d seed = %v, want 42", lines, ev["seed"])
		}
		if ev["event"] != "iter" {
			t.Fatalf("line %d event = %v", lines, ev["event"])
		}
		if _, ok := ev["ms"]; !ok {
			t.Fatalf("line %d missing ms timestamp", lines)
		}
	}
	if lines != 2 {
		t.Fatalf("trace lines = %d, want 2", lines)
	}
}

func TestTraceNonFiniteBecomesNull(t *testing.T) {
	var b bytes.Buffer
	tr := NewTrace(&b, 1)
	nan := 0.0
	tr.Event("x", F("v", nan/nan))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var ev map[string]any
	if err := json.Unmarshal(b.Bytes(), &ev); err != nil {
		t.Fatalf("NaN field broke JSON: %v (%s)", err, b.String())
	}
	if ev["v"] != nil {
		t.Fatalf("NaN must encode as null, got %v", ev["v"])
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	prof := profile.New()
	prof.Add(profile.RoutineTrain, 1500*time.Millisecond)
	AttachProfiler(r, "test", prof)

	srv, addr, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "up_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, `test_profile_seconds_total{routine="train"} 1.5`) {
		t.Fatalf("/metrics missing profiler collector:\n%s", metrics)
	}
	if !strings.Contains(metrics, `test_profile_calls_total{routine="train"} 1`) {
		t.Fatalf("/metrics missing profiler calls:\n%s", metrics)
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("/debug/pprof/ index not served")
	}
}

func TestDebugMuxServesPprofSubpages(t *testing.T) {
	mux := NewDebugMux(NewRegistry())
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/symbol", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof symbol endpoint status %d", rec.Code)
	}
}
