package metrics

import (
	"math"
	"sync"
	"testing"

	"cellgan/internal/dataset"
	"cellgan/internal/tensor"
)

// sharedClassifier trains one classifier for the whole test package; the
// training itself is exercised by TestClassifierLearns.
var (
	clsOnce sync.Once
	cls     *Classifier
	clsErr  error
)

func testClassifier(t *testing.T) *Classifier {
	t.Helper()
	clsOnce.Do(func() {
		cls, clsErr = TrainClassifier(dataset.Train(1), DefaultClassifierOptions(), tensor.NewRNG(7))
	})
	if clsErr != nil {
		t.Fatal(clsErr)
	}
	return cls
}

func TestClassifierOptionValidation(t *testing.T) {
	bad := DefaultClassifierOptions()
	bad.Hidden = 0
	if _, err := TrainClassifier(dataset.Train(1), bad, tensor.NewRNG(1)); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestClassifierLearns(t *testing.T) {
	c := testClassifier(t)
	acc := c.Accuracy(dataset.Test(1), 500)
	if acc < 0.8 {
		t.Fatalf("classifier accuracy %.3f < 0.8 on held-out synthetic digits", acc)
	}
}

func TestClassifierTrainSamplesClamped(t *testing.T) {
	opts := DefaultClassifierOptions()
	opts.TrainSamples = 1 << 30
	opts.Epochs = 1
	ds := dataset.Train(2).WithSize(60)
	if _, err := TrainClassifier(ds, opts, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
}

func TestProbsRowsSumToOne(t *testing.T) {
	c := testClassifier(t)
	x, _ := dataset.Test(1).Batch([]int{0, 1, 2, 3})
	p := c.Probs(x)
	for i := 0; i < p.Rows; i++ {
		s := 0.0
		for _, v := range p.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestFeaturesShape(t *testing.T) {
	c := testClassifier(t)
	x, _ := dataset.Test(1).Batch([]int{0, 1})
	f := c.Features(x)
	if f.Rows != 2 || f.Cols != DefaultClassifierOptions().Hidden {
		t.Fatalf("features %d×%d", f.Rows, f.Cols)
	}
	if f.Min() < -1 || f.Max() > 1 {
		t.Fatal("tanh features out of range")
	}
}

func TestInceptionScoreBounds(t *testing.T) {
	// Constant-class generator → IS = 1.
	collapsed := tensor.New(50, 10)
	for i := 0; i < 50; i++ {
		collapsed.Set(i, 3, 1)
	}
	if got := InceptionScore(collapsed); math.Abs(got-1) > 1e-9 {
		t.Fatalf("collapsed IS = %v want 1", got)
	}
	// Ideal generator: confident predictions, uniform across classes.
	ideal := tensor.New(50, 10)
	for i := 0; i < 50; i++ {
		ideal.Set(i, i%10, 1)
	}
	if got := InceptionScore(ideal); math.Abs(got-10) > 1e-9 {
		t.Fatalf("ideal IS = %v want 10", got)
	}
	// Uncertain generator: uniform p(y|x) → IS = 1.
	uniform := tensor.Full(50, 10, 0.1)
	if got := InceptionScore(uniform); math.Abs(got-1) > 1e-9 {
		t.Fatalf("uniform IS = %v want 1", got)
	}
	if got := InceptionScore(tensor.New(0, 10)); got != 0 {
		t.Fatalf("empty IS = %v", got)
	}
}

func TestInceptionScoreOrdersQuality(t *testing.T) {
	// Two modes covered should score between collapse (1) and ideal (10).
	twoModes := tensor.New(40, 10)
	for i := 0; i < 40; i++ {
		twoModes.Set(i, i%2, 1)
	}
	got := InceptionScore(twoModes)
	if got < 1.9 || got > 2.1 {
		t.Fatalf("two-mode IS = %v want ≈2", got)
	}
}

func TestFrechetDiagIdenticalZero(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := tensor.New(100, 8)
	tensor.GaussianFill(a, 0, 1, rng)
	fd, err := FrechetDiag(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fd) > 1e-9 {
		t.Fatalf("identical FD = %v", fd)
	}
}

func TestFrechetDiagSeparatesDistributions(t *testing.T) {
	rng := tensor.NewRNG(6)
	real := tensor.New(200, 4)
	tensor.GaussianFill(real, 0, 1, rng)
	close := tensor.New(200, 4)
	tensor.GaussianFill(close, 0.1, 1, rng)
	far := tensor.New(200, 4)
	tensor.GaussianFill(far, 3, 0.2, rng)
	fdClose, err := FrechetDiag(real, close)
	if err != nil {
		t.Fatal(err)
	}
	fdFar, err := FrechetDiag(real, far)
	if err != nil {
		t.Fatal(err)
	}
	if fdClose >= fdFar {
		t.Fatalf("FD ordering broken: close %v far %v", fdClose, fdFar)
	}
}

func TestFrechetDiagValidation(t *testing.T) {
	if _, err := FrechetDiag(tensor.New(5, 3), tensor.New(5, 4)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := FrechetDiag(tensor.New(1, 3), tensor.New(5, 3)); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestModeStats(t *testing.T) {
	probs := tensor.New(6, 3)
	preds := []int{0, 0, 2, 2, 2, 0}
	for i, p := range preds {
		probs.Set(i, p, 1)
	}
	hist, coverage := ModeStats(probs)
	if coverage != 2 {
		t.Fatalf("coverage %d", coverage)
	}
	if hist[0] != 3 || hist[1] != 0 || hist[2] != 3 {
		t.Fatalf("hist %v", hist)
	}
}

func TestTVDFromUniform(t *testing.T) {
	if got := TVDFromUniform([]int{10, 10, 10, 10}); got != 0 {
		t.Fatalf("balanced TVD %v", got)
	}
	got := TVDFromUniform([]int{40, 0, 0, 0})
	if math.Abs(got-0.75) > 1e-12 { // 1 - 1/4
		t.Fatalf("collapsed TVD %v want 0.75", got)
	}
	if got := TVDFromUniform(nil); got != 0 {
		t.Fatalf("empty TVD %v", got)
	}
	if got := TVDFromUniform([]int{0, 0}); got != 0 {
		t.Fatalf("zero-total TVD %v", got)
	}
}

func TestEvaluateRealDataScoresWell(t *testing.T) {
	// Real samples presented as "generated" should look excellent: high
	// IS, near-zero Fréchet, full mode coverage.
	c := testClassifier(t)
	ds := dataset.Test(1)
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = 200 + i
	}
	realAsGen, _ := ds.Batch(idx)
	rep, err := Evaluate(c, realAsGen, ds, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InceptionScore < 5 {
		t.Fatalf("IS of real data %v", rep.InceptionScore)
	}
	if rep.ModeCoverage < 9 {
		t.Fatalf("mode coverage of real data %d", rep.ModeCoverage)
	}
	if rep.TVD > 0.15 {
		t.Fatalf("TVD of real data %v", rep.TVD)
	}
}

func TestEvaluateNoiseScoresPoorly(t *testing.T) {
	c := testClassifier(t)
	ds := dataset.Test(1)
	rng := tensor.NewRNG(9)
	noise := tensor.New(200, dataset.Pixels)
	tensor.UniformFill(noise, -1, 1, rng)
	repNoise, err := Evaluate(c, noise, ds, 200)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = i
	}
	realAsGen, _ := ds.Batch(idx)
	repReal, err := Evaluate(c, realAsGen, ds, 200)
	if err != nil {
		t.Fatal(err)
	}
	if repNoise.Frechet <= repReal.Frechet {
		t.Fatalf("noise Fréchet %v should exceed real %v", repNoise.Frechet, repReal.Frechet)
	}
}

func TestEvaluateValidation(t *testing.T) {
	c := testClassifier(t)
	if _, err := Evaluate(c, tensor.New(5, 10), dataset.Test(1), 50); err == nil {
		t.Fatal("wrong pixel count accepted")
	}
}
