// Package metrics implements generator-quality measures for the
// coevolutionary GAN training: an inception-score analogue computed from a
// classifier trained on the synthetic digit dataset, a Fréchet feature
// distance (FID analogue with diagonal covariance), mode-coverage
// statistics for diagnosing mode collapse, and total-variation distance
// from the uniform class distribution.
//
// The paper selects the final generative mixture by fitness "e.g.,
// inception score" (§II-B). The original Inception network is unavailable
// offline; any well-calibrated 10-class classifier yields the same
// exp(E KL(p(y|x) ‖ p(y))) functional, which is what the selection step
// needs.
package metrics

import (
	"fmt"
	"math"

	"cellgan/internal/dataset"
	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// Classifier is a digit classifier whose outputs back the quality metrics.
type Classifier struct {
	net *nn.Network
	// featureCut is the layer index after which activations are taken as
	// the feature embedding for the Fréchet distance.
	featureCut int
}

// ClassifierOptions tunes TrainClassifier.
type ClassifierOptions struct {
	// Hidden is the width of the single hidden layer.
	Hidden int
	// TrainSamples is how many dataset samples to train on.
	TrainSamples int
	// Epochs is the number of passes over the training samples.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// LearningRate is the Adam learning rate.
	LearningRate float64
}

// DefaultClassifierOptions returns settings that reach high accuracy on
// the synthetic digits in a few seconds of CPU time.
func DefaultClassifierOptions() ClassifierOptions {
	return ClassifierOptions{Hidden: 64, TrainSamples: 3000, Epochs: 4, BatchSize: 50, LearningRate: 0.002}
}

// TrainClassifier fits a softmax MLP (Pixels → Hidden → 10) on ds.
func TrainClassifier(ds *dataset.Dataset, opts ClassifierOptions, rng *tensor.RNG) (*Classifier, error) {
	if opts.Hidden <= 0 || opts.TrainSamples <= 0 || opts.Epochs <= 0 || opts.BatchSize <= 0 {
		return nil, fmt.Errorf("metrics: invalid classifier options %+v", opts)
	}
	if opts.TrainSamples > ds.N {
		opts.TrainSamples = ds.N
	}
	net := nn.MLP([]int{dataset.Pixels, opts.Hidden, dataset.NumClasses},
		func() nn.Layer { return nn.NewTanh() }, nil, rng)
	opt := nn.NewAdam(opts.LearningRate)
	sub := ds.WithSize(opts.TrainSamples)
	loader := dataset.NewLoader(sub, opts.BatchSize, rng.Split())
	steps := opts.Epochs * loader.BatchesPerEpoch()
	for s := 0; s < steps; s++ {
		x, labels := loader.Next()
		net.ZeroGrads()
		logits := net.Forward(x)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net)
	}
	// Features are the activations after the hidden tanh (layer index 1).
	return &Classifier{net: net, featureCut: 2}, nil
}

// Logits returns the raw class scores for a batch of images.
func (c *Classifier) Logits(x *tensor.Mat) *tensor.Mat { return c.net.Forward(x) }

// Probs returns row-wise class probabilities for a batch of images.
func (c *Classifier) Probs(x *tensor.Mat) *tensor.Mat { return nn.Softmax(c.net.Forward(x)) }

// Features returns the hidden-layer embedding used by the Fréchet
// distance.
func (c *Classifier) Features(x *tensor.Mat) *tensor.Mat {
	out := x
	for i := 0; i < c.featureCut && i < len(c.net.Layers); i++ {
		out = c.net.Layers[i].Forward(out)
	}
	return out
}

// Accuracy evaluates the classifier on the first n samples of ds.
func (c *Classifier) Accuracy(ds *dataset.Dataset, n int) float64 {
	if n > ds.N {
		n = ds.N
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Batch(idx)
	return nn.Accuracy(c.Logits(x), labels)
}

// InceptionScore computes exp(E_x KL(p(y|x) ‖ p(y))) from a batch of
// per-sample class probabilities (rows sum to 1). Higher is better; the
// score is 1 for a constant-class generator and NumClasses for an ideal
// confident, uniform-over-classes one.
func InceptionScore(probs *tensor.Mat) float64 {
	if probs.Rows == 0 {
		return 0
	}
	k := probs.Cols
	marginal := make([]float64, k)
	for i := 0; i < probs.Rows; i++ {
		for j, v := range probs.Row(i) {
			marginal[j] += v / float64(probs.Rows)
		}
	}
	const eps = 1e-12
	klSum := 0.0
	for i := 0; i < probs.Rows; i++ {
		for j, p := range probs.Row(i) {
			if p > eps {
				klSum += p * math.Log(p/math.Max(marginal[j], eps))
			}
		}
	}
	return math.Exp(klSum / float64(probs.Rows))
}

// FrechetDiag computes a Fréchet distance between two feature batches
// using per-dimension (diagonal-covariance) Gaussian fits:
// ‖μ₁-μ₂‖² + Σ_d (σ₁d² + σ₂d² − 2·σ₁d·σ₂d). It is zero for identical
// distributions and grows as the generated features drift from the real
// ones. The full-covariance FID needs a matrix square root; the diagonal
// form preserves the ranking behaviour the experiments need and is exact
// when features are uncorrelated.
func FrechetDiag(a, b *tensor.Mat) (float64, error) {
	if a.Cols != b.Cols {
		return 0, fmt.Errorf("metrics: feature dims differ: %d vs %d", a.Cols, b.Cols)
	}
	if a.Rows < 2 || b.Rows < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 samples per side, got %d and %d", a.Rows, b.Rows)
	}
	d := a.Cols
	meanVar := func(m *tensor.Mat) ([]float64, []float64) {
		mu := make([]float64, d)
		for i := 0; i < m.Rows; i++ {
			for j, v := range m.Row(i) {
				mu[j] += v / float64(m.Rows)
			}
		}
		va := make([]float64, d)
		for i := 0; i < m.Rows; i++ {
			for j, v := range m.Row(i) {
				dd := v - mu[j]
				va[j] += dd * dd / float64(m.Rows-1)
			}
		}
		return mu, va
	}
	mu1, v1 := meanVar(a)
	mu2, v2 := meanVar(b)
	fd := 0.0
	for j := 0; j < d; j++ {
		dm := mu1[j] - mu2[j]
		fd += dm*dm + v1[j] + v2[j] - 2*math.Sqrt(v1[j]*v2[j])
	}
	return fd, nil
}

// FrechetFull computes the exact Fréchet distance between Gaussian fits
// of two feature batches with full covariance matrices:
// ‖μ₁−μ₂‖² + tr(Σ₁ + Σ₂ − 2(Σ₁Σ₂)^{1/2}). The matrix square root is
// evaluated through the symmetric Jacobi eigendecomposition
// (tensor.TraceSqrtProduct). It coincides with FrechetDiag when features
// are uncorrelated and refines it when they are not.
func FrechetFull(a, b *tensor.Mat) (float64, error) {
	if a.Cols != b.Cols {
		return 0, fmt.Errorf("metrics: feature dims differ: %d vs %d", a.Cols, b.Cols)
	}
	if a.Rows < 2 || b.Rows < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 samples per side, got %d and %d", a.Rows, b.Rows)
	}
	d := a.Cols
	mean := func(m *tensor.Mat) []float64 {
		mu := make([]float64, d)
		for i := 0; i < m.Rows; i++ {
			for j, v := range m.Row(i) {
				mu[j] += v / float64(m.Rows)
			}
		}
		return mu
	}
	mu1, mu2 := mean(a), mean(b)
	cov1, err := tensor.Covariance(a)
	if err != nil {
		return 0, err
	}
	cov2, err := tensor.Covariance(b)
	if err != nil {
		return 0, err
	}
	cross, err := tensor.TraceSqrtProduct(cov1, cov2)
	if err != nil {
		return 0, err
	}
	fd := 0.0
	for j := 0; j < d; j++ {
		dm := mu1[j] - mu2[j]
		fd += dm*dm + cov1.At(j, j) + cov2.At(j, j)
	}
	fd -= 2 * cross
	// Round-off can push an exact zero slightly negative.
	if fd < 0 && fd > -1e-6 {
		fd = 0
	}
	return fd, nil
}

// ModeStats returns the per-class histogram of argmax predictions and the
// number of distinct classes hit — the mode-coverage diagnostic for the
// collapse pathology discussed in the paper's introduction.
func ModeStats(probs *tensor.Mat) (hist []int, coverage int) {
	hist = make([]int, probs.Cols)
	for i := 0; i < probs.Rows; i++ {
		hist[probs.ArgmaxRow(i)]++
	}
	for _, n := range hist {
		if n > 0 {
			coverage++
		}
	}
	return hist, coverage
}

// TVDFromUniform returns the total-variation distance between the
// normalised histogram and the uniform distribution over its bins:
// 0 for perfectly balanced modes, approaching 1-1/k under full collapse.
func TVDFromUniform(hist []int) float64 {
	total := 0
	for _, n := range hist {
		total += n
	}
	if total == 0 || len(hist) == 0 {
		return 0
	}
	u := 1.0 / float64(len(hist))
	tvd := 0.0
	for _, n := range hist {
		tvd += math.Abs(float64(n)/float64(total) - u)
	}
	return tvd / 2
}

// Report bundles every metric for one generator evaluation.
type Report struct {
	InceptionScore float64
	Frechet        float64
	ModeCoverage   int
	TVD            float64
}

// Evaluate scores a batch of generated images against real samples from
// ds using the classifier.
func Evaluate(c *Classifier, generated *tensor.Mat, ds *dataset.Dataset, realSamples int) (Report, error) {
	if generated.Cols != dataset.Pixels {
		return Report{}, fmt.Errorf("metrics: generated images have %d pixels, want %d", generated.Cols, dataset.Pixels)
	}
	if realSamples > ds.N {
		realSamples = ds.N
	}
	probs := c.Probs(generated)
	hist, coverage := ModeStats(probs)
	idx := make([]int, realSamples)
	for i := range idx {
		idx[i] = i
	}
	real, _ := ds.Batch(idx)
	fd, err := FrechetDiag(c.Features(real), c.Features(generated))
	if err != nil {
		return Report{}, err
	}
	return Report{
		InceptionScore: InceptionScore(probs),
		Frechet:        fd,
		ModeCoverage:   coverage,
		TVD:            TVDFromUniform(hist),
	}, nil
}
