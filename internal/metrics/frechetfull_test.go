package metrics

import (
	"math"
	"testing"

	"cellgan/internal/tensor"
)

func TestFrechetFullIdenticalZero(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := tensor.New(200, 6)
	tensor.GaussianFill(a, 0, 1, rng)
	fd, err := FrechetFull(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fd) > 1e-6 {
		t.Fatalf("identical FD = %v", fd)
	}
}

func TestFrechetFullPureMeanShift(t *testing.T) {
	// Same covariance, mean shifted by v: FD = ‖v‖².
	rng := tensor.NewRNG(2)
	a := tensor.New(500, 3)
	tensor.GaussianFill(a, 0, 1, rng)
	b := a.Clone()
	shift := []float64{1, -2, 0.5}
	want := 0.0
	for i := 0; i < b.Rows; i++ {
		row := b.Row(i)
		for j, s := range shift {
			row[j] += s
		}
	}
	for _, s := range shift {
		want += s * s
	}
	fd, err := FrechetFull(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fd-want) > 1e-9 {
		t.Fatalf("FD = %v want %v", fd, want)
	}
}

func TestFrechetFullMatchesDiagOnUncorrelated(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := tensor.New(3000, 3)
	tensor.GaussianFill(a, 0, 1, rng)
	b := tensor.New(3000, 3)
	tensor.GaussianFill(b, 0.3, 1.5, rng)
	full, err := FrechetFull(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := FrechetDiag(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// With independent dimensions the two estimators agree up to
	// finite-sample correlation noise.
	if math.Abs(full-diag) > 0.1*(1+diag) {
		t.Fatalf("full %v vs diag %v on uncorrelated data", full, diag)
	}
}

func TestFrechetFullSeesCorrelationDiagMisses(t *testing.T) {
	// Two zero-mean distributions with identical per-dimension variances
	// but opposite correlation: diagonal FID ≈ 0, full FID > 0.
	rng := tensor.NewRNG(4)
	n := 4000
	a := tensor.New(n, 2)
	b := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		noiseA := rng.NormFloat64() * 0.1
		noiseB := rng.NormFloat64() * 0.1
		a.Set(i, 0, x)
		a.Set(i, 1, x+noiseA) // strongly positively correlated
		y := rng.NormFloat64()
		b.Set(i, 0, y)
		b.Set(i, 1, -y+noiseB) // strongly negatively correlated
	}
	full, err := FrechetFull(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := FrechetDiag(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if full < 10*math.Max(diag, 0.01) {
		t.Fatalf("full FID %v should dwarf diagonal %v on correlation flip", full, diag)
	}
}

func TestFrechetFullOrdersDistance(t *testing.T) {
	rng := tensor.NewRNG(5)
	real := tensor.New(300, 4)
	tensor.GaussianFill(real, 0, 1, rng)
	close := tensor.New(300, 4)
	tensor.GaussianFill(close, 0.1, 1, rng)
	far := tensor.New(300, 4)
	tensor.GaussianFill(far, 2, 0.3, rng)
	fdClose, err := FrechetFull(real, close)
	if err != nil {
		t.Fatal(err)
	}
	fdFar, err := FrechetFull(real, far)
	if err != nil {
		t.Fatal(err)
	}
	if fdClose >= fdFar {
		t.Fatalf("ordering broken: close %v far %v", fdClose, fdFar)
	}
}

func TestFrechetFullValidation(t *testing.T) {
	if _, err := FrechetFull(tensor.New(5, 2), tensor.New(5, 3)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := FrechetFull(tensor.New(1, 2), tensor.New(5, 2)); err == nil {
		t.Fatal("single sample accepted")
	}
}
