package nn

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"cellgan/internal/tensor"
)

// checkGradsWS is checkGrads through the workspace (scratch/Into) path, so
// the im2col backward lowering is validated against numerical
// differentiation independently of the direct-loop oracle.
func checkGradsWS(t *testing.T, net *Network, x *tensor.Mat, loss func(out *tensor.Mat) (float64, *tensor.Mat)) {
	t.Helper()
	ws := NewWorkspace()
	net.ZeroGrads()
	out := net.ForwardWS(ws, x)
	_, dOut := loss(out)
	net.BackwardWS(ws, dOut)
	analytic := net.Grads()

	numeric := numericalGrad(net, func() float64 {
		l, _ := loss(net.ForwardWS(ws, x))
		return l
	}, 1e-6)

	for pi := range analytic {
		for i := range analytic[pi].Data {
			a, n := analytic[pi].Data[i], numeric[pi].Data[i]
			if math.Abs(a-n) > 1e-4*(1+math.Abs(a)+math.Abs(n)) {
				t.Fatalf("param %d elem %d: analytic %v numeric %v", pi, i, a, n)
			}
		}
	}
}

// TestGradCheckConv2DGeometries sweeps awkward geometries — 1×1 kernels
// (with and without stride), asymmetric inputs, pad larger than stride —
// through both the direct and the im2col backward paths.
func TestGradCheckConv2DGeometries(t *testing.T) {
	cases := []struct{ inC, inH, inW, outC, k, s, p int }{
		{1, 5, 7, 2, 1, 1, 0}, // 1×1 kernel, asymmetric input
		{1, 5, 5, 2, 1, 2, 0}, // 1×1 kernel with stride
		{2, 6, 4, 3, 3, 1, 2}, // pad 2, stride 1
		{1, 7, 5, 2, 3, 2, 1}, // strided, padded, asymmetric
		{2, 4, 6, 1, 2, 2, 1}, // even kernel
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("c%d_%dx%d_k%d_s%d_p%d", tc.inC, tc.inH, tc.inW, tc.k, tc.s, tc.p), func(t *testing.T) {
			mk := func() *Network {
				rng := tensor.NewRNG(61)
				conv, err := NewConv2D(tc.inC, tc.inH, tc.inW, tc.outC, tc.k, tc.s, tc.p, rng)
				if err != nil {
					t.Fatalf("conv: %v", err)
				}
				return NewNetwork(conv, NewTanh(), NewLinear(conv.OutputWidth(), 2, rng))
			}
			x := tensor.New(3, tc.inC*tc.inH*tc.inW)
			tensor.GaussianFill(x, 0, 1, tensor.NewRNG(62))
			y := tensor.Full(3, 2, 0.5)
			loss := func(out *tensor.Mat) (float64, *tensor.Mat) { return MSELoss(out, y) }
			checkGrads(t, mk(), x, loss)
			checkGradsWS(t, mk(), x, loss)
		})
	}
}

// TestGradCheckConvTranspose2DGeometries does the same sweep for the
// transposed convolution, including a strided 1×1 kernel whose scatter
// leaves holes in the output.
func TestGradCheckConvTranspose2DGeometries(t *testing.T) {
	cases := []struct{ inC, inH, inW, outC, k, s, p int }{
		{2, 3, 4, 1, 1, 1, 0}, // 1×1 kernel, asymmetric input
		{1, 2, 2, 2, 1, 2, 0}, // strided 1×1: output has untouched holes
		{1, 3, 3, 2, 3, 2, 1}, // DCGAN-style upsample
		{2, 2, 3, 2, 4, 2, 1}, // even kernel, asymmetric
		{1, 4, 2, 1, 3, 3, 2}, // stride 3, pad 2
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("c%d_%dx%d_k%d_s%d_p%d", tc.inC, tc.inH, tc.inW, tc.k, tc.s, tc.p), func(t *testing.T) {
			mk := func() *Network {
				rng := tensor.NewRNG(63)
				ct, err := NewConvTranspose2D(tc.inC, tc.inH, tc.inW, tc.outC, tc.k, tc.s, tc.p, rng)
				if err != nil {
					t.Fatalf("convT: %v", err)
				}
				return NewNetwork(ct, NewTanh(), NewLinear(ct.OutputWidth(), 2, rng))
			}
			x := tensor.New(3, tc.inC*tc.inH*tc.inW)
			tensor.GaussianFill(x, 0, 1, tensor.NewRNG(64))
			y := tensor.Full(3, 2, 0.5)
			loss := func(out *tensor.Mat) (float64, *tensor.Mat) { return MSELoss(out, y) }
			checkGrads(t, mk(), x, loss)
			checkGradsWS(t, mk(), x, loss)
		})
	}
}

// dcganTestPair builds twin (generator, discriminator) conv stacks from
// fixed seeds — a miniature of core/genome.go's CNN topology, plus a
// dropout layer so its Into path is covered too.
func dcganTestPair(t *testing.T) (gen, disc *Network) {
	t.Helper()
	rng := tensor.NewRNG(71)
	ct1, err := NewConvTranspose2D(2, 3, 3, 2, 3, 2, 1, rng) // 2×3×3 → 2×5×5
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := NewConvTranspose2D(2, 5, 5, 1, 3, 1, 1, rng) // 2×5×5 → 1×5×5
	if err != nil {
		t.Fatal(err)
	}
	gen = NewNetwork(NewLinear(6, 2*3*3, rng), NewTanh(), ct1, NewTanh(), ct2, NewTanh())
	c1, err := NewConv2D(1, 5, 5, 3, 3, 2, 1, rng) // 1×5×5 → 3×3×3
	if err != nil {
		t.Fatal(err)
	}
	disc = NewNetwork(c1, NewLeakyReLU(0.2), NewDropout(0.25, tensor.NewRNG(72)), NewLinear(3*3*3, 1, rng))
	return gen, disc
}

// TestConvIterateBitExactWithWorkspace is the conv-stack version of
// core's TestCellIterateBitExactWithWorkspace: twin GAN pairs train with
// Adam — one through workspaces, one through the allocating direct loops —
// and every output, input gradient, parameter gradient and the final
// serialized checkpoint must be byte-identical.
func TestConvIterateBitExactWithWorkspace(t *testing.T) {
	genA, discA := dcganTestPair(t)
	genB, discB := dcganTestPair(t)
	optGA, optDA := NewAdam(2e-3), NewAdam(2e-3)
	optGB, optDB := NewAdam(2e-3), NewAdam(2e-3)
	genWS, discWS := NewWorkspace(), NewWorkspace()
	rngA, rngB := tensor.NewRNG(73), tensor.NewRNG(73)

	step := func(gen, disc *Network, optG, optD Optimizer, gws, dws *Workspace, rng *tensor.RNG) (*tensor.Mat, *tensor.Mat, *tensor.Mat) {
		z := tensor.New(4, 6)
		tensor.GaussianFill(z, 0, 1, rng)
		real := tensor.New(4, 25)
		tensor.GaussianFill(real, 0, 0.5, rng)

		// Discriminator step on real data.
		disc.ZeroGrads()
		logits := disc.ForwardWS(dws, real)
		_, dReal := BCEWithLogitsLoss(logits, tensor.Full(4, 1, 1))
		disc.BackwardWS(dws, dReal)
		optD.Step(disc)

		// Generator step through the discriminator.
		gen.ZeroGrads()
		disc.ZeroGrads()
		fake := gen.ForwardWS(gws, z)
		fLogits := disc.ForwardWS(dws, fake)
		_, dFake := BCEWithLogitsLoss(fLogits, tensor.Full(4, 1, 1))
		dImg := disc.BackwardWS(dws, dFake)
		dz := gen.BackwardWS(gws, dImg)
		optG.Step(gen)
		return fake, fLogits, dz
	}

	for i := 0; i < 4; i++ {
		fakeA, logitsA, dzA := step(genA, discA, optGA, optDA, genWS, discWS, rngA)
		fakeB, logitsB, dzB := step(genB, discB, optGB, optDB, nil, nil, rngB)
		if !fakeA.Equal(fakeB) {
			t.Fatalf("iter %d: generator outputs differ between scratch and direct paths", i)
		}
		if !logitsA.Equal(logitsB) {
			t.Fatalf("iter %d: discriminator logits differ", i)
		}
		if !dzA.Equal(dzB) {
			t.Fatalf("iter %d: latent gradients differ", i)
		}
		ga, gb := genA.Grads(), genB.Grads()
		for pi := range ga {
			if !ga[pi].Equal(gb[pi]) {
				t.Fatalf("iter %d: generator grad %d differs", i, pi)
			}
		}
		da, db := discA.Grads(), discB.Grads()
		for pi := range da {
			if !da[pi].Equal(db[pi]) {
				t.Fatalf("iter %d: discriminator grad %d differs", i, pi)
			}
		}
	}
	for _, pair := range []struct{ a, b *Network }{{genA, genB}, {discA, discB}} {
		pa, err := pair.a.EncodeParams()
		if err != nil {
			t.Fatal(err)
		}
		pb, err := pair.b.EncodeParams()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Fatal("workspace-trained conv checkpoint differs from direct-path checkpoint")
		}
	}
}

// TestDropoutIntoParity pins the Into path of Dropout against the
// allocating path with identical RNG streams, in both train and eval mode.
func TestDropoutIntoParity(t *testing.T) {
	a := NewDropout(0.4, tensor.NewRNG(81))
	b := NewDropout(0.4, tensor.NewRNG(81))
	x := tensor.New(5, 7)
	tensor.GaussianFill(x, 0, 1, tensor.NewRNG(82))
	g := tensor.New(5, 7)
	tensor.GaussianFill(g, 0, 1, tensor.NewRNG(83))

	dst, dstG := new(tensor.Mat), new(tensor.Mat)
	for pass := 0; pass < 3; pass++ {
		outA := a.ForwardInto(dst, x)
		outB := b.Forward(x)
		if !outA.Equal(outB) {
			t.Fatalf("pass %d: dropout ForwardInto differs", pass)
		}
		dxA := a.BackwardInto(dstG, g)
		dxB := b.Backward(g)
		if !dxA.Equal(dxB) {
			t.Fatalf("pass %d: dropout BackwardInto differs", pass)
		}
	}

	a.Train, b.Train = false, false
	if a.ForwardInto(dst, x) != x || b.Forward(x) != x {
		t.Fatal("eval-mode dropout must return the input unchanged")
	}
	if a.BackwardInto(dstG, g) != g {
		t.Fatal("eval-mode dropout backward must pass the gradient through")
	}
}

// TestDropoutIntoAllocs guards the satellite claim: a steady-state
// train-mode dropout pass through the Into path performs zero allocations.
func TestDropoutIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	d := NewDropout(0.3, tensor.NewRNG(84))
	x := tensor.New(8, 16)
	tensor.GaussianFill(x, 0, 1, tensor.NewRNG(85))
	g := tensor.New(8, 16)
	tensor.GaussianFill(g, 0, 1, tensor.NewRNG(86))
	dst, dstG := new(tensor.Mat), new(tensor.Mat)
	pass := func() {
		d.ForwardInto(dst, x)
		d.BackwardInto(dstG, g)
	}
	pass() // warm the mask and destination buffers
	if allocs := testing.AllocsPerRun(20, pass); allocs > 0 {
		t.Errorf("dropout Into pass: %.0f allocs per run, want 0", allocs)
	}
}
