package nn

import (
	"fmt"

	"cellgan/internal/tensor"
)

// The conv layers run in two regimes:
//
//   - The plain Forward/Backward protocol uses direct loops. These are the
//     fallback and the parity oracle: their floating-point operation
//     sequence per output element mirrors the im2col kernel path exactly
//     (same accumulation order, no zero-operand skips so non-finite values
//     propagate, padded taps contributing exact-zero products, bias added
//     last), so both regimes produce bit-identical results.
//   - ForwardScratch/BackwardScratch (the ScratchLayer protocol used by
//     Network.ForwardWS/BackwardWS) lower the convolution onto the
//     ParallelFor-backed matmul kernels via tensor.Im2ColInto/Col2ImInto,
//     with the patch matrices living in workspace-owned LayerScratch
//     buffers — zero steady-state allocations.
//
// Patch-row layout shared by both layers: cols has one row per
// (sample, patch position) and one column per (channel, ky, kx) tap, so
//
//	conv  forward: out = cols × Wᵀ        convT forward: out = col2im(xT × W)
//	conv  ∂W = dOutᵀ × cols               convT ∂W = xTᵀ × gCols
//	conv  ∂in = col2im(dOut × W)          convT ∂in = gCols × Wᵀ
//
// where dOut/xT are position-major views ((sample·pos) × channels) of the
// channel-major activations, and gCols = im2col(grad) over the output grid.

// Conv2D is a 2-D convolution over batches of flattened C×H×W images
// (row-major per sample: channel, then row, then column). It exists for
// the paper's future-work direction — "generation of higher dimensional
// images, such as samples from CIFAR and CelebA" — which needs DCGAN-style
// convolutional generators and discriminators.
type Conv2D struct {
	InC, InH, InW int
	OutC          int
	K             int // square kernel side
	Stride        int
	Pad           int

	// W has shape (OutC) × (InC·K·K); B is 1×OutC.
	W, B   *tensor.Mat
	dW, dB *tensor.Mat

	x *tensor.Mat // cached input
}

// NewConv2D constructs a convolution layer with He-normal weights.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) (*Conv2D, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid conv geometry C%d H%d W%d -> C%d k%d s%d p%d",
			inC, inH, inW, outC, k, stride, pad)
	}
	if (inH+2*pad-k) < 0 || (inW+2*pad-k) < 0 {
		return nil, fmt.Errorf("nn: kernel %d larger than padded input %d×%d", k, inH+2*pad, inW+2*pad)
	}
	if (inH+2*pad-k)%stride != 0 || (inW+2*pad-k)%stride != 0 {
		return nil, fmt.Errorf("nn: conv geometry does not tile: (dim+2·%d−%d) %% %d ≠ 0", pad, k, stride)
	}
	c := &Conv2D{InC: inC, InH: inH, InW: inW, OutC: outC, K: k, Stride: stride, Pad: pad}
	fanIn := inC * k * k
	c.W = tensor.New(outC, fanIn)
	tensor.HeNormal(c.W, fanIn, rng)
	c.B = tensor.New(1, outC)
	c.dW = tensor.New(outC, fanIn)
	c.dB = tensor.New(1, outC)
	return c, nil
}

// OutDims returns the output (channels, height, width).
func (c *Conv2D) OutDims() (outC, outH, outW int) {
	return c.OutC, (c.InH+2*c.Pad-c.K)/c.Stride + 1, (c.InW+2*c.Pad-c.K)/c.Stride + 1
}

// OutputWidth implements Sized.
func (c *Conv2D) OutputWidth() int {
	oc, oh, ow := c.OutDims()
	return oc * oh * ow
}

func (c *Conv2D) inIndex(ch, y, x int) int { return (ch*c.InH+y)*c.InW + x }

// Forward applies the convolution to a batch (rows = samples, each of
// length InC·InH·InW) with a direct loop — the parity oracle for
// ForwardScratch. Each output element is the full tap-order dot product
// (padded taps contribute exact zeros, as the im2col rows do) with the
// bias added last.
func (c *Conv2D) Forward(x *tensor.Mat) *tensor.Mat {
	if x.Cols != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Cols, c.InC*c.InH*c.InW))
	}
	c.x = x
	_, outH, outW := c.OutDims()
	pos := outH * outW
	out := tensor.New(x.Rows, c.OutC*pos)
	tensor.ParallelFor(x.Rows, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Row(b)
			dst := out.Row(b)
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					for oc := 0; oc < c.OutC; oc++ {
						w := c.W.Row(oc)
						s := 0.0
						j := 0
						for ic := 0; ic < c.InC; ic++ {
							for ky := 0; ky < c.K; ky++ {
								iy := oy*c.Stride - c.Pad + ky
								for kx := 0; kx < c.K; kx++ {
									ix := ox*c.Stride - c.Pad + kx
									v := 0.0
									if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
										v = in[c.inIndex(ic, iy, ix)]
									}
									s += v * w[j]
									j++
								}
							}
						}
						dst[oc*pos+oy*outW+ox] = s + c.B.Data[oc]
					}
				}
			}
		}
	})
	return out
}

// Backward accumulates parameter gradients and returns ∂L/∂input, in three
// passes whose accumulation orders mirror the kernels of BackwardScratch
// (AddColSumsInto, AddMatMulT1Into, MatMulInto+Col2ImInto).
func (c *Conv2D) Backward(grad *tensor.Mat) *tensor.Mat {
	if c.x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	_, outH, outW := c.OutDims()
	pos := outH * outW
	// dB: AddColSumsInto order over the position-major gradient — rows are
	// (sample, position), columns the output channels.
	for b := 0; b < grad.Rows; b++ {
		g := grad.Row(b)
		for p := 0; p < pos; p++ {
			for oc := 0; oc < c.OutC; oc++ {
				c.dB.Data[oc] += g[oc*pos+p]
			}
		}
	}
	// dW: AddMatMulT1Into order — (sample, position) rows outermost,
	// padded taps contributing exact-zero products. Zero gradients are NOT
	// skipped: the kernels propagate 0·NaN = NaN, and the oracle must too.
	for b := 0; b < grad.Rows; b++ {
		in := c.x.Row(b)
		g := grad.Row(b)
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				for oc := 0; oc < c.OutC; oc++ {
					gv := g[oc*pos+oy*outW+ox]
					dw := c.dW.Row(oc)
					j := 0
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride - c.Pad + ky
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride - c.Pad + kx
								v := 0.0
								if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
									v = in[c.inIndex(ic, iy, ix)]
								}
								dw[j] += gv * v
								j++
							}
						}
					}
				}
			}
		}
	}
	// dIn: per-(position, tap) partial sums over output channels in
	// MatMulInto order (zero gradients included, matching the kernel's
	// NaN propagation), scatter-added in Col2ImInto's (position, tap)
	// order with out-of-bounds taps dropped.
	dx := tensor.New(c.x.Rows, c.x.Cols)
	tensor.ParallelFor(c.x.Rows, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			g := grad.Row(b)
			dIn := dx.Row(b)
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					j := 0
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride - c.Pad + ky
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride - c.Pad + kx
								if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
									s := 0.0
									for oc := 0; oc < c.OutC; oc++ {
										s += g[oc*pos+oy*outW+ox] * c.W.Row(oc)[j]
									}
									dIn[c.inIndex(ic, iy, ix)] += s
								}
								j++
							}
						}
					}
				}
			}
		}
	})
	return dx
}

// Scratch buffer slots used by the conv layers.
const (
	convScratchCols = 0 // conv: im2col patches · convT: position-major input
	convScratchPos  = 1 // conv: position-major out/grad · convT: xT×W / gCols
	convScratchTmp  = 2 // conv: dOut×W patches · convT: gCols×Wᵀ
)

// ForwardScratch is the im2col lowering of Forward: gather patches, one
// MatMulT2Into against the filter bank, then a position→channel-major
// shuffle with the bias added last. The patch matrix stays cached in s for
// BackwardScratch. Bit-identical to Forward.
func (c *Conv2D) ForwardScratch(s *LayerScratch, dst, x *tensor.Mat) *tensor.Mat {
	if x.Cols != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Cols, c.InC*c.InH*c.InW))
	}
	c.x = x
	_, outH, outW := c.OutDims()
	pos := outH * outW
	cols := tensor.Im2ColInto(s.Buf(convScratchCols), x, c.InC, c.InH, c.InW, c.K, c.Stride, c.Pad, outH, outW)
	out2 := tensor.MatMulT2Into(s.Buf(convScratchPos), cols, c.W)
	dst.Resize(x.Rows, c.OutC*pos)
	bias := c.B.Data
	// Position→channel-major shuffle with the bias added last; a serial
	// reindexing pass (memory-bound, and closure-free keeps the scratch
	// path allocation-free).
	for b := 0; b < x.Rows; b++ {
		drow := dst.Row(b)
		for p := 0; p < pos; p++ {
			srow := out2.Row(b*pos + p)
			for oc, v := range srow {
				drow[oc*pos+p] = v + bias[oc]
			}
		}
	}
	return dst
}

// BackwardScratch is the im2col lowering of Backward: shuffle the gradient
// position-major, fused dB/dW kernels against the cached patch matrix,
// then ∂in = col2im(dOut × W). Bit-identical to Backward.
func (c *Conv2D) BackwardScratch(s *LayerScratch, dst, grad *tensor.Mat) *tensor.Mat {
	_, outH, outW := c.OutDims()
	pos := outH * outW
	cols := s.Buf(convScratchCols)
	if cols.Rows != grad.Rows*pos {
		panic("nn: Conv2D.BackwardScratch without matching ForwardScratch")
	}
	dOut := s.Buf(convScratchPos)
	dOut.Resize(grad.Rows*pos, c.OutC)
	for b := 0; b < grad.Rows; b++ {
		g := grad.Row(b)
		for p := 0; p < pos; p++ {
			drow := dOut.Row(b*pos + p)
			for oc := range drow {
				drow[oc] = g[oc*pos+p]
			}
		}
	}
	tensor.AddColSumsInto(c.dB, dOut)
	tensor.AddMatMulT1Into(c.dW, dOut, cols)
	dcols := tensor.MatMulInto(s.Buf(convScratchTmp), dOut, c.W)
	return tensor.Col2ImInto(dst, dcols, c.InC, c.InH, c.InW, c.K, c.Stride, c.Pad, outH, outW)
}

// Params returns {W, B}.
func (c *Conv2D) Params() []*tensor.Mat { return []*tensor.Mat{c.W, c.B} }

// Grads returns {dW, dB}.
func (c *Conv2D) Grads() []*tensor.Mat { return []*tensor.Mat{c.dW, c.dB} }

// ZeroGrads clears the gradient accumulators.
func (c *Conv2D) ZeroGrads() {
	c.dW.Zero()
	c.dB.Zero()
}

// Clone returns an independent copy.
func (c *Conv2D) Clone() Layer {
	cp := *c
	cp.W = c.W.Clone()
	cp.B = c.B.Clone()
	cp.dW = tensor.New(c.dW.Rows, c.dW.Cols)
	cp.dB = tensor.New(c.dB.Rows, c.dB.Cols)
	cp.x = nil
	return &cp
}

// ConvTranspose2D is the transposed (fractionally-strided) convolution
// DCGAN generators upsample with. Output side = (in−1)·stride − 2·pad + k.
type ConvTranspose2D struct {
	InC, InH, InW int
	OutC          int
	K, Stride     int
	Pad           int

	// W has shape (InC) × (OutC·K·K): the transpose of Conv2D's layout,
	// matching the "gradient of convolution" view.
	W, B   *tensor.Mat
	dW, dB *tensor.Mat

	x *tensor.Mat
}

// NewConvTranspose2D constructs a transposed convolution layer.
func NewConvTranspose2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) (*ConvTranspose2D, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid convT geometry C%d H%d W%d -> C%d k%d s%d p%d",
			inC, inH, inW, outC, k, stride, pad)
	}
	outH := (inH-1)*stride - 2*pad + k
	outW := (inW-1)*stride - 2*pad + k
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: convT output %d×%d not positive", outH, outW)
	}
	t := &ConvTranspose2D{InC: inC, InH: inH, InW: inW, OutC: outC, K: k, Stride: stride, Pad: pad}
	fanIn := inC * k * k
	t.W = tensor.New(inC, outC*k*k)
	tensor.HeNormal(t.W, fanIn, rng)
	t.B = tensor.New(1, outC)
	t.dW = tensor.New(inC, outC*k*k)
	t.dB = tensor.New(1, outC)
	return t, nil
}

// OutDims returns the output (channels, height, width).
func (t *ConvTranspose2D) OutDims() (outC, outH, outW int) {
	return t.OutC, (t.InH-1)*t.Stride - 2*t.Pad + t.K, (t.InW-1)*t.Stride - 2*t.Pad + t.K
}

// OutputWidth implements Sized.
func (t *ConvTranspose2D) OutputWidth() int {
	oc, oh, ow := t.OutDims()
	return oc * oh * ow
}

// addChannelSums accumulates per-channel sums of a channel-major activation
// batch (pos positions per channel) into dB. Shared verbatim by the direct
// and scratch backward passes of ConvTranspose2D so the bias gradient is
// bit-identical by construction.
func addChannelSums(dB []float64, grad *tensor.Mat, channels, pos int) {
	for b := 0; b < grad.Rows; b++ {
		g := grad.Row(b)
		for ch := 0; ch < channels; ch++ {
			base := ch * pos
			s := 0.0
			for i := 0; i < pos; i++ {
				s += g[base+i]
			}
			dB[ch] += s
		}
	}
}

// Forward scatters each input activation through the kernel into the
// upsampled, bias-seeded output — the parity oracle for ForwardScratch.
// Per scatter target the contributions accumulate over input channels
// (zero activations included, matching the matmul kernel's non-finite
// propagation), and targets are visited in (input position, tap) order,
// matching AddCol2ImInto.
func (t *ConvTranspose2D) Forward(x *tensor.Mat) *tensor.Mat {
	if x.Cols != t.InC*t.InH*t.InW {
		panic(fmt.Sprintf("nn: ConvTranspose2D input width %d, want %d", x.Cols, t.InC*t.InH*t.InW))
	}
	t.x = x
	_, outH, outW := t.OutDims()
	outPos := outH * outW
	inPos := t.InH * t.InW
	out := tensor.New(x.Rows, t.OutC*outPos)
	tensor.ParallelFor(x.Rows, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Row(b)
			dst := out.Row(b)
			// Bias first; scatter contributions accumulate on top.
			for oc := 0; oc < t.OutC; oc++ {
				base := oc * outPos
				bias := t.B.Data[oc]
				for i := 0; i < outPos; i++ {
					dst[base+i] = bias
				}
			}
			for iy := 0; iy < t.InH; iy++ {
				for ix := 0; ix < t.InW; ix++ {
					j := 0
					for oc := 0; oc < t.OutC; oc++ {
						for ky := 0; ky < t.K; ky++ {
							oy := iy*t.Stride - t.Pad + ky
							for kx := 0; kx < t.K; kx++ {
								ox := ix*t.Stride - t.Pad + kx
								if oy >= 0 && oy < outH && ox >= 0 && ox < outW {
									s := 0.0
									for ic := 0; ic < t.InC; ic++ {
										s += in[ic*inPos+iy*t.InW+ix] * t.W.Row(ic)[j]
									}
									dst[(oc*outH+oy)*outW+ox] += s
								}
								j++
							}
						}
					}
				}
			}
		}
	})
	return out
}

// Backward accumulates gradients and returns ∂L/∂input, mirroring the
// kernel orders of BackwardScratch (addChannelSums, AddMatMulT1Into over
// position-major activations, MatMulT2Into full dots in tap order).
func (t *ConvTranspose2D) Backward(grad *tensor.Mat) *tensor.Mat {
	if t.x == nil {
		panic("nn: ConvTranspose2D.Backward before Forward")
	}
	_, outH, outW := t.OutDims()
	outPos := outH * outW
	inPos := t.InH * t.InW
	addChannelSums(t.dB.Data, grad, t.OutC, outPos)
	// dW: AddMatMulT1Into order — (sample, input position) rows outermost,
	// out-of-bounds taps contributing exact-zero gradient operands. Zero
	// activations are NOT skipped: 0·NaN must stay NaN, as in the kernels.
	for b := 0; b < grad.Rows; b++ {
		in := t.x.Row(b)
		g := grad.Row(b)
		for iy := 0; iy < t.InH; iy++ {
			for ix := 0; ix < t.InW; ix++ {
				for ic := 0; ic < t.InC; ic++ {
					v := in[ic*inPos+iy*t.InW+ix]
					dw := t.dW.Row(ic)
					j := 0
					for oc := 0; oc < t.OutC; oc++ {
						for ky := 0; ky < t.K; ky++ {
							oy := iy*t.Stride - t.Pad + ky
							for kx := 0; kx < t.K; kx++ {
								ox := ix*t.Stride - t.Pad + kx
								gv := 0.0
								if oy >= 0 && oy < outH && ox >= 0 && ox < outW {
									gv = g[(oc*outH+oy)*outW+ox]
								}
								dw[j] += v * gv
								j++
							}
						}
					}
				}
			}
		}
	}
	// dIn: MatMulT2Into order — one full dot per (input position, input
	// channel) in tap order, no skips, out-of-bounds taps reading zero.
	dx := tensor.New(t.x.Rows, t.x.Cols)
	tensor.ParallelFor(t.x.Rows, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			g := grad.Row(b)
			dIn := dx.Row(b)
			for iy := 0; iy < t.InH; iy++ {
				for ix := 0; ix < t.InW; ix++ {
					for ic := 0; ic < t.InC; ic++ {
						w := t.W.Row(ic)
						s := 0.0
						j := 0
						for oc := 0; oc < t.OutC; oc++ {
							for ky := 0; ky < t.K; ky++ {
								oy := iy*t.Stride - t.Pad + ky
								for kx := 0; kx < t.K; kx++ {
									ox := ix*t.Stride - t.Pad + kx
									gv := 0.0
									if oy >= 0 && oy < outH && ox >= 0 && ox < outW {
										gv = g[(oc*outH+oy)*outW+ox]
									}
									s += gv * w[j]
									j++
								}
							}
						}
						dIn[ic*inPos+iy*t.InW+ix] = s
					}
				}
			}
		}
	})
	return dx
}

// ForwardScratch lowers the transposed convolution onto the matmul
// kernels: gather the input position-major (xT, cached in s for the
// backward pass), one MatMulInto against the filter bank, then
// scatter-add into the bias-seeded output via AddCol2ImInto (the patch
// grid is the *input* grid here). Bit-identical to Forward.
func (t *ConvTranspose2D) ForwardScratch(s *LayerScratch, dst, x *tensor.Mat) *tensor.Mat {
	if x.Cols != t.InC*t.InH*t.InW {
		panic(fmt.Sprintf("nn: ConvTranspose2D input width %d, want %d", x.Cols, t.InC*t.InH*t.InW))
	}
	t.x = x
	_, outH, outW := t.OutDims()
	outPos := outH * outW
	inPos := t.InH * t.InW
	xT := s.Buf(convScratchCols)
	xT.Resize(x.Rows*inPos, t.InC)
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		for p := 0; p < inPos; p++ {
			xrow := xT.Row(b*inPos + p)
			for ic := range xrow {
				xrow[ic] = in[ic*inPos+p]
			}
		}
	}
	m := tensor.MatMulInto(s.Buf(convScratchPos), xT, t.W)
	dst.Resize(x.Rows, t.OutC*outPos)
	bias := t.B.Data
	for b := 0; b < x.Rows; b++ {
		drow := dst.Row(b)
		for oc := 0; oc < t.OutC; oc++ {
			base := oc * outPos
			bv := bias[oc]
			for i := 0; i < outPos; i++ {
				drow[base+i] = bv
			}
		}
	}
	return tensor.AddCol2ImInto(dst, m, t.OutC, outH, outW, t.K, t.Stride, t.Pad, t.InH, t.InW)
}

// BackwardScratch gathers the output gradient into patch rows over the
// input grid (gCols = im2col(grad)), then dB/dW/∂in all ride the fused
// kernels against the cached position-major input. Bit-identical to
// Backward.
func (t *ConvTranspose2D) BackwardScratch(s *LayerScratch, dst, grad *tensor.Mat) *tensor.Mat {
	_, outH, outW := t.OutDims()
	outPos := outH * outW
	inPos := t.InH * t.InW
	xT := s.Buf(convScratchCols)
	if xT.Rows != grad.Rows*inPos {
		panic("nn: ConvTranspose2D.BackwardScratch without matching ForwardScratch")
	}
	gCols := tensor.Im2ColInto(s.Buf(convScratchPos), grad, t.OutC, outH, outW, t.K, t.Stride, t.Pad, t.InH, t.InW)
	addChannelSums(t.dB.Data, grad, t.OutC, outPos)
	tensor.AddMatMulT1Into(t.dW, xT, gCols)
	dxT := tensor.MatMulT2Into(s.Buf(convScratchTmp), gCols, t.W)
	dst.Resize(grad.Rows, t.InC*inPos)
	for b := 0; b < grad.Rows; b++ {
		dIn := dst.Row(b)
		for p := 0; p < inPos; p++ {
			drow := dxT.Row(b*inPos + p)
			for ic, v := range drow {
				dIn[ic*inPos+p] = v
			}
		}
	}
	return dst
}

// Params returns {W, B}.
func (t *ConvTranspose2D) Params() []*tensor.Mat { return []*tensor.Mat{t.W, t.B} }

// Grads returns {dW, dB}.
func (t *ConvTranspose2D) Grads() []*tensor.Mat { return []*tensor.Mat{t.dW, t.dB} }

// ZeroGrads clears the gradient accumulators.
func (t *ConvTranspose2D) ZeroGrads() {
	t.dW.Zero()
	t.dB.Zero()
}

// Clone returns an independent copy.
func (t *ConvTranspose2D) Clone() Layer {
	cp := *t
	cp.W = t.W.Clone()
	cp.B = t.B.Clone()
	cp.dW = tensor.New(t.dW.Rows, t.dW.Cols)
	cp.dB = tensor.New(t.dB.Rows, t.dB.Cols)
	cp.x = nil
	return &cp
}

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout). Outside training
// (Train == false) it is the identity.
type Dropout struct {
	statelessBase
	P      float64
	Train  bool
	rng    *tensor.RNG
	mask   *tensor.Mat // persistent mask buffer, reused across passes
	active bool        // whether mask applies to the most recent Forward
}

// NewDropout returns a Dropout layer in training mode.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, Train: true, rng: rng}
}

// Forward applies the dropout mask (or passes through in eval mode).
func (d *Dropout) Forward(x *tensor.Mat) *tensor.Mat {
	return d.ForwardInto(new(tensor.Mat), x)
}

// ForwardInto is Forward writing into dst. The mask buffer is owned by the
// layer and reused across passes, so a steady-state training iteration
// performs no allocations. In eval mode the input is returned unchanged
// (dst untouched). One rng draw is consumed per element, identically in
// both regimes.
func (d *Dropout) ForwardInto(dst, x *tensor.Mat) *tensor.Mat {
	if !d.Train || d.P == 0 {
		d.active = false
		return x
	}
	d.active = true
	if d.mask == nil {
		d.mask = new(tensor.Mat)
	}
	d.mask.Resize(x.Rows, x.Cols)
	dst.Resize(x.Rows, x.Cols)
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask.Data[i] = scale
			dst.Data[i] = v * scale
		} else {
			d.mask.Data[i] = 0
			dst.Data[i] = 0
		}
	}
	return dst
}

// Backward masks the incoming gradient identically.
func (d *Dropout) Backward(grad *tensor.Mat) *tensor.Mat {
	if !d.active {
		return grad
	}
	return d.BackwardInto(new(tensor.Mat), grad)
}

// BackwardInto is Backward writing the masked gradient into dst. In eval
// mode the gradient passes through unchanged (dst untouched).
func (d *Dropout) BackwardInto(dst, grad *tensor.Mat) *tensor.Mat {
	if !d.active {
		return grad
	}
	dst.Resize(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		dst.Data[i] = g * d.mask.Data[i]
	}
	return dst
}

// Clone returns a fresh dropout layer sharing probability but not RNG
// state.
func (d *Dropout) Clone() Layer {
	return &Dropout{P: d.P, Train: d.Train, rng: d.rng.Split()}
}
