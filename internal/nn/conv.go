package nn

import (
	"fmt"

	"cellgan/internal/tensor"
)

// Conv2D is a 2-D convolution over batches of flattened C×H×W images
// (row-major per sample: channel, then row, then column). It exists for
// the paper's future-work direction — "generation of higher dimensional
// images, such as samples from CIFAR and CelebA" — which needs DCGAN-style
// convolutional generators and discriminators.
type Conv2D struct {
	InC, InH, InW int
	OutC          int
	K             int // square kernel side
	Stride        int
	Pad           int

	// W has shape (OutC) × (InC·K·K); B is 1×OutC.
	W, B   *tensor.Mat
	dW, dB *tensor.Mat

	x *tensor.Mat // cached input
}

// NewConv2D constructs a convolution layer with He-normal weights.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) (*Conv2D, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid conv geometry C%d H%d W%d -> C%d k%d s%d p%d",
			inC, inH, inW, outC, k, stride, pad)
	}
	if (inH+2*pad-k) < 0 || (inW+2*pad-k) < 0 {
		return nil, fmt.Errorf("nn: kernel %d larger than padded input %d×%d", k, inH+2*pad, inW+2*pad)
	}
	if (inH+2*pad-k)%stride != 0 || (inW+2*pad-k)%stride != 0 {
		return nil, fmt.Errorf("nn: conv geometry does not tile: (dim+2·%d−%d) %% %d ≠ 0", pad, k, stride)
	}
	c := &Conv2D{InC: inC, InH: inH, InW: inW, OutC: outC, K: k, Stride: stride, Pad: pad}
	fanIn := inC * k * k
	c.W = tensor.New(outC, fanIn)
	tensor.HeNormal(c.W, fanIn, rng)
	c.B = tensor.New(1, outC)
	c.dW = tensor.New(outC, fanIn)
	c.dB = tensor.New(1, outC)
	return c, nil
}

// OutDims returns the output (channels, height, width).
func (c *Conv2D) OutDims() (outC, outH, outW int) {
	return c.OutC, (c.InH+2*c.Pad-c.K)/c.Stride + 1, (c.InW+2*c.Pad-c.K)/c.Stride + 1
}

// OutputWidth implements Sized.
func (c *Conv2D) OutputWidth() int {
	oc, oh, ow := c.OutDims()
	return oc * oh * ow
}

func (c *Conv2D) inIndex(ch, y, x int) int  { return (ch*c.InH+y)*c.InW + x }
func (c *Conv2D) wIndex(ic, ky, kx int) int { return (ic*c.K+ky)*c.K + kx }

// Forward applies the convolution to a batch (rows = samples, each of
// length InC·InH·InW).
func (c *Conv2D) Forward(x *tensor.Mat) *tensor.Mat {
	if x.Cols != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Cols, c.InC*c.InH*c.InW))
	}
	c.x = x
	_, outH, outW := c.OutDims()
	out := tensor.New(x.Rows, c.OutC*outH*outW)
	tensor.ParallelFor(x.Rows, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Row(b)
			dst := out.Row(b)
			for oc := 0; oc < c.OutC; oc++ {
				w := c.W.Row(oc)
				bias := c.B.Data[oc]
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						sum := bias
						for ic := 0; ic < c.InC; ic++ {
							for ky := 0; ky < c.K; ky++ {
								iy := oy*c.Stride - c.Pad + ky
								if iy < 0 || iy >= c.InH {
									continue
								}
								for kx := 0; kx < c.K; kx++ {
									ix := ox*c.Stride - c.Pad + kx
									if ix < 0 || ix >= c.InW {
										continue
									}
									sum += w[c.wIndex(ic, ky, kx)] * in[c.inIndex(ic, iy, ix)]
								}
							}
						}
						dst[(oc*outH+oy)*outW+ox] = sum
					}
				}
			}
		}
	})
	return out
}

// Backward accumulates parameter gradients and returns ∂L/∂input.
func (c *Conv2D) Backward(grad *tensor.Mat) *tensor.Mat {
	if c.x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	_, outH, outW := c.OutDims()
	dx := tensor.New(c.x.Rows, c.x.Cols)
	for b := 0; b < c.x.Rows; b++ {
		in := c.x.Row(b)
		g := grad.Row(b)
		dIn := dx.Row(b)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.Row(oc)
			dw := c.dW.Row(oc)
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					gv := g[(oc*outH+oy)*outW+ox]
					if gv == 0 {
						continue
					}
					c.dB.Data[oc] += gv
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride - c.Pad + ky
							if iy < 0 || iy >= c.InH {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride - c.Pad + kx
								if ix < 0 || ix >= c.InW {
									continue
								}
								dw[c.wIndex(ic, ky, kx)] += gv * in[c.inIndex(ic, iy, ix)]
								dIn[c.inIndex(ic, iy, ix)] += gv * w[c.wIndex(ic, ky, kx)]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns {W, B}.
func (c *Conv2D) Params() []*tensor.Mat { return []*tensor.Mat{c.W, c.B} }

// Grads returns {dW, dB}.
func (c *Conv2D) Grads() []*tensor.Mat { return []*tensor.Mat{c.dW, c.dB} }

// ZeroGrads clears the gradient accumulators.
func (c *Conv2D) ZeroGrads() {
	c.dW.Zero()
	c.dB.Zero()
}

// Clone returns an independent copy.
func (c *Conv2D) Clone() Layer {
	cp := *c
	cp.W = c.W.Clone()
	cp.B = c.B.Clone()
	cp.dW = tensor.New(c.dW.Rows, c.dW.Cols)
	cp.dB = tensor.New(c.dB.Rows, c.dB.Cols)
	cp.x = nil
	return &cp
}

// ConvTranspose2D is the transposed (fractionally-strided) convolution
// DCGAN generators upsample with. Output side = (in−1)·stride − 2·pad + k.
type ConvTranspose2D struct {
	InC, InH, InW int
	OutC          int
	K, Stride     int
	Pad           int

	// W has shape (InC) × (OutC·K·K): the transpose of Conv2D's layout,
	// matching the "gradient of convolution" view.
	W, B   *tensor.Mat
	dW, dB *tensor.Mat

	x *tensor.Mat
}

// NewConvTranspose2D constructs a transposed convolution layer.
func NewConvTranspose2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) (*ConvTranspose2D, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid convT geometry C%d H%d W%d -> C%d k%d s%d p%d",
			inC, inH, inW, outC, k, stride, pad)
	}
	outH := (inH-1)*stride - 2*pad + k
	outW := (inW-1)*stride - 2*pad + k
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: convT output %d×%d not positive", outH, outW)
	}
	t := &ConvTranspose2D{InC: inC, InH: inH, InW: inW, OutC: outC, K: k, Stride: stride, Pad: pad}
	fanIn := inC * k * k
	t.W = tensor.New(inC, outC*k*k)
	tensor.HeNormal(t.W, fanIn, rng)
	t.B = tensor.New(1, outC)
	t.dW = tensor.New(inC, outC*k*k)
	t.dB = tensor.New(1, outC)
	return t, nil
}

// OutDims returns the output (channels, height, width).
func (t *ConvTranspose2D) OutDims() (outC, outH, outW int) {
	return t.OutC, (t.InH-1)*t.Stride - 2*t.Pad + t.K, (t.InW-1)*t.Stride - 2*t.Pad + t.K
}

// OutputWidth implements Sized.
func (t *ConvTranspose2D) OutputWidth() int {
	oc, oh, ow := t.OutDims()
	return oc * oh * ow
}

func (t *ConvTranspose2D) wIndex(oc, ky, kx int) int { return (oc*t.K+ky)*t.K + kx }

// Forward scatters each input activation through the kernel into the
// upsampled output.
func (t *ConvTranspose2D) Forward(x *tensor.Mat) *tensor.Mat {
	if x.Cols != t.InC*t.InH*t.InW {
		panic(fmt.Sprintf("nn: ConvTranspose2D input width %d, want %d", x.Cols, t.InC*t.InH*t.InW))
	}
	t.x = x
	_, outH, outW := t.OutDims()
	out := tensor.New(x.Rows, t.OutC*outH*outW)
	tensor.ParallelFor(x.Rows, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Row(b)
			dst := out.Row(b)
			// Bias first.
			for oc := 0; oc < t.OutC; oc++ {
				base := oc * outH * outW
				bias := t.B.Data[oc]
				for i := 0; i < outH*outW; i++ {
					dst[base+i] = bias
				}
			}
			for ic := 0; ic < t.InC; ic++ {
				w := t.W.Row(ic)
				for iy := 0; iy < t.InH; iy++ {
					for ix := 0; ix < t.InW; ix++ {
						v := in[(ic*t.InH+iy)*t.InW+ix]
						if v == 0 {
							continue
						}
						for oc := 0; oc < t.OutC; oc++ {
							for ky := 0; ky < t.K; ky++ {
								oy := iy*t.Stride - t.Pad + ky
								if oy < 0 || oy >= outH {
									continue
								}
								for kx := 0; kx < t.K; kx++ {
									ox := ix*t.Stride - t.Pad + kx
									if ox < 0 || ox >= outW {
										continue
									}
									dst[(oc*outH+oy)*outW+ox] += v * w[t.wIndex(oc, ky, kx)]
								}
							}
						}
					}
				}
			}
		}
	})
	return out
}

// Backward accumulates gradients and returns ∂L/∂input (a gather, the
// mirror of the forward scatter).
func (t *ConvTranspose2D) Backward(grad *tensor.Mat) *tensor.Mat {
	if t.x == nil {
		panic("nn: ConvTranspose2D.Backward before Forward")
	}
	_, outH, outW := t.OutDims()
	dx := tensor.New(t.x.Rows, t.x.Cols)
	for b := 0; b < t.x.Rows; b++ {
		in := t.x.Row(b)
		g := grad.Row(b)
		dIn := dx.Row(b)
		// Bias gradient: sum over all output positions per channel.
		for oc := 0; oc < t.OutC; oc++ {
			base := oc * outH * outW
			s := 0.0
			for i := 0; i < outH*outW; i++ {
				s += g[base+i]
			}
			t.dB.Data[oc] += s
		}
		for ic := 0; ic < t.InC; ic++ {
			w := t.W.Row(ic)
			dw := t.dW.Row(ic)
			for iy := 0; iy < t.InH; iy++ {
				for ix := 0; ix < t.InW; ix++ {
					inV := in[(ic*t.InH+iy)*t.InW+ix]
					acc := 0.0
					for oc := 0; oc < t.OutC; oc++ {
						for ky := 0; ky < t.K; ky++ {
							oy := iy*t.Stride - t.Pad + ky
							if oy < 0 || oy >= outH {
								continue
							}
							for kx := 0; kx < t.K; kx++ {
								ox := ix*t.Stride - t.Pad + kx
								if ox < 0 || ox >= outW {
									continue
								}
								gv := g[(oc*outH+oy)*outW+ox]
								acc += gv * w[t.wIndex(oc, ky, kx)]
								dw[t.wIndex(oc, ky, kx)] += gv * inV
							}
						}
					}
					dIn[(ic*t.InH+iy)*t.InW+ix] = acc
				}
			}
		}
	}
	return dx
}

// Params returns {W, B}.
func (t *ConvTranspose2D) Params() []*tensor.Mat { return []*tensor.Mat{t.W, t.B} }

// Grads returns {dW, dB}.
func (t *ConvTranspose2D) Grads() []*tensor.Mat { return []*tensor.Mat{t.dW, t.dB} }

// ZeroGrads clears the gradient accumulators.
func (t *ConvTranspose2D) ZeroGrads() {
	t.dW.Zero()
	t.dB.Zero()
}

// Clone returns an independent copy.
func (t *ConvTranspose2D) Clone() Layer {
	cp := *t
	cp.W = t.W.Clone()
	cp.B = t.B.Clone()
	cp.dW = tensor.New(t.dW.Rows, t.dW.Cols)
	cp.dB = tensor.New(t.dB.Rows, t.dB.Cols)
	cp.x = nil
	return &cp
}

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout). Outside training
// (Train == false) it is the identity.
type Dropout struct {
	statelessBase
	P     float64
	Train bool
	rng   *tensor.RNG
	mask  *tensor.Mat
}

// NewDropout returns a Dropout layer in training mode.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, Train: true, rng: rng}
}

// Forward applies the dropout mask (or passes through in eval mode).
func (d *Dropout) Forward(x *tensor.Mat) *tensor.Mat {
	if !d.Train || d.P == 0 {
		d.mask = nil
		return x
	}
	d.mask = tensor.New(x.Rows, x.Cols)
	out := tensor.New(x.Rows, x.Cols)
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			d.mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward masks the incoming gradient identically.
func (d *Dropout) Backward(grad *tensor.Mat) *tensor.Mat {
	if d.mask == nil {
		return grad
	}
	g := grad.Clone()
	g.MulElem(d.mask)
	return g
}

// Clone returns a fresh dropout layer sharing probability but not RNG
// state.
func (d *Dropout) Clone() Layer {
	return &Dropout{P: d.P, Train: d.Train, rng: d.rng.Split()}
}
