package nn

import (
	"math"

	"cellgan/internal/tensor"
)

// bceEps clamps probabilities away from 0 and 1 so log stays finite.
const bceEps = 1e-12

// BCELoss computes the mean binary cross-entropy between predicted
// probabilities p (any shape) and targets y ∈ [0,1] of the same shape, and
// returns the loss together with ∂L/∂p. This matches the minmax GAN
// objective of the paper with φ = log.
func BCELoss(p, y *tensor.Mat) (float64, *tensor.Mat) {
	return BCELossInto(new(tensor.Mat), p, y)
}

// BCELossInto is BCELoss with ∂L/∂p written into grad (resized as needed).
func BCELossInto(grad, p, y *tensor.Mat) (float64, *tensor.Mat) {
	if p.Rows != y.Rows || p.Cols != y.Cols {
		panic("nn: BCELoss shape mismatch")
	}
	n := float64(len(p.Data))
	grad.Resize(p.Rows, p.Cols)
	loss := 0.0
	for i, pi := range p.Data {
		pc := math.Min(math.Max(pi, bceEps), 1-bceEps)
		yi := y.Data[i]
		loss += -(yi*math.Log(pc) + (1-yi)*math.Log(1-pc))
		grad.Data[i] = (pc - yi) / (pc * (1 - pc)) / n
	}
	return loss / n, grad
}

// BCEWithLogitsLoss computes mean binary cross-entropy directly from
// logits z, which is numerically stable for saturated discriminators:
// L = mean(max(z,0) - z·y + log(1+exp(-|z|))), ∂L/∂z = (σ(z) - y)/n.
func BCEWithLogitsLoss(z, y *tensor.Mat) (float64, *tensor.Mat) {
	return BCEWithLogitsLossInto(new(tensor.Mat), z, y)
}

// BCEWithLogitsLossInto is BCEWithLogitsLoss with ∂L/∂z written into grad
// (resized as needed).
func BCEWithLogitsLossInto(grad, z, y *tensor.Mat) (float64, *tensor.Mat) {
	if z.Rows != y.Rows || z.Cols != y.Cols {
		panic("nn: BCEWithLogitsLoss shape mismatch")
	}
	n := float64(len(z.Data))
	grad.Resize(z.Rows, z.Cols)
	loss := 0.0
	for i, zi := range z.Data {
		yi := y.Data[i]
		loss += math.Max(zi, 0) - zi*yi + math.Log1p(math.Exp(-math.Abs(zi)))
		grad.Data[i] = (sigmoid(zi) - yi) / n
	}
	return loss / n, grad
}

// MSELoss computes the mean squared error and its gradient.
func MSELoss(p, y *tensor.Mat) (float64, *tensor.Mat) {
	return MSELossInto(new(tensor.Mat), p, y)
}

// MSELossInto is MSELoss with the gradient written into grad (resized as
// needed).
func MSELossInto(grad, p, y *tensor.Mat) (float64, *tensor.Mat) {
	if p.Rows != y.Rows || p.Cols != y.Cols {
		panic("nn: MSELoss shape mismatch")
	}
	n := float64(len(p.Data))
	grad.Resize(p.Rows, p.Cols)
	loss := 0.0
	for i, pi := range p.Data {
		d := pi - y.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(z *tensor.Mat) *tensor.Mat {
	p := tensor.New(z.Rows, z.Cols)
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		out := p.Row(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			out[j] = e
			s += e
		}
		inv := 1 / s
		for j := range out {
			out[j] *= inv
		}
	}
	return p
}

// SoftmaxCrossEntropy computes the mean cross-entropy between row-wise
// softmax(logits) and integer class labels, returning the loss and
// ∂L/∂logits. Used by the classifier that backs the inception-score metric.
func SoftmaxCrossEntropy(logits *tensor.Mat, labels []int) (float64, *tensor.Mat) {
	if len(labels) != logits.Rows {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	p := Softmax(logits)
	n := float64(logits.Rows)
	loss := 0.0
	grad := p.Clone()
	for i, lbl := range labels {
		if lbl < 0 || lbl >= logits.Cols {
			panic("nn: SoftmaxCrossEntropy label out of range")
		}
		pi := math.Max(p.At(i, lbl), bceEps)
		loss += -math.Log(pi)
		grad.Set(i, lbl, grad.At(i, lbl)-1)
	}
	grad.Scale(1 / n)
	return loss / n, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Mat, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := range labels {
		if logits.ArgmaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
