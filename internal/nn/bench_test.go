package nn

import (
	"testing"

	"cellgan/internal/tensor"
)

// paperGenerator builds the Table I generator for benchmarking.
func paperGenerator(b *testing.B) (*Network, *tensor.Mat) {
	b.Helper()
	rng := tensor.NewRNG(1)
	net := MLP([]int{64, 256, 256, 784}, func() Layer { return NewTanh() },
		func() Layer { return NewTanh() }, rng)
	z := tensor.New(100, 64)
	tensor.GaussianFill(z, 0, 1, rng)
	return net, z
}

func BenchmarkGeneratorForwardBatch100(b *testing.B) {
	net, z := paperGenerator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Forward(z)
	}
}

func BenchmarkGeneratorForwardBackward(b *testing.B) {
	net, z := paperGenerator(b)
	y := tensor.New(100, 784)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		out := net.Forward(z)
		_, grad := MSELoss(out, y)
		net.Backward(grad)
	}
}

func BenchmarkGeneratorForwardWS(b *testing.B) {
	net, z := paperGenerator(b)
	ws := NewWorkspace()
	net.ForwardWS(ws, z) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.ForwardWS(ws, z)
	}
}

func BenchmarkGeneratorForwardBackwardWS(b *testing.B) {
	net, z := paperGenerator(b)
	y := tensor.New(100, 784)
	ws := NewWorkspace()
	grad := new(tensor.Mat)
	iter := func() {
		net.ZeroGrads()
		out := net.ForwardWS(ws, z)
		_, _ = MSELossInto(grad, out, y)
		net.BackwardWS(ws, grad)
	}
	iter() // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
}

// BenchmarkGeneratorForward32 is the float32 serving-tier counterpart of
// BenchmarkGeneratorForwardWS: the same Table I generator compiled with
// CompileNet32, batch 100.
func BenchmarkGeneratorForward32(b *testing.B) {
	net, z := paperGenerator(b)
	c, err := CompileNet32(net)
	if err != nil {
		b.Fatal(err)
	}
	z32 := tensor.Narrow(z)
	c.Forward(z32) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(z32)
	}
}

func BenchmarkAdamStepPaperGenerator(b *testing.B) {
	net, z := paperGenerator(b)
	opt := NewAdam(2e-4)
	y := tensor.New(100, 784)
	net.ZeroGrads()
	out := net.Forward(z)
	_, grad := MSELoss(out, y)
	net.Backward(grad)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(net)
	}
}

func BenchmarkBCEWithLogits(b *testing.B) {
	rng := tensor.NewRNG(2)
	z := tensor.New(100, 1)
	tensor.GaussianFill(z, 0, 2, rng)
	y := tensor.Full(100, 1, 1)
	for i := 0; i < b.N; i++ {
		_, _ = BCEWithLogitsLoss(z, y)
	}
}

func BenchmarkSoftmaxCrossEntropy(b *testing.B) {
	rng := tensor.NewRNG(3)
	logits := tensor.New(100, 10)
	tensor.GaussianFill(logits, 0, 2, rng)
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 10
	}
	for i := 0; i < b.N; i++ {
		_, _ = SoftmaxCrossEntropy(logits, labels)
	}
}

func BenchmarkEncodeDecodeParams(b *testing.B) {
	net, _ := paperGenerator(b)
	data, err := net.EncodeParams()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := net.EncodeParams()
		if err != nil {
			b.Fatal(err)
		}
		if err := net.DecodeParams(data); err != nil {
			b.Fatal(err)
		}
	}
}
