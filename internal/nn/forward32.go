package nn

import (
	"fmt"
	"math"

	"cellgan/internal/tensor"
)

// Net32 is a float32-compiled, inference-only snapshot of a Network — the
// compute side of the opt-in serving tier. Compiling narrows the
// parameters once at model load; forward passes then run entirely on the
// float32 kernels at half the memory traffic of the float64 path.
// Bit-parity with training explicitly does not matter here: outputs agree
// with the float64 forward only to float32 precision (the property tests
// bound the error). A Net32 owns its activation buffers and is
// single-goroutine, like a cloned Network; serving workers compile one
// per worker. There is no backward pass and no way to train a Net32.
type Net32 struct {
	layers []layer32
	acts   []*tensor.Mat32
	outW   int
}

// layer32 is one compiled inference stage: forward writes the layer
// output into dst (resized as needed) and returns it.
type layer32 interface {
	forward(dst, x *tensor.Mat32) *tensor.Mat32
}

// CompileNet32 compiles n into a float32 inference network. It returns an
// error naming the first layer whose type has no float32 lowering —
// callers fall back to the float64 path. Supported: Linear, Tanh,
// Sigmoid, ReLU, LeakyReLU, ConvTranspose2D (every generator architecture
// the repo builds).
func CompileNet32(n *Network) (*Net32, error) {
	c := &Net32{outW: n.OutputWidth()}
	for _, l := range n.Layers {
		switch tl := l.(type) {
		case *Linear:
			c.layers = append(c.layers, &linear32{
				w: tensor.Narrow(tl.W),
				b: tensor.Narrow(tl.B),
			})
		case *Tanh:
			c.layers = append(c.layers, tanh32{})
		case *Sigmoid:
			c.layers = append(c.layers, sigmoid32{})
		case *ReLU:
			c.layers = append(c.layers, relu32{})
		case *LeakyReLU:
			c.layers = append(c.layers, leaky32{alpha: float32(tl.Alpha)})
		case *ConvTranspose2D:
			c.layers = append(c.layers, &convT32{
				inC: tl.InC, inH: tl.InH, inW: tl.InW,
				outC: tl.OutC, k: tl.K, stride: tl.Stride, pad: tl.Pad,
				w:  tensor.Narrow(tl.W),
				b:  tensor.Narrow(tl.B),
				xT: new(tensor.Mat32), m: new(tensor.Mat32),
			})
		default:
			return nil, fmt.Errorf("nn: no float32 lowering for layer %T", l)
		}
	}
	for range c.layers {
		c.acts = append(c.acts, new(tensor.Mat32))
	}
	return c, nil
}

// Forward propagates a batch through the compiled network. The returned
// matrix aliases internal buffers and is only valid until the next call.
func (c *Net32) Forward(x *tensor.Mat32) *tensor.Mat32 {
	for i, l := range c.layers {
		x = l.forward(c.acts[i], x)
	}
	return x
}

// OutputWidth returns the per-sample output length of the network.
func (c *Net32) OutputWidth() int { return c.outW }

type linear32 struct{ w, b *tensor.Mat32 }

func (l *linear32) forward(dst, x *tensor.Mat32) *tensor.Mat32 {
	tensor.MatMulInto32(dst, x, l.w)
	dst.AddRowVec(l.b)
	return dst
}

type tanh32 struct{}

func (tanh32) forward(dst, x *tensor.Mat32) *tensor.Mat32 {
	return tensor.ApplyInto32(dst, x, func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
}

type sigmoid32 struct{}

func (sigmoid32) forward(dst, x *tensor.Mat32) *tensor.Mat32 {
	return tensor.ApplyInto32(dst, x, func(v float32) float32 {
		return float32(sigmoid(float64(v)))
	})
}

type relu32 struct{}

func (relu32) forward(dst, x *tensor.Mat32) *tensor.Mat32 {
	return tensor.ApplyInto32(dst, x, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
}

type leaky32 struct{ alpha float32 }

func (l leaky32) forward(dst, x *tensor.Mat32) *tensor.Mat32 {
	return tensor.ApplyInto32(dst, x, func(v float32) float32 {
		if v >= 0 {
			return v
		}
		return l.alpha * v
	})
}

// convT32 is the float32 lowering of ConvTranspose2D's ForwardScratch:
// gather the input position-major, one MatMulInto32 against the filter
// bank, scatter-add into the bias-seeded output via AddCol2ImInto32. The
// scratch matrices are owned by the layer (a Net32 is single-goroutine).
type convT32 struct {
	inC, inH, inW, outC, k, stride, pad int

	w, b  *tensor.Mat32
	xT, m *tensor.Mat32
}

func (t *convT32) forward(dst, x *tensor.Mat32) *tensor.Mat32 {
	if x.Cols != t.inC*t.inH*t.inW {
		panic(fmt.Sprintf("nn: convT32 input width %d, want %d", x.Cols, t.inC*t.inH*t.inW))
	}
	outH := (t.inH-1)*t.stride - 2*t.pad + t.k
	outW := (t.inW-1)*t.stride - 2*t.pad + t.k
	outPos := outH * outW
	inPos := t.inH * t.inW
	t.xT.Resize(x.Rows*inPos, t.inC)
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		for p := 0; p < inPos; p++ {
			xrow := t.xT.Row(b*inPos + p)
			for ic := range xrow {
				xrow[ic] = in[ic*inPos+p]
			}
		}
	}
	m := tensor.MatMulInto32(t.m, t.xT, t.w)
	dst.Resize(x.Rows, t.outC*outPos)
	bias := t.b.Data
	for b := 0; b < x.Rows; b++ {
		drow := dst.Row(b)
		for oc := 0; oc < t.outC; oc++ {
			base := oc * outPos
			bv := bias[oc]
			for i := 0; i < outPos; i++ {
				drow[base+i] = bv
			}
		}
	}
	return tensor.AddCol2ImInto32(dst, m, t.outC, outH, outW, t.k, t.stride, t.pad, t.inH, t.inW)
}
