package nn

import (
	"bytes"
	"fmt"

	"cellgan/internal/tensor"
)

// Network is an ordered sequence of layers trained end-to-end. The layer
// sequence must not be mutated after the first Params/Grads call: those
// accessors cache their slices, which optimizers rely on being
// allocation-free in the steady state.
type Network struct {
	Layers []Layer

	params []*tensor.Mat
	grads  []*tensor.Mat
}

// NewNetwork returns a network over the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward propagates a batch through every layer.
func (n *Network) Forward(x *tensor.Mat) *tensor.Mat {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates ∂L/∂output back through every layer, accumulating
// parameter gradients, and returns ∂L/∂input.
func (n *Network) Backward(grad *tensor.Mat) *tensor.Mat {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters, layer by layer. The slice is
// computed once and cached (layers hand out stable *Mat pointers), so
// per-step optimizer calls do not allocate.
func (n *Network) Params() []*tensor.Mat {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// Grads returns all gradient accumulators, aligned with Params. Cached
// like Params.
func (n *Network) Grads() []*tensor.Mat {
	if n.grads == nil {
		for _, l := range n.Layers {
			n.grads = append(n.grads, l.Grads()...)
		}
	}
	return n.grads
}

// ZeroGrads clears every gradient accumulator.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		l.ZeroGrads()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// OutputWidth returns the per-sample output length of the network: the
// output width of the last Sized layer (activations are shape-preserving).
// It returns 0 when no layer knows its width.
func (n *Network) OutputWidth() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if sized, ok := n.Layers[i].(Sized); ok {
			return sized.OutputWidth()
		}
	}
	return 0
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = l.Clone()
	}
	return c
}

// CopyParamsFrom copies parameter values from src into n. The two networks
// must have identical architectures.
func (n *Network) CopyParamsFrom(src *Network) error {
	dst := n.Params()
	from := src.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(from))
	}
	for i := range dst {
		if dst[i].Rows != from[i].Rows || dst[i].Cols != from[i].Cols {
			return fmt.Errorf("nn: parameter %d shape mismatch %d×%d vs %d×%d",
				i, dst[i].Rows, dst[i].Cols, from[i].Rows, from[i].Cols)
		}
		dst[i].CopyFrom(from[i])
	}
	return nil
}

// EncodeParams serialises the network parameters (not the architecture) to
// a byte slice suitable for message passing between processes.
func (n *Network) EncodeParams() ([]byte, error) {
	var buf bytes.Buffer
	if err := tensor.EncodeMats(&buf, n.Params()); err != nil {
		return nil, fmt.Errorf("nn: encoding params: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeParams overwrites the network parameters with values decoded from
// data (produced by EncodeParams on an architecturally identical network).
func (n *Network) DecodeParams(data []byte) error {
	ms, err := tensor.DecodeMats(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("nn: decoding params: %w", err)
	}
	ps := n.Params()
	if len(ms) != len(ps) {
		return fmt.Errorf("nn: decoded %d parameter matrices, want %d", len(ms), len(ps))
	}
	for i, p := range ps {
		if ms[i].Rows != p.Rows || ms[i].Cols != p.Cols {
			return fmt.Errorf("nn: decoded parameter %d has shape %d×%d, want %d×%d",
				i, ms[i].Rows, ms[i].Cols, p.Rows, p.Cols)
		}
		p.CopyFrom(ms[i])
	}
	return nil
}

// ParamsL2 returns the L2 norm over all parameters, useful as a cheap
// network fingerprint in tests and logs.
func (n *Network) ParamsL2() float64 {
	s := 0.0
	for _, p := range n.Params() {
		for _, v := range p.Data {
			s += v * v
		}
	}
	return s
}

// MLP builds a multilayer perceptron with the given layer sizes and a
// hidden activation applied after every hidden Linear layer; outAct (may be
// nil for raw logits) is applied after the final Linear layer.
//
// Example: MLP([64, 256, 256, 784], NewTanh, NewTanh, rng) is the paper's
// generator topology.
func MLP(sizes []int, hidden func() Layer, outAct func() Layer, rng *tensor.RNG) *Network {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i < len(sizes)-1; i++ {
		layers = append(layers, NewLinear(sizes[i], sizes[i+1], rng))
		last := i == len(sizes)-2
		switch {
		case last && outAct != nil:
			layers = append(layers, outAct())
		case !last && hidden != nil:
			layers = append(layers, hidden())
		}
	}
	return NewNetwork(layers...)
}
