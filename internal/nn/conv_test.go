package nn

import (
	"math"
	"testing"

	"cellgan/internal/tensor"
)

func TestConv2DGeometry(t *testing.T) {
	rng := tensor.NewRNG(1)
	c, err := NewConv2D(1, 28, 28, 4, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	oc, oh, ow := c.OutDims()
	if oc != 4 || oh != 14 || ow != 14 {
		t.Fatalf("dims %d %d %d", oc, oh, ow)
	}
	// Invalid geometries.
	if _, err := NewConv2D(0, 8, 8, 1, 3, 1, 0, rng); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewConv2D(1, 4, 4, 1, 7, 1, 0, rng); err == nil {
		t.Fatal("kernel larger than input accepted")
	}
	if _, err := NewConv2D(1, 5, 5, 1, 2, 2, 0, rng); err == nil {
		t.Fatal("non-tiling geometry accepted")
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1×3×3 input, 1 output channel, k=2 s=1 p=0, all-ones kernel, bias 1.
	rng := tensor.NewRNG(2)
	c, err := NewConv2D(1, 3, 3, 1, 2, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	c.W.Fill(1)
	c.B.Fill(1)
	x := tensor.FromSlice(1, 9, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	out := c.Forward(x)
	want := []float64{1 + 2 + 4 + 5 + 1, 2 + 3 + 5 + 6 + 1, 4 + 5 + 7 + 8 + 1, 5 + 6 + 8 + 9 + 1}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-12 {
			t.Fatalf("out[%d] = %v want %v", i, out.Data[i], w)
		}
	}
}

func TestConvTranspose2DGeometry(t *testing.T) {
	rng := tensor.NewRNG(3)
	tl, err := NewConvTranspose2D(4, 7, 7, 2, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	oc, oh, ow := tl.OutDims()
	if oc != 2 || oh != 14 || ow != 14 {
		t.Fatalf("dims %d %d %d", oc, oh, ow)
	}
	if _, err := NewConvTranspose2D(1, 1, 1, 1, 1, 1, 3, rng); err == nil {
		t.Fatal("non-positive output accepted")
	}
}

func TestConvTransposeInvertsStride(t *testing.T) {
	// A 1×1 kernel with stride 1 reduces to a per-pixel linear map.
	rng := tensor.NewRNG(4)
	tl, err := NewConvTranspose2D(1, 2, 2, 1, 1, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	tl.W.Fill(3)
	tl.B.Fill(-1)
	x := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	out := tl.Forward(x)
	want := []float64{2, 5, 8, 11}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-12 {
			t.Fatalf("out[%d] = %v want %v", i, out.Data[i], w)
		}
	}
}

func TestGradCheckConv2D(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv, err := NewConv2D(2, 6, 6, 3, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(conv, NewTanh())
	x := tensor.New(2, 2*6*6)
	tensor.GaussianFill(x, 0, 1, rng)
	_, oh, ow := conv.OutDims()
	y := tensor.New(2, 3*oh*ow)
	tensor.GaussianFill(y, 0, 0.5, rng)
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return MSELoss(out, y)
	})
}

func TestGradCheckConvTranspose2D(t *testing.T) {
	rng := tensor.NewRNG(6)
	ct, err := NewConvTranspose2D(2, 3, 3, 2, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(ct, NewTanh())
	x := tensor.New(2, 2*3*3)
	tensor.GaussianFill(x, 0, 1, rng)
	_, oh, ow := ct.OutDims()
	y := tensor.New(2, 2*oh*ow)
	tensor.GaussianFill(y, 0, 0.5, rng)
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return MSELoss(out, y)
	})
}

func TestGradCheckConvInputGradient(t *testing.T) {
	// ∂L/∂x through a conv stack (what a DCGAN generator update needs
	// when the discriminator is convolutional).
	rng := tensor.NewRNG(7)
	conv, err := NewConv2D(1, 4, 4, 2, 2, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(conv, NewLeakyReLU(0.2))
	x := tensor.New(1, 16)
	tensor.GaussianFill(x, 0, 1, rng)
	_, oh, ow := conv.OutDims()
	y := tensor.Full(1, 2*oh*ow, 0.3)

	net.ZeroGrads()
	out := net.Forward(x)
	_, dOut := MSELoss(out, y)
	dx := net.Backward(dOut)
	eps := 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := MSELoss(net.Forward(x), y)
		x.Data[i] = orig - eps
		lm, _ := MSELoss(net.Forward(x), y)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(dx.Data[i]-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: %v vs %v", i, dx.Data[i], num)
		}
	}
}

func TestConvCloneIndependence(t *testing.T) {
	rng := tensor.NewRNG(8)
	conv, err := NewConv2D(1, 4, 4, 2, 2, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewConvTranspose2D(1, 2, 2, 1, 2, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Layer{conv, ct} {
		cl := l.Clone()
		cl.Params()[0].Set(0, 0, 12345)
		if l.Params()[0].At(0, 0) == 12345 {
			t.Fatalf("%T clone shares storage", l)
		}
	}
}

func TestConvBackwardBeforeForwardPanics(t *testing.T) {
	rng := tensor.NewRNG(9)
	conv, _ := NewConv2D(1, 4, 4, 1, 2, 2, 0, rng)
	ct, _ := NewConvTranspose2D(1, 2, 2, 1, 2, 2, 0, rng)
	for _, l := range []Layer{conv, ct} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T no panic", l)
				}
			}()
			l.Backward(tensor.New(1, 1))
		}()
	}
}

func TestDCGANStackEndToEnd(t *testing.T) {
	// A miniature DCGAN generator: latent → linear to 4·7·7 → convT to
	// 14×14 → convT to 28×28 tanh; and a conv discriminator back to one
	// logit. One adversarial step must run and produce finite losses.
	rng := tensor.NewRNG(10)
	ct1, err := NewConvTranspose2D(4, 7, 7, 2, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := NewConvTranspose2D(2, 14, 14, 1, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewNetwork(
		NewLinear(16, 4*7*7, rng), NewTanh(),
		ct1, NewTanh(),
		ct2, NewTanh(),
	)
	cv1, err := NewConv2D(1, 28, 28, 2, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	cv2, err := NewConv2D(2, 14, 14, 4, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	disc := NewNetwork(
		cv1, NewLeakyReLU(0.2),
		cv2, NewLeakyReLU(0.2),
		NewLinear(4*7*7, 1, rng),
	)

	z := tensor.New(3, 16)
	tensor.GaussianFill(z, 0, 1, rng)
	fake := gen.Forward(z)
	if fake.Cols != 784 {
		t.Fatalf("generator output %d", fake.Cols)
	}
	logits := disc.Forward(fake)
	if logits.Rows != 3 || logits.Cols != 1 {
		t.Fatalf("disc output %d×%d", logits.Rows, logits.Cols)
	}
	loss, grad := BCEWithLogitsLoss(logits, tensor.Full(3, 1, 1))
	if math.IsNaN(loss) {
		t.Fatal("NaN loss")
	}
	gen.ZeroGrads()
	disc.ZeroGrads()
	dFake := disc.Backward(grad)
	disc.ZeroGrads()
	gen.Backward(dFake)
	opt := NewAdam(1e-3)
	before := gen.ParamsL2()
	opt.Step(gen)
	if gen.ParamsL2() == before {
		t.Fatal("DCGAN generator step changed nothing")
	}
}

func TestDropoutTrainAndEval(t *testing.T) {
	rng := tensor.NewRNG(11)
	d := NewDropout(0.5, rng)
	x := tensor.Full(10, 100, 1)
	out := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatal("dropout all-or-nothing")
	}
	frac := float64(zeros) / float64(len(out.Data))
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("drop fraction %v", frac)
	}
	// Backward masks identically.
	g := d.Backward(tensor.Full(10, 100, 1))
	for i := range g.Data {
		if (out.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("gradient mask mismatch")
		}
	}
	// Eval mode is identity.
	d.Train = false
	out2 := d.Forward(x)
	if !out2.Equal(x) {
		t.Fatal("eval-mode dropout not identity")
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewDropout(1, tensor.NewRNG(1))
}
