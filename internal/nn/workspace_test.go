package nn

import (
	"bytes"
	"math"
	"testing"

	"cellgan/internal/tensor"
)

// twinNets builds two identical small MLPs from the same seed.
func twinNets(seed uint64) (*Network, *Network) {
	a := MLP([]int{16, 32, 16}, func() Layer { return NewTanh() }, nil, tensor.NewRNG(seed))
	b := MLP([]int{16, 32, 16}, func() Layer { return NewTanh() }, nil, tensor.NewRNG(seed))
	return a, b
}

// TestForwardBackwardWSBitIdentical runs the same pass through the
// workspace and allocating paths on twin networks and demands bitwise
// agreement of outputs, input gradients and parameter gradients — the
// invariant the whole refactor rests on.
func TestForwardBackwardWSBitIdentical(t *testing.T) {
	for _, act := range []struct {
		name string
		mk   func() Layer
	}{
		{"tanh", func() Layer { return NewTanh() }},
		{"sigmoid", func() Layer { return NewSigmoid() }},
		{"lrelu", func() Layer { return NewLeakyReLU(0.2) }},
		{"relu", func() Layer { return NewReLU() }},
	} {
		t.Run(act.name, func(t *testing.T) {
			a := MLP([]int{6, 9, 4}, act.mk, act.mk, tensor.NewRNG(11))
			b := MLP([]int{6, 9, 4}, act.mk, act.mk, tensor.NewRNG(11))
			rng := tensor.NewRNG(12)
			x := tensor.New(5, 6)
			tensor.GaussianFill(x, 0, 1, rng)
			y := tensor.New(5, 4)
			tensor.GaussianFill(y, 0, 1, rng)
			ws := NewWorkspace()

			for pass := 0; pass < 3; pass++ { // repeat: steady-state reuse
				a.ZeroGrads()
				b.ZeroGrads()
				outA := a.ForwardWS(ws, x)
				outB := b.Forward(x)
				if !outA.Equal(outB) {
					t.Fatalf("pass %d: ForwardWS differs from Forward", pass)
				}
				_, grad := MSELoss(outB, y)
				dxA := a.BackwardWS(ws, grad)
				dxB := b.Backward(grad)
				if !dxA.Equal(dxB) {
					t.Fatalf("pass %d: BackwardWS input grad differs", pass)
				}
				ga, gb := a.Grads(), b.Grads()
				for i := range ga {
					if !ga[i].Equal(gb[i]) {
						t.Fatalf("pass %d: param grad %d differs", pass, i)
					}
				}
			}
		})
	}
}

// TestGradCheckThroughWorkspace validates the Into backward path against
// numerical differentiation directly, independent of the legacy path.
func TestGradCheckThroughWorkspace(t *testing.T) {
	rng := tensor.NewRNG(21)
	net := MLP([]int{5, 8, 1}, func() Layer { return NewLeakyReLU(0.2) }, nil, rng)
	x := tensor.New(6, 5)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.Full(6, 1, 1)
	ws := NewWorkspace()

	net.ZeroGrads()
	out := net.ForwardWS(ws, x)
	_, dOut := BCEWithLogitsLoss(out, y)
	net.BackwardWS(ws, dOut)
	analytic := net.Grads()

	numeric := numericalGrad(net, func() float64 {
		l, _ := BCEWithLogitsLoss(net.ForwardWS(ws, x), y)
		return l
	}, 1e-6)
	for pi := range analytic {
		for i := range analytic[pi].Data {
			a, n := analytic[pi].Data[i], numeric[pi].Data[i]
			if math.Abs(a-n) > 1e-4*(1+math.Abs(a)+math.Abs(n)) {
				t.Fatalf("param %d elem %d: analytic %v numeric %v", pi, i, a, n)
			}
		}
	}
}

// opaqueLayer hides a layer's Into/Scratch support behind the plain Layer
// interface, forcing the workspace dispatch onto its allocating fallback
// branch. Every built-in layer now has a destination-passing path, so the
// fallback can only be exercised through a wrapper like this.
type opaqueLayer struct{ inner Layer }

func (o *opaqueLayer) Forward(x *tensor.Mat) *tensor.Mat  { return o.inner.Forward(x) }
func (o *opaqueLayer) Backward(g *tensor.Mat) *tensor.Mat { return o.inner.Backward(g) }
func (o *opaqueLayer) Params() []*tensor.Mat              { return o.inner.Params() }
func (o *opaqueLayer) Grads() []*tensor.Mat               { return o.inner.Grads() }
func (o *opaqueLayer) ZeroGrads()                         { o.inner.ZeroGrads() }
func (o *opaqueLayer) Clone() Layer                       { return &opaqueLayer{inner: o.inner.Clone()} }

// TestWorkspaceFallbackMixedLayers checks that a network mixing layers
// without Into support (an opaque-wrapped Conv2D), scratch layers (a bare
// Conv2D) and Into layers still works through the WS entry points, with
// the fallback branch matching the legacy path bit for bit.
func TestWorkspaceFallbackMixedLayers(t *testing.T) {
	mk := func(wrap bool) *Network {
		rng := tensor.NewRNG(31)
		conv, err := NewConv2D(1, 6, 6, 2, 3, 1, 0, rng)
		if err != nil {
			t.Fatalf("conv: %v", err)
		}
		var l Layer = conv
		if wrap {
			l = &opaqueLayer{inner: conv}
		}
		return NewNetwork(l, NewTanh(), NewLinear(2*4*4, 3, rng))
	}
	a, b := mk(true), mk(false)
	rng := tensor.NewRNG(32)
	x := tensor.New(4, 36)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(4, 3)
	tensor.GaussianFill(y, 0, 1, rng)
	ws := NewWorkspace()

	outA := a.ForwardWS(ws, x)
	outB := b.Forward(x)
	if !outA.Equal(outB) {
		t.Fatal("mixed-layer ForwardWS differs from Forward")
	}
	_, grad := MSELoss(outB, y)
	dxA := a.BackwardWS(ws, grad)
	dxB := b.Backward(grad)
	if !dxA.Equal(dxB) {
		t.Fatal("mixed-layer BackwardWS differs from Backward")
	}
}

// TestTrainingCheckpointBitExact trains twin networks — one on the
// workspace path, one on the allocating path — with Adam for many steps
// and requires byte-identical serialized parameters, the golden-checkpoint
// idiom of the cluster determinism tests.
func TestTrainingCheckpointBitExact(t *testing.T) {
	a, b := twinNets(41)
	optA, optB := NewAdam(2e-3), NewAdam(2e-3)
	ws := NewWorkspace()
	rngA := tensor.NewRNG(42)
	rngB := tensor.NewRNG(42)

	step := func(n *Network, opt Optimizer, wsp *Workspace, rng *tensor.RNG) {
		x := tensor.New(8, 16)
		tensor.GaussianFill(x, 0, 1, rng)
		y := tensor.New(8, 16)
		tensor.GaussianFill(y, 0, 1, rng)
		n.ZeroGrads()
		out := n.ForwardWS(wsp, x)
		_, grad := MSELoss(out, y)
		n.BackwardWS(wsp, grad)
		opt.Step(n)
	}
	for i := 0; i < 50; i++ {
		step(a, optA, ws, rngA)
		step(b, optB, nil, rngB) // nil workspace: allocating path
	}
	pa, err := a.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa, pb) {
		t.Fatal("workspace-trained checkpoint differs from allocating-path checkpoint")
	}
}

// TestTrainingIterationAllocs pins the steady-state allocation count of a
// full training iteration (forward, loss, backward, Adam step) through the
// workspace path. The only tolerated allocations are the two loss-side
// ones (target + gradient matrix); everything else must reuse buffers.
func TestTrainingIterationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	net, _ := twinNets(51)
	opt := NewAdam(1e-3)
	ws := NewWorkspace()
	rng := tensor.NewRNG(52)
	x := tensor.New(8, 16)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(8, 16)
	tensor.GaussianFill(y, 0, 1, rng)
	grad := new(tensor.Mat)

	iter := func() {
		net.ZeroGrads()
		out := net.ForwardWS(ws, x)
		_, _ = MSELossInto(grad, out, y)
		net.BackwardWS(ws, grad)
		opt.Step(net)
	}
	iter() // warm buffers and Adam state
	if allocs := testing.AllocsPerRun(20, iter); allocs > 2 {
		t.Errorf("training iteration: %.0f allocs per run, want <= 2", allocs)
	}
}
