package nn

import (
	"math"

	"cellgan/internal/tensor"
)

// statelessBase implements the no-parameter parts of Layer for activations.
type statelessBase struct{}

func (statelessBase) Params() []*tensor.Mat { return nil }
func (statelessBase) Grads() []*tensor.Mat  { return nil }
func (statelessBase) ZeroGrads()            {}

// Tanh is the hyperbolic-tangent activation (the paper's Table I choice).
type Tanh struct {
	statelessBase
	out *tensor.Mat
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Mat) *tensor.Mat {
	return t.ForwardInto(new(tensor.Mat), x)
}

// ForwardInto applies tanh element-wise into dst.
func (t *Tanh) ForwardInto(dst, x *tensor.Mat) *tensor.Mat {
	t.out = tensor.ApplyInto(dst, x, math.Tanh)
	return t.out
}

// Backward returns grad ⊙ (1 - tanh²).
func (t *Tanh) Backward(grad *tensor.Mat) *tensor.Mat {
	return t.BackwardInto(new(tensor.Mat), grad)
}

// BackwardInto writes grad ⊙ (1 - tanh²) into dst.
func (t *Tanh) BackwardInto(dst, grad *tensor.Mat) *tensor.Mat {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	dst.Resize(grad.Rows, grad.Cols)
	for i, y := range t.out.Data {
		dst.Data[i] = grad.Data[i] * (1 - y*y)
	}
	return dst
}

// Clone returns a fresh Tanh layer.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	statelessBase
	out *tensor.Mat
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// sigmoid is a numerically stable logistic function.
func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Forward applies the logistic function element-wise.
func (s *Sigmoid) Forward(x *tensor.Mat) *tensor.Mat {
	return s.ForwardInto(new(tensor.Mat), x)
}

// ForwardInto applies the logistic function element-wise into dst.
func (s *Sigmoid) ForwardInto(dst, x *tensor.Mat) *tensor.Mat {
	s.out = tensor.ApplyInto(dst, x, sigmoid)
	return s.out
}

// Backward returns grad ⊙ σ(1-σ).
func (s *Sigmoid) Backward(grad *tensor.Mat) *tensor.Mat {
	return s.BackwardInto(new(tensor.Mat), grad)
}

// BackwardInto writes grad ⊙ σ(1-σ) into dst.
func (s *Sigmoid) BackwardInto(dst, grad *tensor.Mat) *tensor.Mat {
	if s.out == nil {
		panic("nn: Sigmoid.Backward before Forward")
	}
	dst.Resize(grad.Rows, grad.Cols)
	for i, y := range s.out.Data {
		dst.Data[i] = grad.Data[i] * (y * (1 - y))
	}
	return dst
}

// Clone returns a fresh Sigmoid layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// LeakyReLU is max(x, alpha·x); Lipizzaner's discriminators use alpha=0.2.
type LeakyReLU struct {
	statelessBase
	Alpha float64
	x     *tensor.Mat
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier element-wise.
func (l *LeakyReLU) Forward(x *tensor.Mat) *tensor.Mat {
	return l.ForwardInto(new(tensor.Mat), x)
}

// ForwardInto applies the leaky rectifier element-wise into dst.
func (l *LeakyReLU) ForwardInto(dst, x *tensor.Mat) *tensor.Mat {
	l.x = x
	return tensor.ApplyInto(dst, x, func(v float64) float64 {
		if v >= 0 {
			return v
		}
		return l.Alpha * v
	})
}

// Backward scales grad by 1 where the input was non-negative, alpha
// elsewhere.
func (l *LeakyReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	return l.BackwardInto(new(tensor.Mat), grad)
}

// BackwardInto writes the masked gradient into dst.
func (l *LeakyReLU) BackwardInto(dst, grad *tensor.Mat) *tensor.Mat {
	if l.x == nil {
		panic("nn: LeakyReLU.Backward before Forward")
	}
	dst.Resize(grad.Rows, grad.Cols)
	for i, v := range l.x.Data {
		g := grad.Data[i]
		if v < 0 {
			g *= l.Alpha
		}
		dst.Data[i] = g
	}
	return dst
}

// Clone returns a fresh LeakyReLU with the same slope.
func (l *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: l.Alpha} }

// ReLU is the plain rectifier.
type ReLU struct {
	statelessBase
	x *tensor.Mat
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *tensor.Mat) *tensor.Mat {
	return r.ForwardInto(new(tensor.Mat), x)
}

// ForwardInto applies max(0, x) element-wise into dst.
func (r *ReLU) ForwardInto(dst, x *tensor.Mat) *tensor.Mat {
	r.x = x
	return tensor.ApplyInto(dst, x, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Backward masks grad where the input was negative.
func (r *ReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	return r.BackwardInto(new(tensor.Mat), grad)
}

// BackwardInto writes the masked gradient into dst.
func (r *ReLU) BackwardInto(dst, grad *tensor.Mat) *tensor.Mat {
	if r.x == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	dst.Resize(grad.Rows, grad.Cols)
	for i, v := range r.x.Data {
		if v <= 0 {
			dst.Data[i] = 0
		} else {
			dst.Data[i] = grad.Data[i]
		}
	}
	return dst
}

// Clone returns a fresh ReLU.
func (r *ReLU) Clone() Layer { return &ReLU{} }
