package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cellgan/internal/tensor"
)

// Optimizer updates network parameters from accumulated gradients.
// Implementations keep per-parameter state; one optimizer instance belongs
// to exactly one network.
type Optimizer interface {
	// Step applies one update using the network's current gradients.
	Step(n *Network)
	// LearningRate returns the current base learning rate.
	LearningRate() float64
	// SetLearningRate replaces the base learning rate. The coevolutionary
	// hyperparameter mutation calls this every training iteration.
	SetLearningRate(lr float64)
	// Reset clears any accumulated moment estimates (used after a genome
	// is replaced wholesale by a neighbour's).
	Reset()
	// StateBinary serialises the optimizer's internal state (moments,
	// step counters, learning rate) for checkpointing.
	StateBinary() ([]byte, error)
	// RestoreBinary reverses StateBinary on an optimizer attached to an
	// architecturally identical network.
	RestoreBinary(data []byte) error
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []*tensor.Mat
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step applies v = μv - lr·g; p += v (or the memoryless update when μ=0).
func (s *SGD) Step(n *Network) {
	params := n.Params()
	grads := n.Grads()
	if s.Momentum == 0 {
		for i, p := range params {
			p.AddScaled(-s.LR, grads[i])
		}
		return
	}
	if len(s.velocity) != len(params) {
		s.velocity = make([]*tensor.Mat, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Rows, p.Cols)
		}
	}
	for i, p := range params {
		v := s.velocity[i]
		v.Scale(s.Momentum)
		v.AddScaled(-s.LR, grads[i])
		p.Add(v)
	}
}

// LearningRate returns the current learning rate.
func (s *SGD) LearningRate() float64 { return s.LR }

// SetLearningRate replaces the learning rate.
func (s *SGD) SetLearningRate(lr float64) { s.LR = lr }

// Reset clears the momentum buffers.
func (s *SGD) Reset() { s.velocity = nil }

// StateBinary serialises the learning rate, momentum and velocity
// buffers.
func (s *SGD) StateBinary() ([]byte, error) {
	var buf bytes.Buffer
	writeF64(&buf, s.LR)
	writeF64(&buf, s.Momentum)
	if err := tensor.EncodeMats(&buf, s.velocity); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreBinary reverses StateBinary.
func (s *SGD) RestoreBinary(data []byte) error {
	rd := bytes.NewReader(data)
	var err error
	if s.LR, err = readF64(rd); err != nil {
		return fmt.Errorf("nn: SGD state: %w", err)
	}
	if s.Momentum, err = readF64(rd); err != nil {
		return fmt.Errorf("nn: SGD state: %w", err)
	}
	vel, err := tensor.DecodeMats(rd)
	if err != nil {
		return fmt.Errorf("nn: SGD velocity: %w", err)
	}
	if len(vel) == 0 {
		vel = nil
	}
	s.velocity = vel
	return nil
}

// Adam implements the Adam optimizer (Kingma & Ba) — the paper's Table I
// optimizer with initial learning rate 2e-4.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m []*tensor.Mat
	v []*tensor.Mat
}

// NewAdam returns an Adam optimizer with the conventional β₁=0.9,
// β₂=0.999, ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step(n *Network) {
	params := n.Params()
	grads := n.Grads()
	if len(a.m) != len(params) {
		a.m = make([]*tensor.Mat, len(params))
		a.v = make([]*tensor.Mat, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Rows, p.Cols)
			a.v[i] = tensor.New(p.Rows, p.Cols)
		}
		a.t = 0
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j, gj := range g.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mhat := m.Data[j] / c1
			vhat := v.Data[j] / c2
			p.Data[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Epsilon)
		}
	}
}

// LearningRate returns the current learning rate.
func (a *Adam) LearningRate() float64 { return a.LR }

// SetLearningRate replaces the learning rate.
func (a *Adam) SetLearningRate(lr float64) { a.LR = lr }

// Reset clears moment estimates and the step counter.
func (a *Adam) Reset() {
	a.m = nil
	a.v = nil
	a.t = 0
}

// StateBinary serialises the hyperparameters, step counter and both
// moment-estimate buffers.
func (a *Adam) StateBinary() ([]byte, error) {
	var buf bytes.Buffer
	writeF64(&buf, a.LR)
	writeF64(&buf, a.Beta1)
	writeF64(&buf, a.Beta2)
	writeF64(&buf, a.Epsilon)
	writeF64(&buf, float64(a.t))
	if err := tensor.EncodeMats(&buf, a.m); err != nil {
		return nil, err
	}
	if err := tensor.EncodeMats(&buf, a.v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreBinary reverses StateBinary.
func (a *Adam) RestoreBinary(data []byte) error {
	rd := bytes.NewReader(data)
	fields := []*float64{&a.LR, &a.Beta1, &a.Beta2, &a.Epsilon}
	for _, f := range fields {
		v, err := readF64(rd)
		if err != nil {
			return fmt.Errorf("nn: Adam state: %w", err)
		}
		*f = v
	}
	tf, err := readF64(rd)
	if err != nil {
		return fmt.Errorf("nn: Adam step counter: %w", err)
	}
	a.t = int(tf)
	if a.m, err = tensor.DecodeMats(rd); err != nil {
		return fmt.Errorf("nn: Adam first moments: %w", err)
	}
	if a.v, err = tensor.DecodeMats(rd); err != nil {
		return fmt.Errorf("nn: Adam second moments: %w", err)
	}
	if len(a.m) == 0 {
		a.m, a.v = nil, nil
	}
	return nil
}

func writeF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

func readF64(rd *bytes.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(rd, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// ClipGrads scales the network's gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm. A non-positive maxNorm is a
// no-op. Gradient clipping guards the GAN updates against the gradient
// explosion pathology discussed in the paper's introduction.
func ClipGrads(n *Network, maxNorm float64) float64 {
	s := 0.0
	grads := n.Grads()
	for _, g := range grads {
		for _, v := range g.Data {
			s += v * v
		}
	}
	norm := math.Sqrt(s)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, g := range grads {
			g.Scale(scale)
		}
	}
	return norm
}
