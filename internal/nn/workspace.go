package nn

import (
	"cellgan/internal/tensor"
)

// Workspace owns the per-layer activation and gradient buffers for one
// network's forward/backward pass. Reusing a Workspace across iterations
// eliminates the per-step allocations of the plain Forward/Backward
// protocol: buffers are lazily created on first use and resized (which
// only reallocates when a batch-shape change outgrows capacity) on every
// subsequent pass.
//
// A Workspace is owned by exactly one goroutine and must not be shared
// between concurrently running networks. It may be shared across networks
// sequentially (e.g. one workspace per cell, reused by the generator and
// discriminator in turn) as long as each forward→backward pair completes
// before the workspace is handed to the next network: layer caches and the
// matrices returned by ForwardWS/BackwardWS alias workspace storage.
type Workspace struct {
	acts  []*tensor.Mat // acts[i] holds the output of layer i
	grads []*tensor.Mat // grads[i] holds ∂L/∂input of layer i
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow extends bufs with empty matrices until it holds at least n slots.
func grow(bufs []*tensor.Mat, n int) []*tensor.Mat {
	for len(bufs) < n {
		bufs = append(bufs, new(tensor.Mat))
	}
	return bufs
}

// ForwardWS propagates a batch through every layer, writing each layer's
// output into ws-owned buffers. A nil ws falls back to the allocating
// Forward path, so callers can thread an optional workspace through
// unconditionally. Layers that do not implement IntoLayer allocate as
// usual. The returned matrix aliases workspace storage and is only valid
// until the next pass through ws. Results are bit-identical to Forward.
func (n *Network) ForwardWS(ws *Workspace, x *tensor.Mat) *tensor.Mat {
	if ws == nil {
		return n.Forward(x)
	}
	ws.acts = grow(ws.acts, len(n.Layers))
	for i, l := range n.Layers {
		if il, ok := l.(IntoLayer); ok {
			x = il.ForwardInto(ws.acts[i], x)
		} else {
			x = l.Forward(x)
		}
	}
	return x
}

// BackwardWS propagates ∂L/∂output back through every layer, accumulating
// parameter gradients into the layers and intermediate input-gradients
// into ws-owned buffers. A nil ws falls back to the allocating Backward
// path. The returned ∂L/∂input aliases workspace storage. Results are
// bit-identical to Backward.
func (n *Network) BackwardWS(ws *Workspace, grad *tensor.Mat) *tensor.Mat {
	if ws == nil {
		return n.Backward(grad)
	}
	ws.grads = grow(ws.grads, len(n.Layers))
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if il, ok := n.Layers[i].(IntoLayer); ok {
			grad = il.BackwardInto(ws.grads[i], grad)
		} else {
			grad = n.Layers[i].Backward(grad)
		}
	}
	return grad
}
