package nn

import (
	"cellgan/internal/tensor"
)

// Workspace owns the per-layer activation and gradient buffers for one
// network's forward/backward pass. Reusing a Workspace across iterations
// eliminates the per-step allocations of the plain Forward/Backward
// protocol: buffers are lazily created on first use and resized (which
// only reallocates when a batch-shape change outgrows capacity) on every
// subsequent pass.
//
// A Workspace is owned by exactly one goroutine and must not be shared
// between concurrently running networks. It may be shared across networks
// sequentially (e.g. one workspace per cell, reused by the generator and
// discriminator in turn) as long as each forward→backward pair completes
// before the workspace is handed to the next network: layer caches and the
// matrices returned by ForwardWS/BackwardWS alias workspace storage.
type Workspace struct {
	acts    []*tensor.Mat   // acts[i] holds the output of layer i
	grads   []*tensor.Mat   // grads[i] holds ∂L/∂input of layer i
	scratch []*LayerScratch // scratch[i] holds layer i's auxiliary buffers
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// LayerScratch is a bag of lazily-created auxiliary matrices for one layer
// slot of a Workspace (the im2col patch matrices of the conv layers live
// here). Buffers are identified by index; Buf grows the bag on demand and
// the matrices reuse their backing storage across passes via Resize.
type LayerScratch struct {
	bufs []*tensor.Mat
}

// Buf returns the i-th scratch matrix, creating empty matrices as needed.
func (s *LayerScratch) Buf(i int) *tensor.Mat {
	for len(s.bufs) <= i {
		s.bufs = append(s.bufs, new(tensor.Mat))
	}
	return s.bufs[i]
}

// layerScratch returns the scratch bag for layer slot i, growing the slice
// on demand.
func (ws *Workspace) layerScratch(i int) *LayerScratch {
	for len(ws.scratch) <= i {
		ws.scratch = append(ws.scratch, &LayerScratch{})
	}
	return ws.scratch[i]
}

// grow extends bufs with empty matrices until it holds at least n slots.
func grow(bufs []*tensor.Mat, n int) []*tensor.Mat {
	for len(bufs) < n {
		bufs = append(bufs, new(tensor.Mat))
	}
	return bufs
}

// ForwardWS propagates a batch through every layer, writing each layer's
// output into ws-owned buffers. A nil ws falls back to the allocating
// Forward path, so callers can thread an optional workspace through
// unconditionally. Layers that do not implement IntoLayer allocate as
// usual. The returned matrix aliases workspace storage and is only valid
// until the next pass through ws. Results are bit-identical to Forward.
func (n *Network) ForwardWS(ws *Workspace, x *tensor.Mat) *tensor.Mat {
	if ws == nil {
		return n.Forward(x)
	}
	ws.acts = grow(ws.acts, len(n.Layers))
	for i, l := range n.Layers {
		switch tl := l.(type) {
		case ScratchLayer:
			x = tl.ForwardScratch(ws.layerScratch(i), ws.acts[i], x)
		case IntoLayer:
			x = tl.ForwardInto(ws.acts[i], x)
		default:
			x = l.Forward(x)
		}
	}
	return x
}

// BackwardWS propagates ∂L/∂output back through every layer, accumulating
// parameter gradients into the layers and intermediate input-gradients
// into ws-owned buffers. A nil ws falls back to the allocating Backward
// path. The returned ∂L/∂input aliases workspace storage. Results are
// bit-identical to Backward.
func (n *Network) BackwardWS(ws *Workspace, grad *tensor.Mat) *tensor.Mat {
	if ws == nil {
		return n.Backward(grad)
	}
	ws.grads = grow(ws.grads, len(n.Layers))
	for i := len(n.Layers) - 1; i >= 0; i-- {
		switch tl := n.Layers[i].(type) {
		case ScratchLayer:
			grad = tl.BackwardScratch(ws.layerScratch(i), ws.grads[i], grad)
		case IntoLayer:
			grad = tl.BackwardInto(ws.grads[i], grad)
		default:
			grad = n.Layers[i].Backward(grad)
		}
	}
	return grad
}
