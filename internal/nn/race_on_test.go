//go:build race

package nn

// raceEnabled relaxes the allocation tripwires: race-detector
// instrumentation of channel sends and sync.Pool traffic inside the
// tensor worker pool performs heap allocations of its own, so
// AllocsPerRun counts measured under -race do not reflect the
// production allocation behaviour the tripwires guard.
const raceEnabled = true
