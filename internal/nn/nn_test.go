package nn

import (
	"math"
	"testing"
	"testing/quick"

	"cellgan/internal/tensor"
)

func TestLinearForwardKnown(t *testing.T) {
	l := &Linear{
		W:  tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}),
		B:  tensor.FromSlice(1, 2, []float64{10, 20}),
		dW: tensor.New(2, 2),
		dB: tensor.New(1, 2),
	}
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	y := l.Forward(x)
	want := tensor.FromSlice(1, 2, []float64{14, 26})
	if !y.Equal(want) {
		t.Fatalf("Forward = %v want %v", y, want)
	}
	if l.In() != 2 || l.Out() != 2 {
		t.Fatalf("In/Out = %d/%d", l.In(), l.Out())
	}
}

func TestLinearBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLinear(2, 2, tensor.NewRNG(1)).Backward(tensor.New(1, 2))
}

func TestActivationShapesAndRanges(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := tensor.New(4, 6)
	tensor.GaussianFill(x, 0, 3, rng)

	th := NewTanh().Forward(x)
	sg := NewSigmoid().Forward(x)
	lr := NewLeakyReLU(0.2).Forward(x)
	rl := NewReLU().Forward(x)
	for i := range x.Data {
		if th.Data[i] < -1 || th.Data[i] > 1 {
			t.Fatal("tanh out of range")
		}
		if sg.Data[i] <= 0 || sg.Data[i] >= 1 {
			t.Fatal("sigmoid out of range")
		}
		if x.Data[i] >= 0 && lr.Data[i] != x.Data[i] {
			t.Fatal("leaky relu positive part wrong")
		}
		if x.Data[i] < 0 && math.Abs(lr.Data[i]-0.2*x.Data[i]) > 1e-15 {
			t.Fatal("leaky relu negative part wrong")
		}
		if rl.Data[i] < 0 {
			t.Fatal("relu negative output")
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	x := tensor.FromSlice(1, 2, []float64{800, -800})
	y := NewSigmoid().Forward(x)
	if y.Data[0] != 1 || y.Data[1] != 0 {
		t.Fatalf("extreme sigmoid = %v", y.Data)
	}
	if math.IsNaN(y.Data[0]) || math.IsNaN(y.Data[1]) {
		t.Fatal("sigmoid NaN at extremes")
	}
}

func TestActivationBackwardBeforeForwardPanics(t *testing.T) {
	for _, l := range []Layer{NewTanh(), NewSigmoid(), NewLeakyReLU(0.1), NewReLU()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T Backward before Forward did not panic", l)
				}
			}()
			l.Backward(tensor.New(1, 1))
		}()
	}
}

func TestNetworkCloneIndependence(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := MLP([]int{4, 8, 2}, func() Layer { return NewTanh() }, nil, rng)
	b := a.Clone()
	if a.ParamsL2() != b.ParamsL2() {
		t.Fatal("clone differs")
	}
	b.Params()[0].Set(0, 0, 99)
	if a.Params()[0].At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	rng := tensor.NewRNG(4)
	a := MLP([]int{3, 5, 2}, func() Layer { return NewTanh() }, nil, rng)
	b := MLP([]int{3, 5, 2}, func() Layer { return NewTanh() }, nil, rng)
	if a.ParamsL2() == b.ParamsL2() {
		t.Fatal("different inits should differ")
	}
	if err := b.CopyParamsFrom(a); err != nil {
		t.Fatal(err)
	}
	if a.ParamsL2() != b.ParamsL2() {
		t.Fatal("copy failed")
	}

	c := MLP([]int{3, 6, 2}, func() Layer { return NewTanh() }, nil, rng)
	if err := c.CopyParamsFrom(a); err == nil {
		t.Fatal("shape mismatch not detected")
	}
	d := NewNetwork(NewLinear(3, 5, rng))
	if err := d.CopyParamsFrom(a); err == nil {
		t.Fatal("count mismatch not detected")
	}
}

func TestEncodeDecodeParams(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := MLP([]int{4, 6, 3}, func() Layer { return NewLeakyReLU(0.2) }, nil, rng)
	data, err := a.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	b := MLP([]int{4, 6, 3}, func() Layer { return NewLeakyReLU(0.2) }, nil, rng)
	if err := b.DecodeParams(data); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		if !p.Equal(b.Params()[i]) {
			t.Fatalf("param %d mismatch after decode", i)
		}
	}

	wrong := MLP([]int{4, 7, 3}, func() Layer { return NewTanh() }, nil, rng)
	if err := wrong.DecodeParams(data); err == nil {
		t.Fatal("decode into wrong architecture accepted")
	}
	if err := b.DecodeParams([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMLPBuilderShapes(t *testing.T) {
	rng := tensor.NewRNG(6)
	g := MLP([]int{64, 256, 256, 784}, func() Layer { return NewTanh() }, func() Layer { return NewTanh() }, rng)
	// 3 Linear + 3 activations.
	if len(g.Layers) != 6 {
		t.Fatalf("layer count %d", len(g.Layers))
	}
	want := 64*256 + 256 + 256*256 + 256 + 256*784 + 784
	if g.NumParams() != want {
		t.Fatalf("NumParams = %d want %d", g.NumParams(), want)
	}
	z := tensor.New(2, 64)
	tensor.GaussianFill(z, 0, 1, rng)
	out := g.Forward(z)
	if out.Rows != 2 || out.Cols != 784 {
		t.Fatalf("output %d×%d", out.Rows, out.Cols)
	}
	if out.Max() > 1 || out.Min() < -1 {
		t.Fatal("tanh output escaped [-1,1]")
	}

	noOut := MLP([]int{3, 4}, func() Layer { return NewTanh() }, nil, rng)
	if len(noOut.Layers) != 1 {
		t.Fatalf("logit net layer count %d", len(noOut.Layers))
	}
}

func TestMLPTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MLP([]int{3}, nil, nil, tensor.NewRNG(1))
}

func TestBCELossKnownValue(t *testing.T) {
	p := tensor.FromSlice(1, 2, []float64{0.9, 0.1})
	y := tensor.FromSlice(1, 2, []float64{1, 0})
	loss, grad := BCELoss(p, y)
	want := -math.Log(0.9)
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss = %v want %v", loss, want)
	}
	if grad.Rows != 1 || grad.Cols != 2 {
		t.Fatal("grad shape")
	}
}

func TestBCEWithLogitsMatchesSigmoidBCE(t *testing.T) {
	rng := tensor.NewRNG(7)
	z := tensor.New(3, 4)
	tensor.GaussianFill(z, 0, 2, rng)
	y := tensor.New(3, 4)
	for i := range y.Data {
		y.Data[i] = float64(i % 2)
	}
	l1, g1 := BCEWithLogitsLoss(z, y)
	p := z.Map(sigmoid)
	l2, g2bce := BCELoss(p, y)
	if math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("losses differ: %v vs %v", l1, l2)
	}
	// Chain rule: ∂L/∂z = ∂L/∂p · σ'(z)
	g2 := g2bce.Clone()
	for i, pv := range p.Data {
		g2.Data[i] *= pv * (1 - pv)
	}
	if !g1.ApproxEqual(g2, 1e-9) {
		t.Fatal("gradients differ")
	}
}

func TestBCELossExtremeProbsFinite(t *testing.T) {
	p := tensor.FromSlice(1, 2, []float64{0, 1})
	y := tensor.FromSlice(1, 2, []float64{1, 0})
	loss, grad := BCELoss(p, y)
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Fatalf("loss not finite: %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("grad not finite: %v", grad.Data)
		}
	}
}

func TestLossShapeMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"BCE":    func() { BCELoss(tensor.New(1, 2), tensor.New(2, 1)) },
		"Logits": func() { BCEWithLogitsLoss(tensor.New(1, 2), tensor.New(2, 1)) },
		"MSE":    func() { MSELoss(tensor.New(1, 2), tensor.New(2, 1)) },
		"CE":     func() { SoftmaxCrossEntropy(tensor.New(2, 3), []int{0}) },
		"CErng":  func() { SoftmaxCrossEntropy(tensor.New(1, 3), []int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		z := tensor.New(1+r.Intn(5), 1+r.Intn(6))
		tensor.GaussianFill(z, 0, 5, r)
		p := Softmax(z)
		for i := 0; i < p.Rows; i++ {
			s := 0.0
			for _, v := range p.Row(i) {
				if v < 0 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxExtremeLogitsStable(t *testing.T) {
	z := tensor.FromSlice(1, 3, []float64{1000, 999, -1000})
	p := Softmax(z)
	for _, v := range p.Data {
		if math.IsNaN(v) {
			t.Fatal("softmax NaN on extreme logits")
		}
	}
	if p.Data[0] < p.Data[1] || p.Data[1] < p.Data[2] {
		t.Fatal("softmax ordering broken")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float64{2, 1, 0, 3, 5, 4})
	if got := Accuracy(logits, []int{0, 1, 0}); math.Abs(got-1) > 1e-15 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(logits, []int{1, 0, 1}); got != 0 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(tensor.New(0, 2), nil); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
}

func TestSGDStep(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := NewNetwork(NewLinear(1, 1, rng))
	lin := net.Layers[0].(*Linear)
	lin.W.Set(0, 0, 2)
	lin.B.Set(0, 0, 0)
	lin.dW.Set(0, 0, 1)
	opt := NewSGD(0.1, 0)
	opt.Step(net)
	if math.Abs(lin.W.At(0, 0)-1.9) > 1e-15 {
		t.Fatalf("W after step = %v", lin.W.At(0, 0))
	}
	if opt.LearningRate() != 0.1 {
		t.Fatal("lr getter")
	}
	opt.SetLearningRate(0.5)
	if opt.LearningRate() != 0.5 {
		t.Fatal("lr setter")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	rng := tensor.NewRNG(9)
	net := NewNetwork(NewLinear(1, 1, rng))
	lin := net.Layers[0].(*Linear)
	lin.W.Set(0, 0, 0)
	opt := NewSGD(1, 0.9)
	lin.dW.Set(0, 0, 1)
	opt.Step(net) // v = -1, W = -1
	opt.Step(net) // v = -1.9, W = -2.9
	if math.Abs(lin.W.At(0, 0)+2.9) > 1e-12 {
		t.Fatalf("momentum W = %v", lin.W.At(0, 0))
	}
	opt.Reset()
	opt.Step(net) // velocity reset: v=-1, W = -3.9
	if math.Abs(lin.W.At(0, 0)+3.9) > 1e-12 {
		t.Fatalf("post-reset W = %v", lin.W.At(0, 0))
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (w - 3)² with Adam; w should approach 3.
	rng := tensor.NewRNG(10)
	net := NewNetwork(NewLinear(1, 1, rng))
	lin := net.Layers[0].(*Linear)
	lin.W.Set(0, 0, -5)
	lin.B.Set(0, 0, 0)
	opt := NewAdam(0.1)
	for i := 0; i < 2000; i++ {
		net.ZeroGrads()
		w := lin.W.At(0, 0)
		lin.dW.Set(0, 0, 2*(w-3))
		opt.Step(net)
	}
	if math.Abs(lin.W.At(0, 0)-3) > 1e-3 {
		t.Fatalf("Adam did not converge: w = %v", lin.W.At(0, 0))
	}
}

func TestAdamResetClearsState(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := NewNetwork(NewLinear(1, 1, rng))
	opt := NewAdam(0.01)
	net.Layers[0].(*Linear).dW.Set(0, 0, 1)
	opt.Step(net)
	if opt.t != 1 {
		t.Fatalf("t = %d", opt.t)
	}
	opt.Reset()
	if opt.t != 0 || opt.m != nil || opt.v != nil {
		t.Fatal("Reset incomplete")
	}
}

func TestClipGrads(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := NewNetwork(NewLinear(2, 2, rng))
	lin := net.Layers[0].(*Linear)
	lin.dW.Fill(3)
	lin.dB.Fill(4)
	pre := ClipGrads(net, 1)
	if pre <= 1 {
		t.Fatalf("pre-clip norm = %v", pre)
	}
	post := ClipGrads(net, 0) // no-op query
	if math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v want 1", post)
	}
}

func TestZeroGradsClearsAll(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := MLP([]int{3, 4, 2}, func() Layer { return NewTanh() }, nil, rng)
	x := tensor.New(2, 3)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(2, 2)
	out := net.Forward(x)
	_, g := MSELoss(out, y)
	net.Backward(g)
	nonzero := false
	for _, gm := range net.Grads() {
		if gm.Norm2() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("backward produced no gradient")
	}
	net.ZeroGrads()
	for _, gm := range net.Grads() {
		if gm.Norm2() != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}

func TestTrainTinyClassifier(t *testing.T) {
	// End-to-end sanity: learn XOR with a small tanh MLP.
	rng := tensor.NewRNG(14)
	net := MLP([]int{2, 8, 1}, func() Layer { return NewTanh() }, nil, rng)
	opt := NewAdam(0.05)
	x := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := tensor.FromSlice(4, 1, []float64{0, 1, 1, 0})
	var loss float64
	for i := 0; i < 800; i++ {
		net.ZeroGrads()
		out := net.Forward(x)
		var g *tensor.Mat
		loss, g = BCEWithLogitsLoss(out, y)
		net.Backward(g)
		opt.Step(net)
	}
	if loss > 0.05 {
		t.Fatalf("XOR did not converge: loss %v", loss)
	}
}
