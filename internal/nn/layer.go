// Package nn implements the feed-forward neural networks used for GAN
// training: fully-connected layers with hand-derived backpropagation,
// the activation functions from the paper's Table I, binary cross-entropy
// and softmax losses, and SGD/Adam optimizers with mutable hyperparameters
// (the coevolutionary algorithm mutates the Adam learning rate at runtime).
//
// The API follows a conventional layer protocol: Forward caches whatever is
// needed for the backward pass, Backward receives ∂L/∂output and returns
// ∂L/∂input while accumulating parameter gradients, and optimizers consume
// (params, grads) pairs.
package nn

import (
	"cellgan/internal/tensor"
)

// Layer is one differentiable stage of a network. Implementations cache
// forward-pass state, so a Layer must not be shared between concurrently
// training networks; use Clone for that.
type Layer interface {
	// Forward computes the layer output for a batch (rows = samples).
	Forward(x *tensor.Mat) *tensor.Mat
	// Backward receives ∂L/∂output for the most recent Forward call,
	// accumulates parameter gradients, and returns ∂L/∂input.
	Backward(grad *tensor.Mat) *tensor.Mat
	// Params returns the trainable parameter matrices (possibly empty).
	Params() []*tensor.Mat
	// Grads returns the gradient accumulators, aligned with Params.
	Grads() []*tensor.Mat
	// ZeroGrads clears the gradient accumulators.
	ZeroGrads()
	// Clone returns an independent copy of the layer (parameters copied,
	// caches not shared).
	Clone() Layer
}

// Sized is implemented by layers with a fixed output width, letting
// callers determine a network's output dimension without a probe forward
// pass.
type Sized interface {
	// OutputWidth returns the per-sample output length of the layer.
	OutputWidth() int
}

// IntoLayer is implemented by layers with destination-passing Forward and
// Backward variants that write into caller-owned buffers instead of
// allocating. Network.ForwardWS/BackwardWS route through these when a
// Workspace is supplied; layers without them fall back to the allocating
// protocol. Both variants are bit-identical to their allocating forms.
type IntoLayer interface {
	Layer
	// ForwardInto is Forward writing the layer output into dst (resized
	// as needed); it returns dst. dst must not alias x.
	ForwardInto(dst, x *tensor.Mat) *tensor.Mat
	// BackwardInto is Backward writing ∂L/∂input into dst (resized as
	// needed); it returns dst. dst must not alias grad.
	BackwardInto(dst, grad *tensor.Mat) *tensor.Mat
}

// ScratchLayer is implemented by layers whose destination-passing passes
// need auxiliary buffers beyond the output matrix — the im2col lowering of
// the convolution layers materialises patch matrices that must live
// somewhere reusable. Network.ForwardWS/BackwardWS route through these
// with a per-layer LayerScratch owned by the Workspace, so the auxiliary
// buffers are reused across iterations exactly like activations. Both
// variants are bit-identical to the allocating Forward/Backward.
type ScratchLayer interface {
	Layer
	// ForwardScratch is Forward writing the layer output into dst, drawing
	// auxiliary buffers from s; it returns dst. Buffers cached in s must
	// stay untouched by the caller until the matching BackwardScratch.
	ForwardScratch(s *LayerScratch, dst, x *tensor.Mat) *tensor.Mat
	// BackwardScratch is Backward writing ∂L/∂input into dst, reading the
	// buffers cached by the preceding ForwardScratch on the same s.
	BackwardScratch(s *LayerScratch, dst, grad *tensor.Mat) *tensor.Mat
}

// Linear is a fully-connected layer computing y = x·W + b.
type Linear struct {
	W *tensor.Mat // in×out
	B *tensor.Mat // 1×out

	dW *tensor.Mat
	dB *tensor.Mat

	x *tensor.Mat // cached input
}

// NewLinear returns a Linear layer with Xavier-uniform weights and zero
// biases, drawing from rng.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		W:  tensor.New(in, out),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
	tensor.XavierUniform(l.W, in, out, rng)
	return l
}

// In returns the input width of the layer.
func (l *Linear) In() int { return l.W.Rows }

// Out returns the output width of the layer.
func (l *Linear) Out() int { return l.W.Cols }

// OutputWidth implements Sized.
func (l *Linear) OutputWidth() int { return l.W.Cols }

// Forward computes x·W + b for a batch x (rows = samples).
func (l *Linear) Forward(x *tensor.Mat) *tensor.Mat {
	return l.ForwardInto(new(tensor.Mat), x)
}

// ForwardInto computes x·W + b into dst, reusing dst's storage: one fused
// MatMulInto plus the in-place broadcast bias add, no temporaries.
func (l *Linear) ForwardInto(dst, x *tensor.Mat) *tensor.Mat {
	l.x = x
	tensor.MatMulInto(dst, x, l.W)
	dst.AddRowVec(l.B)
	return dst
}

// Backward accumulates dW += xᵀ·grad and dB += colsums(grad) and returns
// grad·Wᵀ.
func (l *Linear) Backward(grad *tensor.Mat) *tensor.Mat {
	return l.BackwardInto(new(tensor.Mat), grad)
}

// BackwardInto is Backward with the returned ∂L/∂input written into dst.
// The parameter-gradient accumulations are fused into the kernels
// (AddMatMulT1Into/AddColSumsInto), so the whole backward pass of the
// layer performs zero allocations once dst has capacity.
func (l *Linear) BackwardInto(dst, grad *tensor.Mat) *tensor.Mat {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	tensor.AddMatMulT1Into(l.dW, l.x, grad)
	tensor.AddColSumsInto(l.dB, grad)
	return tensor.MatMulT2Into(dst, grad, l.W)
}

// Params returns {W, B}.
func (l *Linear) Params() []*tensor.Mat { return []*tensor.Mat{l.W, l.B} }

// Grads returns {dW, dB}.
func (l *Linear) Grads() []*tensor.Mat { return []*tensor.Mat{l.dW, l.dB} }

// ZeroGrads clears the accumulated gradients.
func (l *Linear) ZeroGrads() {
	l.dW.Zero()
	l.dB.Zero()
}

// Clone returns a deep copy of the layer (without cached activations).
func (l *Linear) Clone() Layer {
	return &Linear{
		W:  l.W.Clone(),
		B:  l.B.Clone(),
		dW: tensor.New(l.W.Rows, l.W.Cols),
		dB: tensor.New(1, l.B.Cols),
	}
}
