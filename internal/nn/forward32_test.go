package nn

import (
	"math"
	"testing"

	"cellgan/internal/tensor"
)

// maxAbsDiff32 compares a float32 forward against the float64 forward of
// the same network, returning the largest |Δ| relative to (1 + |ref|).
func maxAbsDiff32(got *tensor.Mat32, want *tensor.Mat) float64 {
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return math.Inf(1)
	}
	m := 0.0
	for i, v := range want.Data {
		d := math.Abs(float64(got.Data[i])-v) / (1 + math.Abs(v))
		if d > m {
			m = d
		}
	}
	return m
}

func TestNet32MatchesFloat64MLP(t *testing.T) {
	rng := tensor.NewRNG(31)
	n := NewNetwork(
		NewLinear(8, 32, rng), NewLeakyReLU(0.2),
		NewLinear(32, 32, rng), NewTanh(),
		NewLinear(32, 16, rng), NewSigmoid(),
	)
	c, err := CompileNet32(n)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputWidth() != n.OutputWidth() {
		t.Fatalf("OutputWidth %d, want %d", c.OutputWidth(), n.OutputWidth())
	}
	x := tensor.New(5, 8)
	tensor.GaussianFill(x, 0, 1, rng)
	want := n.Forward(x)
	got := c.Forward(tensor.Narrow(x))
	if d := maxAbsDiff32(got, want); d > 1e-5 {
		t.Fatalf("float32 MLP forward drifts %g from float64", d)
	}
}

func TestNet32MatchesFloat64ConvTranspose(t *testing.T) {
	rng := tensor.NewRNG(32)
	ct, err := NewConvTranspose2D(4, 7, 7, 3, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(NewLinear(10, 4*7*7, rng), NewTanh(), ct, NewTanh())
	c, err := CompileNet32(n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 10)
	tensor.GaussianFill(x, 0, 1, rng)
	want := n.Forward(x)
	got := c.Forward(tensor.Narrow(x))
	if d := maxAbsDiff32(got, want); d > 1e-5 {
		t.Fatalf("float32 convT forward drifts %g from float64", d)
	}
	// Second call must reuse buffers and stay consistent.
	got2 := c.Forward(tensor.Narrow(x))
	for i := range got.Data {
		if got.Data[i] != got2.Data[i] {
			t.Fatal("repeated Net32 forward is not deterministic")
		}
	}
}

func TestCompileNet32RejectsUnsupportedLayer(t *testing.T) {
	rng := tensor.NewRNG(33)
	n := NewNetwork(NewLinear(4, 4, rng), NewDropout(0.5, rng))
	if _, err := CompileNet32(n); err == nil {
		t.Fatal("CompileNet32 accepted a Dropout layer")
	}
}

func TestNet32ForwardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	rng := tensor.NewRNG(34)
	ct, err := NewConvTranspose2D(2, 5, 5, 1, 4, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(NewLinear(6, 2*5*5, rng), NewTanh(), ct, NewTanh())
	c, err := CompileNet32(n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Narrow(tensor.New(4, 6))
	c.Forward(x) // warm buffers
	if allocs := testing.AllocsPerRun(20, func() { c.Forward(x) }); allocs != 0 {
		t.Errorf("warm Net32.Forward: %.0f allocs per run, want 0", allocs)
	}
}
