package nn

import (
	"math"
	"testing"

	"cellgan/internal/tensor"
)

// numericalGrad estimates ∂loss/∂θ for every parameter of net via central
// differences, where loss is recomputed from scratch by lossFn.
func numericalGrad(net *Network, lossFn func() float64, eps float64) []*tensor.Mat {
	var out []*tensor.Mat
	for _, p := range net.Params() {
		g := tensor.New(p.Rows, p.Cols)
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := lossFn()
			p.Data[i] = orig - eps
			lm := lossFn()
			p.Data[i] = orig
			g.Data[i] = (lp - lm) / (2 * eps)
		}
		out = append(out, g)
	}
	return out
}

// checkGrads runs forward+backward once and compares analytic parameter
// gradients against numerical estimates.
func checkGrads(t *testing.T, net *Network, x *tensor.Mat, loss func(out *tensor.Mat) (float64, *tensor.Mat)) {
	t.Helper()
	net.ZeroGrads()
	out := net.Forward(x)
	_, dOut := loss(out)
	net.Backward(dOut)
	analytic := net.Grads()

	numeric := numericalGrad(net, func() float64 {
		l, _ := loss(net.Forward(x))
		return l
	}, 1e-6)

	for pi := range analytic {
		for i := range analytic[pi].Data {
			a, n := analytic[pi].Data[i], numeric[pi].Data[i]
			if math.Abs(a-n) > 1e-4*(1+math.Abs(a)+math.Abs(n)) {
				t.Fatalf("param %d elem %d: analytic %v numeric %v", pi, i, a, n)
			}
		}
	}
}

func TestGradCheckLinearMSE(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewNetwork(NewLinear(4, 3, rng))
	x := tensor.New(5, 4)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(5, 3)
	tensor.GaussianFill(y, 0, 1, rng)
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return MSELoss(out, y)
	})
}

func TestGradCheckMLPTanhBCE(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := MLP([]int{6, 8, 1}, func() Layer { return NewTanh() }, func() Layer { return NewSigmoid() }, rng)
	x := tensor.New(7, 6)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(7, 1)
	for i := range y.Data {
		y.Data[i] = float64(i % 2)
	}
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return BCELoss(out, y)
	})
}

func TestGradCheckMLPLogitsBCE(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := MLP([]int{5, 9, 1}, func() Layer { return NewLeakyReLU(0.2) }, nil, rng)
	x := tensor.New(6, 5)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(6, 1)
	for i := range y.Data {
		y.Data[i] = float64((i + 1) % 2)
	}
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return BCEWithLogitsLoss(out, y)
	})
}

func TestGradCheckSoftmaxCE(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := MLP([]int{4, 10, 3}, func() Layer { return NewReLU() }, nil, rng)
	x := tensor.New(8, 4)
	tensor.GaussianFill(x, 0, 1, rng)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return SoftmaxCrossEntropy(out, labels)
	})
}

func TestGradCheckDeepGeneratorTopology(t *testing.T) {
	// A scaled-down version of the paper's generator (tanh hidden, tanh out).
	rng := tensor.NewRNG(5)
	net := MLP([]int{8, 16, 16, 12}, func() Layer { return NewTanh() }, func() Layer { return NewTanh() }, rng)
	x := tensor.New(4, 8)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.New(4, 12)
	tensor.GaussianFill(y, 0, 0.5, rng)
	checkGrads(t, net, x, func(out *tensor.Mat) (float64, *tensor.Mat) {
		return MSELoss(out, y)
	})
}

func TestBackwardInputGradient(t *testing.T) {
	// Verify ∂L/∂x returned by Backward against numerical differentiation,
	// which is what GAN generator training depends on (gradient flows
	// through the discriminator into the generator's output).
	rng := tensor.NewRNG(6)
	net := MLP([]int{3, 5, 1}, func() Layer { return NewTanh() }, nil, rng)
	x := tensor.New(2, 3)
	tensor.GaussianFill(x, 0, 1, rng)
	y := tensor.Full(2, 1, 1)

	net.ZeroGrads()
	out := net.Forward(x)
	_, dOut := BCEWithLogitsLoss(out, y)
	dx := net.Backward(dOut)

	eps := 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := BCEWithLogitsLoss(net.Forward(x), y)
		x.Data[i] = orig - eps
		lm, _ := BCEWithLogitsLoss(net.Forward(x), y)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(dx.Data[i]-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %v numeric %v", i, dx.Data[i], num)
		}
	}
}
