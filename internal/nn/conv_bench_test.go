package nn

import (
	"testing"

	"cellgan/internal/tensor"
)

// benchConv returns the MNIST-shaped discriminator front conv
// (1×28×28 → 8×14×14, k4 s2 p1) and a batch-32 input.
func benchConv(b *testing.B) (*Conv2D, *tensor.Mat) {
	b.Helper()
	rng := tensor.NewRNG(91)
	conv, err := NewConv2D(1, 28, 28, 8, 4, 2, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(32, 1*28*28)
	tensor.GaussianFill(x, 0, 1, rng)
	return conv, x
}

// benchConvT returns the DCGAN upsampling conv (8×14×14 → 1×28×28,
// k4 s2 p1) and a batch-32 input.
func benchConvT(b *testing.B) (*ConvTranspose2D, *tensor.Mat) {
	b.Helper()
	rng := tensor.NewRNG(92)
	ct, err := NewConvTranspose2D(8, 14, 14, 1, 4, 2, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(32, 8*14*14)
	tensor.GaussianFill(x, 0, 1, rng)
	return ct, x
}

func BenchmarkConv2DForwardDirect(b *testing.B) {
	conv, x := benchConv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = conv.Forward(x)
	}
}

func BenchmarkConv2DForwardIm2Col(b *testing.B) {
	conv, x := benchConv(b)
	s, dst := &LayerScratch{}, new(tensor.Mat)
	conv.ForwardScratch(s, dst, x) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = conv.ForwardScratch(s, dst, x)
	}
}

func BenchmarkConv2DBackwardDirect(b *testing.B) {
	conv, x := benchConv(b)
	out := conv.Forward(x)
	grad := tensor.New(out.Rows, out.Cols)
	tensor.GaussianFill(grad, 0, 1, tensor.NewRNG(93))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.ZeroGrads()
		_ = conv.Backward(grad)
	}
}

func BenchmarkConv2DBackwardIm2Col(b *testing.B) {
	conv, x := benchConv(b)
	s, dst, dx := &LayerScratch{}, new(tensor.Mat), new(tensor.Mat)
	out := conv.ForwardScratch(s, dst, x)
	grad := tensor.New(out.Rows, out.Cols)
	tensor.GaussianFill(grad, 0, 1, tensor.NewRNG(93))
	conv.BackwardScratch(s, dx, grad) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.ZeroGrads()
		_ = conv.BackwardScratch(s, dx, grad)
	}
}

func BenchmarkConvTranspose2DForwardDirect(b *testing.B) {
	ct, x := benchConvT(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ct.Forward(x)
	}
}

func BenchmarkConvTranspose2DForwardIm2Col(b *testing.B) {
	ct, x := benchConvT(b)
	s, dst := &LayerScratch{}, new(tensor.Mat)
	ct.ForwardScratch(s, dst, x) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ct.ForwardScratch(s, dst, x)
	}
}

func BenchmarkConvTranspose2DBackwardDirect(b *testing.B) {
	ct, x := benchConvT(b)
	out := ct.Forward(x)
	grad := tensor.New(out.Rows, out.Cols)
	tensor.GaussianFill(grad, 0, 1, tensor.NewRNG(94))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.ZeroGrads()
		_ = ct.Backward(grad)
	}
}

func BenchmarkConvTranspose2DBackwardIm2Col(b *testing.B) {
	ct, x := benchConvT(b)
	s, dst, dx := &LayerScratch{}, new(tensor.Mat), new(tensor.Mat)
	out := ct.ForwardScratch(s, dst, x)
	grad := tensor.New(out.Rows, out.Cols)
	tensor.GaussianFill(grad, 0, 1, tensor.NewRNG(94))
	ct.BackwardScratch(s, dx, grad) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.ZeroGrads()
		_ = ct.BackwardScratch(s, dx, grad)
	}
}

// dcganNets builds the full MNIST-scale DCGAN pair of core/genome.go
// (latent 64, 8 base channels): Linear+reshape → two ConvT upsamples for
// the generator, two strided convs + Linear head for the discriminator.
func dcganNets(tb testing.TB) (gen, disc *Network) {
	tb.Helper()
	rng := tensor.NewRNG(95)
	ct1, err := NewConvTranspose2D(16, 7, 7, 8, 4, 2, 1, rng)
	if err != nil {
		tb.Fatal(err)
	}
	ct2, err := NewConvTranspose2D(8, 14, 14, 1, 4, 2, 1, rng)
	if err != nil {
		tb.Fatal(err)
	}
	gen = NewNetwork(NewLinear(64, 16*7*7, rng), NewTanh(), ct1, NewTanh(), ct2, NewTanh())
	c1, err := NewConv2D(1, 28, 28, 8, 4, 2, 1, rng)
	if err != nil {
		tb.Fatal(err)
	}
	c2, err := NewConv2D(8, 14, 14, 16, 4, 2, 1, rng)
	if err != nil {
		tb.Fatal(err)
	}
	disc = NewNetwork(c1, NewLeakyReLU(0.2), c2, NewLeakyReLU(0.2), NewLinear(16*7*7, 1, rng))
	return gen, disc
}

// dcganIteration runs one adversarial training iteration (generator
// forward, discriminator forward/backward through to the latent, Adam
// steps on both nets) on the given workspaces; nil workspaces use the
// allocating direct-loop path.
func dcganIteration(gen, disc *Network, optG, optD Optimizer, gws, dws *Workspace, z, ones *tensor.Mat, grad *tensor.Mat) {
	gen.ZeroGrads()
	disc.ZeroGrads()
	fake := gen.ForwardWS(gws, z)
	logits := disc.ForwardWS(dws, fake)
	_, _ = BCEWithLogitsLossInto(grad, logits, ones)
	dImg := disc.BackwardWS(dws, grad)
	gen.BackwardWS(gws, dImg)
	optG.Step(gen)
	optD.Step(disc)
}

func BenchmarkDCGANTrainIterationDirect(b *testing.B) {
	gen, disc := dcganNets(b)
	optG, optD := NewAdam(2e-4), NewAdam(2e-4)
	z := tensor.New(32, 64)
	tensor.GaussianFill(z, 0, 1, tensor.NewRNG(96))
	ones := tensor.Full(32, 1, 1)
	grad := new(tensor.Mat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dcganIteration(gen, disc, optG, optD, nil, nil, z, ones, grad)
	}
}

func BenchmarkDCGANTrainIterationWS(b *testing.B) {
	gen, disc := dcganNets(b)
	optG, optD := NewAdam(2e-4), NewAdam(2e-4)
	gws, dws := NewWorkspace(), NewWorkspace()
	z := tensor.New(32, 64)
	tensor.GaussianFill(z, 0, 1, tensor.NewRNG(96))
	ones := tensor.Full(32, 1, 1)
	grad := new(tensor.Mat)
	dcganIteration(gen, disc, optG, optD, gws, dws, z, ones, grad) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dcganIteration(gen, disc, optG, optD, gws, dws, z, ones, grad)
	}
}

// TestDCGANTrainIterationAllocs is the conv-stack allocation tripwire
// (picked up by CI's bench-smoke -run='Allocs' step): a steady-state
// DCGAN train iteration through the workspace path must stay in the
// single digits of allocations.
func TestDCGANTrainIterationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	gen, disc := dcganNets(t)
	optG, optD := NewAdam(2e-4), NewAdam(2e-4)
	gws, dws := NewWorkspace(), NewWorkspace()
	z := tensor.New(32, 64)
	tensor.GaussianFill(z, 0, 1, tensor.NewRNG(97))
	ones := tensor.Full(32, 1, 1)
	grad := new(tensor.Mat)
	iter := func() {
		dcganIteration(gen, disc, optG, optD, gws, dws, z, ones, grad)
	}
	iter() // warm workspaces, scratch buffers and Adam state
	if allocs := testing.AllocsPerRun(10, iter); allocs > 2 {
		t.Errorf("DCGAN train iteration: %.0f allocs per run, want <= 2", allocs)
	}
}
