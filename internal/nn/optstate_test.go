package nn

import (
	"math"
	"testing"

	"cellgan/internal/tensor"
)

// trainSteps applies n identical gradient steps so optimizer state builds
// up deterministically.
func trainSteps(net *Network, opt Optimizer, n int) {
	lin := net.Layers[0].(*Linear)
	for i := 0; i < n; i++ {
		net.ZeroGrads()
		w := lin.W.At(0, 0)
		lin.dW.Set(0, 0, 2*(w-3))
		opt.Step(net)
	}
}

func TestAdamStateResumeBitExact(t *testing.T) {
	rng := tensor.NewRNG(1)
	full := NewNetwork(NewLinear(1, 1, rng))
	fullOpt := NewAdam(0.05)
	trainSteps(full, fullOpt, 20)

	half := NewNetwork(NewLinear(1, 1, tensor.NewRNG(1)))
	halfOpt := NewAdam(0.05)
	trainSteps(half, halfOpt, 10)
	state, err := halfOpt.StateBinary()
	if err != nil {
		t.Fatal(err)
	}
	resumedOpt := NewAdam(0.999) // wrong lr, overwritten by restore
	if err := resumedOpt.RestoreBinary(state); err != nil {
		t.Fatal(err)
	}
	if resumedOpt.LearningRate() != 0.05 {
		t.Fatalf("restored lr %v", resumedOpt.LearningRate())
	}
	trainSteps(half, resumedOpt, 10)
	if got, want := half.Layers[0].(*Linear).W.At(0, 0), full.Layers[0].(*Linear).W.At(0, 0); got != want {
		t.Fatalf("resumed Adam diverged: %v vs %v", got, want)
	}
}

func TestSGDStateResumeBitExact(t *testing.T) {
	full := NewNetwork(NewLinear(1, 1, tensor.NewRNG(2)))
	fullOpt := NewSGD(0.01, 0.9)
	trainSteps(full, fullOpt, 12)

	half := NewNetwork(NewLinear(1, 1, tensor.NewRNG(2)))
	halfOpt := NewSGD(0.01, 0.9)
	trainSteps(half, halfOpt, 6)
	state, err := halfOpt.StateBinary()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewSGD(0.5, 0.1)
	if err := resumed.RestoreBinary(state); err != nil {
		t.Fatal(err)
	}
	if resumed.LR != 0.01 || resumed.Momentum != 0.9 {
		t.Fatalf("restored hyperparams %v/%v", resumed.LR, resumed.Momentum)
	}
	trainSteps(half, resumed, 6)
	if got, want := half.Layers[0].(*Linear).W.At(0, 0), full.Layers[0].(*Linear).W.At(0, 0); got != want {
		t.Fatalf("resumed SGD diverged: %v vs %v", got, want)
	}
}

func TestOptimizerStateBeforeAnyStep(t *testing.T) {
	// State of a never-stepped optimizer must round-trip too (fresh
	// checkpoints).
	for _, opt := range []Optimizer{NewAdam(0.1), NewSGD(0.1, 0.5)} {
		state, err := opt.StateBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.RestoreBinary(state); err != nil {
			t.Fatalf("%T: %v", opt, err)
		}
	}
}

func TestRestoreBinaryRejectsGarbage(t *testing.T) {
	for _, opt := range []Optimizer{NewAdam(0.1), NewSGD(0.1, 0)} {
		if err := opt.RestoreBinary([]byte{1, 2}); err == nil {
			t.Fatalf("%T accepted garbage", opt)
		}
	}
}

func TestAdamRestoredMomentsMatchOriginal(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork(NewLinear(2, 2, rng))
	opt := NewAdam(0.01)
	lin := net.Layers[0].(*Linear)
	lin.dW.Fill(0.5)
	lin.dB.Fill(-0.5)
	opt.Step(net)
	state, err := opt.StateBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewAdam(0.01)
	if err := restored.RestoreBinary(state); err != nil {
		t.Fatal(err)
	}
	if restored.t != opt.t {
		t.Fatalf("t %d vs %d", restored.t, opt.t)
	}
	for i := range opt.m {
		for j := range opt.m[i].Data {
			if math.Abs(restored.m[i].Data[j]-opt.m[i].Data[j]) != 0 {
				t.Fatal("first moments differ")
			}
			if restored.v[i].Data[j] != opt.v[i].Data[j] {
				t.Fatal("second moments differ")
			}
		}
	}
}
