// Package perfmodel is the calibrated analytic cost model behind the
// reproduction of the paper's Tables III and IV. The benchmark machine for
// this reproduction has a single CPU core, so wall-clock speedups of a
// 17-process MPI job cannot be measured directly; instead, the model
// captures the execution-time structure the paper reports and regenerates
// the tables from it, while the real engine (internal/core) demonstrates
// the algorithm and communication structure at reduced scale.
//
// Calibration. The paper's own numbers constrain the model tightly:
//
//   - Single-core time is almost exactly affine in the cell count n:
//     single(n) = a·n − b  (fitting Table III within 0.5%: a = 131.6 min,
//     b = 185.1 min for 200 iterations). The negative intercept reflects
//     the "efficient management of the required memory": per-cell cost
//     grows toward an asymptote a as more networks stay resident, which is
//     precisely the effect the authors credit for the superlinear 2×2 and
//     3×3 speedups.
//
//   - Distributed time is affine in n as well: dist(n) = c + d·n
//     (c = 10.85 min base compute per slave, d = 7.24 min per additional
//     slave of communication/management overhead), matching the paper's
//     observation that overhead grows with resource count and pushes the
//     4×4 speedup below linear.
//
//   - The per-routine profile (Table IV) follows Amdahl's law per routine:
//     dist = single·(f/n + (1−f)) with a parallel fraction f calibrated to
//     the published 4×4 profile (train f≈0.89, update genomes f≈0.98,
//     mutate f≈0.32, gather f=0 — communication does not parallelise).
package perfmodel

import (
	"fmt"
	"math"
)

// Minutes is a duration in minutes, the paper's reporting unit.
type Minutes = float64

// ScalingParams model total execution time as a function of the grid cell
// count for the single-core and distributed implementations.
type ScalingParams struct {
	// Iterations the model is calibrated for (the paper's 200).
	Iterations int
	// SingleSlope (a) and SingleOffset (b): single(n) = a·n − b.
	SingleSlope, SingleOffset Minutes
	// DistBase (c) and DistPerSlave (d): dist(n) = c + d·n.
	DistBase, DistPerSlave Minutes
}

// CalibratedScaling returns the parameters fitted to the paper's Table III
// (200 iterations, MNIST, MLP topology of Table I).
func CalibratedScaling() ScalingParams {
	return ScalingParams{
		Iterations:   200,
		SingleSlope:  131.6,
		SingleOffset: 185.1,
		DistBase:     10.85,
		DistPerSlave: 7.24,
	}
}

// scale adjusts a calibrated time for a different iteration budget.
func (p ScalingParams) scale(t Minutes, iterations int) Minutes {
	if iterations <= 0 || iterations == p.Iterations {
		return t
	}
	return t * float64(iterations) / float64(p.Iterations)
}

// SingleCore predicts the single-core execution time for n grid cells.
func (p ScalingParams) SingleCore(n, iterations int) (Minutes, error) {
	if n <= 0 {
		return 0, fmt.Errorf("perfmodel: cell count %d must be positive", n)
	}
	t := p.SingleSlope*float64(n) - p.SingleOffset
	if t <= 0 {
		// Tiny grids outside the calibrated regime: fall back to the
		// asymptotic per-cell cost without the memory-pressure discount.
		t = p.SingleSlope * float64(n) * 0.25
	}
	return p.scale(t, iterations), nil
}

// Distributed predicts the distributed execution time for n grid cells
// (one slave per cell).
func (p ScalingParams) Distributed(n, iterations int) (Minutes, error) {
	if n <= 0 {
		return 0, fmt.Errorf("perfmodel: cell count %d must be positive", n)
	}
	return p.scale(p.DistBase+p.DistPerSlave*float64(n), iterations), nil
}

// Speedup predicts single/distributed for n grid cells.
func (p ScalingParams) Speedup(n int) (float64, error) {
	s, err := p.SingleCore(n, p.Iterations)
	if err != nil {
		return 0, err
	}
	d, err := p.Distributed(n, p.Iterations)
	if err != nil {
		return 0, err
	}
	return s / d, nil
}

// RowIII is one line of the paper's Table III.
type RowIII struct {
	Grid        string
	Cells       int
	SingleCore  Minutes
	Distributed Minutes
	// DistributedStd is a modelled run-to-run standard deviation: the
	// paper's ten best-effort-queue runs show a spread that grows with
	// the process count.
	DistributedStd Minutes
	Speedup        float64
}

// TableIII generates the modelled Table III for square grids of the given
// sides (the paper uses 2, 3 and 4).
func (p ScalingParams) TableIII(sides []int) ([]RowIII, error) {
	rows := make([]RowIII, 0, len(sides))
	for _, m := range sides {
		n := m * m
		s, err := p.SingleCore(n, p.Iterations)
		if err != nil {
			return nil, err
		}
		d, err := p.Distributed(n, p.Iterations)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RowIII{
			Grid:        fmt.Sprintf("%d×%d", m, m),
			Cells:       n,
			SingleCore:  s,
			Distributed: d,
			// Non-determinism of the shared platform: ~0–3% of the run,
			// growing with the number of processes involved.
			DistributedStd: d * 0.027 * (float64(n) - 4) / 12,
			Speedup:        s / d,
		})
	}
	return rows, nil
}

// RoutineModel describes one profiled routine: its single-core cost at the
// calibration point and the fraction of it that parallelises.
type RoutineModel struct {
	Name string
	// SingleCore is the routine's single-core time at the calibration
	// grid (4×4, 200 iterations).
	SingleCore Minutes
	// ParallelFraction f is the Amdahl parallel share of the routine.
	ParallelFraction float64
}

// Distributed predicts the routine's distributed time over n workers:
// single·(f/n + (1−f)).
func (r RoutineModel) Distributed(n int) (Minutes, error) {
	if n <= 0 {
		return 0, fmt.Errorf("perfmodel: worker count %d must be positive", n)
	}
	if r.ParallelFraction < 0 || r.ParallelFraction > 1 {
		return 0, fmt.Errorf("perfmodel: parallel fraction %g outside [0,1]", r.ParallelFraction)
	}
	return r.SingleCore * (r.ParallelFraction/float64(n) + (1 - r.ParallelFraction)), nil
}

// CalibratedRoutines returns the four routines of the paper's Table IV
// with parallel fractions fitted to the published 4×4 profile.
func CalibratedRoutines() []RoutineModel {
	return []RoutineModel{
		{Name: "gather", SingleCore: 19.4, ParallelFraction: 0},
		{Name: "train", SingleCore: 264.9, ParallelFraction: 0.8903},
		{Name: "update genomes", SingleCore: 199.8, ParallelFraction: 0.97680},
		{Name: "mutate", SingleCore: 25.6, ParallelFraction: 0.3209},
	}
}

// RowIV is one line of the paper's Table IV.
type RowIV struct {
	Routine     string
	SingleCore  Minutes
	Distributed Minutes
	// Acceleration is the percentage reduction of execution time.
	Acceleration float64
	Speedup      float64
}

// TableIV generates the modelled per-routine profile for n workers,
// appending the "overall" summary row the paper reports.
func TableIV(routines []RoutineModel, n int) ([]RowIV, error) {
	rows := make([]RowIV, 0, len(routines)+1)
	var sSum, dSum Minutes
	for _, r := range routines {
		d, err := r.Distributed(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RowIV{
			Routine:      r.Name,
			SingleCore:   r.SingleCore,
			Distributed:  d,
			Acceleration: (1 - d/r.SingleCore) * 100,
			Speedup:      r.SingleCore / d,
		})
		sSum += r.SingleCore
		dSum += d
	}
	rows = append(rows, RowIV{
		Routine:      "overall",
		SingleCore:   sSum,
		Distributed:  dSum,
		Acceleration: (1 - dSum/sSum) * 100,
		Speedup:      sSum / dSum,
	})
	return rows, nil
}

// FitAffine fits y = a·x + b to the given points by least squares,
// returning (a, b). It is the calibration helper used to re-derive the
// model constants from measured data (see the calibration test, which
// recovers the Table III constants from the paper's published numbers).
func FitAffine(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("perfmodel: need ≥2 aligned points, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, fmt.Errorf("perfmodel: degenerate x values")
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	return a, b, nil
}
