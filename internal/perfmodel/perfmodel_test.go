package perfmodel

import (
	"math"
	"testing"
)

// paper values from Table III.
var paperIII = []struct {
	side    int
	single  Minutes
	dist    Minutes
	speedup float64
}{
	{2, 339.6, 39.81, 8.53},
	{3, 999.5, 73.24, 13.65},
	{4, 1920.0, 126.68, 15.17},
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Fatalf("%s = %v, want %v (±%.0f%%)", name, got, want, relTol*100)
	}
}

func TestTableIIIMatchesPaperShape(t *testing.T) {
	p := CalibratedScaling()
	rows, err := p.TableIII([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for i, want := range paperIII {
		within(t, "single "+rows[i].Grid, rows[i].SingleCore, want.single, 0.02)
		within(t, "dist "+rows[i].Grid, rows[i].Distributed, want.dist, 0.05)
		within(t, "speedup "+rows[i].Grid, rows[i].Speedup, want.speedup, 0.05)
	}
}

func TestSuperlinearThenSublinear(t *testing.T) {
	// The paper's headline shape: superlinear speedups at 2×2 and 3×3,
	// sublinear at 4×4.
	p := CalibratedScaling()
	for _, tc := range []struct {
		side        int
		superlinear bool
	}{{2, true}, {3, true}, {4, false}} {
		n := tc.side * tc.side
		s, err := p.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if tc.superlinear && s <= float64(n) {
			t.Fatalf("%d×%d speedup %v not superlinear", tc.side, tc.side, s)
		}
		if !tc.superlinear && s >= float64(n) {
			t.Fatalf("%d×%d speedup %v not sublinear", tc.side, tc.side, s)
		}
	}
}

func TestSpeedupMonotonicInGridSize(t *testing.T) {
	p := CalibratedScaling()
	prev := 0.0
	for _, side := range []int{2, 3, 4, 5} {
		s, err := p.Speedup(side * side)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Fatalf("speedup not increasing at %d×%d: %v after %v", side, side, s, prev)
		}
		prev = s
	}
}

func TestScalingValidationAndIterations(t *testing.T) {
	p := CalibratedScaling()
	if _, err := p.SingleCore(0, 200); err == nil {
		t.Fatal("zero cells accepted")
	}
	if _, err := p.Distributed(-1, 200); err == nil {
		t.Fatal("negative cells accepted")
	}
	full, err := p.SingleCore(16, 200)
	if err != nil {
		t.Fatal(err)
	}
	half, err := p.SingleCore(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "iteration scaling", half, full/2, 1e-9)
	// A 1-cell "grid" is outside the calibrated regime but must still
	// return something positive.
	one, err := p.SingleCore(1, 200)
	if err != nil || one <= 0 {
		t.Fatalf("1-cell single %v err %v", one, err)
	}
}

func TestTableIVMatchesPaper(t *testing.T) {
	paper := []struct {
		routine string
		single  Minutes
		dist    Minutes
		accel   float64
		speedup float64
	}{
		{"gather", 19.4, 19.4, 0.0, 1.00},
		{"train", 264.9, 43.8, 83.5, 6.05},
		{"update genomes", 199.8, 16.8, 91.6, 11.87},
		{"mutate", 25.6, 17.9, 29.9, 1.43},
		{"overall", 509.6, 97.9, 80.8, 5.21},
	}
	rows, err := TableIV(CalibratedRoutines(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	for i, want := range paper {
		if rows[i].Routine != want.routine {
			t.Fatalf("row %d routine %q want %q", i, rows[i].Routine, want.routine)
		}
		within(t, want.routine+" single", rows[i].SingleCore, want.single, 0.01)
		within(t, want.routine+" dist", rows[i].Distributed, want.dist, 0.01)
		within(t, want.routine+" speedup", rows[i].Speedup, want.speedup, 0.01)
		if math.Abs(rows[i].Acceleration-want.accel) > 1 {
			t.Fatalf("%s acceleration %v want %v", want.routine, rows[i].Acceleration, want.accel)
		}
	}
}

func TestRoutineOrderingPreserved(t *testing.T) {
	// The paper's key observation: update genomes parallelises best, then
	// train; mutate barely; gather not at all.
	rows, err := TableIV(CalibratedRoutines(), 16)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, r := range rows {
		by[r.Routine] = r.Speedup
	}
	if !(by["update genomes"] > by["train"] && by["train"] > by["mutate"] && by["mutate"] > by["gather"]) {
		t.Fatalf("routine speedup ordering broken: %v", by)
	}
	if math.Abs(by["gather"]-1) > 1e-9 {
		t.Fatalf("gather speedup %v want exactly 1", by["gather"])
	}
}

func TestRoutineModelValidation(t *testing.T) {
	r := RoutineModel{Name: "x", SingleCore: 10, ParallelFraction: 0.5}
	if _, err := r.Distributed(0); err == nil {
		t.Fatal("zero workers accepted")
	}
	bad := RoutineModel{Name: "x", SingleCore: 10, ParallelFraction: 1.5}
	if _, err := bad.Distributed(4); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	// Amdahl limits: fully parallel halves with 2 workers; fully serial
	// never improves.
	full := RoutineModel{SingleCore: 10, ParallelFraction: 1}
	d, err := full.Distributed(2)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "fully parallel", d, 5, 1e-9)
	serial := RoutineModel{SingleCore: 10, ParallelFraction: 0}
	d, err = serial.Distributed(1000)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "fully serial", d, 10, 1e-9)
}

func TestFitAffineRecoversTableIIIConstants(t *testing.T) {
	// Calibration provenance: fitting the paper's single-core numbers
	// recovers the model constants.
	xs := []float64{4, 9, 16}
	ys := []float64{339.6, 999.5, 1920.0}
	a, b, err := FitAffine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "slope", a, 131.6, 0.01)
	within(t, "offset", -b, 185.1, 0.03)
	// And the distributed side.
	yd := []float64{39.81, 73.24, 126.68}
	a, b, err = FitAffine(xs, yd)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "dist slope", a, 7.24, 0.02)
	within(t, "dist base", b, 10.85, 0.25)
}

func TestFitAffineValidation(t *testing.T) {
	if _, _, err := FitAffine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, err := FitAffine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("misaligned accepted")
	}
	if _, _, err := FitAffine([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestTableIIIStdGrowsWithGrid(t *testing.T) {
	// The paper reports ±0.01, ±2.56, ±3.42: spread grows with processes.
	rows, err := CalibratedScaling().TableIII([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].DistributedStd < rows[1].DistributedStd && rows[1].DistributedStd < rows[2].DistributedStd) {
		t.Fatalf("std not increasing: %v %v %v",
			rows[0].DistributedStd, rows[1].DistributedStd, rows[2].DistributedStd)
	}
}
