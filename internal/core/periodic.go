package core

import "sync"

// Periodic checkpoint capture for the in-process runners. Two shapes:
//
//   - ckptCollector (seq, par): cells move in lockstep, so a snapshot at
//     iteration k is assembled from every cell's FullState at the
//     post-exchange boundary of k and handed to the sink only when all n
//     cells have deposited — a consistent cut by construction.
//   - asyncCkptBoard (async): no boundary is shared, so the board keeps
//     the newest FullState per cell and emits a best-effort snapshot
//     whenever the slowest cell has advanced a full cadence.

// ckptCollector assembles lockstep snapshots.
type ckptCollector struct {
	every int
	sink  func(int, []*FullState) error
	n     int

	mu      sync.Mutex
	pending map[int][]*FullState
	counts  map[int]int
	failed  error
}

// newCkptCollector returns nil when no cadence is configured.
func newCkptCollector(opts RunOptions, n int) *ckptCollector {
	if opts.CheckpointEvery <= 0 || opts.CheckpointSink == nil {
		return nil
	}
	return &ckptCollector{
		every:   opts.CheckpointEvery,
		sink:    opts.CheckpointSink,
		n:       n,
		pending: make(map[int][]*FullState),
		counts:  make(map[int]int),
	}
}

// deposit records cell's state if it sits on a cadence boundary; the
// depositing goroutine that completes a snapshot runs the sink. Safe on
// a nil collector.
func (c *ckptCollector) deposit(cell *Cell) error {
	if c == nil {
		return nil
	}
	iter := cell.Iteration()
	if iter == 0 || iter%c.every != 0 {
		return nil
	}
	full, err := cell.FullState()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		// A failed sink already doomed the run; don't assemble more.
		return c.failed
	}
	states := c.pending[iter]
	if states == nil {
		states = make([]*FullState, c.n)
		c.pending[iter] = states
	}
	if states[cell.Rank] == nil {
		c.counts[iter]++
	}
	states[cell.Rank] = full
	if c.counts[iter] < c.n {
		return nil
	}
	delete(c.pending, iter)
	delete(c.counts, iter)
	// The sink runs under the lock: lockstep modes have at most one
	// snapshot in flight, and serialising keeps sink calls in iteration
	// order by construction.
	if err := c.sink(iter, states); err != nil {
		c.failed = err
		return err
	}
	return nil
}

// asyncCkptBoard assembles newest-wins snapshots from free-running cells.
type asyncCkptBoard struct {
	every int
	sink  func(int, []*FullState) error

	mu       sync.Mutex
	latest   []*FullState
	lastSunk int
	failed   error
}

// newAsyncCkptBoard returns nil when no cadence is configured.
func newAsyncCkptBoard(opts RunOptions, n int) *asyncCkptBoard {
	if opts.CheckpointEvery <= 0 || opts.CheckpointSink == nil {
		return nil
	}
	return &asyncCkptBoard{
		every:  opts.CheckpointEvery,
		sink:   opts.CheckpointSink,
		latest: make([]*FullState, n),
	}
}

// deposit records cell's state at its own cadence boundaries and emits a
// snapshot once every cell has one and the slowest has crossed the next
// cadence since the last emission. Per-cell iterations in successive
// snapshots are monotonic because entries are only ever replaced by the
// same cell's later state. Safe on a nil board.
func (b *asyncCkptBoard) deposit(cell *Cell) error {
	if b == nil {
		return nil
	}
	iter := cell.Iteration()
	if iter == 0 || iter%b.every != 0 {
		return nil
	}
	full, err := cell.FullState()
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed != nil {
		return b.failed
	}
	b.latest[cell.Rank] = full
	min := -1
	for _, st := range b.latest {
		if st == nil {
			return nil
		}
		if min < 0 || st.Cell.Iteration < min {
			min = st.Cell.Iteration
		}
	}
	if min < b.lastSunk+b.every {
		return nil
	}
	b.lastSunk = min
	snap := make([]*FullState, len(b.latest))
	copy(snap, b.latest)
	if err := b.sink(min, snap); err != nil {
		b.failed = err
		return err
	}
	return nil
}
