package core

import (
	"math"
	"testing"

	"cellgan/internal/grid"
	"cellgan/internal/tensor"
)

func TestCNNBuildersShapes(t *testing.T) {
	cfg := tinyConfig()
	cfg.NetworkType = "CNN"
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	g := BuildGenerator(cfg, rng)
	d := BuildDiscriminator(cfg, rng)
	z := tensor.New(2, cfg.InputNeurons)
	tensor.GaussianFill(z, 0, 1, rng)
	img := g.Forward(z)
	if img.Rows != 2 || img.Cols != 784 {
		t.Fatalf("CNN generator output %d×%d", img.Rows, img.Cols)
	}
	if img.Max() > 1 || img.Min() < -1 {
		t.Fatal("CNN generator escaped tanh range")
	}
	logits := d.Forward(img)
	if logits.Rows != 2 || logits.Cols != 1 {
		t.Fatalf("CNN discriminator output %d×%d", logits.Rows, logits.Cols)
	}
}

func TestCNNCellIterates(t *testing.T) {
	cfg := tinyConfig()
	cfg.NetworkType = "CNN"
	cfg.BatchSize = 4
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cell.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(stats.GenLoss) || math.IsNaN(stats.DiscLoss) {
		t.Fatalf("CNN losses NaN: %+v", stats)
	}
}

func TestCNNStateExchangeRoundTrip(t *testing.T) {
	// CNN genomes must survive the serialise/deserialise of the
	// neighbourhood exchange like MLP ones.
	cfg := tinyConfig()
	cfg.NetworkType = "CNN"
	cfg.BatchSize = 4
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	a, err := NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCell(cfg, 1, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetNeighbors(map[int]*CellState{1: sb}); err != nil {
		t.Fatal(err)
	}
	if len(a.Mixture().Ranks) != 2 {
		t.Fatalf("CNN mixture %v", a.Mixture().Ranks)
	}
}

func TestCNNRejectsNon784Output(t *testing.T) {
	cfg := tinyConfig()
	cfg.NetworkType = "CNN"
	cfg.OutputNeurons = 100
	if err := cfg.Validate(); err == nil {
		t.Fatal("CNN with 100 outputs accepted")
	}
}
