package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/grid"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// asyncStateTag carries center snapshots between cells in the
// asynchronous mode.
const asyncStateTag = 17

// asyncGatePoll is how long a staleness-gated cell sleeps between mailbox
// drains while waiting for a fresher neighbour snapshot.
const asyncGatePoll = 200 * time.Microsecond

// asyncTestHooks observe the asynchronous exchange from tests (the
// staleness-bound property test and the absorb-reordering regression
// test). All callbacks may be invoked concurrently from per-rank
// goroutines; nil callbacks are skipped.
type asyncTestHooks struct {
	// onPush fires after rank src sends its snapshot at iteration iter to
	// its influence set.
	onPush func(src, iter int)
	// onApply fires after rank dst applies src's snapshot at iteration
	// iter to its neighbour view.
	onApply func(dst, src, iter int)
}

// RunAsync trains the grid with fully asynchronous cells, the execution
// style §II-B describes: each cell iterates at its own pace, pushes its
// updated center to the cells whose neighbourhoods contain it (its
// influence set), and before each iteration absorbs whatever neighbour
// updates have arrived — no barrier, no collective. Fast cells are never
// held back by slow ones, except by the bounded-staleness window
// (Cfg.AsyncStaleness): a cell blocks before an iteration that would
// leave it more than S versions ahead of a neighbour's last absorbed
// snapshot, which caps divergence without reintroducing a barrier. The
// mode remains run-to-run nondeterministic (neighbour staleness depends
// on scheduling).
func RunAsync(cfg config.Config, opts RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := opts.Prof
	if prof == nil {
		prof = profile.New()
	}
	started := time.Now()
	g, err := buildGrid(cfg)
	if err != nil {
		return nil, err
	}
	n := g.Size()
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	inst := newRunInstruments(opts.Telemetry, opts.Trace, n)
	board := newAsyncCkptBoard(opts, n)
	results := make([]CellResult, n)
	fulls := make([]*FullState, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- asyncCellLoop(cfg, rank, g, world, prof, opts, inst, board, results, fulls)
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Cfg: cfg, Cells: results, Full: fulls}
	finishResult(res, prof, started)
	return res, nil
}

// asyncCellLoop is one rank's life in the asynchronous mode.
func asyncCellLoop(cfg config.Config, rank int, g *grid.Grid, world *mpi.World,
	prof *profile.Profiler, opts RunOptions, inst *runInstruments,
	board *asyncCkptBoard, results []CellResult, fulls []*FullState) error {
	comm, err := world.Comm(rank)
	if err != nil {
		return err
	}
	if opts.commWrap != nil {
		comm = opts.commWrap(rank, comm)
	}
	hooks := opts.asyncHooks
	cell, err := NewCellWithData(cfg, rank, g, prof, opts.Data)
	if err != nil {
		return err
	}
	// Async snapshots may mix iterations, so each cell resumes from its
	// own recorded position; a cell already at the target just serves
	// its state to neighbours and runs zero iterations.
	if err := restoreIfResuming(cell, opts, g.Size()); err != nil {
		return err
	}
	tracker := NewStalenessTracker(cfg.EffectiveAsyncStaleness())
	// The staleness gate watches every grid neighbour except the cell
	// itself (a cell is always current on its own state).
	var gateOn []int
	for _, nb := range g.Neighborhood(rank) {
		if nb != rank {
			gateOn = append(gateOn, nb)
		}
	}

	// push sends this cell's current center to every cell whose
	// neighbourhood includes it (grid.Influence); the messages are
	// buffered, so no receiver needs to be ready.
	push := func() error {
		defer prof.Start(profile.RoutineGather)()
		t0 := time.Now()
		defer func() { inst.observeExchange(time.Since(t0)) }()
		state, err := cell.State()
		if err != nil {
			return err
		}
		payload := state.Marshal()
		for _, dst := range g.Influence(rank) {
			if dst == rank {
				continue
			}
			if err := comm.Send(dst, asyncStateTag, payload); err != nil {
				return err
			}
		}
		if hooks != nil && hooks.onPush != nil {
			hooks.onPush(rank, state.Iteration)
		}
		return nil
	}

	// absorb drains every pending neighbour update and applies, per
	// source, the newest snapshot of the drain — but only when it is at
	// least as new as everything already applied from that source. The
	// cross-drain check is the tracker's: the drain-local map alone cannot
	// stop a delayed or duplicated snapshot that arrives drains after a
	// newer one was applied from regressing the neighbour view.
	absorb := func() error {
		defer prof.Start(profile.RoutineGather)()
		var latest map[int]*CellState
		for {
			m, ok, err := comm.TryRecv(mpi.AnySource, asyncStateTag)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			s, err := UnmarshalCellState(m.Data)
			if err != nil {
				return err
			}
			if prev, dup := latest[s.Rank]; !dup || s.Iteration >= prev.Iteration {
				if latest == nil {
					latest = make(map[int]*CellState)
				}
				latest[s.Rank] = s
			}
		}
		for _, src := range sortedStateRanks(latest) {
			s := latest[src]
			if !tracker.ShouldApply(s.Rank, s.Iteration) {
				continue
			}
			if err := cell.UpdateNeighbor(s); err != nil {
				return err
			}
			tracker.MarkApplied(s.Rank, s.Iteration)
			inst.observeStaleness(cell.Iteration() - s.Iteration)
			if hooks != nil && hooks.onApply != nil {
				hooks.onApply(rank, s.Rank, s.Iteration)
			}
		}
		return nil
	}

	if err := push(); err != nil {
		return err
	}
	var last IterStats
	stopped := false
	// The loop is driven by the cell's own iteration counter (not a
	// fresh 0-based index) so a cell restored from a checkpoint runs
	// exactly the iterations it still owes.
	for !stopped && cell.Iteration() < cfg.Iterations {
		// No barrier in this mode, so each rank honours the stop signal
		// independently at its own iteration boundary.
		if stopRequested(opts) {
			break
		}
		if err := absorb(); err != nil {
			return err
		}
		// Bounded-staleness gate: wait, still draining the mailbox, while
		// completing this iteration would leave the cell more than S
		// versions ahead of a neighbour's last absorbed snapshot. The
		// least-advanced cell never satisfies the stale predicate, so the
		// grid as a whole always makes progress.
		for len(tracker.Stale(cell.Iteration()+1, gateOn)) > 0 {
			if stopRequested(opts) {
				stopped = true
				break
			}
			inst.observeStaleWait()
			time.Sleep(asyncGatePoll)
			if err := absorb(); err != nil {
				return err
			}
		}
		if stopped {
			break
		}
		last, err = cell.Iterate()
		if err != nil {
			return err
		}
		inst.observeIter(rank, last)
		if opts.Progress != nil {
			opts.Progress(rank, last)
		}
		if err := push(); err != nil {
			return err
		}
		if err := board.deposit(cell); err != nil {
			return err
		}
	}
	state, err := cell.State()
	if err != nil {
		return err
	}
	full, err := cell.FullState()
	if err != nil {
		return err
	}
	fulls[rank] = full
	results[rank] = CellResult{
		Rank:           rank,
		State:          state,
		MixtureRanks:   append([]int(nil), cell.mixture.Ranks...),
		MixtureWeights: append([]float64(nil), cell.mixture.Weights...),
		MixtureFitness: last.MixtureFitness,
		Last:           last,
	}
	return nil
}

// sortedStateRanks returns the keys of a drained snapshot map in
// ascending order, keeping multi-source applies deterministic for a given
// mailbox content.
func sortedStateRanks(latest map[int]*CellState) []int {
	if len(latest) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(latest))
	for r := range latest {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// ErrUnknownMode is returned by Run for an unrecognised mode name.
var ErrUnknownMode = fmt.Errorf("core: unknown run mode")

// Run dispatches to a training mode by name: "seq", "par" or "async".
func Run(mode string, cfg config.Config, opts RunOptions) (*Result, error) {
	switch mode {
	case "seq":
		return RunSequential(cfg, opts)
	case "par":
		return RunParallel(cfg, opts)
	case "async":
		return RunAsync(cfg, opts)
	default:
		return nil, fmt.Errorf("%w: %q (want seq, par or async)", ErrUnknownMode, mode)
	}
}
