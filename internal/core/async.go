package core

import (
	"fmt"
	"sync"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/grid"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// asyncStateTag carries center snapshots between cells in the
// asynchronous mode.
const asyncStateTag = 17

// RunAsync trains the grid with fully asynchronous cells, the execution
// style §II-B describes: each cell iterates at its own pace, pushes its
// updated center to the cells whose neighbourhoods contain it (its
// influence set), and before each iteration absorbs whatever neighbour
// updates have arrived — no barrier, no collective. Fast cells are never
// held back by slow ones, at the cost of run-to-run nondeterminism
// (neighbour staleness depends on scheduling).
func RunAsync(cfg config.Config, opts RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := opts.Prof
	if prof == nil {
		prof = profile.New()
	}
	started := time.Now()
	g, err := buildGrid(cfg)
	if err != nil {
		return nil, err
	}
	n := g.Size()
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	inst := newRunInstruments(opts.Telemetry, opts.Trace, n)
	results := make([]CellResult, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- asyncCellLoop(cfg, rank, g, world, prof, opts, inst, results)
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Cfg: cfg, Cells: results}
	finishResult(res, prof, started)
	return res, nil
}

// asyncCellLoop is one rank's life in the asynchronous mode.
func asyncCellLoop(cfg config.Config, rank int, g *grid.Grid, world *mpi.World,
	prof *profile.Profiler, opts RunOptions, inst *runInstruments, results []CellResult) error {
	comm, err := world.Comm(rank)
	if err != nil {
		return err
	}
	cell, err := NewCellWithData(cfg, rank, g, prof, opts.Data)
	if err != nil {
		return err
	}

	// push sends this cell's current center to every cell whose
	// neighbourhood includes it (grid.Influence); the messages are
	// buffered, so no receiver needs to be ready.
	push := func() error {
		defer prof.Start(profile.RoutineGather)()
		t0 := time.Now()
		defer func() { inst.observeExchange(time.Since(t0)) }()
		state, err := cell.State()
		if err != nil {
			return err
		}
		payload := state.Marshal()
		for _, dst := range g.Influence(rank) {
			if dst == rank {
				continue
			}
			if err := comm.Send(dst, asyncStateTag, payload); err != nil {
				return err
			}
		}
		return nil
	}

	// absorb drains every pending neighbour update, applying only the
	// newest snapshot per source rank.
	absorb := func() error {
		defer prof.Start(profile.RoutineGather)()
		latest := map[int]*CellState{}
		for {
			ok, err := comm.Probe(mpi.AnySource, asyncStateTag)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			m, err := comm.Recv(mpi.AnySource, asyncStateTag)
			if err != nil {
				return err
			}
			s, err := UnmarshalCellState(m.Data)
			if err != nil {
				return err
			}
			if prev, dup := latest[s.Rank]; !dup || s.Iteration >= prev.Iteration {
				latest[s.Rank] = s
			}
		}
		for _, s := range latest {
			if err := cell.UpdateNeighbor(s); err != nil {
				return err
			}
		}
		return nil
	}

	if err := push(); err != nil {
		return err
	}
	var last IterStats
	for iter := 0; iter < cfg.Iterations; iter++ {
		// No barrier in this mode, so each rank honours the stop signal
		// independently at its own iteration boundary.
		if stopRequested(opts) {
			break
		}
		if err := absorb(); err != nil {
			return err
		}
		last, err = cell.Iterate()
		if err != nil {
			return err
		}
		inst.observeIter(rank, last)
		if opts.Progress != nil {
			opts.Progress(rank, last)
		}
		if err := push(); err != nil {
			return err
		}
	}
	state, err := cell.State()
	if err != nil {
		return err
	}
	results[rank] = CellResult{
		Rank:           rank,
		State:          state,
		MixtureRanks:   append([]int(nil), cell.mixture.Ranks...),
		MixtureWeights: append([]float64(nil), cell.mixture.Weights...),
		MixtureFitness: last.MixtureFitness,
		Last:           last,
	}
	return nil
}

// ErrUnknownMode is returned by Run for an unrecognised mode name.
var ErrUnknownMode = fmt.Errorf("core: unknown run mode")

// Run dispatches to a training mode by name: "seq", "par" or "async".
func Run(mode string, cfg config.Config, opts RunOptions) (*Result, error) {
	switch mode {
	case "seq":
		return RunSequential(cfg, opts)
	case "par":
		return RunParallel(cfg, opts)
	case "async":
		return RunAsync(cfg, opts)
	default:
		return nil, fmt.Errorf("%w: %q (want seq, par or async)", ErrUnknownMode, mode)
	}
}
