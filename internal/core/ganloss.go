package core

import (
	"fmt"
	"math"
	"strings"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// GANLoss identifies one of the adversarial loss functions of the
// Mustangs framework (Toutouh, Hemberg, O'Reilly, GECCO 2019 — the
// paper's reference [6]). Mustangs extends Lipizzaner by evolving the
// loss function itself: each cell carries a loss gene that mutates during
// training, so different cells may optimise different GAN objectives.
type GANLoss byte

// The Mustangs loss set.
const (
	// LossBCE is the non-saturating ("heuristic") objective of Goodfellow
	// et al.: the generator minimises −log D(G(z)). Lipizzaner's default.
	LossBCE GANLoss = iota
	// LossMinimax is the original minimax objective: the generator
	// minimises log(1 − D(G(z))).
	LossMinimax
	// LossLSGAN is the least-squares objective of Mao et al.: both
	// networks minimise squared distance of the raw logit from its
	// target.
	LossLSGAN
	// LossWGAN is the Wasserstein objective of Arjovsky et al. with
	// weight clipping: the critic maximises E[D(x)] − E[D(G(z))], the
	// generator maximises E[D(G(z))]. An extension beyond the Mustangs
	// pool; the paper's introduction cites the same instability
	// literature that motivated it.
	LossWGAN
	numGANLosses
)

// wganClip is the critic weight-clipping bound of the original WGAN.
const wganClip = 0.01

// String names the loss.
func (l GANLoss) String() string {
	switch l {
	case LossBCE:
		return "bce"
	case LossMinimax:
		return "minimax"
	case LossLSGAN:
		return "lsgan"
	case LossWGAN:
		return "wgan"
	default:
		return fmt.Sprintf("loss(%d)", byte(l))
	}
}

// ParseGANLoss resolves a loss name.
func ParseGANLoss(name string) (GANLoss, error) {
	switch strings.TrimSpace(name) {
	case "bce", "heuristic":
		return LossBCE, nil
	case "minimax":
		return LossMinimax, nil
	case "lsgan", "least-squares":
		return LossLSGAN, nil
	case "wgan", "wasserstein":
		return LossWGAN, nil
	default:
		return 0, fmt.Errorf("core: unknown GAN loss %q (want bce, minimax, lsgan or wgan)", name)
	}
}

// ParseLossSet parses a comma-separated loss list (the config's loss_set
// field); an empty string yields {bce}.
func ParseLossSet(s string) ([]GANLoss, error) {
	if strings.TrimSpace(s) == "" {
		return []GANLoss{LossBCE}, nil
	}
	var out []GANLoss
	seen := map[GANLoss]bool{}
	for _, part := range strings.Split(s, ",") {
		l, err := ParseGANLoss(part)
		if err != nil {
			return nil, err
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out, nil
}

// lossScratch owns the gradient and constant-target buffers reused across
// loss evaluations. A nil *lossScratch is valid everywhere and falls back
// to fresh allocations, so callers can thread an optional scratch through
// unconditionally. The gradient returned by a *WS loss function aliases
// s.grad and is only valid until the next loss call on the same scratch —
// callers must backpropagate it before reusing s.
type lossScratch struct {
	grad   *tensor.Mat
	target *tensor.Mat
}

// gradDst returns the gradient destination buffer (fresh when s is nil).
func (s *lossScratch) gradDst() *tensor.Mat {
	if s == nil {
		return new(tensor.Mat)
	}
	if s.grad == nil {
		s.grad = new(tensor.Mat)
	}
	return s.grad
}

// full returns a rows×cols matrix filled with v, reusing s's target buffer.
func (s *lossScratch) full(rows, cols int, v float64) *tensor.Mat {
	if s == nil {
		return tensor.Full(rows, cols, v)
	}
	if s.target == nil {
		s.target = new(tensor.Mat)
	}
	s.target.Resize(rows, cols)
	s.target.Fill(v)
	return s.target
}

// generatorLoss computes the generator objective and ∂L/∂logits for the
// discriminator logits of generated samples.
func generatorLoss(kind GANLoss, logits *tensor.Mat) (float64, *tensor.Mat) {
	return generatorLossWS(kind, logits, nil)
}

// generatorLossWS is generatorLoss writing its gradient (and any constant
// target) into s-owned buffers. Bit-identical to generatorLoss.
func generatorLossWS(kind GANLoss, logits *tensor.Mat, s *lossScratch) (float64, *tensor.Mat) {
	n := float64(len(logits.Data))
	switch kind {
	case LossMinimax:
		// L = mean(log(1 − σ(z))) = mean(−z − log(1+e^(−z)))… computed
		// stably via log-sigmoid: log(1−σ(z)) = −z + logσ(z).
		grad := s.gradDst().Resize(logits.Rows, logits.Cols)
		loss := 0.0
		for i, z := range logits.Data {
			// log σ(z) = −log(1+e^(−z)) computed stably.
			logSig := -math.Log1p(math.Exp(-math.Abs(z)))
			if z < 0 {
				logSig += z
			}
			loss += -z + logSig
			// d/dz log(1−σ(z)) = −σ(z)
			grad.Data[i] = -sigmoidStable(z) / n
		}
		return loss / n, grad
	case LossLSGAN:
		ones := s.full(logits.Rows, logits.Cols, 1)
		return nn.MSELossInto(s.gradDst(), logits, ones)
	case LossWGAN:
		// L = −mean(z): the generator pushes the critic score up.
		grad := s.gradDst().Resize(logits.Rows, logits.Cols)
		grad.Fill(-1 / n)
		return -logits.Mean(), grad
	default: // LossBCE (non-saturating)
		ones := s.full(logits.Rows, logits.Cols, 1)
		return nn.BCEWithLogitsLossInto(s.gradDst(), logits, ones)
	}
}

// discHalfLoss computes one half of the discriminator objective (real or
// fake logits against a constant target) and its gradient. It is split in
// halves because backpropagation must run per forward pass.
func discHalfLoss(kind GANLoss, logits *tensor.Mat, target float64) (float64, *tensor.Mat) {
	return discHalfLossWS(kind, logits, target, nil)
}

// discHalfLossWS is discHalfLoss writing its gradient (and constant
// target) into s-owned buffers. Bit-identical to discHalfLoss.
func discHalfLossWS(kind GANLoss, logits *tensor.Mat, target float64, s *lossScratch) (float64, *tensor.Mat) {
	switch kind {
	case LossLSGAN:
		t := s.full(logits.Rows, logits.Cols, target)
		return nn.MSELossInto(s.gradDst(), logits, t)
	case LossWGAN:
		// Critic loss: −mean(real) + mean(fake); target 1 marks the real
		// half, 0 the fake half.
		n := float64(len(logits.Data))
		sign := 1.0
		if target >= 0.5 {
			sign = -1
		}
		grad := s.gradDst().Resize(logits.Rows, logits.Cols)
		grad.Fill(sign / n)
		return sign * logits.Mean(), grad
	default:
		// LossBCE and LossMinimax share the discriminator objective.
		t := s.full(logits.Rows, logits.Cols, target)
		return nn.BCEWithLogitsLossInto(s.gradDst(), logits, t)
	}
}

// clipWeights clamps every parameter of net into [−c, c] — the WGAN
// critic's Lipschitz enforcement, applied after each critic update.
func clipWeights(net *nn.Network, c float64) {
	for _, p := range net.Params() {
		for i, v := range p.Data {
			if v > c {
				p.Data[i] = c
			} else if v < -c {
				p.Data[i] = -c
			}
		}
	}
}

// discriminatorLoss computes the discriminator objective and gradients
// for real and fake logits; the returned loss is the mean of both halves.
func discriminatorLoss(kind GANLoss, realLogits, fakeLogits *tensor.Mat) (loss float64, gradReal, gradFake *tensor.Mat) {
	lr, gr := discHalfLoss(kind, realLogits, 1)
	lf, gf := discHalfLoss(kind, fakeLogits, 0)
	return (lr + lf) / 2, gr, gf
}

// sigmoidStable is the numerically stable logistic function.
func sigmoidStable(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
