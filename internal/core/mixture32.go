package core

import (
	"fmt"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// Mixture32 is a float32-compiled, inference-only snapshot of a Mixture —
// the serving engine builds one per worker when the float32 tier is
// enabled. Weights and latent draws stay float64 so the RNG stream and
// sample-to-component routing are identical to the float64 path; only the
// generator forward passes run in float32. Outputs therefore agree with
// Mixture.SampleWith to float32 forward-pass precision, not bitwise.
type Mixture32 struct {
	weights []float64
	gens    []*nn.Net32
	outDim  int
}

// CompileMixture32 compiles m's generators into float32 inference
// networks. It fails if any generator contains a layer without a float32
// lowering; callers fall back to serving the float64 mixture.
func CompileMixture32(m *Mixture) (*Mixture32, error) {
	c := &Mixture32{
		weights: append([]float64(nil), m.Weights...),
		gens:    make([]*nn.Net32, len(m.Generators)),
		outDim:  m.OutputDim(),
	}
	for i, g := range m.Generators {
		n32, err := nn.CompileNet32(g)
		if err != nil {
			return nil, fmt.Errorf("core: compile generator rank %d: %w", m.Ranks[i], err)
		}
		c.gens[i] = n32
	}
	return c, nil
}

// OutputDim returns the per-sample output length of the mixture.
func (m *Mixture32) OutputDim() int { return m.outDim }

// SampleWith draws n samples exactly as Mixture.SampleWith does —
// identical RNG consumption (n Float64 routing draws, then one float64
// GaussianFill per populated component in rank order) — but runs each
// generator forward in float32, widening the rows into the float64
// output batch so callers (HTTP encoding, metrics) are unchanged. The
// returned matrix aliases ws.out and is only valid until the next call
// on the same workspace. A nil ws allocates fresh buffers.
func (m *Mixture32) SampleWith(ws *SampleWorkspace, n, latentDim int, rng *tensor.RNG) *tensor.Mat {
	if ws == nil {
		ws = &SampleWorkspace{z: new(tensor.Mat), out: new(tensor.Mat)}
	}
	if ws.z32 == nil {
		ws.z32 = new(tensor.Mat32)
	}
	out := ws.out.Resize(n, m.outDim)
	if n <= 0 {
		return out
	}
	counts, starts, order := routeSamples(ws, m.weights, n, rng)
	for j, g := range m.gens {
		if counts[j] == 0 {
			continue
		}
		z := ws.z.Resize(counts[j], latentDim)
		tensor.GaussianFill(z, 0, 1, rng)
		imgs := g.Forward(tensor.NarrowInto(ws.z32, z))
		for k := 0; k < counts[j]; k++ {
			drow := out.Row(order[starts[j]+k])
			for c, v := range imgs.Row(k) {
				drow[c] = float64(v)
			}
		}
	}
	return out
}
