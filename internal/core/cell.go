package core

import (
	"fmt"
	"sort"

	"cellgan/internal/config"
	"cellgan/internal/dataset"
	"cellgan/internal/grid"
	"cellgan/internal/nn"
	"cellgan/internal/profile"
	"cellgan/internal/tensor"
)

// Cell is one grid cell: a center GAN, the sub-populations formed by its
// neighbourhood's centers, the optimizers, and the generator mixture. In
// the parallel implementation one Cell lives inside each slave process's
// execution thread (§III-B).
type Cell struct {
	Cfg  config.Config
	Rank int

	grid *grid.Grid
	src  dataset.Source
	rng  *tensor.RNG
	prof *profile.Profiler

	gen  *Genome
	disc *Genome

	genOpt  nn.Optimizer
	discOpt nn.Optimizer

	// Neighbour center genomes keyed by grid rank; always includes this
	// cell's own centers under its own rank.
	genNbrs  map[int]*Genome
	discNbrs map[int]*Genome

	mixture *Mixture

	loader    *dataset.Loader
	evalReal  *tensor.Mat
	iteration int
	step      int

	// restoredWeights holds checkpointed mixture weights awaiting the
	// next exchange (see RestoreFull).
	restoredWeights map[int]float64

	// lossSet is the Mustangs loss pool the loss-gene mutation draws
	// from; a single-element set reproduces plain Lipizzaner.
	lossSet []GANLoss

	// ws owns every reusable buffer of the training loop. A nil ws (the
	// test hook exercised by the bit-exactness tests) falls back to the
	// allocating code paths everywhere; both paths produce identical
	// results.
	ws *cellWorkspace
}

// cellWorkspace aggregates the reusable buffers of one cell's training
// iteration. Distinct nn workspaces keep the aliasing reasoning local:
// each forward→backward pair completes on its own workspace before that
// workspace is reused, and fitness evaluations never clobber a training
// pass in flight. For CNN genomes the nn workspaces additionally carry
// per-layer conv scratch (im2col patch buffers, shuffle and gradient
// staging) via nn.LayerScratch, so convolutional cells iterate through
// the same zero-steady-state-allocation regime as MLP cells.
type cellWorkspace struct {
	genWS, discWS         *nn.Workspace // training fwd/bwd (generator, discriminator nets)
	evalGenWS, evalDiscWS *nn.Workspace // fitness-evaluation forwards
	zTrain, zEval         *tensor.Mat   // latent batches (mini-batch / eval sized)
	train, eval           *lossScratch  // loss gradient + target buffers
	sampleWS              *SampleWorkspace
}

func newCellWorkspace() *cellWorkspace {
	return &cellWorkspace{
		genWS:      nn.NewWorkspace(),
		discWS:     nn.NewWorkspace(),
		evalGenWS:  nn.NewWorkspace(),
		evalDiscWS: nn.NewWorkspace(),
		zTrain:     new(tensor.Mat),
		zEval:      new(tensor.Mat),
		train:      &lossScratch{},
		eval:       &lossScratch{},
		sampleWS:   NewSampleWorkspace(),
	}
}

// The accessors tolerate a nil receiver so every call site can thread the
// optional workspace through unconditionally.

func (w *cellWorkspace) gen() *nn.Workspace {
	if w == nil {
		return nil
	}
	return w.genWS
}

func (w *cellWorkspace) disc() *nn.Workspace {
	if w == nil {
		return nil
	}
	return w.discWS
}

func (w *cellWorkspace) evalGen() *nn.Workspace {
	if w == nil {
		return nil
	}
	return w.evalGenWS
}

func (w *cellWorkspace) evalDisc() *nn.Workspace {
	if w == nil {
		return nil
	}
	return w.evalDiscWS
}

func (w *cellWorkspace) zTrainBuf() *tensor.Mat {
	if w == nil {
		return nil
	}
	return w.zTrain
}

func (w *cellWorkspace) zEvalBuf() *tensor.Mat {
	if w == nil {
		return nil
	}
	return w.zEval
}

func (w *cellWorkspace) trainScratch() *lossScratch {
	if w == nil {
		return nil
	}
	return w.train
}

func (w *cellWorkspace) evalScratch() *lossScratch {
	if w == nil {
		return nil
	}
	return w.eval
}

func (w *cellWorkspace) sample() *SampleWorkspace {
	if w == nil {
		return nil
	}
	return w.sampleWS
}

// IterStats summarises one training iteration of a cell.
type IterStats struct {
	Iteration   int
	GenLoss     float64
	DiscLoss    float64
	GenFitness  float64
	DiscFitness float64
	GenLR       float64
	DiscLR      float64
	// MixtureFitness is the accepted mixture fitness after the ES step.
	MixtureFitness float64
	// GenReplaced/DiscReplaced report whether selection adopted a
	// neighbour's center this iteration.
	GenReplaced  bool
	DiscReplaced bool
}

// evalBatchSize is the fixed batch used for fitness evaluations.
const evalBatchSize = 32

// NewCell creates the cell for the given grid rank, training on the
// default procedural dataset. Determinism: every random stream is derived
// from (cfg.Seed, rank), so a cell behaves identically whether it runs
// sequentially or as a parallel rank.
func NewCell(cfg config.Config, rank int, g *grid.Grid, prof *profile.Profiler) (*Cell, error) {
	return NewCellWithData(cfg, rank, g, prof, nil)
}

// NewCellWithData is NewCell with an explicit data source (e.g. real
// MNIST loaded from IDX files); src == nil selects the procedural
// dataset. With cfg.DataDieting the source is sharded so each cell sees a
// disjoint 1/N slice.
func NewCellWithData(cfg config.Config, rank int, g *grid.Grid, prof *profile.Profiler, src dataset.Source) (*Cell, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= g.Size() {
		return nil, fmt.Errorf("core: rank %d outside grid of %d cells", rank, g.Size())
	}
	if cfg.OutputNeurons != dataset.Pixels {
		return nil, fmt.Errorf("core: output neurons %d must match the dataset's %d pixels",
			cfg.OutputNeurons, dataset.Pixels)
	}
	if prof == nil {
		prof = profile.New()
	}
	rng := tensor.NewRNG(cfg.Seed ^ (uint64(rank)+1)*0x9e3779b97f4a7c15)
	if src == nil {
		ds := dataset.Train(cfg.Seed)
		if cfg.DatasetSize > 0 {
			ds = ds.WithSize(cfg.DatasetSize)
		}
		src = ds
	}
	if cfg.DataDieting {
		shard, err := dataset.NewShard(src, rank, g.Size())
		if err != nil {
			return nil, err
		}
		if shard.Len() == 0 {
			return nil, fmt.Errorf("core: data dieting leaves cell %d with no samples", rank)
		}
		src = shard
	}
	var optFor func(lr float64) nn.Optimizer
	switch cfg.Optimizer {
	case "sgd":
		optFor = func(lr float64) nn.Optimizer { return nn.NewSGD(lr, 0.9) }
	default:
		optFor = func(lr float64) nn.Optimizer { return nn.NewAdam(lr) }
	}

	lossSet, err := ParseLossSet(cfg.LossSet)
	if err != nil {
		return nil, err
	}
	c := &Cell{
		Cfg:     cfg,
		Rank:    rank,
		grid:    g,
		src:     src,
		rng:     rng,
		prof:    prof,
		lossSet: lossSet,
		gen:     &Genome{Net: BuildGenerator(cfg, rng), LR: cfg.InitialLearningRate, Loss: lossSet[0]},
		disc:    &Genome{Net: BuildDiscriminator(cfg, rng), LR: cfg.InitialLearningRate, Loss: lossSet[0]},
		ws:      newCellWorkspace(),
	}
	c.genOpt = optFor(c.gen.LR)
	c.discOpt = optFor(c.disc.LR)
	c.loader = dataset.NewLoader(src, cfg.BatchSize, rng.Split())

	// Fixed held-out real batch for fitness evaluation.
	evalIdx := make([]int, evalBatchSize)
	evalRNG := rng.Split()
	for i := range evalIdx {
		evalIdx[i] = evalRNG.Intn(src.Len())
	}
	c.evalReal, _ = dataset.BatchOf(src, evalIdx)

	c.genNbrs = map[int]*Genome{rank: c.gen}
	c.discNbrs = map[int]*Genome{rank: c.disc}
	mix, err := NewMixture(map[int]*nn.Network{rank: c.gen.Net})
	if err != nil {
		return nil, err
	}
	c.mixture = mix
	return c, nil
}

// Iteration returns the number of completed training iterations.
func (c *Cell) Iteration() int { return c.iteration }

// Neighborhood returns the grid ranks of this cell's sub-population.
func (c *Cell) Neighborhood() []int { return c.grid.Neighborhood(c.Rank) }

// State snapshots the cell's centers for neighbourhood exchange.
func (c *Cell) State() (*CellState, error) {
	gp, err := c.gen.Net.EncodeParams()
	if err != nil {
		return nil, err
	}
	dp, err := c.disc.Net.EncodeParams()
	if err != nil {
		return nil, err
	}
	return &CellState{
		Rank:        c.Rank,
		Iteration:   c.iteration,
		GenLR:       c.gen.LR,
		DiscLR:      c.disc.LR,
		GenFitness:  c.gen.Fitness,
		DiscFitness: c.disc.Fitness,
		GenLoss:     c.gen.Loss,
		DiscLoss:    c.disc.Loss,
		GenParams:   gp,
		DiscParams:  dp,
	}, nil
}

// SetNeighbors installs the latest center snapshots of the cell's
// neighbourhood (typically the result of the per-iteration allgather).
// Snapshots for ranks outside the neighbourhood are ignored; the cell's
// own rank always refers to its live centers.
func (c *Cell) SetNeighbors(states map[int]*CellState) error {
	nbSet := make(map[int]bool)
	for _, r := range c.Neighborhood() {
		nbSet[r] = true
	}
	genNbrs := map[int]*Genome{c.Rank: c.gen}
	discNbrs := map[int]*Genome{c.Rank: c.disc}
	for r, s := range states {
		if r == c.Rank || !nbSet[r] {
			continue
		}
		gen, disc, err := genomesFromState(c.Cfg, s)
		if err != nil {
			return err
		}
		genNbrs[r] = gen
		discNbrs[r] = disc
	}
	c.genNbrs = genNbrs
	c.discNbrs = discNbrs
	gens := make(map[int]*nn.Network, len(genNbrs))
	for r, g := range genNbrs {
		gens[r] = g.Net
	}
	if err := c.mixture.UpdateMembers(gens); err != nil {
		return err
	}
	c.applyRestoredWeights()
	return nil
}

// UpdateNeighbor installs (or refreshes) a single neighbour's center
// snapshot without touching the rest of the sub-population — the
// incremental form used by the asynchronous training mode, where cells
// absorb whatever updates have arrived rather than barriering on a full
// exchange. States from ranks outside the neighbourhood are ignored.
func (c *Cell) UpdateNeighbor(s *CellState) error {
	if s.Rank == c.Rank {
		return nil
	}
	inNb := false
	for _, r := range c.Neighborhood() {
		if r == s.Rank {
			inNb = true
			break
		}
	}
	if !inNb {
		return nil
	}
	gen, disc, err := genomesFromState(c.Cfg, s)
	if err != nil {
		return err
	}
	c.genNbrs[s.Rank] = gen
	c.discNbrs[s.Rank] = disc
	gens := make(map[int]*nn.Network, len(c.genNbrs))
	for r, g := range c.genNbrs {
		gens[r] = g.Net
	}
	if err := c.mixture.UpdateMembers(gens); err != nil {
		return err
	}
	c.applyRestoredWeights()
	return nil
}

// sortedRanks returns the keys of a genome map in ascending order, so all
// iteration logic is deterministic.
func sortedRanks(m map[int]*Genome) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// mutateHyperparams applies the paper's Gaussian hyperparameter mutation:
// with probability MutationProbability, perturb each center's learning
// rate by N(0, MutationRate²), clamped to stay positive.
func (c *Cell) mutateHyperparams() {
	defer c.prof.Start(profile.RoutineMutate)()
	mutate := func(g *Genome, opt nn.Optimizer) {
		if c.rng.Float64() < c.Cfg.MutationProbability {
			lr := g.LR + c.rng.NormFloat64()*c.Cfg.MutationRate
			const minLR = 1e-8
			if lr < minLR {
				lr = minLR
			}
			g.LR = lr
			opt.SetLearningRate(lr)
		}
		// Mustangs loss-function mutation: redraw the loss gene from the
		// configured pool.
		if len(c.lossSet) > 1 && c.rng.Float64() < c.Cfg.LossMutationProbability {
			g.Loss = c.lossSet[c.rng.Intn(len(c.lossSet))]
		}
	}
	mutate(c.gen, c.genOpt)
	mutate(c.disc, c.discOpt)
}

// tournamentSelect picks the fittest of TournamentSize random members
// (fitness = adversarial loss measured by eval, lower is better).
func (c *Cell) tournamentSelect(pop map[int]*Genome, eval func(*Genome) float64) *Genome {
	ranks := sortedRanks(pop)
	best := pop[ranks[c.rng.Intn(len(ranks))]]
	bestFit := eval(best)
	for i := 1; i < c.Cfg.TournamentSize; i++ {
		cand := pop[ranks[c.rng.Intn(len(ranks))]]
		if f := eval(cand); f < bestFit {
			best, bestFit = cand, f
		}
	}
	return best
}

// discFitnessOn returns the discriminator's BCE loss on a real batch plus
// fakes from the center generator (lower = fitter). fake may alias the
// eval-generator workspace; the forwards here run on the eval-disc
// workspace only.
func (c *Cell) discFitnessOn(d *Genome, real *tensor.Mat, fake *tensor.Mat) float64 {
	s := c.ws.evalScratch()
	logitsReal := d.Net.ForwardWS(c.ws.evalDisc(), real)
	ones := s.full(logitsReal.Rows, 1, 1)
	lossReal, _ := nn.BCEWithLogitsLossInto(s.gradDst(), logitsReal, ones)
	logitsFake := d.Net.ForwardWS(c.ws.evalDisc(), fake)
	zeros := s.full(logitsFake.Rows, 1, 0)
	lossFake, _ := nn.BCEWithLogitsLossInto(s.gradDst(), logitsFake, zeros)
	return (lossReal + lossFake) / 2
}

// genFitnessOn returns the generator's non-saturating loss against a
// discriminator (lower = fitter: fakes fool the discriminator). z must not
// alias the eval workspaces.
func (c *Cell) genFitnessOn(g *Genome, d *Genome, z *tensor.Mat) float64 {
	s := c.ws.evalScratch()
	fake := g.Net.ForwardWS(c.ws.evalGen(), z)
	logits := d.Net.ForwardWS(c.ws.evalDisc(), fake)
	ones := s.full(logits.Rows, 1, 1)
	loss, _ := nn.BCEWithLogitsLossInto(s.gradDst(), logits, ones)
	return loss
}

// latent draws an n×latentDim standard-normal batch.
func (c *Cell) latent(n int) *tensor.Mat {
	return c.latentInto(nil, n)
}

// latentInto draws an n×latentDim standard-normal batch into dst (nil dst
// allocates). The RNG draws are identical either way.
func (c *Cell) latentInto(dst *tensor.Mat, n int) *tensor.Mat {
	if dst == nil {
		dst = tensor.New(n, c.Cfg.InputNeurons)
	} else {
		dst.Resize(n, c.Cfg.InputNeurons)
	}
	tensor.GaussianFill(dst, 0, 1, c.rng)
	return dst
}

// trainStep performs one adversarial mini-batch update of both centers
// against tournament-selected opponents and returns (genLoss, discLoss).
//
// Buffer discipline: selection forwards run on the eval workspaces, the
// update passes on the train workspaces, and each matrix produced on a
// workspace is consumed before that workspace's next pass — e.g. fakeSel
// (eval-gen) survives the tournament because candidate discriminators
// forward on eval-disc, and fake2 (train-gen) survives the
// discriminator's real-half update because that runs on train-disc.
func (c *Cell) trainStep(real *tensor.Mat) (float64, float64) {
	b := real.Rows
	ws := c.ws

	// --- Generator update against a selected discriminator ---
	// The toughest opponent has the LOWEST discriminator loss; train the
	// generator against the fittest discriminator in the sub-population.
	fakeSel := c.gen.Net.ForwardWS(ws.evalGen(), c.latentInto(ws.zEvalBuf(), evalBatchSize))
	dOpp := c.tournamentSelect(c.discNbrs, func(g *Genome) float64 {
		return c.discFitnessOn(g, c.evalReal, fakeSel)
	})
	z := c.latentInto(ws.zTrainBuf(), b)
	c.gen.Net.ZeroGrads()
	dOpp.Net.ZeroGrads()
	fake := c.gen.Net.ForwardWS(ws.gen(), z)
	logits := dOpp.Net.ForwardWS(ws.disc(), fake)
	genLoss, dLogits := generatorLossWS(c.gen.Loss, logits, ws.trainScratch())
	dFake := dOpp.Net.BackwardWS(ws.disc(), dLogits)
	dOpp.Net.ZeroGrads() // opponent is only a critic here
	c.gen.Net.BackwardWS(ws.gen(), dFake)
	if c.Cfg.GradClip > 0 {
		nn.ClipGrads(c.gen.Net, c.Cfg.GradClip)
	}
	c.genOpt.Step(c.gen.Net)

	// --- Discriminator update against a selected generator ---
	var discLoss float64
	if c.step%c.Cfg.SkipNDiscSteps == 0 {
		zSel2 := c.latentInto(ws.zEvalBuf(), evalBatchSize)
		gOpp := c.tournamentSelect(c.genNbrs, func(g *Genome) float64 {
			return c.genFitnessOn(g, c.disc, zSel2)
		})
		z2 := c.latentInto(ws.zTrainBuf(), b)
		fake2 := gOpp.Net.ForwardWS(ws.gen(), z2)

		c.disc.Net.ZeroGrads()
		logitsReal := c.disc.Net.ForwardWS(ws.disc(), real)
		lossReal, gradReal := discHalfLossWS(c.disc.Loss, logitsReal, 1, ws.trainScratch())
		c.disc.Net.BackwardWS(ws.disc(), gradReal)
		logitsFake := c.disc.Net.ForwardWS(ws.disc(), fake2)
		lossFake, gradFake := discHalfLossWS(c.disc.Loss, logitsFake, 0, ws.trainScratch())
		c.disc.Net.BackwardWS(ws.disc(), gradFake)
		if c.Cfg.GradClip > 0 {
			nn.ClipGrads(c.disc.Net, c.Cfg.GradClip)
		}
		c.discOpt.Step(c.disc.Net)
		if c.disc.Loss == LossWGAN {
			clipWeights(c.disc.Net, wganClip)
		}
		discLoss = (lossReal + lossFake) / 2
	}
	c.step++
	return genLoss, discLoss
}

// updateGenomes runs the selection/replacement phase: adopt the fittest
// neighbour center when it beats the local one, refresh fitness values,
// and advance the mixture weights by one (1+1)-ES step.
func (c *Cell) updateGenomes() (stats IterStats) {
	defer c.prof.Start(profile.RoutineUpdateGenomes)()

	// Evaluate every generator in the sub-population against the center
	// discriminator on a common latent batch.
	z := c.latentInto(c.ws.zEvalBuf(), evalBatchSize)
	bestGenRank := c.Rank
	bestGenFit := c.genFitnessOn(c.gen, c.disc, z)
	for _, r := range sortedRanks(c.genNbrs) {
		if r == c.Rank {
			continue
		}
		if f := c.genFitnessOn(c.genNbrs[r], c.disc, z); f < bestGenFit {
			bestGenFit, bestGenRank = f, r
		}
	}
	if bestGenRank != c.Rank {
		adopted := c.genNbrs[bestGenRank]
		if err := c.gen.Net.CopyParamsFrom(adopted.Net); err == nil {
			c.gen.LR = adopted.LR
			c.gen.Loss = adopted.Loss
			c.genOpt.Reset()
			c.genOpt.SetLearningRate(adopted.LR)
			stats.GenReplaced = true
		}
	}
	c.gen.Fitness = bestGenFit

	// Same for discriminators, judged against the (possibly new) center
	// generator. The latent buffer z is dead by now and safe to reuse.
	fakeEval := c.gen.Net.ForwardWS(c.ws.evalGen(), c.latentInto(c.ws.zEvalBuf(), evalBatchSize))
	bestDiscRank := c.Rank
	bestDiscFit := c.discFitnessOn(c.disc, c.evalReal, fakeEval)
	for _, r := range sortedRanks(c.discNbrs) {
		if r == c.Rank {
			continue
		}
		if f := c.discFitnessOn(c.discNbrs[r], c.evalReal, fakeEval); f < bestDiscFit {
			bestDiscFit, bestDiscRank = f, r
		}
	}
	if bestDiscRank != c.Rank {
		adopted := c.discNbrs[bestDiscRank]
		if err := c.disc.Net.CopyParamsFrom(adopted.Net); err == nil {
			c.disc.LR = adopted.LR
			c.disc.Loss = adopted.Loss
			c.discOpt.Reset()
			c.discOpt.SetLearningRate(adopted.LR)
			stats.DiscReplaced = true
		}
	}
	c.disc.Fitness = bestDiscFit

	// (1+1)-ES on the mixture weights.
	fit, _ := c.mixture.EvolveWeightsWS(c.ws.sample(), c.disc.Net,
		c.Cfg.MixtureMutationScale, evalBatchSize, c.Cfg.InputNeurons, c.rng)
	stats.MixtureFitness = fit
	stats.GenFitness = c.gen.Fitness
	stats.DiscFitness = c.disc.Fitness
	return stats
}

// Iterate runs one full training iteration: hyperparameter mutation, the
// adversarial training epoch, and the genome/mixture update. Neighbour
// exchange is the caller's responsibility (it is a communication step).
func (c *Cell) Iterate() (IterStats, error) {
	c.mutateHyperparams()

	batches := c.loader.BatchesPerEpoch()
	if c.Cfg.BatchesPerIteration > 0 && c.Cfg.BatchesPerIteration < batches {
		batches = c.Cfg.BatchesPerIteration
	}
	var genLoss, discLoss float64
	stopTrain := c.prof.Start(profile.RoutineTrain)
	for b := 0; b < batches; b++ {
		real, _ := c.loader.Next()
		gl, dl := c.trainStep(real)
		genLoss += gl
		discLoss += dl
	}
	stopTrain()

	stats := c.updateGenomes()
	c.iteration++
	stats.Iteration = c.iteration
	stats.GenLoss = genLoss / float64(batches)
	stats.DiscLoss = discLoss / float64(batches)
	stats.GenLR = c.gen.LR
	stats.DiscLR = c.disc.LR
	return stats, nil
}

// Mixture returns the cell's current generator mixture.
func (c *Cell) Mixture() *Mixture { return c.mixture }

// Generator returns the center generator network.
func (c *Cell) Generator() *nn.Network { return c.gen.Net }

// Discriminator returns the center discriminator network.
func (c *Cell) Discriminator() *nn.Network { return c.disc.Net }

// GenomeFitness returns the latest (generator, discriminator) fitnesses.
func (c *Cell) GenomeFitness() (float64, float64) { return c.gen.Fitness, c.disc.Fitness }

// LearningRates returns the current (generator, discriminator) learning
// rates.
func (c *Cell) LearningRates() (float64, float64) { return c.gen.LR, c.disc.LR }

// GenerateSamples draws n images from the cell's mixture.
func (c *Cell) GenerateSamples(n int) *tensor.Mat {
	return c.mixture.Sample(n, c.Cfg.InputNeurons, c.rng.Split())
}
