package core

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestRunAsyncSmoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 3
	res, err := RunAsync(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != cfg.NumCells() {
		t.Fatalf("cells %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != cfg.Iterations {
			t.Fatalf("rank %d stopped at %d", c.Rank, c.Last.Iteration)
		}
		if math.IsNaN(c.MixtureFitness) {
			t.Fatalf("rank %d NaN fitness", c.Rank)
		}
	}
}

func TestRunAsyncAbsorbsNeighbors(t *testing.T) {
	// After a few iterations every cell must have grown its mixture
	// beyond its own generator: neighbour updates arrived and were
	// absorbed despite the lack of any barrier.
	cfg := tinyConfig()
	cfg.Iterations = 4
	res, err := RunAsync(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if len(c.MixtureRanks) < 2 {
			t.Fatalf("rank %d mixture never grew: %v", c.Rank, c.MixtureRanks)
		}
	}
}

func TestRunAsyncProgress(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 2
	var mu sync.Mutex
	count := 0
	_, err := RunAsync(cfg, RunOptions{Progress: func(rank int, s IterStats) {
		mu.Lock()
		count++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Iterations * cfg.NumCells(); count != want {
		t.Fatalf("progress called %d times, want %d", count, want)
	}
}

func TestRunAsyncRejectsInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.GridRows = 0
	if _, err := RunAsync(cfg, RunOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunDispatch(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 1
	for _, mode := range []string{"seq", "par", "async"} {
		res, err := Run(mode, cfg, RunOptions{})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if len(res.Cells) != cfg.NumCells() {
			t.Fatalf("mode %s: %d cells", mode, len(res.Cells))
		}
	}
	if _, err := Run("gpu", cfg, RunOptions{}); !errors.Is(err, ErrUnknownMode) {
		t.Fatalf("unknown mode error = %v", err)
	}
}

func TestUpdateNeighborIgnoresOutsiders(t *testing.T) {
	cfg := tinyConfig() // 2×2: neighbourhood of 0 = {0,1,2}
	c0, _ := newTestCell(t, cfg, 0)
	c3, _ := newTestCell(t, cfg, 3)
	s3, err := c3.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.UpdateNeighbor(s3); err != nil {
		t.Fatal(err)
	}
	if _, ok := c0.genNbrs[3]; ok {
		t.Fatal("non-neighbour absorbed")
	}
	// Own state is a no-op.
	s0, err := c0.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.UpdateNeighbor(s0); err != nil {
		t.Fatal(err)
	}
	if len(c0.Mixture().Ranks) != 1 {
		t.Fatalf("mixture %v after self-update", c0.Mixture().Ranks)
	}
}

func TestUpdateNeighborGrowsMixture(t *testing.T) {
	cfg := tinyConfig()
	c0, _ := newTestCell(t, cfg, 0)
	c1, _ := newTestCell(t, cfg, 1)
	s1, err := c1.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.UpdateNeighbor(s1); err != nil {
		t.Fatal(err)
	}
	if len(c0.Mixture().Ranks) != 2 {
		t.Fatalf("mixture %v", c0.Mixture().Ranks)
	}
	// Refreshing the same rank keeps the mixture size stable.
	if err := c0.UpdateNeighbor(s1); err != nil {
		t.Fatal(err)
	}
	if len(c0.Mixture().Ranks) != 2 {
		t.Fatalf("mixture grew on refresh: %v", c0.Mixture().Ranks)
	}
}
