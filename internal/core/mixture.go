package core

import (
	"fmt"
	"sort"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// Mixture is a weighted ensemble of generators — the generative model a
// neighbourhood ultimately returns. Lipizzaner optimises the weights with
// a (1+1)-ES whose mutation scale is the paper's "mixture mutation scale"
// (Table I: 0.01).
type Mixture struct {
	// Ranks lists the sub-population members in ascending rank order.
	Ranks []int
	// Generators holds one generator per rank, aligned with Ranks.
	Generators []*nn.Network
	// Weights are the mixture coefficients, aligned with Ranks; they are
	// non-negative and sum to 1.
	Weights []float64
}

// NewMixture builds a uniform mixture over the given generators keyed by
// rank.
func NewMixture(gens map[int]*nn.Network) (*Mixture, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("core: mixture needs at least one generator")
	}
	m := &Mixture{}
	for r := range gens {
		m.Ranks = append(m.Ranks, r)
	}
	sort.Ints(m.Ranks)
	m.Generators = make([]*nn.Network, len(m.Ranks))
	m.Weights = make([]float64, len(m.Ranks))
	for i, r := range m.Ranks {
		m.Generators[i] = gens[r]
		m.Weights[i] = 1 / float64(len(m.Ranks))
	}
	return m, nil
}

// normalizeWeights projects w onto the probability simplex by clamping
// negatives to zero and rescaling; an all-zero vector becomes uniform.
func normalizeWeights(w []float64) {
	sum := 0.0
	for i, v := range w {
		if v < 0 {
			w[i] = 0
		} else {
			sum += v
		}
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}

// Sample draws n latent vectors and routes each through a generator chosen
// according to the mixture weights, returning the n×Pixels batch.
func (m *Mixture) Sample(n, latentDim int, rng *tensor.RNG) *tensor.Mat {
	if n <= 0 {
		return tensor.New(0, m.outputDim())
	}
	// Assign each sample to a component.
	assign := make([]int, n)
	counts := make([]int, len(m.Generators))
	for i := range assign {
		u := rng.Float64()
		acc := 0.0
		comp := len(m.Weights) - 1
		for j, w := range m.Weights {
			acc += w
			if u < acc {
				comp = j
				break
			}
		}
		assign[i] = comp
		counts[comp]++
	}
	out := tensor.New(n, m.outputDim())
	// Generate per component in one batch each.
	offset := 0
	starts := make([]int, len(m.Generators))
	for j := range starts {
		starts[j] = offset
		offset += counts[j]
	}
	order := make([]int, n) // output row for each grouped sample
	idx := append([]int(nil), starts...)
	for i, comp := range assign {
		order[idx[comp]] = i
		idx[comp]++
	}
	for j, g := range m.Generators {
		if counts[j] == 0 {
			continue
		}
		z := tensor.New(counts[j], latentDim)
		tensor.GaussianFill(z, 0, 1, rng)
		imgs := g.Forward(z)
		for k := 0; k < counts[j]; k++ {
			copy(out.Row(order[starts[j]+k]), imgs.Row(k))
		}
	}
	return out
}

func (m *Mixture) outputDim() int { return m.Generators[0].OutputWidth() }

// OutputDim returns the per-sample output length of the mixture's
// generators — the flattened image dimension serving callers decode.
func (m *Mixture) OutputDim() int { return m.outputDim() }

// Clone returns a deep copy of the mixture. Generators cache forward-pass
// state, so a mixture must not be sampled from concurrently; inference
// workers clone the mixture once and sample from their private copy.
func (m *Mixture) Clone() *Mixture {
	c := &Mixture{
		Ranks:      append([]int(nil), m.Ranks...),
		Generators: make([]*nn.Network, len(m.Generators)),
		Weights:    append([]float64(nil), m.Weights...),
	}
	for i, g := range m.Generators {
		c.Generators[i] = g.Clone()
	}
	return c
}

// Fitness scores the mixture against a discriminator: the non-saturating
// generator loss of mixture samples (lower is better).
func (m *Mixture) Fitness(disc *nn.Network, n, latentDim int, rng *tensor.RNG) float64 {
	fake := m.Sample(n, latentDim, rng)
	logits := disc.Forward(fake)
	ones := tensor.Full(logits.Rows, logits.Cols, 1)
	loss, _ := nn.BCEWithLogitsLoss(logits, ones)
	return loss
}

// EvolveWeights performs one (1+1)-ES step: propose w' = Π(w + N(0, σ)),
// accept if the proposal's fitness does not worsen. Returns the accepted
// fitness and whether the proposal was accepted.
func (m *Mixture) EvolveWeights(disc *nn.Network, sigma float64, n, latentDim int, rng *tensor.RNG) (float64, bool) {
	// Evaluate parent and child on a common RNG-derived sample stream to
	// reduce selection noise: each evaluation uses its own split.
	parentFit := m.Fitness(disc, n, latentDim, rng.Split())
	proposal := append([]float64(nil), m.Weights...)
	for i := range proposal {
		proposal[i] += rng.NormFloat64() * sigma
	}
	normalizeWeights(proposal)
	old := m.Weights
	m.Weights = proposal
	childFit := m.Fitness(disc, n, latentDim, rng.Split())
	if childFit <= parentFit {
		return childFit, true
	}
	m.Weights = old
	return parentFit, false
}

// UpdateMembers replaces the mixture's generator set, preserving weights
// of ranks that persist and assigning new members the mean weight before
// renormalising.
func (m *Mixture) UpdateMembers(gens map[int]*nn.Network) error {
	if len(gens) == 0 {
		return fmt.Errorf("core: mixture needs at least one generator")
	}
	oldW := make(map[int]float64, len(m.Ranks))
	for i, r := range m.Ranks {
		oldW[r] = m.Weights[i]
	}
	mean := 1.0 / float64(len(gens))
	m.Ranks = m.Ranks[:0]
	for r := range gens {
		m.Ranks = append(m.Ranks, r)
	}
	sort.Ints(m.Ranks)
	m.Generators = make([]*nn.Network, len(m.Ranks))
	m.Weights = make([]float64, len(m.Ranks))
	for i, r := range m.Ranks {
		m.Generators[i] = gens[r]
		if w, ok := oldW[r]; ok {
			m.Weights[i] = w
		} else {
			m.Weights[i] = mean
		}
	}
	normalizeWeights(m.Weights)
	return nil
}
