package core

import (
	"fmt"
	"sort"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// Mixture is a weighted ensemble of generators — the generative model a
// neighbourhood ultimately returns. Lipizzaner optimises the weights with
// a (1+1)-ES whose mutation scale is the paper's "mixture mutation scale"
// (Table I: 0.01).
type Mixture struct {
	// Ranks lists the sub-population members in ascending rank order.
	Ranks []int
	// Generators holds one generator per rank, aligned with Ranks.
	Generators []*nn.Network
	// Weights are the mixture coefficients, aligned with Ranks; they are
	// non-negative and sum to 1.
	Weights []float64
}

// NewMixture builds a uniform mixture over the given generators keyed by
// rank.
func NewMixture(gens map[int]*nn.Network) (*Mixture, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("core: mixture needs at least one generator")
	}
	m := &Mixture{}
	for r := range gens {
		m.Ranks = append(m.Ranks, r)
	}
	sort.Ints(m.Ranks)
	m.Generators = make([]*nn.Network, len(m.Ranks))
	m.Weights = make([]float64, len(m.Ranks))
	for i, r := range m.Ranks {
		m.Generators[i] = gens[r]
		m.Weights[i] = 1 / float64(len(m.Ranks))
	}
	return m, nil
}

// normalizeWeights projects w onto the probability simplex by clamping
// negatives to zero and rescaling; an all-zero vector becomes uniform.
func normalizeWeights(w []float64) {
	sum := 0.0
	for i, v := range w {
		if v < 0 {
			w[i] = 0
		} else {
			sum += v
		}
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}

// SampleWorkspace owns every buffer the mixture sampling, fitness and
// weight-evolution paths need: the latent and output matrices, the
// per-sample routing slices, the nn workspaces for generator and
// discriminator forwards, and the loss scratch. One workspace serves one
// goroutine; inference workers pair a private workspace with their private
// mixture clone.
type SampleWorkspace struct {
	gen  *nn.Workspace // generator forward buffers
	disc *nn.Workspace // discriminator forward buffers (fitness)
	z    *tensor.Mat   // per-component latent batch
	out  *tensor.Mat   // assembled sample batch

	loss *lossScratch // fitness target + discarded gradient

	assign, counts, starts, idx, order []int
	proposal                           []float64

	z32 *tensor.Mat32 // float32 latent staging (Mixture32 path only)
}

// NewSampleWorkspace returns an empty workspace; buffers grow on first use.
func NewSampleWorkspace() *SampleWorkspace {
	return &SampleWorkspace{
		gen:  nn.NewWorkspace(),
		disc: nn.NewWorkspace(),
		z:    new(tensor.Mat),
		out:  new(tensor.Mat),
		loss: &lossScratch{},
	}
}

// intsFor resizes *buf to n elements, reallocating only on capacity
// growth, and returns it. Element values are unspecified.
func intsFor(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// floatsFor is intsFor for float64 slices.
func floatsFor(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Sample draws n latent vectors and routes each through a generator chosen
// according to the mixture weights, returning the n×Pixels batch.
func (m *Mixture) Sample(n, latentDim int, rng *tensor.RNG) *tensor.Mat {
	return m.SampleWith(nil, n, latentDim, rng)
}

// SampleWith is Sample drawing every buffer from ws. A nil ws allocates
// fresh buffers, reproducing Sample. The returned matrix aliases ws.out
// and is only valid until the next SampleWith call on the same workspace.
// The RNG consumption (n Float64 draws, then one GaussianFill per
// populated component in rank order) is identical to Sample's, so the two
// paths produce bit-identical batches from equal RNG states.
func (m *Mixture) SampleWith(ws *SampleWorkspace, n, latentDim int, rng *tensor.RNG) *tensor.Mat {
	if ws == nil {
		// Throwaway workspace: nil nn workspaces keep the network forwards
		// on their allocating paths.
		ws = &SampleWorkspace{z: new(tensor.Mat), out: new(tensor.Mat)}
	}
	out := ws.out.Resize(n, m.outputDim())
	if n <= 0 {
		return out
	}
	counts, starts, order := routeSamples(ws, m.Weights, n, rng)
	for j, g := range m.Generators {
		if counts[j] == 0 {
			continue
		}
		z := ws.z.Resize(counts[j], latentDim)
		tensor.GaussianFill(z, 0, 1, rng)
		imgs := g.ForwardWS(ws.gen, z)
		for k := 0; k < counts[j]; k++ {
			copy(out.Row(order[starts[j]+k]), imgs.Row(k))
		}
	}
	return out
}

// routeSamples assigns each of n samples to a component by weight (one
// rng.Float64 per sample, in order) and computes the grouped layout:
// counts[j] samples for component j, packed starting at starts[j], with
// order[starts[j]+k] giving the output row of the k-th grouped sample.
// Shared by the float64 and float32 sampling paths so both consume the
// RNG stream identically. All slices alias ws buffers.
func routeSamples(ws *SampleWorkspace, weights []float64, n int, rng *tensor.RNG) (counts, starts, order []int) {
	assign := intsFor(&ws.assign, n)
	counts = intsFor(&ws.counts, len(weights))
	for j := range counts {
		counts[j] = 0
	}
	for i := range assign {
		u := rng.Float64()
		acc := 0.0
		comp := len(weights) - 1
		for j, w := range weights {
			acc += w
			if u < acc {
				comp = j
				break
			}
		}
		assign[i] = comp
		counts[comp]++
	}
	offset := 0
	starts = intsFor(&ws.starts, len(weights))
	for j := range starts {
		starts[j] = offset
		offset += counts[j]
	}
	order = intsFor(&ws.order, n) // output row for each grouped sample
	idx := intsFor(&ws.idx, len(weights))
	copy(idx, starts)
	for i, comp := range assign {
		order[idx[comp]] = i
		idx[comp]++
	}
	return counts, starts, order
}

func (m *Mixture) outputDim() int { return m.Generators[0].OutputWidth() }

// OutputDim returns the per-sample output length of the mixture's
// generators — the flattened image dimension serving callers decode.
func (m *Mixture) OutputDim() int { return m.outputDim() }

// Clone returns a deep copy of the mixture. Generators cache forward-pass
// state, so a mixture must not be sampled from concurrently; inference
// workers clone the mixture once and sample from their private copy.
func (m *Mixture) Clone() *Mixture {
	c := &Mixture{
		Ranks:      append([]int(nil), m.Ranks...),
		Generators: make([]*nn.Network, len(m.Generators)),
		Weights:    append([]float64(nil), m.Weights...),
	}
	for i, g := range m.Generators {
		c.Generators[i] = g.Clone()
	}
	return c
}

// Fitness scores the mixture against a discriminator: the non-saturating
// generator loss of mixture samples (lower is better).
func (m *Mixture) Fitness(disc *nn.Network, n, latentDim int, rng *tensor.RNG) float64 {
	return m.FitnessWS(nil, disc, n, latentDim, rng)
}

// FitnessWS is Fitness drawing every buffer from ws (nil ws allocates).
func (m *Mixture) FitnessWS(ws *SampleWorkspace, disc *nn.Network, n, latentDim int, rng *tensor.RNG) float64 {
	fake := m.SampleWith(ws, n, latentDim, rng)
	var discWS *nn.Workspace
	var scratch *lossScratch
	if ws != nil {
		discWS = ws.disc
		scratch = ws.loss
	}
	logits := disc.ForwardWS(discWS, fake)
	ones := scratch.full(logits.Rows, logits.Cols, 1)
	loss, _ := nn.BCEWithLogitsLossInto(scratch.gradDst(), logits, ones)
	return loss
}

// EvolveWeights performs one (1+1)-ES step: propose w' = Π(w + N(0, σ)),
// accept if the proposal's fitness does not worsen. Returns the accepted
// fitness and whether the proposal was accepted.
func (m *Mixture) EvolveWeights(disc *nn.Network, sigma float64, n, latentDim int, rng *tensor.RNG) (float64, bool) {
	return m.EvolveWeightsWS(nil, disc, sigma, n, latentDim, rng)
}

// EvolveWeightsWS is EvolveWeights drawing every buffer from ws (nil ws
// allocates). On acceptance the previous Weights slice is recycled as the
// workspace's next proposal buffer, so callers must not retain references
// to Mixture.Weights across calls when a workspace is in use.
func (m *Mixture) EvolveWeightsWS(ws *SampleWorkspace, disc *nn.Network, sigma float64, n, latentDim int, rng *tensor.RNG) (float64, bool) {
	// Evaluate parent and child on a common RNG-derived sample stream to
	// reduce selection noise: each evaluation uses its own split.
	parentFit := m.FitnessWS(ws, disc, n, latentDim, rng.Split())
	var proposal []float64
	if ws != nil {
		proposal = floatsFor(&ws.proposal, len(m.Weights))
		copy(proposal, m.Weights)
	} else {
		proposal = append([]float64(nil), m.Weights...)
	}
	for i := range proposal {
		proposal[i] += rng.NormFloat64() * sigma
	}
	normalizeWeights(proposal)
	old := m.Weights
	m.Weights = proposal
	childFit := m.FitnessWS(ws, disc, n, latentDim, rng.Split())
	if childFit <= parentFit {
		if ws != nil {
			// The displaced parent slice becomes the next proposal buffer;
			// ws.proposal must never alias the live m.Weights.
			ws.proposal = old
		}
		return childFit, true
	}
	m.Weights = old
	return parentFit, false
}

// UpdateMembers replaces the mixture's generator set, preserving weights
// of ranks that persist and assigning new members the mean weight before
// renormalising.
func (m *Mixture) UpdateMembers(gens map[int]*nn.Network) error {
	if len(gens) == 0 {
		return fmt.Errorf("core: mixture needs at least one generator")
	}
	oldW := make(map[int]float64, len(m.Ranks))
	for i, r := range m.Ranks {
		oldW[r] = m.Weights[i]
	}
	mean := 1.0 / float64(len(gens))
	m.Ranks = m.Ranks[:0]
	for r := range gens {
		m.Ranks = append(m.Ranks, r)
	}
	sort.Ints(m.Ranks)
	m.Generators = make([]*nn.Network, len(m.Ranks))
	m.Weights = make([]float64, len(m.Ranks))
	for i, r := range m.Ranks {
		m.Generators[i] = gens[r]
		if w, ok := oldW[r]; ok {
			m.Weights[i] = w
		} else {
			m.Weights[i] = mean
		}
	}
	normalizeWeights(m.Weights)
	return nil
}
