package core

import (
	"strconv"
	"time"

	"cellgan/internal/telemetry"
)

// exchangeLatencyBuckets cover neighbourhood-exchange latency from 1 µs
// to ~8 s in powers of two.
var exchangeLatencyBuckets = telemetry.ExponentialBuckets(1e-6, 2, 24)

// stalenessBuckets cover the versions-behind distribution of absorbed
// neighbour snapshots (1 to 128 in powers of two; 0 lands in the first
// bucket).
var stalenessBuckets = telemetry.ExponentialBuckets(1, 2, 8)

// runInstruments bundles the training-loop metrics of one run. All
// observation methods are nil-receiver safe and allocation-free on the
// metrics path, so the runners thread them through unconditionally
// without disturbing the iteration alloc budget.
type runInstruments struct {
	trace *telemetry.Trace

	iterations        *telemetry.Counter
	replacements      *telemetry.Counter
	exchanges         *telemetry.Counter
	exchangeSeconds   *telemetry.Histogram
	stalenessVersions *telemetry.Histogram
	staleWaits        *telemetry.Counter
	cells             []cellInstruments
}

// cellInstruments are the per-cell gauges, labelled cell="<rank>".
type cellInstruments struct {
	iteration      *telemetry.Gauge
	genLoss        *telemetry.Gauge
	discLoss       *telemetry.Gauge
	mixtureFitness *telemetry.Gauge
	genLR          *telemetry.Gauge
}

// newRunInstruments registers the training metrics for an n-cell grid.
// Returns nil (a no-op observer) when neither a registry nor a trace is
// configured.
func newRunInstruments(reg *telemetry.Registry, trace *telemetry.Trace, n int) *runInstruments {
	if reg == nil && trace == nil {
		return nil
	}
	ri := &runInstruments{
		trace:             trace,
		iterations:        reg.Counter("train_iterations_total", "Completed cell training iterations."),
		replacements:      reg.Counter("train_replacements_total", "Selection events that adopted a neighbour's center."),
		exchanges:         reg.Counter("train_exchanges_total", "Completed neighbourhood exchanges."),
		exchangeSeconds:   reg.Histogram("train_exchange_seconds", "Neighbourhood exchange latency.", exchangeLatencyBuckets),
		stalenessVersions: reg.Histogram("train_staleness_versions", "Versions an absorbed neighbour snapshot was behind the absorbing cell (async mode).", stalenessBuckets),
		staleWaits:        reg.Counter("train_stale_waits_total", "Bounded-staleness gate polls while waiting for a fresher neighbour (async mode)."),
		cells:             make([]cellInstruments, n),
	}
	for r := 0; r < n; r++ {
		labels := `cell="` + strconv.Itoa(r) + `"`
		ri.cells[r] = cellInstruments{
			iteration:      reg.GaugeL("train_cell_iteration", labels, "Current iteration per cell."),
			genLoss:        reg.GaugeL("train_cell_gen_loss", labels, "Last generator training loss per cell."),
			discLoss:       reg.GaugeL("train_cell_disc_loss", labels, "Last discriminator training loss per cell."),
			mixtureFitness: reg.GaugeL("train_cell_mixture_fitness", labels, "Accepted mixture fitness per cell."),
			genLR:          reg.GaugeL("train_cell_gen_lr", labels, "Self-adapted generator learning rate per cell."),
		}
	}
	return ri
}

// observeIter records the outcome of one cell iteration. Safe to call
// concurrently from per-rank goroutines: distinct ranks touch distinct
// gauges and the shared counters are atomic.
func (ri *runInstruments) observeIter(rank int, s IterStats) {
	if ri == nil {
		return
	}
	ri.iterations.Inc()
	if s.GenReplaced || s.DiscReplaced {
		ri.replacements.Inc()
	}
	if rank >= 0 && rank < len(ri.cells) {
		c := &ri.cells[rank]
		c.iteration.Set(float64(s.Iteration))
		c.genLoss.Set(s.GenLoss)
		c.discLoss.Set(s.DiscLoss)
		c.mixtureFitness.Set(s.MixtureFitness)
		c.genLR.Set(s.GenLR)
	}
	if ri.trace != nil {
		ri.trace.Event("iter",
			telemetry.F("cell", float64(rank)),
			telemetry.F("iteration", float64(s.Iteration)),
			telemetry.F("gen_loss", s.GenLoss),
			telemetry.F("disc_loss", s.DiscLoss),
			telemetry.F("gen_fitness", s.GenFitness),
			telemetry.F("disc_fitness", s.DiscFitness),
			telemetry.F("mixture_fitness", s.MixtureFitness),
			telemetry.F("gen_lr", s.GenLR),
			telemetry.F("disc_lr", s.DiscLR),
		)
	}
}

// observeExchange records the latency of one neighbourhood exchange.
func (ri *runInstruments) observeExchange(d time.Duration) {
	if ri == nil {
		return
	}
	ri.exchanges.Inc()
	ri.exchangeSeconds.Observe(d.Seconds())
}

// observeStaleness records how many versions behind the absorbing cell an
// applied neighbour snapshot was (negative differences — a neighbour
// ahead of the absorber — count as 0).
func (ri *runInstruments) observeStaleness(versionsBehind int) {
	if ri == nil {
		return
	}
	if versionsBehind < 0 {
		versionsBehind = 0
	}
	ri.stalenessVersions.Observe(float64(versionsBehind))
}

// observeStaleWait counts one bounded-staleness gate poll.
func (ri *runInstruments) observeStaleWait() {
	if ri == nil {
		return
	}
	ri.staleWaits.Inc()
}

// stopRequested reports whether the run should halt at the next
// iteration boundary.
func stopRequested(opts RunOptions) bool {
	return opts.Stop != nil && opts.Stop()
}
