package core

import (
	"sync"
	"testing"
	"time"

	"cellgan/internal/mpi"
)

func TestStalenessTrackerNewestWins(t *testing.T) {
	tr := NewStalenessTracker(2)
	if !tr.ShouldApply(1, 0) {
		t.Fatal("fresh source rejected")
	}
	tr.MarkApplied(1, 3)
	if tr.ShouldApply(1, 2) {
		t.Fatal("stale snapshot accepted after newer apply")
	}
	if !tr.ShouldApply(1, 3) {
		t.Fatal("duplicate of the current snapshot rejected")
	}
	if !tr.ShouldApply(1, 4) {
		t.Fatal("newer snapshot rejected")
	}
	// MarkApplied is monotonic even when called out of order.
	tr.MarkApplied(1, 1)
	if got := tr.AppliedIteration(1); got != 3 {
		t.Fatalf("applied iteration regressed to %d", got)
	}
}

func TestStalenessTrackerGate(t *testing.T) {
	tr := NewStalenessTracker(2)
	nbrs := []int{1, 2, 3}
	// Fresh grid: everything at iteration 0, next iteration is 1.
	if s := tr.Stale(1, nbrs); len(s) != 0 {
		t.Fatalf("fresh grid gated: %v", s)
	}
	// Next iteration 3 with all neighbours at 0 exceeds the window.
	if s := tr.Stale(3, nbrs); len(s) != 3 {
		t.Fatalf("want all stale, got %v", s)
	}
	tr.MarkApplied(2, 1)
	tr.MarkApplied(3, 2)
	if s := tr.Stale(3, nbrs); len(s) != 1 || s[0] != 1 {
		t.Fatalf("want [1], got %v", s)
	}
	if s := tr.Stale(4, nbrs); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("want [1 2], got %v", s)
	}
}

func TestStalenessTrackerMinimumBound(t *testing.T) {
	tr := NewStalenessTracker(0)
	if tr.Bound() != 1 {
		t.Fatalf("bound %d, want 1", tr.Bound())
	}
	// A window of 1 must not gate the very first iteration.
	if s := tr.Stale(1, []int{1}); len(s) != 0 {
		t.Fatalf("first iteration gated: %v", s)
	}
}

// TestAsyncAbsorbReorderRegression seeds a delay/duplicate schedule into
// RunAsync's exchange traffic and asserts that no cell's view of a
// neighbour ever moves backwards. The drain-scoped newest-wins guard the
// absorb loop used to rely on cannot catch a delayed or duplicated
// snapshot that arrives a drain after a newer one was applied; the
// cross-drain StalenessTracker can, and this test fails without it.
func TestAsyncAbsorbReorderRegression(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 10
	// A wide window so the staleness gate cannot mask reordering by
	// serialising the cells.
	cfg.AsyncStaleness = 32

	type pair struct{ dst, src int }
	var mu sync.Mutex
	totalApplied := 0
	var regressions []pair

	// The reordering the drain-scoped guard misses needs a delayed
	// snapshot to surface in a drain of its own: delay seq k (held behind
	// 2 later sends), deliver seq k+1, then delay seq k+2 — whose send
	// count-releases k all alone while k+2 itself stays held. Several
	// seeds are swept so the count-deterministic schedules line that
	// pattern up against enough drain boundaries.
	for _, seed := range []uint64{1, 2, 3} {
		applied := map[pair]int{}
		hooks := &asyncTestHooks{
			onApply: func(dst, src, iter int) {
				mu.Lock()
				defer mu.Unlock()
				totalApplied++
				k := pair{dst, src}
				if prev, seen := applied[k]; seen && iter < prev {
					regressions = append(regressions, k)
				}
				if iter > applied[k] {
					applied[k] = iter
				}
			},
		}
		plan := mpi.FaultPlan{
			Seed:         seed,
			DupProb:      0.2,
			DelayProb:    0.5,
			MaxDelayHold: 2,
			Tags:         []int{asyncStateTag},
		}
		res, err := RunAsync(cfg, RunOptions{
			asyncHooks: hooks,
			commWrap:   func(rank int, c *mpi.Comm) *mpi.Comm { return mpi.FaultyComm(c, plan) },
			Progress: func(rank int, st IterStats) {
				// Mild seeded pacing decorrelates drain boundaries from
				// send times, so released stale messages meet empty
				// mailboxes instead of riding along with fresh ones.
				d := time.Duration(pacingHash(seed, rank, st.Iteration)%1500) * time.Microsecond
				time.Sleep(d)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Cells {
			if c.Last.Iteration != cfg.Iterations {
				t.Fatalf("seed %d: rank %d stopped at %d", seed, c.Rank, c.Last.Iteration)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if totalApplied == 0 {
		t.Fatal("no neighbour snapshots were applied")
	}
	if len(regressions) > 0 {
		t.Fatalf("delayed/duplicated snapshots regressed %d neighbour views: %v", len(regressions), regressions)
	}
}

// pacingHash derives a deterministic per-(rank, iteration) pacing delay,
// so the staleness property is checked under a randomized-but-seeded
// interleaving of the cell goroutines.
func pacingHash(seed uint64, rank, iter int) uint64 {
	x := seed ^ uint64(rank)*0x9e3779b97f4a7c15 ^ uint64(iter)*0xc2b2ae3d27d4eb4f
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestRunAsyncStalenessBound drives RunAsync under seeded goroutine
// pacing and asserts the bounded-staleness contract: no cell ever absorbs
// a neighbour snapshot more than S versions behind that neighbour's last
// push, and no neighbour view ever regresses.
func TestRunAsyncStalenessBound(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 6
	cfg.AsyncStaleness = 3
	s := cfg.AsyncStaleness

	var lastPush [64]int64 // per-rank last pushed iteration
	type pair struct{ dst, src int }
	var mu sync.Mutex
	applied := map[pair]int{}
	type violation struct {
		dst, src, iter, pushed int
	}
	var bad []violation
	hooks := &asyncTestHooks{
		onPush: func(src, iter int) {
			mu.Lock()
			if int64(iter) > lastPush[src] {
				lastPush[src] = int64(iter)
			}
			mu.Unlock()
		},
		onApply: func(dst, src, iter int) {
			mu.Lock()
			defer mu.Unlock()
			k := pair{dst, src}
			if prev, seen := applied[k]; seen && iter < prev {
				bad = append(bad, violation{dst, src, iter, prev})
			}
			if iter > applied[k] {
				applied[k] = iter
			}
			if pushed := int(lastPush[src]); pushed-iter > s {
				bad = append(bad, violation{dst, src, iter, pushed})
			}
		},
	}
	res, err := RunAsync(cfg, RunOptions{
		asyncHooks: hooks,
		Progress: func(rank int, st IterStats) {
			// Deterministic uneven pacing: up to ~2 ms per iteration.
			d := time.Duration(pacingHash(7, rank, st.Iteration)%2000) * time.Microsecond
			time.Sleep(d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != cfg.Iterations {
			t.Fatalf("rank %d stopped at %d", c.Rank, c.Last.Iteration)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bad) > 0 {
		t.Fatalf("staleness bound S=%d violated %d times, first: %+v", s, len(bad), bad[0])
	}
}
