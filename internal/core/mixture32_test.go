package core

import (
	"math"
	"testing"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

func TestMixture32MatchesFloat64Sampling(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2), 2: tinyGen(3)})
	if err != nil {
		t.Fatal(err)
	}
	m.Weights = []float64{0.5, 0.3, 0.2}
	c, err := CompileMixture32(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputDim() != m.OutputDim() {
		t.Fatalf("OutputDim %d, want %d", c.OutputDim(), m.OutputDim())
	}
	// Identical seeds must give identical routing and latents — the two
	// paths consume the RNG stream the same way — so outputs differ only
	// by float32 forward precision.
	const n, latent = 64, 4
	want := m.Sample(n, latent, tensor.NewRNG(77))
	got := c.SampleWith(nil, n, latent, tensor.NewRNG(77))
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %d×%d, want %d×%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-5 {
			t.Fatalf("element %d drifts %g between float32 and float64 paths", i, d)
		}
	}
}

func TestMixture32SampleWithWorkspaceReuse(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(4), 1: tinyGen(5)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileMixture32(m)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewSampleWorkspace()
	a := c.SampleWith(ws, 16, 4, tensor.NewRNG(9)).Clone()
	b := c.SampleWith(ws, 16, 4, tensor.NewRNG(9))
	if !a.Equal(b) {
		t.Fatal("workspace reuse changed the sampled batch")
	}
	// Zero-sample and shrinking calls must stay well-formed.
	if out := c.SampleWith(ws, 0, 4, tensor.NewRNG(9)); out.Rows != 0 {
		t.Fatalf("n=0 produced %d rows", out.Rows)
	}
	if out := c.SampleWith(ws, 3, 4, tensor.NewRNG(9)); out.Rows != 3 {
		t.Fatalf("shrunk batch has %d rows", out.Rows)
	}
}

func TestMixture32SampleAllocs(t *testing.T) {
	// One component keeps the per-generator batch size fixed at n: with
	// multiple components the binomial routing makes batch sizes fluctuate
	// run to run, and any run exceeding the warm-up maximum legitimately
	// grows a buffer, which is capacity growth, not a leak.
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(6)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileMixture32(m)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewSampleWorkspace()
	rng := tensor.NewRNG(11)
	c.SampleWith(ws, 32, 4, rng) // warm every buffer
	allocs := testing.AllocsPerRun(20, func() {
		c.SampleWith(ws, 32, 4, rng)
	})
	if allocs != 0 {
		t.Errorf("warm Mixture32.SampleWith: %.0f allocs per run, want 0", allocs)
	}
}

func TestCompileMixture32RejectsUnsupportedGenerator(t *testing.T) {
	rng := tensor.NewRNG(8)
	bad := nn.NewNetwork(nn.NewLinear(4, 6, rng), nn.NewDropout(0.5, rng))
	m, err := NewMixture(map[int]*nn.Network{0: bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileMixture32(m); err == nil {
		t.Fatal("CompileMixture32 accepted a generator with no float32 lowering")
	}
}
