package core

import (
	"testing"

	"cellgan/internal/config"
	"cellgan/internal/tensor"
)

// tinyConfig returns a fast configuration for unit tests: narrow layers,
// two iterations of one 8-sample batch over a 100-image dataset slice.
func tinyConfig() config.Config {
	return config.Default().Scaled(2, 8, 100)
}

func TestBuildNetworksShapes(t *testing.T) {
	cfg := config.Default()
	rng := tensor.NewRNG(1)
	g := BuildGenerator(cfg, rng)
	d := BuildDiscriminator(cfg, rng)

	z := tensor.New(3, cfg.InputNeurons)
	tensor.GaussianFill(z, 0, 1, rng)
	img := g.Forward(z)
	if img.Rows != 3 || img.Cols != cfg.OutputNeurons {
		t.Fatalf("generator output %d×%d", img.Rows, img.Cols)
	}
	if img.Max() > 1 || img.Min() < -1 {
		t.Fatal("generator output escaped tanh range")
	}
	logits := d.Forward(img)
	if logits.Rows != 3 || logits.Cols != 1 {
		t.Fatalf("discriminator output %d×%d", logits.Rows, logits.Cols)
	}
}

func TestHiddenLayerFor(t *testing.T) {
	for _, name := range []string{"tanh", "relu", "leaky_relu", "unknown"} {
		l := hiddenLayerFor(name)()
		if l == nil {
			t.Fatalf("no layer for %q", name)
		}
	}
}

func TestGenomeClone(t *testing.T) {
	cfg := tinyConfig()
	rng := tensor.NewRNG(2)
	g := &Genome{Net: BuildGenerator(cfg, rng), LR: 0.01, Fitness: 3}
	c := g.Clone()
	if c.LR != 0.01 || c.Fitness != 3 {
		t.Fatal("scalar fields not cloned")
	}
	c.Net.Params()[0].Set(0, 0, 99)
	if g.Net.Params()[0].At(0, 0) == 99 {
		t.Fatal("clone shares parameters")
	}
}

func TestCellStateRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	rng := tensor.NewRNG(3)
	gen := BuildGenerator(cfg, rng)
	disc := BuildDiscriminator(cfg, rng)
	gp, err := gen.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := disc.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	s := &CellState{
		Rank: 3, Iteration: 17,
		GenLR: 1e-4, DiscLR: 2e-4,
		GenFitness: 0.5, DiscFitness: -0.25,
		GenParams: gp, DiscParams: dp,
	}
	got, err := UnmarshalCellState(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 3 || got.Iteration != 17 || got.GenLR != 1e-4 || got.DiscLR != 2e-4 ||
		got.GenFitness != 0.5 || got.DiscFitness != -0.25 {
		t.Fatalf("scalars: %+v", got)
	}
	g2, d2, err := genomesFromState(cfg, got)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Net.ParamsL2() != gen.ParamsL2() {
		t.Fatal("generator params changed in transit")
	}
	if d2.Net.ParamsL2() != disc.ParamsL2() {
		t.Fatal("discriminator params changed in transit")
	}
}

func TestUnmarshalCellStateErrors(t *testing.T) {
	cfg := tinyConfig()
	rng := tensor.NewRNG(4)
	gen := BuildGenerator(cfg, rng)
	gp, _ := gen.EncodeParams()
	s := &CellState{Rank: 0, GenParams: gp, DiscParams: gp}
	good := s.Marshal()

	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  append([]byte{1}, good[1:]...),
		"truncated":  good[:20],
		"short blob": good[:len(good)-3],
		"trailing":   append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := UnmarshalCellState(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGenomesFromStateWrongArch(t *testing.T) {
	cfg := tinyConfig()
	rng := tensor.NewRNG(5)
	gen := BuildGenerator(cfg, rng)
	gp, _ := gen.EncodeParams()
	s := &CellState{GenParams: gp, DiscParams: gp} // disc blob is generator-shaped
	if _, _, err := genomesFromState(cfg, s); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}
