package core

import (
	"math"
	"testing"

	"cellgan/internal/config"
	"cellgan/internal/grid"
	"cellgan/internal/profile"
)

func newTestCell(t *testing.T, cfg config.Config, rank int) (*Cell, *profile.Profiler) {
	t.Helper()
	g, err := grid.New(cfg.GridRows, cfg.GridCols)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	c, err := NewCell(cfg, rank, g, prof)
	if err != nil {
		t.Fatal(err)
	}
	return c, prof
}

func TestNewCellValidation(t *testing.T) {
	cfg := tinyConfig()
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	if _, err := NewCell(cfg, -1, g, nil); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := NewCell(cfg, g.Size(), g, nil); err == nil {
		t.Fatal("rank past grid accepted")
	}
	bad := cfg
	bad.BatchSize = 0
	if _, err := NewCell(bad, 0, g, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	// nil profiler allowed.
	if _, err := NewCell(cfg, 0, g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellIterateProducesFiniteStats(t *testing.T) {
	c, prof := newTestCell(t, tinyConfig(), 0)
	stats, err := c.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"gen loss":    stats.GenLoss,
		"disc loss":   stats.DiscLoss,
		"gen fit":     stats.GenFitness,
		"disc fit":    stats.DiscFitness,
		"mixture fit": stats.MixtureFitness,
		"gen lr":      stats.GenLR,
		"disc lr":     stats.DiscLR,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v", name, v)
		}
	}
	if stats.Iteration != 1 || c.Iteration() != 1 {
		t.Fatalf("iteration counter %d/%d", stats.Iteration, c.Iteration())
	}
	// All three local routines must have been profiled.
	for _, r := range []string{profile.RoutineTrain, profile.RoutineMutate, profile.RoutineUpdateGenomes} {
		if prof.Get(r).Count == 0 {
			t.Fatalf("routine %q not profiled", r)
		}
	}
}

func TestCellTrainingChangesParameters(t *testing.T) {
	c, _ := newTestCell(t, tinyConfig(), 0)
	g0 := c.Generator().ParamsL2()
	d0 := c.Discriminator().ParamsL2()
	if _, err := c.Iterate(); err != nil {
		t.Fatal(err)
	}
	if c.Generator().ParamsL2() == g0 {
		t.Fatal("generator parameters unchanged")
	}
	if c.Discriminator().ParamsL2() == d0 {
		t.Fatal("discriminator parameters unchanged")
	}
}

func TestCellDeterminism(t *testing.T) {
	cfg := tinyConfig()
	a, _ := newTestCell(t, cfg, 0)
	b, _ := newTestCell(t, cfg, 0)
	sa, err := a.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if sa.GenLoss != sb.GenLoss || sa.DiscLoss != sb.DiscLoss || sa.GenLR != sb.GenLR {
		t.Fatalf("same seed diverged: %+v vs %+v", sa, sb)
	}
	if a.Generator().ParamsL2() != b.Generator().ParamsL2() {
		t.Fatal("parameters diverged")
	}
}

func TestCellRanksDiffer(t *testing.T) {
	cfg := tinyConfig()
	a, _ := newTestCell(t, cfg, 0)
	b, _ := newTestCell(t, cfg, 1)
	if a.Generator().ParamsL2() == b.Generator().ParamsL2() {
		t.Fatal("different ranks initialised identically")
	}
}

func TestMutationChangesLearningRate(t *testing.T) {
	cfg := tinyConfig()
	cfg.MutationProbability = 1
	cfg.MutationRate = 0.001
	c, _ := newTestCell(t, cfg, 0)
	lr0, _ := c.LearningRates()
	if _, err := c.Iterate(); err != nil {
		t.Fatal(err)
	}
	lr1, dlr1 := c.LearningRates()
	if lr1 == lr0 {
		t.Fatal("generator lr not mutated at p=1")
	}
	if lr1 <= 0 || dlr1 <= 0 {
		t.Fatal("lr left positive domain")
	}
}

func TestMutationDisabled(t *testing.T) {
	cfg := tinyConfig()
	cfg.MutationProbability = 0
	c, _ := newTestCell(t, cfg, 0)
	lr0, dlr0 := c.LearningRates()
	if _, err := c.Iterate(); err != nil {
		t.Fatal(err)
	}
	lr1, dlr1 := c.LearningRates()
	if lr1 != lr0 || dlr1 != dlr0 {
		t.Fatal("lr mutated at p=0")
	}
}

func TestStateAndSetNeighbors(t *testing.T) {
	cfg := tinyConfig() // 2×2 grid: neighbourhood of 0 is {0,1,2}
	c0, _ := newTestCell(t, cfg, 0)
	c1, _ := newTestCell(t, cfg, 1)
	c2, _ := newTestCell(t, cfg, 2)
	c3, _ := newTestCell(t, cfg, 3)

	states := map[int]*CellState{}
	for _, c := range []*Cell{c0, c1, c2, c3} {
		s, err := c.State()
		if err != nil {
			t.Fatal(err)
		}
		states[c.Rank] = s
	}
	if err := c0.SetNeighbors(states); err != nil {
		t.Fatal(err)
	}
	nb := c0.Neighborhood()
	if len(c0.genNbrs) != len(nb) {
		t.Fatalf("sub-population size %d want %d", len(c0.genNbrs), len(nb))
	}
	// Rank 3 is not in 0's Moore5 neighbourhood on a 2×2 torus.
	if _, ok := c0.genNbrs[3]; ok {
		t.Fatal("non-neighbour state accepted into sub-population")
	}
	// Mixture members must match the neighbourhood.
	if len(c0.Mixture().Ranks) != len(nb) {
		t.Fatalf("mixture over %v, neighbourhood %v", c0.Mixture().Ranks, nb)
	}
	// Own entry must alias the live center, not a stale copy.
	if c0.genNbrs[0] != c0.gen {
		t.Fatal("own sub-population entry is not the live center")
	}
}

func TestSelectionAdoptsBetterNeighbor(t *testing.T) {
	// Train cell 1 alone for several iterations so its generator clearly
	// beats cell 0's fresh one, then expose it to cell 0 via exchange.
	cfg := tinyConfig()
	cfg.Iterations = 6
	c0, _ := newTestCell(t, cfg, 0)
	c1, _ := newTestCell(t, cfg, 1)
	for i := 0; i < 6; i++ {
		if _, err := c1.Iterate(); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := c1.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.SetNeighbors(map[int]*CellState{1: s1}); err != nil {
		t.Fatal(err)
	}
	replaced := false
	for i := 0; i < 4 && !replaced; i++ {
		stats, err := c0.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		replaced = replaced || stats.GenReplaced || stats.DiscReplaced
	}
	// Selection is stochastic, but across 4 iterations against a much
	// fitter neighbour at least one replacement is overwhelmingly likely.
	if !replaced {
		t.Log("warning: no replacement adopted; acceptable but unusual")
	}
}

func TestGenerateSamplesShape(t *testing.T) {
	cfg := tinyConfig()
	c, _ := newTestCell(t, cfg, 0)
	out := c.GenerateSamples(5)
	if out.Rows != 5 || out.Cols != cfg.OutputNeurons {
		t.Fatalf("samples %d×%d", out.Rows, out.Cols)
	}
}

func TestSkipDiscSteps(t *testing.T) {
	cfg := tinyConfig()
	cfg.SkipNDiscSteps = 1000 // never train the discriminator (first step trains: step 0 % N == 0)
	c, _ := newTestCell(t, cfg, 0)
	d0 := c.Discriminator().ParamsL2()
	if _, err := c.Iterate(); err != nil {
		t.Fatal(err)
	}
	// step 0 trains D once; run a second iteration — D must stay frozen.
	d1 := c.Discriminator().ParamsL2()
	if _, err := c.Iterate(); err != nil {
		t.Fatal(err)
	}
	d2 := c.Discriminator().ParamsL2()
	if d1 == d0 {
		t.Fatal("first step should train the discriminator")
	}
	if d2 != d1 {
		t.Fatal("discriminator trained despite skip setting")
	}
}
