package core
