// Package core implements the paper's primary contribution: cellular
// competitive coevolutionary training of two populations of GANs on a
// toroidal grid (the Mustangs/Lipizzaner scheme of §II), together with the
// two execution modes compared in the evaluation — a sequential
// single-process mode and a parallel mode in which every cell is an MPI
// rank exchanging center networks with its neighbourhood each iteration.
//
// Each grid cell holds a center generator and a center discriminator. One
// training iteration performs (i) hyperparameter mutation of the Adam
// learning rates, (ii) adversarial gradient training of the centers
// against tournament-selected opponents from the neighbourhood
// sub-population, (iii) selection/replacement of the centers from the
// sub-population and a (1+1)-ES step on the generator mixture weights, and
// (iv) an allgather exchange of updated centers with the neighbourhood.
// These are exactly the four routines profiled in the paper's Table IV
// (mutate, train, update genomes, gather).
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"cellgan/internal/config"
	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// Genome is one evolvable individual: a network plus its evolvable
// hyperparameter (the optimizer learning rate, per Table I).
type Genome struct {
	// Net is the network's parameters and architecture.
	Net *nn.Network
	// LR is the current (mutated) learning rate.
	LR float64
	// Fitness is the most recent fitness evaluation (lower is better:
	// fitnesses are adversarial losses).
	Fitness float64
	// Loss is the adversarial objective this genome trains with — the
	// Mustangs loss-function gene. LossBCE reproduces plain Lipizzaner.
	Loss GANLoss
}

// Clone returns a deep copy of the genome.
func (g *Genome) Clone() *Genome {
	return &Genome{Net: g.Net.Clone(), LR: g.LR, Fitness: g.Fitness, Loss: g.Loss}
}

// hiddenLayerFor maps a config activation name to a layer constructor.
func hiddenLayerFor(name string) func() nn.Layer {
	switch name {
	case "relu":
		return func() nn.Layer { return nn.NewReLU() }
	case "leaky_relu":
		return func() nn.Layer { return nn.NewLeakyReLU(0.2) }
	default: // "tanh", the Table I setting
		return func() nn.Layer { return nn.NewTanh() }
	}
}

// cnnChannels derives the DCGAN base channel count from the configured
// hidden width so the CNN topology scales with the same knob as the MLP.
func cnnChannels(cfg config.Config) int {
	ch := cfg.NeuronsPerHidden / 16
	if ch < 2 {
		ch = 2
	}
	return ch
}

// BuildGenerator constructs the generator network. For the paper's "MLP"
// network type it is latent → hidden^HiddenLayers → image with tanh
// output. For "CNN" — the paper's future-work direction toward
// higher-dimensional images — it is a DCGAN-style stack: a linear
// projection to 2ch×7×7 followed by two stride-2 transposed convolutions
// up to 28×28.
func BuildGenerator(cfg config.Config, rng *tensor.RNG) *nn.Network {
	if cfg.NetworkType == "CNN" {
		ch := cnnChannels(cfg)
		ct1, err := nn.NewConvTranspose2D(2*ch, 7, 7, ch, 4, 2, 1, rng)
		if err != nil {
			panic(err) // fixed geometry, cannot fail
		}
		ct2, err := nn.NewConvTranspose2D(ch, 14, 14, 1, 4, 2, 1, rng)
		if err != nil {
			panic(err)
		}
		return nn.NewNetwork(
			nn.NewLinear(cfg.InputNeurons, 2*ch*7*7, rng), nn.NewTanh(),
			ct1, nn.NewTanh(),
			ct2, nn.NewTanh(),
		)
	}
	return nn.MLP(cfg.GeneratorSizes(), hiddenLayerFor(cfg.Activation),
		func() nn.Layer { return nn.NewTanh() }, rng)
}

// BuildDiscriminator constructs the discriminator network: for "MLP",
// image → hidden^HiddenLayers → 1 raw logit; for "CNN", two stride-2
// convolutions with leaky-ReLU down to 7×7 and a linear head (losses use
// the numerically stable logit form of binary cross-entropy either way).
func BuildDiscriminator(cfg config.Config, rng *tensor.RNG) *nn.Network {
	if cfg.NetworkType == "CNN" {
		ch := cnnChannels(cfg)
		cv1, err := nn.NewConv2D(1, 28, 28, ch, 4, 2, 1, rng)
		if err != nil {
			panic(err)
		}
		cv2, err := nn.NewConv2D(ch, 14, 14, 2*ch, 4, 2, 1, rng)
		if err != nil {
			panic(err)
		}
		return nn.NewNetwork(
			cv1, nn.NewLeakyReLU(0.2),
			cv2, nn.NewLeakyReLU(0.2),
			nn.NewLinear(2*ch*7*7, 1, rng),
		)
	}
	return nn.MLP(cfg.DiscriminatorSizes(), hiddenLayerFor(cfg.Activation), nil, rng)
}

// CellState is the serialisable snapshot of a cell's center genomes — the
// unit of neighbourhood communication. It is what the paper's slaves
// allgather after every training iteration.
type CellState struct {
	// Rank is the grid cell (== MPI slave index) this state belongs to.
	Rank int
	// Iteration is the training iteration the snapshot was taken after.
	Iteration int
	// GenLR and DiscLR are the current learning rates.
	GenLR, DiscLR float64
	// GenFitness and DiscFitness are the latest fitness values.
	GenFitness, DiscFitness float64
	// GenLoss and DiscLoss are the Mustangs loss-function genes.
	GenLoss, DiscLoss GANLoss
	// GenParams and DiscParams are the encoded network parameters.
	GenParams, DiscParams []byte
}

// stateMagic guards CellState decoding.
const stateMagic = 0x43454c4c // "CELL"

// Marshal serialises the state to a compact binary form.
func (s *CellState) Marshal() []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf.Write(u64[:])
	}
	put(stateMagic)
	put(uint64(int64(s.Rank)))
	put(uint64(int64(s.Iteration)))
	put(math.Float64bits(s.GenLR))
	put(math.Float64bits(s.DiscLR))
	put(math.Float64bits(s.GenFitness))
	put(math.Float64bits(s.DiscFitness))
	put(uint64(s.GenLoss))
	put(uint64(s.DiscLoss))
	put(uint64(len(s.GenParams)))
	buf.Write(s.GenParams)
	put(uint64(len(s.DiscParams)))
	buf.Write(s.DiscParams)
	return buf.Bytes()
}

// UnmarshalCellState decodes a snapshot produced by Marshal.
func UnmarshalCellState(data []byte) (*CellState, error) {
	rd := bytes.NewReader(data)
	var u64 [8]byte
	get := func() (uint64, error) {
		if _, err := rd.Read(u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	magic, err := get()
	if err != nil || magic != stateMagic {
		return nil, fmt.Errorf("core: bad cell-state header")
	}
	s := &CellState{}
	fields := []func(uint64){
		func(v uint64) { s.Rank = int(int64(v)) },
		func(v uint64) { s.Iteration = int(int64(v)) },
		func(v uint64) { s.GenLR = math.Float64frombits(v) },
		func(v uint64) { s.DiscLR = math.Float64frombits(v) },
		func(v uint64) { s.GenFitness = math.Float64frombits(v) },
		func(v uint64) { s.DiscFitness = math.Float64frombits(v) },
		func(v uint64) { s.GenLoss = GANLoss(v) },
		func(v uint64) { s.DiscLoss = GANLoss(v) },
	}
	for _, set := range fields {
		v, err := get()
		if err != nil {
			return nil, fmt.Errorf("core: truncated cell state: %w", err)
		}
		set(v)
	}
	readBlob := func() ([]byte, error) {
		n, err := get()
		if err != nil {
			return nil, err
		}
		if n > uint64(rd.Len()) {
			return nil, fmt.Errorf("core: blob length %d exceeds remaining %d", n, rd.Len())
		}
		b := make([]byte, n)
		if n > 0 {
			if _, err := rd.Read(b); err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	if s.GenParams, err = readBlob(); err != nil {
		return nil, fmt.Errorf("core: generator params: %w", err)
	}
	if s.DiscParams, err = readBlob(); err != nil {
		return nil, fmt.Errorf("core: discriminator params: %w", err)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in cell state", rd.Len())
	}
	return s, nil
}

// genomesFromState reconstructs the generator and discriminator genomes of
// a snapshot using cfg to rebuild the architectures.
func genomesFromState(cfg config.Config, s *CellState) (gen, disc *Genome, err error) {
	// Seed is irrelevant: parameters are overwritten by the decode.
	rng := tensor.NewRNG(0)
	gNet := BuildGenerator(cfg, rng)
	if err := gNet.DecodeParams(s.GenParams); err != nil {
		return nil, nil, fmt.Errorf("core: decoding generator of rank %d: %w", s.Rank, err)
	}
	dNet := BuildDiscriminator(cfg, rng)
	if err := dNet.DecodeParams(s.DiscParams); err != nil {
		return nil, nil, fmt.Errorf("core: decoding discriminator of rank %d: %w", s.Rank, err)
	}
	if s.GenLoss >= numGANLosses || s.DiscLoss >= numGANLosses {
		return nil, nil, fmt.Errorf("core: unknown loss gene in state of rank %d", s.Rank)
	}
	gen = &Genome{Net: gNet, LR: s.GenLR, Fitness: s.GenFitness, Loss: s.GenLoss}
	disc = &Genome{Net: dNet, LR: s.DiscLR, Fitness: s.DiscFitness, Loss: s.DiscLoss}
	return gen, disc, nil
}
