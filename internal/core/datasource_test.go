package core

import (
	"testing"

	"cellgan/internal/dataset"
	"cellgan/internal/grid"
)

func TestCellWithCustomSource(t *testing.T) {
	cfg := tinyConfig()
	src := dataset.Materialize(dataset.Train(9), 40)
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := NewCellWithData(cfg, 0, g, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cell.Iterate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCustomSource(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 1
	src := dataset.Materialize(dataset.Train(9), 40)
	res, err := RunParallel(cfg, RunOptions{Data: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != cfg.NumCells() {
		t.Fatalf("cells %d", len(res.Cells))
	}
}

func TestDataDietingShardsCells(t *testing.T) {
	cfg := tinyConfig()
	cfg.DataDieting = true
	cfg.DatasetSize = 40 // 4 cells → 10 samples each
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	for rank := 0; rank < g.Size(); rank++ {
		cell, err := NewCell(cfg, rank, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		sh, ok := cell.src.(*dataset.Shard)
		if !ok {
			t.Fatalf("rank %d source is %T, want shard", rank, cell.src)
		}
		if sh.Len() != 10 {
			t.Fatalf("rank %d shard has %d samples", rank, sh.Len())
		}
	}
}

func TestDataDietingTrainsEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.DataDieting = true
	res, err := RunSequential(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != cfg.Iterations {
			t.Fatalf("cell %d at iteration %d", c.Rank, c.Last.Iteration)
		}
	}
}

func TestNeighborhoodConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.GridRows, cfg.GridCols = 3, 3
	for _, tc := range []struct {
		name string
		size int
	}{{"", 5}, {"moore5", 5}, {"moore9", 9}, {"ring4", 4}} {
		cfg.Neighborhood = tc.name
		g, err := BuildGridFor(cfg)
		if err != nil {
			t.Fatalf("%q: %v", tc.name, err)
		}
		if got := g.SubPopulationSize(4); got != tc.size {
			t.Fatalf("%q: sub-population %d want %d", tc.name, got, tc.size)
		}
	}
	cfg.Neighborhood = "hexagon"
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad neighbourhood accepted by config")
	}
}

func TestRing4TrainingEndToEnd(t *testing.T) {
	// Ring4 excludes the center from its own neighbourhood — training
	// must still work because the cell's own genome is always part of
	// its sub-population maps.
	cfg := tinyConfig()
	cfg.Neighborhood = "ring4"
	cfg.Iterations = 1
	res, err := RunSequential(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != 1 {
			t.Fatalf("cell %d did not train", c.Rank)
		}
	}
}

func TestDataDietingTooFewSamples(t *testing.T) {
	cfg := tinyConfig()
	cfg.DataDieting = true
	cfg.DatasetSize = 2 // fewer samples than cells
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	if _, err := NewCell(cfg, 3, g, nil); err == nil {
		t.Fatal("empty shard accepted")
	}
}
