package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cellgan/internal/dataset"
)

// FullState is the complete serialisable training state of one cell:
// everything needed to resume bit-for-bit — network parameters and
// hyperparameters (the CellState), optimizer moments, the cell's random
// stream, the data loader position, the training step counter and the
// mixture weights. It exists for checkpoint/resume across the multi-day
// runs the paper's 96-hour time limit anticipates; the lean CellState
// remains the per-iteration exchange unit.
type FullState struct {
	Cell           *CellState
	GenOpt         []byte
	DiscOpt        []byte
	RNG            []byte
	Loader         dataset.LoaderState
	Step           int
	MixtureRanks   []int
	MixtureWeights []float64
}

const fullStateMagic = 0x46554c4c // "FULL"

// Marshal serialises the full state to a self-delimiting binary blob.
func (f *FullState) Marshal() []byte {
	var buf bytes.Buffer
	wU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	wBlob := func(b []byte) {
		wU64(uint64(len(b)))
		buf.Write(b)
	}
	wU64(fullStateMagic)
	wBlob(f.Cell.Marshal())
	wBlob(f.GenOpt)
	wBlob(f.DiscOpt)
	wBlob(f.RNG)
	// Loader state.
	wU64(uint64(len(f.Loader.Perm)))
	for _, v := range f.Loader.Perm {
		wU64(uint64(int64(v)))
	}
	wU64(uint64(int64(f.Loader.Cursor)))
	wU64(uint64(int64(f.Loader.Epoch)))
	wBlob(f.Loader.RNG)
	wU64(uint64(int64(f.Step)))
	// Mixture.
	wU64(uint64(len(f.MixtureRanks)))
	for _, r := range f.MixtureRanks {
		wU64(uint64(int64(r)))
	}
	for _, w := range f.MixtureWeights {
		wU64(math.Float64bits(w))
	}
	return buf.Bytes()
}

// maxFullStateList bounds decoded list lengths against corrupt input.
const maxFullStateList = 1 << 26

// UnmarshalFullState reverses Marshal.
func UnmarshalFullState(data []byte) (*FullState, error) {
	rd := bytes.NewReader(data)
	rU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(rd, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	rBlob := func() ([]byte, error) {
		n, err := rU64()
		if err != nil {
			return nil, err
		}
		if n > uint64(rd.Len()) {
			return nil, fmt.Errorf("core: full-state blob length %d exceeds remaining %d", n, rd.Len())
		}
		b := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(rd, b); err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	magic, err := rU64()
	if err != nil || magic != fullStateMagic {
		return nil, fmt.Errorf("core: bad full-state header")
	}
	f := &FullState{}
	cellBlob, err := rBlob()
	if err != nil {
		return nil, fmt.Errorf("core: full state cell: %w", err)
	}
	if f.Cell, err = UnmarshalCellState(cellBlob); err != nil {
		return nil, err
	}
	if f.GenOpt, err = rBlob(); err != nil {
		return nil, fmt.Errorf("core: full state gen optimizer: %w", err)
	}
	if f.DiscOpt, err = rBlob(); err != nil {
		return nil, fmt.Errorf("core: full state disc optimizer: %w", err)
	}
	if f.RNG, err = rBlob(); err != nil {
		return nil, fmt.Errorf("core: full state rng: %w", err)
	}
	permLen, err := rU64()
	if err != nil {
		return nil, fmt.Errorf("core: full state loader: %w", err)
	}
	// Each entry is 8 bytes; a declared length beyond the remaining input
	// is corrupt, and checking first keeps the allocation honest.
	if permLen > maxFullStateList || permLen > uint64(rd.Len())/8 {
		return nil, fmt.Errorf("core: implausible permutation length %d", permLen)
	}
	f.Loader.Perm = make([]int, permLen)
	for i := range f.Loader.Perm {
		v, err := rU64()
		if err != nil {
			return nil, fmt.Errorf("core: full state permutation: %w", err)
		}
		f.Loader.Perm[i] = int(int64(v))
	}
	for _, dst := range []*int{&f.Loader.Cursor, &f.Loader.Epoch} {
		v, err := rU64()
		if err != nil {
			return nil, fmt.Errorf("core: full state loader position: %w", err)
		}
		*dst = int(int64(v))
	}
	if f.Loader.RNG, err = rBlob(); err != nil {
		return nil, fmt.Errorf("core: full state loader rng: %w", err)
	}
	stepV, err := rU64()
	if err != nil {
		return nil, fmt.Errorf("core: full state step: %w", err)
	}
	f.Step = int(int64(stepV))
	mixLen, err := rU64()
	if err != nil {
		return nil, fmt.Errorf("core: full state mixture: %w", err)
	}
	// Ranks and weights are 16 bytes per entry; bound by what remains.
	if mixLen > maxFullStateList || mixLen > uint64(rd.Len())/16 {
		return nil, fmt.Errorf("core: implausible mixture length %d", mixLen)
	}
	f.MixtureRanks = make([]int, mixLen)
	for i := range f.MixtureRanks {
		v, err := rU64()
		if err != nil {
			return nil, fmt.Errorf("core: full state mixture ranks: %w", err)
		}
		f.MixtureRanks[i] = int(int64(v))
	}
	f.MixtureWeights = make([]float64, mixLen)
	for i := range f.MixtureWeights {
		v, err := rU64()
		if err != nil {
			return nil, fmt.Errorf("core: full state mixture weights: %w", err)
		}
		f.MixtureWeights[i] = math.Float64frombits(v)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in full state", rd.Len())
	}
	return f, nil
}

// FullState snapshots the cell completely for checkpointing.
func (c *Cell) FullState() (*FullState, error) {
	cellState, err := c.State()
	if err != nil {
		return nil, err
	}
	genOpt, err := c.genOpt.StateBinary()
	if err != nil {
		return nil, err
	}
	discOpt, err := c.discOpt.StateBinary()
	if err != nil {
		return nil, err
	}
	rngState, err := c.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	loaderState, err := c.loader.State()
	if err != nil {
		return nil, err
	}
	return &FullState{
		Cell:           cellState,
		GenOpt:         genOpt,
		DiscOpt:        discOpt,
		RNG:            rngState,
		Loader:         loaderState,
		Step:           c.step,
		MixtureRanks:   append([]int(nil), c.mixture.Ranks...),
		MixtureWeights: append([]float64(nil), c.mixture.Weights...),
	}, nil
}

// RestoreFull overwrites a freshly constructed cell with a checkpointed
// state. The cell must have been created with the same configuration and
// rank. Mixture weights are re-applied at the next neighbourhood exchange
// (the mixture's member networks are neighbour state, which arrives with
// the exchange); training resumed this way is bit-identical to an
// uninterrupted run.
func (c *Cell) RestoreFull(f *FullState) error {
	if f.Cell.Rank != c.Rank {
		return fmt.Errorf("core: restoring rank-%d state into cell %d", f.Cell.Rank, c.Rank)
	}
	if err := c.gen.Net.DecodeParams(f.Cell.GenParams); err != nil {
		return err
	}
	if err := c.disc.Net.DecodeParams(f.Cell.DiscParams); err != nil {
		return err
	}
	c.gen.LR = f.Cell.GenLR
	c.gen.Fitness = f.Cell.GenFitness
	c.gen.Loss = f.Cell.GenLoss
	c.disc.LR = f.Cell.DiscLR
	c.disc.Fitness = f.Cell.DiscFitness
	c.disc.Loss = f.Cell.DiscLoss
	if err := c.genOpt.RestoreBinary(f.GenOpt); err != nil {
		return err
	}
	if err := c.discOpt.RestoreBinary(f.DiscOpt); err != nil {
		return err
	}
	if err := c.rng.UnmarshalBinary(f.RNG); err != nil {
		return err
	}
	if err := c.loader.Restore(f.Loader); err != nil {
		return err
	}
	c.step = f.Step
	c.iteration = f.Cell.Iteration
	if len(f.MixtureRanks) != len(f.MixtureWeights) {
		return fmt.Errorf("core: mixture ranks/weights length mismatch %d/%d",
			len(f.MixtureRanks), len(f.MixtureWeights))
	}
	c.restoredWeights = make(map[int]float64, len(f.MixtureRanks))
	for i, r := range f.MixtureRanks {
		c.restoredWeights[r] = f.MixtureWeights[i]
	}
	c.applyRestoredWeights()
	return nil
}

// applyRestoredWeights overrides mixture weights with checkpointed values
// for the ranks currently present, then normalises. The pending map is
// cleared once every checkpointed member has been seen.
func (c *Cell) applyRestoredWeights() {
	if c.restoredWeights == nil {
		return
	}
	covered := 0
	for i, r := range c.mixture.Ranks {
		if w, ok := c.restoredWeights[r]; ok {
			c.mixture.Weights[i] = w
			covered++
		}
	}
	normalizeWeights(c.mixture.Weights)
	if covered == len(c.restoredWeights) {
		c.restoredWeights = nil
	}
}
