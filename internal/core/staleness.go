package core

import "sort"

// StalenessTracker enforces the bounded-staleness discipline of the
// asynchronous exchange modes. It remembers, per source rank, the
// iteration of the newest snapshot ever applied from that source — state
// that must outlive any single mailbox drain, because a delayed or
// duplicated delivery can surface an old snapshot arbitrarily many drains
// after a newer one was applied. ShouldApply is the newest-wins guard;
// Stale is the SSP-style gate: a cell blocks before an iteration only
// when completing it would leave the cell more than Bound versions ahead
// of some neighbour's last applied snapshot, never on a global barrier.
//
// The tracker is confined to one cell's exchange loop and is not safe for
// concurrent use.
type StalenessTracker struct {
	bound   int
	applied map[int]int
}

// NewStalenessTracker returns a tracker with the given staleness window;
// bounds below 1 are raised to 1 (a zero window would gate a fresh grid
// where every neighbour is still at iteration 0).
func NewStalenessTracker(bound int) *StalenessTracker {
	if bound < 1 {
		bound = 1
	}
	return &StalenessTracker{bound: bound, applied: make(map[int]int)}
}

// Bound returns the staleness window S.
func (t *StalenessTracker) Bound() int { return t.bound }

// ShouldApply reports whether a snapshot from src at iteration iter is at
// least as new as everything already applied from src. Equal iterations
// pass: training is deterministic per iteration, so re-applying a
// duplicate of the current snapshot is harmless, while anything older
// would regress the neighbour view.
func (t *StalenessTracker) ShouldApply(src, iter int) bool {
	prev, seen := t.applied[src]
	return !seen || iter >= prev
}

// MarkApplied records that src's snapshot at iter was applied. The record
// is monotonic: an out-of-order call can never lower it.
func (t *StalenessTracker) MarkApplied(src, iter int) {
	if prev, seen := t.applied[src]; seen && prev > iter {
		return
	}
	t.applied[src] = iter
}

// AppliedIteration returns the newest iteration applied from src, or 0
// when nothing has been applied yet (every cell starts at iteration 0, so
// an unseen neighbour is indistinguishable from a fresh one).
func (t *StalenessTracker) AppliedIteration(src int) int { return t.applied[src] }

// Stale returns, in ascending order, the neighbours whose last applied
// snapshot would be more than Bound versions behind after this cell
// completes iteration nextIter. An empty result means the cell may
// iterate without violating the staleness window.
func (t *StalenessTracker) Stale(nextIter int, neighbours []int) []int {
	var stale []int
	for _, n := range neighbours {
		if nextIter-t.applied[n] > t.bound {
			stale = append(stale, n)
		}
	}
	sort.Ints(stale)
	return stale
}
