package core

import (
	"bytes"
	"testing"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// TestCellIterateBitExactWithWorkspace trains two same-seed cells — one on
// the workspace path, one with the workspace disabled (allocating
// fallback) — and requires identical per-iteration stats and a
// byte-identical full-state checkpoint. This is the end-to-end form of the
// refactor's bit-exactness invariant.
func TestCellIterateBitExactWithWorkspace(t *testing.T) {
	cfg := tinyConfig()
	cfg.LossSet = "bce,minimax,lsgan,wgan" // exercise every loss's WS path
	cfg.LossMutationProbability = 0.5

	cWS, _ := newTestCell(t, cfg, 0)
	cAlloc, _ := newTestCell(t, cfg, 0)
	cAlloc.ws = nil // test hook: every call site falls back to allocating

	for i := 0; i < 4; i++ {
		sWS, err := cWS.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		sAlloc, err := cAlloc.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		if sWS != sAlloc {
			t.Fatalf("iteration %d stats diverge:\nws:    %+v\nalloc: %+v", i, sWS, sAlloc)
		}
	}

	fWS, err := cWS.FullState()
	if err != nil {
		t.Fatal(err)
	}
	fAlloc, err := cAlloc.FullState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fWS.Marshal(), fAlloc.Marshal()) {
		t.Fatal("workspace-path checkpoint differs from allocating-path checkpoint")
	}
}

// TestCNNCellIterateBitExactWithWorkspace is the convolutional form of the
// invariant above: a CNN genome (DCGAN-style conv stacks) trained through
// the im2col scratch path must match the allocating direct-loop path
// bit for bit, stats and checkpoint alike.
func TestCNNCellIterateBitExactWithWorkspace(t *testing.T) {
	cfg := tinyConfig()
	cfg.NetworkType = "CNN"
	cfg.BatchSize = 4

	cWS, _ := newTestCell(t, cfg, 0)
	cAlloc, _ := newTestCell(t, cfg, 0)
	cAlloc.ws = nil // test hook: every call site falls back to allocating

	for i := 0; i < 2; i++ {
		sWS, err := cWS.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		sAlloc, err := cAlloc.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		if sWS != sAlloc {
			t.Fatalf("iteration %d stats diverge:\nws:    %+v\nalloc: %+v", i, sWS, sAlloc)
		}
	}

	fWS, err := cWS.FullState()
	if err != nil {
		t.Fatal(err)
	}
	fAlloc, err := cAlloc.FullState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fWS.Marshal(), fAlloc.Marshal()) {
		t.Fatal("CNN workspace-path checkpoint differs from allocating-path checkpoint")
	}
}

// mixtureForTest builds a two-component mixture of tiny generators.
func mixtureForTest(t *testing.T) (*Mixture, *nn.Network) {
	t.Helper()
	rng := tensor.NewRNG(61)
	gens := map[int]*nn.Network{
		0: nn.MLP([]int{4, 8, 6}, func() nn.Layer { return nn.NewTanh() }, func() nn.Layer { return nn.NewTanh() }, rng),
		1: nn.MLP([]int{4, 8, 6}, func() nn.Layer { return nn.NewTanh() }, func() nn.Layer { return nn.NewTanh() }, rng),
	}
	m, err := NewMixture(gens)
	if err != nil {
		t.Fatal(err)
	}
	m.Weights[0], m.Weights[1] = 0.7, 0.3
	disc := nn.MLP([]int{6, 8, 1}, func() nn.Layer { return nn.NewLeakyReLU(0.2) }, nil, tensor.NewRNG(62))
	return m, disc
}

// TestSampleWithBitIdentical checks SampleWith against Sample from equal
// RNG states, including reuse of the same workspace across calls.
func TestSampleWithBitIdentical(t *testing.T) {
	m, _ := mixtureForTest(t)
	ws := NewSampleWorkspace()
	for call, n := range []int{17, 5, 0, 17} {
		a := m.SampleWith(ws, n, 4, tensor.NewRNG(uint64(70+call)))
		b := m.Sample(n, 4, tensor.NewRNG(uint64(70+call)))
		if !a.Equal(b) {
			t.Fatalf("call %d (n=%d): SampleWith differs from Sample", call, n)
		}
	}
}

// TestEvolveWeightsWSBitIdentical runs the (1+1)-ES through both paths on
// twin mixtures and demands identical weights and fitness trajectories —
// including across accepted proposals, where the workspace path recycles
// the displaced weights slice.
func TestEvolveWeightsWSBitIdentical(t *testing.T) {
	mA, disc := mixtureForTest(t)
	mB, _ := mixtureForTest(t)
	ws := NewSampleWorkspace()
	rngA := tensor.NewRNG(81)
	rngB := tensor.NewRNG(81)
	accepted := 0
	for i := 0; i < 12; i++ {
		fitA, okA := mA.EvolveWeightsWS(ws, disc, 0.3, 8, 4, rngA)
		fitB, okB := mB.EvolveWeights(disc, 0.3, 8, 4, rngB)
		if fitA != fitB || okA != okB {
			t.Fatalf("step %d: WS (%v,%v) vs alloc (%v,%v)", i, fitA, okA, fitB, okB)
		}
		if okA {
			accepted++
		}
		for j := range mA.Weights {
			if mA.Weights[j] != mB.Weights[j] {
				t.Fatalf("step %d: weight %d diverges", i, j)
			}
		}
	}
	if accepted == 0 {
		t.Log("no proposal accepted in 12 steps; slice-recycling path not exercised")
	}
}
