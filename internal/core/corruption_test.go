package core

import (
	"testing"
	"testing/quick"

	"cellgan/internal/tensor"
)

// Corrupted or adversarial byte streams from the network must produce
// errors, never panics — slaves exchange states with peers every
// iteration, so the decoders are a trust boundary.

func TestUnmarshalCellStateNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = UnmarshalCellState(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalFullStateNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = UnmarshalFullState(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlippedStateRejectedOrConsistent(t *testing.T) {
	// Flip every byte of a valid state one at a time: the decoder must
	// either error out or produce a structurally valid state — never
	// panic or return a state with mismatched parameter shapes.
	cfg := tinyConfig()
	rng := tensor.NewRNG(1)
	gen := BuildGenerator(cfg, rng)
	disc := BuildDiscriminator(cfg, rng)
	gp, _ := gen.EncodeParams()
	dp, _ := disc.EncodeParams()
	s := &CellState{Rank: 1, GenParams: gp, DiscParams: dp}
	good := s.Marshal()

	// Sample positions across the stream (every 977th byte keeps the test
	// fast while covering header, lengths and payload).
	for pos := 0; pos < len(good); pos += 977 {
		mutated := append([]byte(nil), good...)
		mutated[pos] ^= 0xff
		st, err := UnmarshalCellState(mutated)
		if err != nil {
			continue
		}
		// Decoded fine: the genome reconstruction must still either work
		// or error; both are acceptable, panics are not.
		_, _, _ = genomesFromState(cfg, st)
	}
}

func TestTruncatedStatesAllPrefixesSafe(t *testing.T) {
	cfg := tinyConfig()
	rng := tensor.NewRNG(2)
	gen := BuildGenerator(cfg, rng)
	gp, _ := gen.EncodeParams()
	s := &CellState{GenParams: gp, DiscParams: gp}
	good := s.Marshal()
	for n := 0; n < len(good); n += 509 {
		if _, err := UnmarshalCellState(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}
