package core

import (
	"math"
	"testing"
	"testing/quick"

	"cellgan/internal/nn"
	"cellgan/internal/tensor"
)

// tinyGen builds a minimal generator latent=4 → out=6 for mixture tests.
func tinyGen(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	return nn.MLP([]int{4, 5, 6}, func() nn.Layer { return nn.NewTanh() },
		func() nn.Layer { return nn.NewTanh() }, rng)
}

func TestNewMixtureUniform(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{3: tinyGen(1), 1: tinyGen(2), 7: tinyGen(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ranks) != 3 || m.Ranks[0] != 1 || m.Ranks[1] != 3 || m.Ranks[2] != 7 {
		t.Fatalf("ranks %v", m.Ranks)
	}
	for _, w := range m.Weights {
		if math.Abs(w-1.0/3) > 1e-12 {
			t.Fatalf("weights %v", m.Weights)
		}
	}
	if _, err := NewMixture(nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := []float64{2, -1, 2}
	normalizeWeights(w)
	if w[1] != 0 || math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[2]-0.5) > 1e-12 {
		t.Fatalf("normalized %v", w)
	}
	z := []float64{-1, -2}
	normalizeWeights(z)
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Fatalf("all-negative fallback %v", z)
	}
}

func TestNormalizeWeightsEdgeCases(t *testing.T) {
	// All-zero input has no mass to rescale: the projection falls back to
	// the uniform distribution.
	z := []float64{0, 0, 0, 0}
	normalizeWeights(z)
	for _, v := range z {
		if v != 0.25 {
			t.Fatalf("all-zero fallback %v", z)
		}
	}
	// A single element always normalises to the trivial simplex {1},
	// whatever its starting value.
	for _, start := range []float64{5, 0, -3} {
		s := []float64{start}
		normalizeWeights(s)
		if s[0] != 1 {
			t.Fatalf("single element %g normalised to %g", start, s[0])
		}
	}
}

func TestMixtureSampleDeterministic(t *testing.T) {
	// Identical seeds must reproduce the exact sample batch — the
	// property serving replicas rely on for debuggability.
	build := func() *Mixture {
		m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2), 2: tinyGen(3)})
		if err != nil {
			t.Fatal(err)
		}
		m.Weights = []float64{0.5, 0.3, 0.2}
		return m
	}
	a := build().Sample(32, 4, tensor.NewRNG(123))
	b := build().Sample(32, 4, tensor.NewRNG(123))
	if !a.Equal(b) {
		t.Fatal("same seed produced different samples")
	}
	c := build().Sample(32, 4, tensor.NewRNG(124))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestMixtureCloneIsIndependent(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2)})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.OutputDim() != m.OutputDim() {
		t.Fatalf("clone output dim %d want %d", c.OutputDim(), m.OutputDim())
	}
	want := m.Sample(8, 4, tensor.NewRNG(5))
	got := c.Sample(8, 4, tensor.NewRNG(5))
	if !got.Equal(want) {
		t.Fatal("clone is not the same generative model")
	}
	// Mutating the clone must not leak into the original.
	c.Weights[0] = 1
	c.Weights[1] = 0
	c.Generators[0].Params()[0].Fill(0)
	after := m.Sample(8, 4, tensor.NewRNG(5))
	if !after.Equal(want) {
		t.Fatal("mutating the clone changed the original mixture")
	}
}

func TestQuickNormalizeIsSimplex(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		w := append([]float64(nil), raw...)
		for i, v := range w {
			// Restrict to the realistic domain: simplex weights perturbed
			// by small Gaussian noise, never astronomically large.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				w[i] = math.Mod(v, 1)
			}
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		normalizeWeights(w)
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMixtureSampleShape(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2)})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Sample(10, 4, tensor.NewRNG(9))
	if out.Rows != 10 || out.Cols != 6 {
		t.Fatalf("sample shape %d×%d", out.Rows, out.Cols)
	}
	if out.Max() > 1 || out.Min() < -1 {
		t.Fatal("sample out of tanh range")
	}
	empty := m.Sample(0, 4, tensor.NewRNG(9))
	if empty.Rows != 0 {
		t.Fatal("empty sample")
	}
}

func TestMixtureSampleRespectsWeights(t *testing.T) {
	// Weight 1 on component A: all rows must come from A.
	a := tinyGen(1)
	b := tinyGen(2)
	m, err := NewMixture(map[int]*nn.Network{0: a, 1: b})
	if err != nil {
		t.Fatal(err)
	}
	m.Weights = []float64{1, 0}
	rng := tensor.NewRNG(4)
	out := m.Sample(8, 4, rng)
	// Reproduce: with the same rng all z go through a in one batch.
	rng2 := tensor.NewRNG(4)
	for i := 0; i < 8; i++ {
		_ = rng2.Float64() // component choice draws
	}
	z := tensor.New(8, 4)
	tensor.GaussianFill(z, 0, 1, rng2)
	want := a.Forward(z)
	if !out.ApproxEqual(want, 1e-12) {
		t.Fatal("degenerate mixture did not route all samples through component A")
	}
}

func TestMixtureFitnessFinite(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1)})
	if err != nil {
		t.Fatal(err)
	}
	disc := nn.MLP([]int{6, 4, 1}, func() nn.Layer { return nn.NewTanh() }, nil, tensor.NewRNG(5))
	fit := m.Fitness(disc, 16, 4, tensor.NewRNG(6))
	if math.IsNaN(fit) || math.IsInf(fit, 0) || fit < 0 {
		t.Fatalf("fitness %v", fit)
	}
}

func TestEvolveWeightsKeepsSimplexAndNeverWorsens(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2), 2: tinyGen(3)})
	if err != nil {
		t.Fatal(err)
	}
	disc := nn.MLP([]int{6, 4, 1}, func() nn.Layer { return nn.NewTanh() }, nil, tensor.NewRNG(7))
	rng := tensor.NewRNG(8)
	for i := 0; i < 10; i++ {
		fit, _ := m.EvolveWeights(disc, 0.05, 16, 4, rng)
		if math.IsNaN(fit) {
			t.Fatal("NaN fitness")
		}
		sum := 0.0
		for _, w := range m.Weights {
			if w < 0 {
				t.Fatalf("negative weight %v", m.Weights)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights left simplex: %v", m.Weights)
		}
	}
}

func TestEvolveWeightsZeroSigmaKeepsWeights(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2)})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), m.Weights...)
	disc := nn.MLP([]int{6, 4, 1}, func() nn.Layer { return nn.NewTanh() }, nil, tensor.NewRNG(9))
	m.EvolveWeights(disc, 0, 8, 4, tensor.NewRNG(10))
	for i := range before {
		if math.Abs(before[i]-m.Weights[i]) > 1e-12 {
			t.Fatalf("σ=0 changed weights %v -> %v", before, m.Weights)
		}
	}
}

func TestUpdateMembersPreservesWeights(t *testing.T) {
	m, err := NewMixture(map[int]*nn.Network{0: tinyGen(1), 1: tinyGen(2)})
	if err != nil {
		t.Fatal(err)
	}
	m.Weights = []float64{0.8, 0.2}
	// Rank 1 leaves, rank 2 joins.
	if err := m.UpdateMembers(map[int]*nn.Network{0: tinyGen(1), 2: tinyGen(4)}); err != nil {
		t.Fatal(err)
	}
	if len(m.Ranks) != 2 || m.Ranks[0] != 0 || m.Ranks[1] != 2 {
		t.Fatalf("ranks %v", m.Ranks)
	}
	// Old weight 0.8 kept for rank 0; new member gets the mean 0.5; then
	// normalised: 0.8/(1.3), 0.5/(1.3).
	if math.Abs(m.Weights[0]-0.8/1.3) > 1e-12 || math.Abs(m.Weights[1]-0.5/1.3) > 1e-12 {
		t.Fatalf("weights %v", m.Weights)
	}
	if err := m.UpdateMembers(nil); err == nil {
		t.Fatal("empty member set accepted")
	}
}
