package core

import (
	"fmt"
	"sync"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/dataset"
	"cellgan/internal/grid"
	"cellgan/internal/mpi"
	"cellgan/internal/nn"
	"cellgan/internal/profile"
	"cellgan/internal/telemetry"
)

// RunOptions tunes a training run.
type RunOptions struct {
	// Prof receives routine timings; nil allocates a private profiler.
	Prof *profile.Profiler
	// Progress, when non-nil, is invoked after every cell iteration. In
	// parallel mode it is called concurrently from per-cell goroutines.
	Progress func(rank int, stats IterStats)
	// Resume, when non-nil, restores every cell from a checkpointed full
	// state (one entry per grid rank, in rank order) before training;
	// cells then run until cfg.Iterations. A resumed run is bit-identical
	// to an uninterrupted one.
	Resume []*FullState
	// Data overrides the training data source (e.g. real MNIST loaded
	// from IDX files); nil selects the procedural digit dataset.
	Data dataset.Source
	// Telemetry, when non-nil, receives training-loop metrics (iteration
	// counters, per-cell losses, exchange latency) for the /metrics
	// exposition. Observation is allocation-free and lock-free.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives one JSONL event per cell iteration.
	Trace *telemetry.Trace
	// Stop, when non-nil, is polled at iteration boundaries; once it
	// returns true the run finishes the current iteration, performs a
	// final exchange where the mode requires one, and returns normally
	// with the state reached so far (suitable for checkpointing). In
	// parallel mode the decision is reached by consensus: a stop vote is
	// carried on the allgather, so every rank halts at the same boundary.
	Stop func() bool
	// CheckpointEvery, with CheckpointSink set, captures a complete
	// resumable snapshot of the grid at every iteration k that is a
	// multiple of the cadence. In the sequential and parallel modes the
	// snapshot is taken at the post-exchange boundary where every cell
	// is exactly at iteration k, so resuming from it is bit-identical
	// to never having stopped. In the asynchronous mode cells cross
	// boundaries at their own pace; the sink receives best-effort
	// newest-wins snapshots (one full state per cell, iterations may
	// differ) keyed by the minimum iteration present.
	CheckpointEvery int
	// CheckpointSink receives the periodic snapshots, in iteration
	// order, from at most one goroutine at a time. A sink error is
	// fatal to the run; a caller that prefers to keep training through
	// failed checkpoint writes (ENOSPC should not kill a 96-hour job)
	// should log/count the failure and return nil.
	CheckpointSink func(iteration int, states []*FullState) error

	// commWrap, when non-nil, wraps each rank's communicator before the
	// asynchronous exchange loop uses it — the test seam for injecting
	// mpi.FaultyComm into RunAsync without a cluster in between.
	commWrap func(rank int, c *mpi.Comm) *mpi.Comm
	// asyncHooks observe pushes and applies in the asynchronous mode;
	// test-only.
	asyncHooks *asyncTestHooks
}

// restoreIfResuming applies the matching resume state to a fresh cell.
func restoreIfResuming(cell *Cell, opts RunOptions, nCells int) error {
	if opts.Resume == nil {
		return nil
	}
	if len(opts.Resume) != nCells {
		return fmt.Errorf("core: resume has %d states, grid has %d cells", len(opts.Resume), nCells)
	}
	st := opts.Resume[cell.Rank]
	if st == nil {
		return fmt.Errorf("core: resume state for cell %d is nil", cell.Rank)
	}
	// A cell already at the target (possible in an async snapshot whose
	// laggard cells still owe work) restores and simply runs zero
	// iterations; only a state beyond the target is a caller error.
	if st.Cell.Iteration > cell.Cfg.Iterations {
		return fmt.Errorf("core: checkpoint already at iteration %d, config targets %d",
			st.Cell.Iteration, cell.Cfg.Iterations)
	}
	return cell.RestoreFull(st)
}

// uniformResumeIteration rejects resume sets whose cells disagree on the
// iteration: the lockstep modes (seq, par) assume the whole grid is at
// one boundary. Async snapshots may mix iterations and must be resumed
// in async mode.
func uniformResumeIteration(states []*FullState) error {
	for _, st := range states[1:] {
		if st != nil && states[0] != nil && st.Cell.Iteration != states[0].Cell.Iteration {
			return fmt.Errorf("core: resume states mix iterations %d and %d (an async snapshot?); only mode \"async\" accepts that",
				states[0].Cell.Iteration, st.Cell.Iteration)
		}
	}
	return nil
}

// CellResult is the outcome of one cell after training.
type CellResult struct {
	Rank  int
	State *CellState
	// Final mixture composition (ranks + weights) and its fitness.
	MixtureRanks   []int
	MixtureWeights []float64
	MixtureFitness float64
	// Final per-iteration statistics.
	Last IterStats
}

// Result is the outcome of a whole training run.
type Result struct {
	Cfg     config.Config
	Cells   []CellResult
	Elapsed time.Duration
	Profile map[string]profile.Stat
	// BestRank is the cell whose mixture achieved the lowest (best)
	// fitness — the sub-population the method returns (§II-B).
	BestRank int
	// Full holds each cell's complete resumable state (one per rank),
	// suitable for checkpointing; populated by the sequential and
	// parallel runners.
	Full []*FullState
}

// Best returns the best cell's result.
func (r *Result) Best() CellResult { return r.Cells[r.BestRank] }

// MixtureFor reconstructs the generator mixture of a cell from the stored
// states, so callers can sample the returned generative model.
func (r *Result) MixtureFor(rank int) (*Mixture, error) {
	if rank < 0 || rank >= len(r.Cells) {
		return nil, fmt.Errorf("core: rank %d out of range", rank)
	}
	cr := r.Cells[rank]
	gens := make(map[int]*nn.Network, len(cr.MixtureRanks))
	for _, mr := range cr.MixtureRanks {
		if mr < 0 || mr >= len(r.Cells) {
			return nil, fmt.Errorf("core: mixture member %d out of range", mr)
		}
		gen, _, err := genomesFromState(r.Cfg, r.Cells[mr].State)
		if err != nil {
			return nil, err
		}
		gens[mr] = gen.Net
	}
	m, err := NewMixture(gens)
	if err != nil {
		return nil, err
	}
	copy(m.Weights, cr.MixtureWeights)
	return m, nil
}

// finishResult computes the best rank and attaches profiling.
func finishResult(res *Result, prof *profile.Profiler, started time.Time) {
	res.Elapsed = time.Since(started)
	res.Profile = prof.Snapshot()
	best := 0
	for i, c := range res.Cells {
		if c.MixtureFitness < res.Cells[best].MixtureFitness {
			best = i
		}
	}
	res.BestRank = best
}

// BuildGridFor constructs the toroidal grid for a configuration, applying
// its neighbourhood pattern — used by every runner (including the cluster
// slaves and the client-server baseline) so the topology is consistent
// across execution modes.
func BuildGridFor(cfg config.Config) (*grid.Grid, error) { return buildGrid(cfg) }

// buildGrid constructs the toroidal grid for a configuration, applying
// its neighbourhood pattern.
func buildGrid(cfg config.Config) (*grid.Grid, error) {
	g, err := grid.New(cfg.GridRows, cfg.GridCols)
	if err != nil {
		return nil, err
	}
	switch cfg.Neighborhood {
	case "", "moore5":
		// grid.New default.
	case "moore9":
		err = g.SetPattern(grid.Moore9)
	case "ring4":
		err = g.SetPattern(grid.Ring4)
	default:
		err = fmt.Errorf("core: unknown neighbourhood %q", cfg.Neighborhood)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// exchangeLocal distributes every cell's state to the cells whose
// neighbourhood contains it, mirroring the allgather of the parallel mode
// in shared memory.
func exchangeLocal(cells []*Cell, prof *profile.Profiler) error {
	defer prof.Start(profile.RoutineGather)()
	states := make(map[int]*CellState, len(cells))
	for _, c := range cells {
		s, err := c.State()
		if err != nil {
			return err
		}
		states[c.Rank] = s
	}
	for _, c := range cells {
		if err := c.SetNeighbors(states); err != nil {
			return err
		}
	}
	return nil
}

// RunSequential trains the grid in a single process, cells taking turns —
// the paper's "single core" baseline of Table III. The communication
// structure (per-iteration neighbourhood exchange) is preserved so the
// algorithm is identical to the parallel mode.
func RunSequential(cfg config.Config, opts RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := opts.Prof
	if prof == nil {
		prof = profile.New()
	}
	if opts.Resume != nil {
		if err := uniformResumeIteration(opts.Resume); err != nil {
			return nil, err
		}
	}
	started := time.Now()
	g, err := buildGrid(cfg)
	if err != nil {
		return nil, err
	}
	cells := make([]*Cell, g.Size())
	for r := range cells {
		cell, err := NewCellWithData(cfg, r, g, prof, opts.Data)
		if err != nil {
			return nil, err
		}
		if err := restoreIfResuming(cell, opts, g.Size()); err != nil {
			return nil, err
		}
		cells[r] = cell
	}
	coll := newCkptCollector(opts, g.Size())
	inst := newRunInstruments(opts.Telemetry, opts.Trace, g.Size())
	exchange := func() error {
		t0 := time.Now()
		if err := exchangeLocal(cells, prof); err != nil {
			return err
		}
		inst.observeExchange(time.Since(t0))
		return nil
	}
	// Initial exchange so iteration 1 already sees the neighbourhood (and
	// a resumed run re-sees it).
	if err := exchange(); err != nil {
		return nil, err
	}
	lasts := make([]IterStats, len(cells))
	for cells[0].Iteration() < cfg.Iterations && !stopRequested(opts) {
		for _, c := range cells {
			stats, err := c.Iterate()
			if err != nil {
				return nil, err
			}
			lasts[c.Rank] = stats
			inst.observeIter(c.Rank, stats)
			if opts.Progress != nil {
				opts.Progress(c.Rank, stats)
			}
		}
		if err := exchange(); err != nil {
			return nil, err
		}
		// Post-exchange boundary: every cell is at the same iteration,
		// the consistent cut a periodic checkpoint needs.
		for _, c := range cells {
			if err := coll.deposit(c); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{Cfg: cfg, Cells: make([]CellResult, len(cells)), Full: make([]*FullState, len(cells))}
	for i, c := range cells {
		state, err := c.State()
		if err != nil {
			return nil, err
		}
		full, err := c.FullState()
		if err != nil {
			return nil, err
		}
		res.Cells[i] = CellResult{
			Rank:           c.Rank,
			State:          state,
			MixtureRanks:   append([]int(nil), c.mixture.Ranks...),
			MixtureWeights: append([]float64(nil), c.mixture.Weights...),
			MixtureFitness: lasts[i].MixtureFitness,
			Last:           lasts[i],
		}
		res.Full[i] = full
	}
	finishResult(res, prof, started)
	return res, nil
}

// RunParallel trains the grid with one goroutine per cell over an
// in-process MPI world: each rank iterates independently and the ranks
// exchange centers with a per-iteration allgather on the communicator —
// the structure of the paper's slave processes on the LOCAL communicator.
func RunParallel(cfg config.Config, opts RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := opts.Prof
	if prof == nil {
		prof = profile.New()
	}
	if opts.Resume != nil {
		if err := uniformResumeIteration(opts.Resume); err != nil {
			return nil, err
		}
	}
	started := time.Now()
	g, err := buildGrid(cfg)
	if err != nil {
		return nil, err
	}
	n := g.Size()
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	coll := newCkptCollector(opts, n)
	inst := newRunInstruments(opts.Telemetry, opts.Trace, n)
	results := make([]CellResult, n)
	fulls := make([]*FullState, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				comm, err := world.Comm(rank)
				if err != nil {
					return err
				}
				cell, err := NewCellWithData(cfg, rank, g, prof, opts.Data)
				if err != nil {
					return err
				}
				if err := restoreIfResuming(cell, opts, n); err != nil {
					return err
				}
				// exchange allgathers the cell centers with a one-byte
				// stop vote prefixed to each payload: every rank sees the
				// same vote set, so all ranks agree on whether this round
				// is the last — no rank can block on a barrier a stopped
				// peer never reaches.
				exchange := func() (bool, error) {
					state, err := cell.State()
					if err != nil {
						return false, err
					}
					vote := byte(0)
					if stopRequested(opts) {
						vote = 1
					}
					body := state.Marshal()
					payload := make([]byte, 1+len(body))
					payload[0] = vote
					copy(payload[1:], body)
					stop := prof.Start(profile.RoutineGather)
					t0 := time.Now()
					parts, err := comm.Allgather(payload)
					inst.observeExchange(time.Since(t0))
					stop()
					if err != nil {
						return false, err
					}
					halt := false
					states := make(map[int]*CellState, len(parts))
					for _, p := range parts {
						if len(p) == 0 {
							return false, fmt.Errorf("core: empty exchange payload")
						}
						if p[0] != 0 {
							halt = true
						}
						s, err := UnmarshalCellState(p[1:])
						if err != nil {
							return false, err
						}
						states[s.Rank] = s
					}
					return halt, cell.SetNeighbors(states)
				}
				halt, err := exchange()
				if err != nil {
					return err
				}
				var last IterStats
				for !halt && cell.Iteration() < cfg.Iterations {
					last, err = cell.Iterate()
					if err != nil {
						return err
					}
					inst.observeIter(rank, last)
					if opts.Progress != nil {
						opts.Progress(rank, last)
					}
					halt, err = exchange()
					if err != nil {
						return err
					}
					// The allgather above is a barrier: every rank is at
					// this iteration, so the deposits assemble a
					// consistent snapshot.
					if err := coll.deposit(cell); err != nil {
						return err
					}
				}
				state, err := cell.State()
				if err != nil {
					return err
				}
				full, err := cell.FullState()
				if err != nil {
					return err
				}
				fulls[rank] = full
				results[rank] = CellResult{
					Rank:           rank,
					State:          state,
					MixtureRanks:   append([]int(nil), cell.mixture.Ranks...),
					MixtureWeights: append([]float64(nil), cell.mixture.Weights...),
					MixtureFitness: last.MixtureFitness,
					Last:           last,
				}
				return nil
			}()
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Cfg: cfg, Cells: results, Full: fulls}
	finishResult(res, prof, started)
	return res, nil
}
