package core

import (
	"math"
	"testing"

	"cellgan/internal/grid"
	"cellgan/internal/tensor"
)

func TestGANLossStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		name string
		want GANLoss
	}{
		{"bce", LossBCE}, {"heuristic", LossBCE},
		{"minimax", LossMinimax},
		{"lsgan", LossLSGAN}, {"least-squares", LossLSGAN},
	} {
		got, err := ParseGANLoss(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseGANLoss(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := ParseGANLoss("hinge"); err == nil {
		t.Fatal("unknown loss accepted")
	}
	if got, err := ParseGANLoss("wasserstein"); err != nil || got != LossWGAN {
		t.Fatalf("wasserstein alias: %v %v", got, err)
	}
	if LossWGAN.String() != "wgan" {
		t.Fatal("wgan String")
	}
	if LossBCE.String() != "bce" || LossMinimax.String() != "minimax" || LossLSGAN.String() != "lsgan" {
		t.Fatal("String names wrong")
	}
	if GANLoss(99).String() == "" {
		t.Fatal("unknown String empty")
	}
}

func TestParseLossSet(t *testing.T) {
	set, err := ParseLossSet("")
	if err != nil || len(set) != 1 || set[0] != LossBCE {
		t.Fatalf("empty set: %v %v", set, err)
	}
	set, err = ParseLossSet("bce, lsgan,minimax,bce")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("dedup failed: %v", set)
	}
	if _, err := ParseLossSet("bce,unknown"); err == nil {
		t.Fatal("bad entry accepted")
	}
}

// numericGenGrad checks ∂L/∂logits for a generator loss by central
// differences.
func checkGenLossGrad(t *testing.T, kind GANLoss) {
	t.Helper()
	rng := tensor.NewRNG(uint64(kind) + 1)
	logits := tensor.New(4, 1)
	tensor.GaussianFill(logits, 0, 2, rng)
	loss, grad := generatorLoss(kind, logits)
	if math.IsNaN(loss) {
		t.Fatalf("%v: NaN loss", kind)
	}
	eps := 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := generatorLoss(kind, logits)
		logits.Data[i] = orig - eps
		lm, _ := generatorLoss(kind, logits)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(grad.Data[i]-num) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("%v: grad[%d] = %v, numeric %v", kind, i, grad.Data[i], num)
		}
	}
}

func TestGeneratorLossGradients(t *testing.T) {
	for _, kind := range []GANLoss{LossBCE, LossMinimax, LossLSGAN, LossWGAN} {
		checkGenLossGrad(t, kind)
	}
}

func TestWGANDiscLossGradients(t *testing.T) {
	rng := tensor.NewRNG(11)
	logits := tensor.New(3, 1)
	tensor.GaussianFill(logits, 0, 2, rng)
	for _, target := range []float64{0, 1} {
		_, grad := discHalfLoss(LossWGAN, logits, target)
		eps := 1e-6
		for i := range logits.Data {
			orig := logits.Data[i]
			logits.Data[i] = orig + eps
			lp, _ := discHalfLoss(LossWGAN, logits, target)
			logits.Data[i] = orig - eps
			lm, _ := discHalfLoss(LossWGAN, logits, target)
			logits.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(grad.Data[i]-num) > 1e-6*(1+math.Abs(num)) {
				t.Fatalf("wgan target %v grad[%d] = %v numeric %v", target, i, grad.Data[i], num)
			}
		}
	}
}

func TestWGANCellClipsCriticWeights(t *testing.T) {
	cfg := tinyConfig()
	cfg.LossSet = "wgan"
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cell.Iterate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range cell.Discriminator().Params() {
		if p.Max() > wganClip+1e-12 || p.Min() < -wganClip-1e-12 {
			t.Fatalf("critic weights escaped the clip: [%v, %v]", p.Min(), p.Max())
		}
	}
	// The generator must remain unclipped.
	unclipped := false
	for _, p := range cell.Generator().Params() {
		if p.Max() > wganClip || p.Min() < -wganClip {
			unclipped = true
		}
	}
	if !unclipped {
		t.Fatal("generator weights look clipped too")
	}
}

func TestClipWeights(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := BuildDiscriminator(tinyConfig(), rng)
	clipWeights(net, 0.05)
	for _, p := range net.Params() {
		if p.Max() > 0.05 || p.Min() < -0.05 {
			t.Fatal("clip failed")
		}
	}
}

func TestDiscriminatorLossGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, kind := range []GANLoss{LossBCE, LossLSGAN} {
		logits := tensor.New(3, 1)
		tensor.GaussianFill(logits, 0, 2, rng)
		for _, target := range []float64{0, 1} {
			_, grad := discHalfLoss(kind, logits, target)
			eps := 1e-6
			for i := range logits.Data {
				orig := logits.Data[i]
				logits.Data[i] = orig + eps
				lp, _ := discHalfLoss(kind, logits, target)
				logits.Data[i] = orig - eps
				lm, _ := discHalfLoss(kind, logits, target)
				logits.Data[i] = orig
				num := (lp - lm) / (2 * eps)
				if math.Abs(grad.Data[i]-num) > 1e-5*(1+math.Abs(num)) {
					t.Fatalf("%v target %v: grad[%d] = %v numeric %v", kind, target, i, grad.Data[i], num)
				}
			}
		}
	}
}

func TestGeneratorLossDirections(t *testing.T) {
	// For every loss, improving logits (discriminator more fooled, z↑)
	// must decrease the generator loss.
	low := tensor.Full(8, 1, -2)
	high := tensor.Full(8, 1, 2)
	for _, kind := range []GANLoss{LossBCE, LossMinimax, LossLSGAN} {
		lLow, _ := generatorLoss(kind, low)
		lHigh, _ := generatorLoss(kind, high)
		if lHigh >= lLow {
			t.Fatalf("%v: loss did not decrease as D is fooled (%v -> %v)", kind, lLow, lHigh)
		}
	}
}

func TestDiscriminatorLossCombined(t *testing.T) {
	rng := tensor.NewRNG(9)
	real := tensor.New(4, 1)
	fake := tensor.New(4, 1)
	tensor.GaussianFill(real, 1, 1, rng)
	tensor.GaussianFill(fake, -1, 1, rng)
	for _, kind := range []GANLoss{LossBCE, LossMinimax, LossLSGAN} {
		loss, gr, gf := discriminatorLoss(kind, real, fake)
		if math.IsNaN(loss) || gr == nil || gf == nil {
			t.Fatalf("%v: bad combined loss", kind)
		}
	}
}

func TestMinimaxStableAtExtremes(t *testing.T) {
	logits := tensor.FromSlice(1, 2, []float64{500, -500})
	loss, grad := generatorLoss(LossMinimax, logits)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("minimax loss %v at extreme logits", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("minimax grad NaN")
		}
	}
}

func TestMustangsCellUsesLossPool(t *testing.T) {
	cfg := tinyConfig().Mustangs()
	cfg.Iterations = 1
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.lossSet) != 3 {
		t.Fatalf("loss pool %v", cell.lossSet)
	}
	// Over many mutation rounds both genes should leave the initial loss
	// at least once.
	changed := false
	for i := 0; i < 50 && !changed; i++ {
		cell.mutateHyperparams()
		changed = cell.gen.Loss != LossBCE || cell.disc.Loss != LossBCE
	}
	if !changed {
		t.Fatal("loss gene never mutated at p=0.5 over 50 rounds")
	}
}

func TestMustangsTrainingEndToEnd(t *testing.T) {
	cfg := tinyConfig().Mustangs()
	cfg.Iterations = 3
	res, err := RunSequential(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if math.IsNaN(c.MixtureFitness) {
			t.Fatalf("cell %d NaN fitness under Mustangs", c.Rank)
		}
		if c.State.GenLoss >= numGANLosses || c.State.DiscLoss >= numGANLosses {
			t.Fatalf("cell %d invalid loss gene in state", c.Rank)
		}
	}
}

func TestLossGeneSurvivesStateRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	rng := tensor.NewRNG(3)
	gen := BuildGenerator(cfg, rng)
	disc := BuildDiscriminator(cfg, rng)
	gp, _ := gen.EncodeParams()
	dp, _ := disc.EncodeParams()
	s := &CellState{GenLoss: LossLSGAN, DiscLoss: LossMinimax, GenParams: gp, DiscParams: dp}
	got, err := UnmarshalCellState(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.GenLoss != LossLSGAN || got.DiscLoss != LossMinimax {
		t.Fatalf("loss genes %v/%v", got.GenLoss, got.DiscLoss)
	}
	g2, d2, err := genomesFromState(cfg, got)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Loss != LossLSGAN || d2.Loss != LossMinimax {
		t.Fatal("genomes lost their loss genes")
	}
	bad := *got
	bad.GenLoss = GANLoss(42)
	if _, _, err := genomesFromState(cfg, &bad); err == nil {
		t.Fatal("invalid loss gene accepted")
	}
}

func TestLSGANCellTrains(t *testing.T) {
	cfg := tinyConfig()
	cfg.LossSet = "lsgan"
	g := grid.MustNew(cfg.GridRows, cfg.GridCols)
	cell, err := NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cell.gen.Loss != LossLSGAN {
		t.Fatalf("initial loss %v", cell.gen.Loss)
	}
	stats, err := cell.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(stats.GenLoss) || math.IsNaN(stats.DiscLoss) {
		t.Fatalf("LSGAN losses NaN: %+v", stats)
	}
}
