package core

import (
	"math"
	"sync"
	"testing"

	"cellgan/internal/profile"
	"cellgan/internal/tensor"
)

func TestRunSequentialSmoke(t *testing.T) {
	cfg := tinyConfig()
	prof := profile.New()
	res, err := RunSequential(cfg, RunOptions{Prof: prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != cfg.NumCells() {
		t.Fatalf("cells %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.State == nil {
			t.Fatalf("rank %d missing state", c.Rank)
		}
		if c.Last.Iteration != cfg.Iterations {
			t.Fatalf("rank %d stopped at iteration %d", c.Rank, c.Last.Iteration)
		}
		if math.IsNaN(c.MixtureFitness) {
			t.Fatalf("rank %d NaN mixture fitness", c.Rank)
		}
	}
	if res.BestRank < 0 || res.BestRank >= len(res.Cells) {
		t.Fatalf("best rank %d", res.BestRank)
	}
	for _, c := range res.Cells {
		if c.MixtureFitness < res.Best().MixtureFitness {
			t.Fatal("BestRank is not the minimum mixture fitness")
		}
	}
	// All four paper routines must appear in the profile, including gather.
	for _, r := range []string{profile.RoutineTrain, profile.RoutineMutate,
		profile.RoutineUpdateGenomes, profile.RoutineGather} {
		if prof.Get(r).Count == 0 {
			t.Fatalf("routine %q missing from profile", r)
		}
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestRunParallelSmoke(t *testing.T) {
	cfg := tinyConfig()
	res, err := RunParallel(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != cfg.NumCells() {
		t.Fatalf("cells %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != cfg.Iterations {
			t.Fatalf("rank %d at iteration %d", c.Rank, c.Last.Iteration)
		}
	}
}

func TestSequentialParallelEquivalence(t *testing.T) {
	// The parallel implementation must compute the same result as the
	// sequential baseline: same seeds, same exchange schedule, so the
	// final parameters must match bit-for-bit.
	cfg := tinyConfig()
	cfg.Iterations = 3
	seq, err := RunSequential(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seq.Cells {
		s, p := seq.Cells[r], par.Cells[r]
		if s.Last.GenLoss != p.Last.GenLoss || s.Last.DiscLoss != p.Last.DiscLoss {
			t.Fatalf("rank %d losses differ: %+v vs %+v", r, s.Last, p.Last)
		}
		if string(s.State.GenParams) != string(p.State.GenParams) {
			t.Fatalf("rank %d generator params differ between modes", r)
		}
		if string(s.State.DiscParams) != string(p.State.DiscParams) {
			t.Fatalf("rank %d discriminator params differ between modes", r)
		}
		if s.MixtureFitness != p.MixtureFitness {
			t.Fatalf("rank %d mixture fitness %v vs %v", r, s.MixtureFitness, p.MixtureFitness)
		}
	}
	if seq.BestRank != par.BestRank {
		t.Fatalf("best rank differs: %d vs %d", seq.BestRank, par.BestRank)
	}
}

func TestRunProgressCallback(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 2
	var mu sync.Mutex
	calls := map[int]int{}
	_, err := RunParallel(cfg, RunOptions{Progress: func(rank int, stats IterStats) {
		mu.Lock()
		calls[rank]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < cfg.NumCells(); r++ {
		if calls[r] != cfg.Iterations {
			t.Fatalf("rank %d progress called %d times", r, calls[r])
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 0
	if _, err := RunSequential(cfg, RunOptions{}); err == nil {
		t.Fatal("sequential accepted bad config")
	}
	if _, err := RunParallel(cfg, RunOptions{}); err == nil {
		t.Fatal("parallel accepted bad config")
	}
}

func TestMixtureForReconstruction(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 1
	res, err := RunSequential(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.MixtureFor(res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ranks) != len(res.Best().MixtureRanks) {
		t.Fatalf("mixture size %d want %d", len(m.Ranks), len(res.Best().MixtureRanks))
	}
	out := m.Sample(4, cfg.InputNeurons, tensor.NewRNG(1))
	if out.Rows != 4 || out.Cols != cfg.OutputNeurons {
		t.Fatalf("reconstructed sample %d×%d", out.Rows, out.Cols)
	}
	if _, err := res.MixtureFor(-1); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func TestTrainingImprovesGeneratorFitness(t *testing.T) {
	// Over a handful of iterations on the tiny config the generator
	// mixture fitness should drop below the untrained level.
	cfg := tinyConfig()
	cfg.Iterations = 8
	cfg.BatchesPerIteration = 4
	var mu sync.Mutex
	var first, last float64
	seen := false
	_, err := RunSequential(cfg, RunOptions{Progress: func(rank int, s IterStats) {
		if rank != 0 {
			return
		}
		mu.Lock()
		if !seen {
			first = s.MixtureFitness
			seen = true
		}
		last = s.MixtureFitness
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("no progress observed")
	}
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Fatalf("fitness NaN: %v -> %v", first, last)
	}
	if last > first*1.5+0.5 {
		t.Fatalf("generator fitness diverged: %v -> %v", first, last)
	}
}
